"""Tests for the §3.3 cost model and report formatting."""

from __future__ import annotations

import pytest

from repro.analysis import CostModel, READ_PHASES, WRITE_PHASES, fit_power_law, format_table
from repro.core import QuorumSystem


class TestCostModel:
    def test_write_message_count_linear_in_n(self):
        m1 = CostModel(QuorumSystem.bft_bc(1))
        m2 = CostModel(QuorumSystem.bft_bc(2))
        assert m1.write_messages() == 2 * 3 * 4
        assert m2.write_messages() == 2 * 3 * 7

    def test_optimized_write_has_fewer_messages(self):
        m = CostModel(QuorumSystem.bft_bc(1))
        assert m.write_messages("optimized") < m.write_messages("base")

    def test_read_messages(self):
        m = CostModel(QuorumSystem.bft_bc(1))
        assert m.read_messages() == 8
        assert m.read_messages(write_back=True) == 16

    def test_certificate_size_linear_in_quorum(self):
        m1 = CostModel(QuorumSystem.bft_bc(1))
        m5 = CostModel(QuorumSystem.bft_bc(5))
        growth = m5.certificate_bytes / m1.certificate_bytes
        # |Q| grows 11/3 ≈ 3.7x; certificate must track it.
        assert 3.0 < growth < 4.0

    def test_write_bytes_quadratic_shape(self):
        exps = []
        sizes = []
        qs = []
        for f in (1, 2, 3, 4, 5):
            m = CostModel(QuorumSystem.bft_bc(f))
            qs.append(m.quorums.quorum_size)
            sizes.append(m.write_bytes())
        k = fit_power_law([float(q) for q in qs], [float(s) for s in sizes])
        assert 1.7 < k < 2.2  # O(|Q|^2)

    def test_write_messages_linear_shape(self):
        qs, msgs = [], []
        for f in (1, 2, 3, 4, 5):
            m = CostModel(QuorumSystem.bft_bc(f))
            qs.append(float(m.quorums.quorum_size))
            msgs.append(float(m.write_messages()))
        k = fit_power_law(qs, msgs)
        assert 0.9 < k < 1.2  # O(|Q|)

    def test_replica_state_linear_in_writers(self):
        m = CostModel(QuorumSystem.bft_bc(1))
        s10 = m.replica_state_bytes(10)
        s100 = m.replica_state_bytes(100)
        assert s100 > s10
        assert (s100 - s10) == 90 * 48

    def test_signature_accounting(self):
        m = CostModel(QuorumSystem.bft_bc(1))
        per_replica = m.write_signatures_per_replica()
        assert per_replica == {"foreground": 1, "background_eligible": 1}
        assert m.write_signatures_client() == 2

    def test_phase_constants_match_paper(self):
        assert WRITE_PHASES["base"] == (3, 3)
        assert WRITE_PHASES["optimized"][0] == 2
        assert READ_PHASES == (1, 2)


class TestReport:
    def test_format_table_alignment(self):
        table = format_table(
            ["name", "value"],
            [["base", 3], ["optimized", 2]],
            title="phases",
        )
        lines = table.splitlines()
        assert lines[0] == "phases"
        assert "name" in lines[1]
        assert lines[2].startswith("---")
        assert len(lines) == 5

    def test_format_cell_floats(self):
        from repro.analysis.report import format_cell

        assert format_cell(0.12345) == "0.1235"
        assert format_cell(12.345) == "12.35"
        assert format_cell(1234567.0) == "1,234,567"
        assert format_cell(0) == "0"

    def test_fit_power_law_exact(self):
        xs = [1.0, 2.0, 4.0, 8.0]
        ys = [3.0 * x**2 for x in xs]
        assert abs(fit_power_law(xs, ys) - 2.0) < 1e-9

    def test_fit_power_law_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_power_law([1.0], [1.0])
