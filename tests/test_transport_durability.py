"""Durable TCP replicas and client re-dial behaviour.

A :meth:`ReplicaServer.durable` server journals to a data directory; killing
it and starting a fresh server on the same directory must resume from the
pre-crash state.  The client side must survive this: its old connection is
dead, so the retransmission timer re-dials before resending (the fix these
tests pin down — previously a broken connection stayed broken until the
operation timed out).
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core import BftBcClient, BftBcReplica, make_system
from repro.net.asyncio_transport import AsyncClient, ReplicaServer
from repro.storage import FileLogStore


def run(coro):
    return asyncio.run(coro)


async def start_durable_cluster(config, tmp_path):
    servers, addrs = {}, {}
    for rid in config.quorums.replica_ids:
        server = ReplicaServer.durable(rid, config, tmp_path / rid)
        host, port = await server.start()
        addrs[rid] = (host, port)
        servers[rid] = server
    return servers, addrs


async def stop_all(servers, *clients):
    for client in clients:
        await client.close()
    for server in servers.values():
        server.replica.store.close()
        await server.stop()


def test_durable_server_restart_resumes_state(tmp_path):
    async def main():
        config = make_system(f=1, seed=b"tcp-durable")
        servers, addrs = await start_durable_cluster(config, tmp_path)
        client = AsyncClient(
            BftBcClient("client:a", config), addrs, retransmit_interval=0.05
        )
        await client.connect()
        await client.write(("v", 1))
        await client.write(("v", 2))

        # Kill one replica process outright, then bring a *new* server up
        # on the same data directory and port.
        victim = "replica:1"
        fingerprint = servers[victim].replica.state_fingerprint(
            include_signing_logs=True
        )
        await servers[victim].stop()
        servers[victim].replica.store.close()
        host, port = addrs[victim]
        reborn = ReplicaServer.durable(
            victim, config, tmp_path / victim, host=host, port=port
        )
        await reborn.start()
        servers[victim] = reborn
        assert (
            reborn.replica.state_fingerprint(include_signing_logs=True)
            == fingerprint
        )

        # The client's socket to the victim is dead; the retransmission
        # timer re-dials it and the full cluster keeps serving.
        await client.write(("v", 3))
        assert await client.read() == ("v", 3)
        assert client.reconnects >= 1
        assert reborn.replica.stats.handled  # the reborn replica took part

        await stop_all(servers, client)

    run(main())


def test_client_redials_replica_that_was_down_at_connect(tmp_path):
    async def main():
        config = make_system(f=1, seed=b"tcp-redial")
        servers, addrs = await start_durable_cluster(config, tmp_path)

        # One replica is down from the start: connect() skips it, and the
        # quorum of 3 still serves.
        victim = "replica:2"
        await servers[victim].stop()
        servers[victim].replica.store.close()

        client = AsyncClient(
            BftBcClient("client:a", config), addrs, retransmit_interval=0.05
        )
        await client.connect()
        await client.write(("v", 1))

        # Bring the replica back; the next operation's retransmission tick
        # re-dials it so it rejoins the quorum.
        host, port = addrs[victim]
        reborn = ReplicaServer.durable(
            victim, config, tmp_path / victim, host=host, port=port
        )
        await reborn.start()
        servers[victim] = reborn

        for i in range(2, 6):
            await client.write(("v", i))
        # The replica was never connected, so this dial is a first connect,
        # not a "reconnect" — but it must now hold a live socket and have
        # taken part in the later writes.
        assert reborn.replica.stats.handled
        assert victim in client._writers

        await stop_all(servers, client)

    run(main())
