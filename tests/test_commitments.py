"""Property tests for the proof-of-writing commitment primitive.

The fast path's safety rests on three properties of the commit/reveal
scheme: the commitment binds (no second opening, even when a client reuses
a nonce), verification rejects every mutated payload (no false accepts),
and the wire form round-trips canonically.  Hypothesis drives all three.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import KeyRegistry, MacAuthenticator
from repro.crypto.commitments import (
    ProofOfWriting,
    make_commitment,
    make_mac_row,
    make_opening,
    row_mac_for,
    verify_opening,
)
from repro.crypto.hashing import DIGEST_SIZE, hash_value
from repro.errors import CertificateError

clients = st.text(min_size=1, max_size=24)
hashes = st.binary(min_size=DIGEST_SIZE, max_size=DIGEST_SIZE)
nonces = st.binary(min_size=1, max_size=32)


class TestOpeningBinding:
    @given(client=clients, value_hash=hashes, nonce=nonces)
    def test_opening_opens_its_commitment(self, client, value_hash, nonce):
        opening = make_opening(client, value_hash, nonce)
        assert verify_opening(make_commitment(opening), opening)

    @given(
        client=clients,
        value_hash=hashes,
        other_hash=hashes,
        nonce=nonces,
    )
    def test_binding_under_nonce_reuse(
        self, client, value_hash, other_hash, nonce
    ):
        """Reusing a nonce for a different value yields a different opening
        and a different commitment — a Byzantine client cannot prepare one
        commitment and later open it as two values."""
        if value_hash == other_hash:
            return
        a = make_opening(client, value_hash, nonce)
        b = make_opening(client, other_hash, nonce)
        assert a != b
        assert make_commitment(a) != make_commitment(b)
        assert not verify_opening(make_commitment(a), b)
        assert not verify_opening(make_commitment(b), a)

    @given(
        client=clients,
        other_client=clients,
        value_hash=hashes,
        nonce=nonces,
    )
    def test_opening_bound_to_client(
        self, client, other_client, value_hash, nonce
    ):
        """One client's revealed opening never opens another client's
        commitment for the same value and nonce."""
        if client == other_client:
            return
        mine = make_opening(client, value_hash, nonce)
        theirs = make_opening(other_client, value_hash, nonce)
        assert not verify_opening(make_commitment(mine), theirs)

    @given(
        client=clients,
        value_hash=hashes,
        nonce=nonces,
        flip_index=st.integers(min_value=0, max_value=DIGEST_SIZE - 1),
        flip_bit=st.integers(min_value=0, max_value=7),
    )
    def test_no_false_accept_on_mutated_opening(
        self, client, value_hash, nonce, flip_index, flip_bit
    ):
        """Any single-bit mutation of the opening is rejected."""
        opening = make_opening(client, value_hash, nonce)
        commitment = make_commitment(opening)
        mutated = bytearray(opening)
        mutated[flip_index] ^= 1 << flip_bit
        assert not verify_opening(commitment, bytes(mutated))

    @given(opening=st.binary(max_size=64))
    def test_wrong_length_openings_rejected(self, opening):
        commitment = make_commitment(
            make_opening("c", b"\0" * DIGEST_SIZE, b"n")
        )
        if len(opening) != DIGEST_SIZE:
            assert not verify_opening(commitment, opening)

    def test_non_bytes_rejected(self):
        opening = make_opening("c", b"\0" * DIGEST_SIZE, b"n")
        commitment = make_commitment(opening)
        assert not verify_opening("nope", opening)
        assert not verify_opening(commitment, None)


def _auth() -> MacAuthenticator:
    registry = KeyRegistry(master_seed=b"commitment-tests")
    for node in ("replica:0", "replica:1", "replica:2", "client:c"):
        registry.register(node)
    return MacAuthenticator(registry)


class TestMacRows:
    def test_row_is_sorted_and_per_receiver(self):
        auth = _auth()
        row = make_mac_row(
            auth, "client:c", ["replica:1", "replica:0"], b"stmt"
        )
        assert [r for r, _ in row] == ["replica:0", "replica:1"]
        for receiver, mac in row:
            assert auth.check("client:c", receiver, b"stmt", mac)

    def test_row_mac_for_missing_receiver(self):
        auth = _auth()
        row = make_mac_row(auth, "client:c", ["replica:0"], b"stmt")
        assert row_mac_for(row, "replica:2") is None

    def test_count_valid_dedups_ackers(self):
        auth = _auth()
        message = b"acked-statement"
        row = make_mac_row(auth, "replica:0", ["replica:1"], message)
        proof = ProofOfWriting(
            commitment=b"\0" * DIGEST_SIZE,
            opening=b"\0" * DIGEST_SIZE,
            rows=(("replica:0", row), ("replica:0", row)),
        )
        assert proof.count_valid_for(auth, "replica:1", message) == 1

    def test_rows_are_receiver_specific(self):
        """The documented non-transferability: a MAC addressed to replica 1
        proves nothing to replica 2."""
        auth = _auth()
        message = b"acked-statement"
        row = make_mac_row(auth, "replica:0", ["replica:1"], message)
        proof = ProofOfWriting(
            commitment=b"\0" * DIGEST_SIZE,
            opening=b"\0" * DIGEST_SIZE,
            rows=(("replica:0", row),),
        )
        assert proof.count_valid_for(auth, "replica:1", message) == 1
        assert proof.count_valid_for(auth, "replica:2", message) == 0


class TestProofWire:
    @given(
        client=clients,
        value_hash=hashes,
        nonce=nonces,
        ackers=st.lists(
            st.sampled_from(["replica:0", "replica:1", "replica:2"]),
            unique=True,
            min_size=0,
            max_size=3,
        ),
    )
    @settings(max_examples=50)
    def test_wire_round_trip(self, client, value_hash, nonce, ackers):
        auth = _auth()
        opening = make_opening(client, value_hash, nonce)
        statement = hash_value(("stmt", value_hash))
        proof = ProofOfWriting(
            commitment=make_commitment(opening),
            opening=opening,
            rows=tuple(
                sorted(
                    (acker, make_mac_row(auth, acker, ["replica:0"], statement))
                    for acker in ackers
                )
            ),
        )
        restored = ProofOfWriting.from_wire(proof.to_wire())
        assert restored == proof
        assert restored.opens()
        assert restored.ackers() == frozenset(ackers)

    @pytest.mark.parametrize(
        "wire",
        [
            None,
            (),
            (b"c", b"o"),
            (b"c", b"o", b"rows"),
            ("c", b"o", ()),
            (b"c", b"o", ((b"not-str", ()),)),
            (b"c", b"o", (("acker", b"not-tuple"),)),
            (b"c", b"o", (("acker", ((b"r", b"m"),)),)),
            (b"c", b"o", (("acker", (("r", "not-bytes"),)),)),
        ],
    )
    def test_malformed_wire_raises(self, wire):
        with pytest.raises(CertificateError):
            ProofOfWriting.from_wire(wire)
