"""Every silent-discard branch increments the right ``ReplicaStats`` counter.

Replicas drop invalid traffic without replying (§3.2's defence is silence,
not errors), so the ``stats.discards`` counters are the only observable
evidence of *why* a message died.  These tests pin each validation-failure
branch to its reason string across the base, optimized, and strong replica
variants.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import make_system
from repro.core.certificates import PrepareCertificate, genesis_prepare_certificate
from repro.core.messages import ReadTsPrepRequest, WriteRequest
from repro.core.replica import BftBcReplica, OptimizedBftBcReplica
from repro.core.statements import read_ts_prep_request_statement
from repro.core.timestamp import ZERO_TS
from repro.crypto.hashing import hash_value

from tests.conftest import make_write_cert
from tests.helpers import ProtocolKit, make_replicas

VARIANTS = ["base", "optimized", "strong"]


def build(variant):
    config = make_system(
        f=1, seed=b"discard-" + variant.encode(), strong=(variant == "strong")
    )
    kit = ProtocolKit(config)
    cls = OptimizedBftBcReplica if variant == "optimized" else BftBcReplica
    replicas = make_replicas(config, cls)
    return config, kit, replicas


def justify_for(kit, config, variant):
    """Strong-mode prepares must justify their timestamp; others need not."""
    return make_write_cert(config, ZERO_TS) if variant == "strong" else None


def valid_prepare(kit, config, variant, value=("v", 1)):
    genesis = genesis_prepare_certificate()
    return kit.prepare_request(
        genesis,
        ZERO_TS.succ(kit.client),
        value,
        justify_cert=justify_for(kit, config, variant),
    )


@pytest.mark.parametrize("variant", VARIANTS)
class TestPrepareDiscards:
    def test_bad_signature(self, variant):
        config, kit, replicas = build(variant)
        replica = replicas[0]
        request = valid_prepare(kit, config, variant)
        # Same signature, different payload: the statement no longer matches.
        forged = dataclasses.replace(request, value_hash=hash_value(("x", 9)))
        assert replica.handle(kit.client, forged) is None
        assert replica.stats.discards["bad-signature"] == 1

    def test_stale_timestamp(self, variant):
        config, kit, replicas = build(variant)
        replica = replicas[0]
        genesis = genesis_prepare_certificate()
        # Skipping ahead two slots breaks ts = succ(prevC.ts, c).
        stale = kit.prepare_request(
            genesis,
            ZERO_TS.succ(kit.client).succ(kit.client),
            ("v", 1),
            justify_cert=justify_for(kit, config, variant),
        )
        assert replica.handle(kit.client, stale) is None
        assert replica.stats.discards["bad-ts"] == 1

    def test_invalid_prev_certificate(self, variant):
        config, kit, replicas = build(variant)
        kit.full_write(
            replicas, ("v", 1), justify_cert=justify_for(kit, config, variant)
        )
        replica = replicas[0]
        # A genuine certificate re-stamped with a different timestamp: the
        # signatures no longer cover the claimed statement.
        pcert = replica.pcert
        bogus = PrepareCertificate(
            ts=pcert.ts.succ(kit.client),
            value_hash=pcert.value_hash,
            signatures=pcert.signatures,
        )
        request = kit.prepare_request(
            bogus,
            bogus.ts.succ(kit.client),
            ("v", 2),
            justify_cert=justify_for(kit, config, variant),
        )
        assert replica.handle(kit.client, request) is None
        assert replica.stats.discards["bad-prepare-cert"] == 1

    def test_conflicting_plist_entry(self, variant):
        config, kit, replicas = build(variant)
        replica = replicas[0]
        justify = justify_for(kit, config, variant)
        first = valid_prepare(kit, config, variant, value=("v", 1))
        assert replica.handle(kit.client, first) is not None
        # Same client, same slot, different value: one outstanding prepare
        # per client (the at-most-one lurking write hinges on this).
        conflicting = valid_prepare(kit, config, variant, value=("v", 2))
        assert replica.handle(kit.client, conflicting) is None
        assert replica.stats.discards["plist-conflict"] == 1

    def test_invalid_write_certificate(self, variant):
        config, kit, replicas = build(variant)
        justify = justify_for(kit, config, variant)
        _, wcert = kit.full_write(replicas, ("v", 1), justify_cert=justify)
        replica = replicas[0]
        bogus = dataclasses.replace(wcert, ts=wcert.ts.succ(kit.client))
        request = kit.prepare_request(
            replica.pcert,
            replica.pcert.ts.succ(kit.client),
            ("v", 2),
            write_cert=bogus,
            justify_cert=wcert if variant == "strong" else None,
        )
        assert replica.handle(kit.client, request) is None
        assert replica.stats.discards["bad-write-cert"] == 1

    def test_unauthorized_client(self, variant):
        config, kit, replicas = build(variant)
        replica = replicas[0]
        outsider = ProtocolKit(config, client="client:mallory")
        # Mallory holds a key (so the request is well signed) but the ACL
        # names only the legitimate writer.
        config.authorize_writer(kit.client)
        request = valid_prepare(outsider, config, variant)
        assert replica.handle(outsider.client, request) is None
        assert replica.stats.discards["unauthorized"] == 1


@pytest.mark.parametrize("variant", VARIANTS)
class TestWriteDiscards:
    def test_bad_signature(self, variant):
        config, kit, replicas = build(variant)
        pcert, _ = kit.full_write(
            replicas, ("v", 1), justify_cert=justify_for(kit, config, variant)
        )
        replica = replicas[0]
        good = kit.write_request(("v", 1), pcert)
        forged = dataclasses.replace(good, value=("tampered", 1))
        before = replica.stats.discards["bad-signature"]
        assert replica.handle(kit.client, forged) is None
        assert replica.stats.discards["bad-signature"] == before + 1

    def test_invalid_certificate(self, variant):
        config, kit, replicas = build(variant)
        pcert, _ = kit.full_write(
            replicas, ("v", 1), justify_cert=justify_for(kit, config, variant)
        )
        replica = replicas[0]
        bogus = PrepareCertificate(
            ts=pcert.ts.succ(kit.client),
            value_hash=pcert.value_hash,
            signatures=pcert.signatures,
        )
        request = kit.write_request(("v", 1), bogus)
        assert replica.handle(kit.client, request) is None
        assert replica.stats.discards["bad-prepare-cert"] == 1

    def test_value_hash_mismatch(self, variant):
        config, kit, replicas = build(variant)
        pcert, _ = kit.full_write(
            replicas, ("v", 1), justify_cert=justify_for(kit, config, variant)
        )
        replica = replicas[0]
        request = kit.write_request(("other", 2), pcert)
        assert replica.handle(kit.client, request) is None
        assert replica.stats.discards["bad-hash"] == 1


class TestStrongOnlyDiscards:
    def test_missing_justify(self):
        config, kit, replicas = build("strong")
        replica = replicas[0]
        request = kit.prepare_request(
            genesis_prepare_certificate(), ZERO_TS.succ(kit.client), ("v", 1)
        )
        assert replica.handle(kit.client, request) is None
        assert replica.stats.discards["missing-justify"] == 1

    def test_invalid_justify_certificate(self):
        config, kit, replicas = build("strong")
        replica = replicas[0]
        justify = make_write_cert(config, ZERO_TS)
        bogus = dataclasses.replace(justify, ts=ZERO_TS.succ(kit.client))
        request = kit.prepare_request(
            genesis_prepare_certificate(),
            ZERO_TS.succ(kit.client),
            ("v", 1),
            justify_cert=bogus,
        )
        assert replica.handle(kit.client, request) is None
        assert replica.stats.discards["bad-justify-cert"] == 1

    def test_justify_timestamp_mismatch(self):
        config, kit, replicas = build("strong")
        kit.full_write(replicas, ("v", 1), justify_cert=make_write_cert(config, ZERO_TS))
        replica = replicas[0]
        # Justify certifies ZERO_TS but the proposal claims a later slot.
        request = kit.prepare_request(
            replica.pcert,
            replica.pcert.ts.succ(kit.client),
            ("v", 2),
            justify_cert=make_write_cert(config, ZERO_TS),
        )
        assert replica.handle(kit.client, request) is None
        assert replica.stats.discards["bad-justify-ts"] == 1


class TestOptimizedOnlyDiscards:
    def test_read_ts_prep_bad_signature(self):
        config, kit, replicas = build("optimized")
        replica = replicas[0]
        vh = hash_value(("v", 1))
        nonce = kit.nonce()
        statement = read_ts_prep_request_statement(vh, None, nonce)
        message = ReadTsPrepRequest(
            value_hash=hash_value(("other", 2)),  # statement mismatch
            write_cert=None,
            nonce=nonce,
            signature=config.scheme.sign_statement(kit.client, statement),
        )
        assert replica.handle(kit.client, message) is None
        assert replica.stats.discards["bad-signature"] == 1


def test_unknown_message_kind():
    config, kit, replicas = build("base")
    replica = replicas[0]

    class Mystery:
        KIND = "MYSTERY"

    assert replica.handle(kit.client, Mystery()) is None
    assert replica.stats.discards["unknown-kind"] == 1
