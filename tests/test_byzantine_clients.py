"""Integration tests for the §3.2 Byzantine-client attacks against BFT-BC.

Each test checks that the attack achieves exactly what the paper proves is
achievable — no more.
"""

from __future__ import annotations

import pytest

from repro import build_cluster, count_lurking_writes
from repro.byzantine import (
    Colluder,
    EquivocationAttack,
    LurkingWriteAttack,
    OptimizedLurkingWriteAttack,
    PartialWriteAttack,
    TimestampExhaustionAttack,
)
from repro.byzantine.clients import sign_after_revocation_fails
from repro.sim import read_script, write_script
from repro.spec import check_bft_linearizable


class TestLurkingWritesBase:
    def test_hoard_bounded_to_one(self):
        """Lemma 1(2): at most one prepared-but-unwritten write."""
        cluster = build_cluster(f=1, seed=20)
        attack = LurkingWriteAttack(cluster, "evil", warmup=2, extra_attempts=3)
        attack.start()
        cluster.run(max_time=60)
        assert len(attack.hoard) == 1
        assert attack.failed_attempts == 3

    def test_colluder_makes_hoard_visible(self):
        cluster = build_cluster(f=1, seed=21)
        attack = LurkingWriteAttack(cluster, "evil", warmup=1, extra_attempts=0)
        attack.start()
        cluster.run(max_time=60)
        attack.stop()
        assert sign_after_revocation_fails(attack)
        colluder = Colluder(cluster, "colluder", attack.hoard)
        colluder.start()
        reader = cluster.add_client("reader")
        reader.run_script(read_script(1), start_delay=0.5)
        cluster.run(max_time=60)
        assert reader.client.last_result == attack.hoard[0].value

    def test_lurking_writes_within_definition_bound(self):
        cluster = build_cluster(f=1, seed=22)
        attack = LurkingWriteAttack(cluster, "evil", warmup=1, extra_attempts=2)
        attack.start()
        cluster.run(max_time=60)
        attack.stop()
        colluder = Colluder(cluster, "colluder", attack.hoard)
        colluder.start()
        reader = cluster.add_client("reader")
        reader.run_script(read_script(3), start_delay=0.5, think_time=0.1)
        cluster.run(max_time=60)
        lurking = count_lurking_writes(cluster.history, "client:evil")
        assert lurking <= 1  # Theorem 1's bound
        result = check_bft_linearizable(
            cluster.history, max_b=1, bad_clients={"client:evil"}
        )
        assert result.ok, result.violation

    def test_hoard_bounded_even_with_promiscuous_replica(self):
        """One colluding replica signs anything, but 2f+1 distinct signers
        are needed: the hoard stays at one."""
        from repro.byzantine import PromiscuousReplica

        cluster = build_cluster(
            f=1, seed=23, replica_overrides={0: PromiscuousReplica}
        )
        attack = LurkingWriteAttack(cluster, "evil", warmup=1, extra_attempts=2)
        attack.start()
        cluster.run(max_time=60)
        assert len(attack.hoard) == 1


class TestLurkingWritesOptimized:
    def test_double_hoard_achievable(self):
        """§6.3: the optimized protocol admits exactly two lurking writes."""
        cluster = build_cluster(f=1, variant="optimized", seed=24)
        attack = OptimizedLurkingWriteAttack(cluster, "evil")
        attack.start()
        cluster.run(max_time=60)
        assert len(attack.hoard) == 2
        # Both certificates carry the same timestamp, different values.
        assert attack.hoard[0].ts == attack.hoard[1].ts
        assert attack.hoard[0].value != attack.hoard[1].value

    def test_double_hoard_within_optimized_bound(self):
        cluster = build_cluster(f=1, variant="optimized", seed=25)
        attack = OptimizedLurkingWriteAttack(cluster, "evil")
        attack.start()
        cluster.run(max_time=60)
        attack.stop()
        colluder = Colluder(cluster, "colluder", attack.hoard)
        colluder.start()
        reader = cluster.add_client("reader")
        reader.run_script(read_script(2), start_delay=0.6, think_time=0.1)
        cluster.run(max_time=60)
        lurking = count_lurking_writes(cluster.history, "client:evil")
        assert lurking <= 2  # Theorem 2's bound
        result = check_bft_linearizable(
            cluster.history, max_b=2, bad_clients={"client:evil"}
        )
        assert result.ok, result.violation

    def test_reader_resolves_same_ts_by_hash(self):
        """When both hoarded writes land, readers converge on the larger
        hash (§6.3) — and stay atomic."""
        cluster = build_cluster(f=1, variant="optimized", seed=26)
        attack = OptimizedLurkingWriteAttack(cluster, "evil")
        attack.start()
        cluster.run(max_time=60)
        attack.stop()
        colluder = Colluder(cluster, "colluder", attack.hoard)
        colluder.start()
        r1 = cluster.add_client("r1")
        r2 = cluster.add_client("r2")
        r1.run_script(read_script(2), start_delay=0.6, think_time=0.2)
        r2.run_script(read_script(2), start_delay=0.7, think_time=0.2)
        cluster.run(max_time=60)
        result = check_bft_linearizable(
            cluster.history, max_b=2, bad_clients={"client:evil"}
        )
        assert result.ok, result.violation


class TestEquivocation:
    def test_at_most_one_certificate_per_timestamp(self):
        """Lemma 1(3): no two prepare certificates for the same timestamp
        with different values."""
        cluster = build_cluster(f=1, seed=27)
        attack = EquivocationAttack(cluster, "evil")
        attack.start()
        cluster.run(max_time=60)
        assert attack.quorums_reached <= 1

    def test_split_halves_cannot_both_reach_quorum(self):
        cluster = build_cluster(f=2, seed=28)  # 7 replicas, quorum 5
        attack = EquivocationAttack(cluster, "evil")
        attack.start()
        cluster.run(max_time=60)
        total = len(attack.signatures["A"]) + len(attack.signatures["B"])
        # Each correct replica signs at most one of the two values.
        assert len(attack.signatures["A"]) < cluster.config.quorum_size or len(
            attack.signatures["B"]
        ) < cluster.config.quorum_size
        assert total <= cluster.config.n

    def test_good_clients_unaffected_during_attack(self):
        cluster = build_cluster(f=1, seed=29)
        attack = EquivocationAttack(cluster, "evil")
        attack.start()
        writer = cluster.add_client("good")
        writer.run_script(write_script("client:good", 3) + read_script(1))
        cluster.run(max_time=60)
        assert writer.client.last_result == ("client:good", 2, None)


class TestPartialWrite:
    def test_partial_write_repaired_by_reader(self):
        cluster = build_cluster(f=1, seed=30)
        attack = PartialWriteAttack(cluster, "evil")
        attack.start()
        cluster.run(max_time=60)
        installed = [r for r in cluster.replicas.values() if r.data is not None]
        assert len(installed) == 1
        # Force the holder into the read quorum.
        others = [
            rid for rid in cluster.config.quorums.replica_ids
            if rid != attack.installed_at
        ]
        cluster.network.crash(others[-1])
        reader = cluster.add_client("reader")
        reader.run_script(read_script(1))
        cluster.run(max_time=60)
        assert reader.client.last_result == attack.value
        cluster.settle()
        fresh = [r for r in cluster.replicas.values() if r.data == attack.value]
        assert len(fresh) >= cluster.config.quorum_size  # write-back repaired

    def test_partial_write_history_is_bft_linearizable(self):
        cluster = build_cluster(f=1, seed=31)
        attack = PartialWriteAttack(cluster, "evil")
        attack.start()
        cluster.run(max_time=60)
        reader = cluster.add_client("reader")
        reader.run_script(read_script(2), think_time=0.1)
        cluster.run(max_time=60)
        result = check_bft_linearizable(
            cluster.history, max_b=1, bad_clients={"client:evil"}
        )
        assert result.ok, result.violation


class TestTimestampExhaustion:
    def test_huge_timestamp_rejected_everywhere(self):
        cluster = build_cluster(f=1, seed=32)
        attack = TimestampExhaustionAttack(cluster, "evil")
        attack.start()
        cluster.run(max_time=60)
        assert attack.replies == 0
        for replica in cluster.replicas.values():
            assert all(e.ts.val < attack.HUGE for e in replica.plist.values())
            assert replica.pcert.ts.val < attack.HUGE

    def test_timestamps_grow_only_with_real_writes(self):
        cluster = build_cluster(f=1, seed=33)
        attack = TimestampExhaustionAttack(cluster, "evil")
        attack.start()
        writer = cluster.add_client("good")
        writer.run_script(write_script("client:good", 5))
        cluster.run(max_time=60)
        cluster.settle()
        max_ts = max(r.pcert.ts.val for r in cluster.replicas.values())
        assert max_ts == 5  # five writes -> value 5, nothing more


class TestCollusionChain:
    """§7.2's chained-prepare attack by a colluding client set."""

    def test_chain_succeeds_on_base_protocol(self):
        from repro.byzantine import CollusionChainAttack

        cluster = build_cluster(f=1, seed=34)
        attack = CollusionChainAttack(cluster, "leader", ["m1", "m2", "m3"])
        attack.start()
        cluster.run(max_time=60)
        assert len(attack.hoard) == 3
        # Timestamps are consecutive: val 1, 2, 3 by the three members.
        values = [c.ts.val for c in attack.hoard]
        assert values == [1, 2, 3]
        ids = [c.ts.client_id for c in attack.hoard]
        assert ids == ["client:m1", "client:m2", "client:m3"]

    def test_chain_capped_at_one_on_strong_protocol(self):
        from repro.byzantine import CollusionChainAttack

        cluster = build_cluster(f=1, variant="strong", seed=35)
        attack = CollusionChainAttack(cluster, "leader", ["m1", "m2", "m3"])
        attack.start()
        cluster.run(max_time=60)
        # The first link can justify against the current completed state;
        # the second has no write certificate for link 1's timestamp.
        assert len(attack.hoard) == 1
        assert attack.refused_links == 1

    def test_each_member_within_individual_bound(self):
        """Even the chain respects Definition 1 *per client*: one lurking
        write per member."""
        from repro.byzantine import CollusionChainAttack

        cluster = build_cluster(f=1, seed=36)
        members = ["m1", "m2"]
        attack = CollusionChainAttack(cluster, "leader", members)
        attack.start()
        cluster.run(max_time=60)
        attack.stop_all()
        colluder = Colluder(cluster, "colluder", attack.hoard)
        colluder.start()
        reader = cluster.add_client("reader")
        reader.run_script(read_script(3), start_delay=0.5, think_time=0.1)
        cluster.run(max_time=60)
        for member in members:
            assert count_lurking_writes(cluster.history, f"client:{member}") <= 1
        result = check_bft_linearizable(
            cluster.history,
            max_b=1,
            bad_clients={f"client:{m}" for m in members},
        )
        assert result.ok, result.violation

    def test_chain_blocked_without_transferable_prev(self):
        """Sanity: a chain link needs the previous link's *certificate* —
        with a garbage prev certificate replicas refuse."""
        from repro.core.certificates import PrepareCertificate
        from repro.core.timestamp import Timestamp
        from repro.crypto.signatures import Signature
        from tests.helpers import ProtocolKit, make_replicas
        from repro.core import make_system

        config = make_system(f=1, seed=b"chain-unit")
        kit = ProtocolKit(config, client="client:m2")
        replicas = make_replicas(config)
        fake_prev = PrepareCertificate(
            ts=Timestamp(1, "client:m1"),
            value_hash=b"\x01" * 32,
            signatures=tuple(
                Signature(signer=f"replica:{i}", value=b"\x00" * 32)
                for i in range(3)
            ),
        )
        request = kit.prepare_request(
            fake_prev, fake_prev.ts.succ("client:m2"), ("v", 1)
        )
        assert all(r.handle("client:m2", request) is None for r in replicas)
