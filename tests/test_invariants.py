"""Tests for the executable Lemma 1 invariants (§5 as code)."""

from __future__ import annotations

import pytest

from repro import build_cluster
from repro.byzantine import (
    Colluder,
    CollusionChainAttack,
    EquivocationAttack,
    LurkingWriteAttack,
    OptimizedLurkingWriteAttack,
    PromiscuousReplica,
)
from repro.sim import make_scripts, read_script, write_script
from repro.spec import check_lemma1


def lemma1(cluster, **kwargs):
    return check_lemma1(
        cluster.replicas.values(), f=cluster.config.f, **kwargs
    )


class TestHonestExecutions:
    def test_fresh_cluster(self):
        cluster = build_cluster(f=1, seed=300)
        report = lemma1(cluster)
        assert report.ok
        assert report.tsmax.val == 0

    def test_single_writer(self):
        cluster = build_cluster(f=1, seed=301)
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 5))
        cluster.run(max_time=60)
        cluster.settle()
        report = lemma1(cluster)
        assert report.ok, report.violations
        assert report.tsmax.val == 5

    @pytest.mark.parametrize("variant,bound", [("base", 1), ("optimized", 2)])
    def test_concurrent_writers(self, variant, bound):
        cluster = build_cluster(f=1, variant=variant, seed=302)
        scripts = make_scripts(
            ["client:a", "client:b", "client:c"], 6, write_fraction=0.7, seed=1
        )
        cluster.run_scripts(
            {n.split(":")[1]: s for n, s in scripts.items()}, max_time=300
        )
        cluster.settle()
        report = lemma1(cluster, max_prepared_per_client=bound)
        assert report.ok, report.violations

    def test_f2(self):
        cluster = build_cluster(f=2, seed=303)
        cluster.run_scripts(
            {"a": write_script("client:a", 4), "b": write_script("client:b", 4)},
            max_time=300,
        )
        cluster.settle()
        report = lemma1(cluster)
        assert report.ok, report.violations


class TestUnderAttack:
    def test_lurking_write_attack_stays_within_lemma(self):
        cluster = build_cluster(f=1, seed=304)
        attack = LurkingWriteAttack(cluster, "evil", warmup=2, extra_attempts=3)
        attack.start()
        cluster.run(max_time=120)
        report = lemma1(cluster, suspects=["client:evil"])
        assert report.ok, report.violations
        # The hoarded timestamp is certifiable — exactly one, per the lemma.
        assert report.certifiable_prepares.get("client:evil", []) != []

    def test_equivocation_attack_stays_within_lemma(self):
        cluster = build_cluster(f=1, seed=305)
        attack = EquivocationAttack(cluster, "evil")
        attack.start()
        cluster.run(max_time=120)
        report = lemma1(cluster, suspects=["client:evil"])
        assert report.ok, report.violations

    def test_optimized_double_hoard_needs_relaxed_bound(self):
        """The §6.3 exploit is visible to the invariant checker: the client
        holds TWO certifiable prepares — within Lemma 1'(2)'s bound of two,
        violating the base lemma's bound of one."""
        cluster = build_cluster(f=1, variant="optimized", seed=306)
        attack = OptimizedLurkingWriteAttack(cluster, "evil")
        attack.start()
        cluster.run(max_time=120)
        assert len(attack.hoard) == 2
        base_bound = lemma1(cluster, max_prepared_per_client=1)
        optimized_bound = lemma1(cluster, max_prepared_per_client=2)
        # Both hoarded certs share one timestamp (two values), so part 2
        # holds even at bound 1 — but part 3's one-value-per-timestamp is
        # exactly what the optimized protocol weakens:
        assert not base_bound.ok or len(
            {c.ts for c in attack.hoard}
        ) == 1
        assert optimized_bound.violations == [
            v for v in optimized_bound.violations if "1(3)" in v
        ]

    def test_collusion_chain_certifiable_per_member(self):
        cluster = build_cluster(f=1, seed=307)
        members = ["m1", "m2", "m3"]
        attack = CollusionChainAttack(cluster, "leader", members)
        attack.start()
        cluster.run(max_time=120)
        report = lemma1(cluster, suspects=[f"client:{m}" for m in members])
        # Each member individually satisfies Lemma 1(2) ...
        assert report.ok, report.violations
        # ... and the chain is visible: every member has one certifiable ts.
        for member in members:
            assert len(report.certifiable_prepares[f"client:{member}"]) == 1

    def test_promiscuous_replica_must_be_excluded(self):
        """Sanity on the checker itself: a Byzantine replica's log is
        unconstrained, so counting it can produce false alarms; excluding
        it (as the lemma's statement does) restores the invariant."""
        cluster = build_cluster(
            f=1, seed=308, replica_overrides={0: PromiscuousReplica}
        )
        attack = EquivocationAttack(cluster, "evil")
        attack.start()
        node = cluster.add_client("good")
        node.run_script(write_script("client:good", 2))
        cluster.run(max_time=120)
        report = lemma1(cluster, byzantine_replicas={"replica:0"})
        assert report.ok, report.violations


class TestCheckerEdgeCases:
    def test_no_correct_replicas_rejected(self):
        cluster = build_cluster(f=1, seed=309)
        with pytest.raises(ValueError):
            check_lemma1(
                cluster.replicas.values(),
                f=1,
                byzantine_replicas=set(cluster.replicas),
            )

    def test_report_is_falsy_on_violation(self):
        from repro.spec import Lemma1Report
        from repro.core import ZERO_TS

        report = Lemma1Report(ok=False, tsmax=ZERO_TS, violations=["x"])
        assert not report
