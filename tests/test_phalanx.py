"""Tests for the Phalanx baseline (4f+1, echo certificates, masking reads)."""

from __future__ import annotations

import pytest

from repro.baselines.phalanx import NULL_READ, PhalanxReplica
from repro.baselines.runner import build_phalanx_cluster
from repro.core.timestamp import Timestamp
from repro.sim import read_script, write_script
from repro.spec import check_register_linearizable


class TestHonestOperation:
    def test_shape_is_4f_plus_1(self):
        cluster = build_phalanx_cluster(f=1)
        assert len(cluster.replicas) == 5
        assert cluster.config.quorum_size == 4

    def test_write_then_read(self):
        cluster = build_phalanx_cluster(f=1, seed=1)
        node = cluster.add_client("a")
        node.run_script(write_script("client:a", 1) + read_script(1))
        cluster.run()
        assert node.client.last_result == ("client:a", 0, None)

    def test_writes_take_three_phases(self):
        cluster = build_phalanx_cluster(f=1, seed=2)
        node = cluster.add_client("a")
        node.run_script(write_script("client:a", 3))
        cluster.run()
        assert cluster.metrics.phase_histogram("write") == {3: 3}

    def test_sequential_history_linearizable(self):
        cluster = build_phalanx_cluster(f=1, seed=3)
        node = cluster.add_client("a")
        node.run_script(write_script("client:a", 3) + read_script(2))
        cluster.run()
        assert check_register_linearizable(cluster.history).ok


class TestEchoProtocol:
    @pytest.fixture
    def setup(self):
        from repro.core import make_system
        from repro.core.quorum import QuorumSystem

        config = make_system(
            f=1, seed=b"phx-unit", quorums=QuorumSystem.phalanx(1)
        )
        config.registry.register("client:a")
        replica = PhalanxReplica("replica:0", config)
        return config, replica

    def _echo(self, config, replica, ts, value):
        from repro.baselines.messages import PhxEchoRequest
        from repro.baselines.statements import phx_echo_request_statement
        from repro.crypto.hashing import hash_value

        vh = hash_value(value)
        sig = config.scheme.sign_statement(
            "client:a", phx_echo_request_statement(ts, vh)
        )
        return replica.handle(
            "client:a", PhxEchoRequest(ts=ts, value_hash=vh, signature=sig)
        )

    def test_echo_granted(self, setup):
        config, replica = setup
        ts = Timestamp(1, "client:a")
        assert self._echo(config, replica, ts, ("v", 1)) is not None
        assert replica.stats.echoes_granted == 1

    def test_equivocating_echo_refused(self, setup):
        """The anti-equivocation core: one hash per (client, timestamp)."""
        config, replica = setup
        ts = Timestamp(1, "client:a")
        assert self._echo(config, replica, ts, ("v", 1)) is not None
        assert self._echo(config, replica, ts, ("v", 2)) is None
        assert replica.stats.echoes_refused == 1

    def test_echo_retransmission_allowed(self, setup):
        config, replica = setup
        ts = Timestamp(1, "client:a")
        assert self._echo(config, replica, ts, ("v", 1)) is not None
        assert self._echo(config, replica, ts, ("v", 1)) is not None

    def test_write_without_echo_proof_rejected(self, setup):
        from repro.baselines.messages import PhxWriteRequest
        from repro.baselines.statements import phx_write_request_statement

        config, replica = setup
        ts = Timestamp(1, "client:a")
        sig = config.scheme.sign_statement(
            "client:a", phx_write_request_statement(("v", 1), ts)
        )
        request = PhxWriteRequest(
            value=("v", 1), ts=ts, echo_sigs=(), signature=sig
        )
        assert replica.handle("client:a", request) is None
        assert replica.stats.discards["bad-echo-proof"] == 1
        assert replica.data is None


class TestNullReads:
    def test_incomplete_write_can_cause_null_read(self):
        """§8: 'read operations could return a null value if there was an
        incomplete or a concurrent write.'"""
        cluster = build_phalanx_cluster(f=1, seed=4)
        # Byzantine writer: complete echo phase, then install at just f+1=2
        # replicas — too few for any value to reach f+1 in every quorum ...
        from repro.baselines.messages import (
            PhxEchoRequest,
            PhxWriteRequest,
        )
        from repro.baselines.statements import (
            phx_echo_request_statement,
            phx_write_request_statement,
        )
        from repro.crypto.hashing import hash_value

        config = cluster.config
        config.registry.register("client:evil")
        ts = Timestamp(1, "client:evil")
        value = ("client:evil", 1, None)
        vh = hash_value(value)
        echo_sig = lambda rid: config.scheme.sign_statement(  # noqa: E731
            rid,
            __import__(
                "repro.baselines.statements", fromlist=["phx_echo_statement"]
            ).phx_echo_statement(ts, vh),
        )
        echo_sigs = tuple(
            echo_sig(rid) for rid in config.quorums.replica_ids[:4]
        )
        wsig = config.scheme.sign_statement(
            "client:evil", phx_write_request_statement(value, ts)
        )
        request = PhxWriteRequest(
            value=value, ts=ts, echo_sigs=echo_sigs, signature=wsig
        )
        # Install at replicas 0 and 1 only: a partial write.
        for rid in config.quorums.replica_ids[:2]:
            cluster.replicas[rid].handle("client:evil", request)
        # A reader whose quorum sees {new@2, old@2} has no f+1... with n=5,
        # quorum=4: counts are new:2, old:>=2 — old reaches f+1=2, so the
        # read returns the OLD value (not null) — unless the old copies also
        # fragment.  Force fragmentation by crashing an old replica.
        cluster.network.crash("replica:4")
        reader = cluster.add_client("r")
        reader.run_script(read_script(1))
        cluster.run(max_time=30)
        # quorum = {0,1,2,3}: new:2 (>= f+1) and old:2 (>= f+1): the higher
        # ts wins, so this configuration actually returns the new value.
        # Either way the read is well-defined; record what happened:
        assert reader.client.last_result in (value, NULL_READ, None)

    def test_null_read_under_fragmentation(self):
        """Three distinct partial writes fragment the quorum so no value
        reaches f+1 matching copies: the read returns NULL_READ."""
        cluster = build_phalanx_cluster(f=1, seed=5)
        config = cluster.config
        from repro.baselines.messages import PhxWriteRequest
        from repro.baselines.statements import (
            phx_echo_statement,
            phx_write_request_statement,
        )
        from repro.crypto.hashing import hash_value

        config.registry.register("client:evil")
        rids = config.quorums.replica_ids
        # Four different values at four different timestamps, one replica
        # each: every replica in the read quorum reports something different.
        for index in range(4):
            ts = Timestamp(index + 1, "client:evil")
            value = ("client:evil", index, None)
            vh = hash_value(value)
            echo_sigs = tuple(
                config.scheme.sign_statement(rid, phx_echo_statement(ts, vh))
                for rid in rids[:4]
            )
            wsig = config.scheme.sign_statement(
                "client:evil", phx_write_request_statement(value, ts)
            )
            request = PhxWriteRequest(
                value=value, ts=ts, echo_sigs=echo_sigs, signature=wsig
            )
            cluster.replicas[rids[index]].handle("client:evil", request)
        cluster.network.crash(rids[4])  # the only untouched replica
        reader = cluster.add_client("r")
        reader.run_script(read_script(1))
        cluster.run(max_time=30)
        assert reader.client.last_result == NULL_READ
        assert reader.client.null_reads == 1

    def test_bftbc_never_null_in_same_scenario(self):
        """Contrast: BFT-BC's certificate-carrying reads return a real value
        under the same kind of fragmentation (§8's liveness comparison)."""
        from repro import build_cluster
        from repro.byzantine import PartialWriteAttack

        cluster = build_cluster(f=1, seed=5)
        attack = PartialWriteAttack(cluster, "evil")
        attack.start()
        cluster.run(max_time=30)
        # Force the replica holding the partial write into the read quorum.
        cluster.network.crash("replica:3")
        reader = cluster.add_client("r")
        reader.run_script(read_script(1))
        cluster.run(max_time=30)
        assert reader.client.last_result != NULL_READ
        # The certificate carried in the reply lets a single fresh replica
        # convince the reader: the partial write is returned and repaired.
        assert reader.client.last_result == attack.value


class TestPhalanxAttacks:
    def test_timestamp_exhaustion_succeeds_against_phalanx(self):
        """Echo certificates do not enforce timestamp succession: the huge
        timestamp is echoed and written — the 'non-skipping timestamps' gap
        §8 attributes to this protocol family."""
        from repro.byzantine import PhalanxTimestampExhaustionAttack

        cluster = build_phalanx_cluster(f=1, seed=10)
        attack = PhalanxTimestampExhaustionAttack(cluster, "evil")
        attack.start()
        cluster.run(max_time=30)
        assert attack.succeeded
        assert any(r.ts.val >= attack.HUGE for r in cluster.replicas.values())

    def test_equivocation_blocked_by_echo_log(self):
        """What Phalanx does stop: two echo proofs for one timestamp."""
        from repro.byzantine import PhalanxEquivocationAttack

        cluster = build_phalanx_cluster(f=1, seed=11)
        attack = PhalanxEquivocationAttack(cluster, "evil")
        attack.start()
        cluster.run(max_time=30)
        assert attack.proofs_obtained <= 1
        refusals = sum(
            r.stats.echoes_refused for r in cluster.replicas.values()
        )
        assert refusals > 0  # the echo log actively refused the second value
