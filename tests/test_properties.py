"""Property-based tests over whole simulated executions.

Hypothesis drives randomised workloads, network conditions, and fault
placements; every run is checked against the paper's correctness conditions.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro import LinkProfile, build_cluster
from repro.byzantine import CrashedReplica, PromiscuousReplica, StaleReplica
from repro.sim import make_scripts
from repro.spec import check_register_linearizable

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@SLOW
@given(
    seed=st.integers(0, 10**6),
    n_clients=st.integers(1, 3),
    ops=st.integers(1, 5),
    write_fraction=st.floats(0.2, 0.9),
    variant=st.sampled_from(["base", "optimized"]),
)
def test_random_workloads_are_linearizable(seed, n_clients, ops, write_fraction, variant):
    cluster = build_cluster(f=1, variant=variant, seed=seed)
    names = [f"client:w{i}" for i in range(n_clients)]
    scripts = make_scripts(names, ops, write_fraction=write_fraction, seed=seed)
    cluster.run_scripts(
        {name.split(":")[1]: s for name, s in scripts.items()}, max_time=300
    )
    report = check_register_linearizable(cluster.history)
    assert report.ok, report.violation


@SLOW
@given(
    seed=st.integers(0, 10**6),
    drop=st.floats(0.0, 0.25),
    dup=st.floats(0.0, 0.2),
)
def test_linearizable_under_arbitrary_loss_and_duplication(seed, drop, dup):
    profile = LinkProfile(drop_rate=drop, duplicate_rate=dup, max_delay=0.02)
    cluster = build_cluster(f=1, seed=seed, profile=profile)
    scripts = make_scripts(["client:a", "client:b"], 4, seed=seed)
    cluster.run_scripts(
        {name.split(":")[1]: s for name, s in scripts.items()}, max_time=300
    )
    report = check_register_linearizable(cluster.history)
    assert report.ok, report.violation


@SLOW
@given(
    seed=st.integers(0, 10**6),
    faulty_index=st.integers(0, 3),
    behaviour=st.sampled_from([CrashedReplica, StaleReplica, PromiscuousReplica]),
)
def test_linearizable_with_any_single_byzantine_replica(seed, faulty_index, behaviour):
    cluster = build_cluster(
        f=1, seed=seed, replica_overrides={faulty_index: behaviour}
    )
    scripts = make_scripts(["client:a", "client:b"], 4, seed=seed)
    cluster.run_scripts(
        {name.split(":")[1]: s for name, s in scripts.items()}, max_time=300
    )
    report = check_register_linearizable(cluster.history)
    assert report.ok, report.violation


@SLOW
@given(seed=st.integers(0, 10**6), ops=st.integers(1, 6))
def test_write_timestamps_are_dense(seed, ops):
    """A lone writer's timestamps are exactly 1..N: bad clients can't burn
    the space, and good clients never skip (no gaps, no reuse)."""
    cluster = build_cluster(f=1, seed=seed)
    node = cluster.add_client("w")
    from repro.sim import write_script

    node.run_script(write_script("client:w", ops))
    cluster.run(max_time=300)
    cluster.settle()
    values = sorted(r.pcert.ts.val for r in cluster.replicas.values())
    assert max(values) == ops


@SLOW
@given(seed=st.integers(0, 10**6))
def test_replica_states_converge_after_settling(seed):
    """Once traffic drains on a loss-free network, all replicas agree."""
    cluster = build_cluster(f=1, seed=seed)
    scripts = make_scripts(["client:a", "client:b"], 4, write_fraction=1.0, seed=seed)
    cluster.run_scripts(
        {name.split(":")[1]: s for name, s in scripts.items()}, max_time=300
    )
    cluster.settle(2.0)
    timestamps = {r.pcert.ts for r in cluster.replicas.values()}
    values = {repr(r.data) for r in cluster.replicas.values()}
    assert len(timestamps) == 1
    assert len(values) == 1


@SLOW
@given(seed=st.integers(0, 10**6), ops=st.integers(2, 6))
def test_optimized_and_base_agree_on_final_state(seed, ops):
    """The §6 optimization changes latency, not semantics: the same lone-
    writer workload ends in the same final value under both variants."""
    finals = []
    for variant in ("base", "optimized"):
        cluster = build_cluster(f=1, variant=variant, seed=seed)
        node = cluster.add_client("w")
        from repro.sim import write_script

        node.run_script(write_script("client:w", ops))
        cluster.run(max_time=300)
        cluster.settle()
        replica = cluster.replicas["replica:0"]
        finals.append(replica.data)
    assert finals[0] == finals[1]


@SLOW
@given(
    seed=st.integers(0, 10**6),
    variant=st.sampled_from(["base", "optimized"]),
    n_clients=st.integers(1, 3),
)
def test_lemma1_invariants_hold_on_random_executions(seed, variant, n_clients):
    """§5's Lemma 1, checked as an executable invariant after every random
    workload: the signature-counting facts the safety proof rests on."""
    from repro.spec import check_lemma1

    cluster = build_cluster(f=1, variant=variant, seed=seed)
    names = [f"client:w{i}" for i in range(n_clients)]
    scripts = make_scripts(names, 4, write_fraction=0.7, seed=seed)
    cluster.run_scripts(
        {name.split(":")[1]: s for name, s in scripts.items()}, max_time=300
    )
    cluster.settle()
    bound = 1 if variant == "base" else 2
    report = check_lemma1(
        cluster.replicas.values(),
        f=cluster.config.f,
        max_prepared_per_client=bound,
    )
    assert report.ok, report.violations
