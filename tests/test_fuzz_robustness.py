"""Fuzzing the input-handling surface: hostile bytes and hostile messages.

A Byzantine node can put *anything* on the wire.  Nothing in the decode →
validate → handle pipeline may ever raise an unhandled exception; hostile
input must be rejected (parse error or silent discard), never crash a
replica or client.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import BftBcClient, make_system
from repro.core.messages import message_from_wire
from repro.core.replica import BftBcReplica, OptimizedBftBcReplica
from repro.encoding import canonical_decode, canonical_encode
from repro.errors import EncodingError, ProtocolError

wire_values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(-2**33, 2**33)
    | st.text(max_size=20)
    | st.binary(max_size=40),
    lambda children: st.lists(children, max_size=4).map(tuple)
    | st.dictionaries(st.text(max_size=10), children, max_size=4),
    max_leaves=15,
)

#: Wire dicts that *look* like protocol messages but have arbitrary bodies.
hostile_messages = st.fixed_dictionaries(
    {
        "kind": st.sampled_from(
            [
                "READ-TS", "READ-TS-REPLY", "PREPARE", "PREPARE-REPLY",
                "WRITE", "WRITE-REPLY", "READ", "READ-REPLY",
                "READ-TS-PREP", "READ-TS-PREP-REPLY", "OBJ", "NOPE",
            ]
        )
    },
    optional={
        "nonce": wire_values,
        "cert": wire_values,
        "prev": wire_values,
        "ts": wire_values,
        "hash": wire_values,
        "wcert": wire_values,
        "jcert": wire_values,
        "sig": wire_values,
        "vouch": wire_values,
        "value": wire_values,
        "pts": wire_values,
        "psig": wire_values,
        "echoes": wire_values,
        "obj": wire_values,
        "payload": wire_values,
    },
)


@settings(max_examples=200, deadline=None)
@given(hostile_messages)
def test_message_parser_never_crashes(wire):
    """Arbitrary wire dicts either parse or raise ProtocolError."""
    try:
        message_from_wire(wire)
    except ProtocolError:
        pass


@settings(max_examples=200, deadline=None)
@given(hostile_messages)
def test_replica_survives_hostile_parsed_messages(wire):
    """If a hostile dict *does* parse, the replica must handle (and almost
    certainly discard) it without raising."""
    config = make_system(f=1, seed=b"fuzz-replica")
    replica = BftBcReplica("replica:0", config)
    try:
        message = message_from_wire(wire)
    except ProtocolError:
        return
    replica.handle("client:mallory", message)  # must not raise


@settings(max_examples=100, deadline=None)
@given(hostile_messages)
def test_optimized_replica_survives_hostile_messages(wire):
    config = make_system(f=1, seed=b"fuzz-opt")
    replica = OptimizedBftBcReplica("replica:0", config)
    try:
        message = message_from_wire(wire)
    except ProtocolError:
        return
    replica.handle("client:mallory", message)


@settings(max_examples=100, deadline=None)
@given(hostile_messages)
def test_client_survives_hostile_replies(wire):
    """A client with an op in flight must survive any reply a Byzantine
    replica can encode."""
    config = make_system(f=1, seed=b"fuzz-client")
    client = BftBcClient("client:a", config)
    client.begin_write(("v", 1))
    try:
        message = message_from_wire(wire)
    except ProtocolError:
        return
    client.deliver("replica:0", message)  # must not raise
    assert client.busy  # and certainly must not have "completed" the op


@settings(max_examples=200, deadline=None)
@given(st.binary(max_size=120))
def test_full_pipeline_on_raw_bytes(data):
    """decode → parse → handle on arbitrary bytes never crashes."""
    config = make_system(f=1, seed=b"fuzz-bytes")
    replica = BftBcReplica("replica:0", config)
    try:
        wire = canonical_decode(data)
        message = message_from_wire(wire)
    except (EncodingError, ProtocolError):
        return
    replica.handle("client:mallory", message)


@settings(max_examples=100, deadline=None)
@given(hostile_messages)
def test_hostile_messages_survive_reencoding(wire):
    """Anything that parses must re-encode canonically (no codec asymmetry
    a Byzantine node could exploit to make replicas disagree)."""
    from repro.core.messages import message_to_wire

    try:
        message = message_from_wire(wire)
    except ProtocolError:
        return
    round_tripped = message_from_wire(
        canonical_decode(canonical_encode(message_to_wire(message)))
    )
    assert round_tripped == message
