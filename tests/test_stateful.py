"""Hypothesis stateful testing: random interleavings of operations and
faults against one long-lived cluster, with full correctness checking.

The state machine performs writes and reads from a pool of clients while
crashing and recovering up to f replicas between operations.  After every
run the recorded history must be linearizable and the Lemma 1 invariants
must hold.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro import build_cluster
from repro.spec import check_lemma1, check_register_linearizable

CLIENT_POOL = ["w0", "w1", "w2"]


class BftBcStateMachine(RuleBasedStateMachine):
    def __init__(self) -> None:
        super().__init__()
        self.cluster = None
        self.nodes = {}
        self.sequence = 0
        self.crashed: set[str] = set()
        self.variant = "base"

    @initialize(
        seed=st.integers(0, 10**6), variant=st.sampled_from(["base", "optimized"])
    )
    def setup(self, seed, variant):
        self.variant = variant
        self.cluster = build_cluster(f=1, variant=variant, seed=seed)
        for name in CLIENT_POOL:
            self.nodes[name] = self.cluster.add_client(name)

    def _run_step(self, name, step):
        node = self.nodes[name]
        node.run_script([step])
        self.cluster.run(max_time=120)

    @rule(name=st.sampled_from(CLIENT_POOL))
    def write(self, name):
        self.sequence += 1
        self._run_step(name, ("write", (f"client:{name}", self.sequence, None)))

    @rule(name=st.sampled_from(CLIENT_POOL))
    def read(self, name):
        self._run_step(name, ("read", None))

    @rule(index=st.integers(0, 3))
    def crash_replica(self, index):
        rid = f"replica:{index}"
        # Stay within the fault budget: at most f = 1 crashed at a time.
        if self.crashed or rid in self.crashed:
            return
        self.cluster.network.crash(rid)
        self.crashed.add(rid)

    @rule()
    @precondition(lambda self: self.crashed)
    def recover_replica(self):
        rid = self.crashed.pop()
        self.cluster.network.recover(rid)

    @rule()
    def settle(self):
        self.cluster.settle(0.2)

    @invariant()
    def history_is_linearizable(self):
        if self.cluster is None:
            return
        report = check_register_linearizable(self.cluster.history)
        assert report.ok, report.violation

    @invariant()
    def lemma1_holds(self):
        if self.cluster is None:
            return
        bound = 1 if self.variant == "base" else 2
        report = check_lemma1(
            self.cluster.replicas.values(),
            f=1,
            max_prepared_per_client=bound,
        )
        assert report.ok, report.violations


TestBftBcStateful = BftBcStateMachine.TestCase
TestBftBcStateful.settings = settings(
    max_examples=15, stateful_step_count=12, deadline=None
)
