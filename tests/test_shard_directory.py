"""Unit tests for quorum-signed shard configurations and the directory."""

from __future__ import annotations

import pytest

from repro.core import make_system
from repro.errors import ProtocolError
from repro.shard import DirectoryEntry, ShardConfig, ShardDirectory

MEMBERS = tuple(f"replica:g{i}" for i in range(4))
SHARD = "shard:0"


@pytest.fixture
def template():
    config = make_system(f=1, seed=b"shard-dir-test")
    for node in MEMBERS + ("replica:gX", "replica:gY", "replica:gZ"):
        config.registry.register(node)
    return config


@pytest.fixture
def genesis():
    return ShardConfig(shard=SHARD, epoch=0, members=MEMBERS, f=1)


def successor(previous, *, replace=None, epoch=None, f=None):
    """The next-epoch config, optionally swapping one member."""
    members = previous.members
    if replace is not None:
        old, new = replace
        members = tuple(new if m == old else m for m in members)
    return ShardConfig(
        shard=previous.shard,
        epoch=previous.epoch + 1 if epoch is None else epoch,
        members=members,
        f=previous.f if f is None else f,
    )


def sign_entry(template, config, signers):
    return DirectoryEntry(
        config=config,
        signatures=tuple(
            template.scheme.sign(s, config.statement_bytes()) for s in signers
        ),
    )


class TestShardConfig:
    def test_membership_must_match_f(self):
        with pytest.raises(ProtocolError):
            ShardConfig(shard=SHARD, epoch=0, members=MEMBERS[:3], f=1)

    def test_rejects_duplicate_members(self):
        with pytest.raises(ProtocolError):
            ShardConfig(
                shard=SHARD, epoch=0, members=(MEMBERS[0],) * 4, f=1
            )

    def test_rejects_negative_epoch(self):
        with pytest.raises(ProtocolError):
            ShardConfig(shard=SHARD, epoch=-1, members=MEMBERS, f=1)

    def test_wire_round_trip(self, genesis):
        assert ShardConfig.from_wire(genesis.to_wire()) == genesis

    def test_from_wire_rejects_garbage(self):
        for wire in (None, 42, {}, {"shard": SHARD}, {"shard": 1, "epoch": 0,
                     "members": MEMBERS, "f": 1}):
            with pytest.raises(ProtocolError):
                ShardConfig.from_wire(wire)

    def test_quorums_carry_extra_signers(self, genesis):
        quorums = genesis.quorums(extra_signers=["replica:old", MEMBERS[0]])
        # Current members never count as "extra": no double-listing.
        assert quorums.extra_signers == frozenset({"replica:old"})
        assert quorums.members == MEMBERS


class TestDirectoryEntry:
    def test_valid_entry_accepted(self, template, genesis):
        cfg = successor(genesis, replace=(MEMBERS[3], "replica:gX"))
        entry = sign_entry(template, cfg, MEMBERS[:3])
        entry.validate(template.scheme, genesis)  # does not raise
        assert entry.is_valid(template.scheme, genesis)

    def test_needs_quorum_of_previous_members(self, template, genesis):
        cfg = successor(genesis, replace=(MEMBERS[3], "replica:gX"))
        entry = sign_entry(template, cfg, MEMBERS[:2])  # 2 < 2f+1
        assert not entry.is_valid(template.scheme, genesis)

    def test_rejects_non_member_signers(self, template, genesis):
        cfg = successor(genesis, replace=(MEMBERS[3], "replica:gX"))
        entry = sign_entry(
            template, cfg, (MEMBERS[0], MEMBERS[1], "replica:gY")
        )
        assert not entry.is_valid(template.scheme, genesis)

    def test_rejects_duplicate_signers(self, template, genesis):
        cfg = successor(genesis, replace=(MEMBERS[3], "replica:gX"))
        entry = sign_entry(
            template, cfg, (MEMBERS[0], MEMBERS[0], MEMBERS[1])
        )
        assert not entry.is_valid(template.scheme, genesis)

    def test_rejects_bad_signature(self, template, genesis):
        cfg = successor(genesis, replace=(MEMBERS[3], "replica:gX"))
        other = successor(genesis)  # signatures over a different statement
        entry = DirectoryEntry(
            config=cfg,
            signatures=tuple(
                template.scheme.sign(s, other.statement_bytes())
                for s in MEMBERS[:3]
            ),
        )
        assert not entry.is_valid(template.scheme, genesis)

    def test_rejects_epoch_gap(self, template, genesis):
        cfg = successor(genesis, epoch=2)
        entry = sign_entry(template, cfg, MEMBERS[:3])
        assert not entry.is_valid(template.scheme, genesis)

    def test_rejects_wrong_shard(self, template, genesis):
        cfg = ShardConfig(shard="shard:9", epoch=1, members=MEMBERS, f=1)
        entry = sign_entry(template, cfg, MEMBERS[:3])
        assert not entry.is_valid(template.scheme, genesis)

    def test_rejects_f_change(self, template, genesis):
        cfg = ShardConfig(
            shard=SHARD,
            epoch=1,
            members=MEMBERS + ("replica:gX", "replica:gY", "replica:gZ"),
            f=2,
        )
        entry = sign_entry(template, cfg, MEMBERS[:3])
        assert not entry.is_valid(template.scheme, genesis)

    def test_rejects_excessive_churn(self, template, genesis):
        """More than f members replaced at once would let old and new
        quorums miss each other — the churn bound forbids it."""
        cfg = ShardConfig(
            shard=SHARD,
            epoch=1,
            members=(MEMBERS[0], MEMBERS[1], "replica:gX", "replica:gY"),
            f=1,
        )
        entry = sign_entry(template, cfg, MEMBERS[:3])
        assert not entry.is_valid(template.scheme, genesis)

    def test_wire_round_trip(self, template, genesis):
        cfg = successor(genesis, replace=(MEMBERS[3], "replica:gX"))
        entry = sign_entry(template, cfg, MEMBERS[:3])
        again = DirectoryEntry.from_wire(entry.to_wire())
        assert again == entry
        assert again.is_valid(template.scheme, genesis)

    def test_from_wire_rejects_garbage_signatures(self, template, genesis):
        """Regression: a malformed signature wire must surface as
        ProtocolError (what directory-reply handlers catch), not leak the
        crypto layer's own exception."""
        cfg = successor(genesis, replace=(MEMBERS[3], "replica:gX"))
        entry = sign_entry(template, cfg, MEMBERS[:3])
        wire = entry.to_wire()
        wire["signatures"] = ({"greetings": 1},)
        with pytest.raises(ProtocolError):
            DirectoryEntry.from_wire(wire)


class TestShardDirectory:
    def test_genesis_must_be_epoch_zero(self, template, genesis):
        later = successor(genesis)
        with pytest.raises(ProtocolError):
            ShardDirectory({SHARD: later}, template.scheme)

    def test_genesis_shard_key_must_match(self, template, genesis):
        with pytest.raises(ProtocolError):
            ShardDirectory({"shard:9": genesis}, template.scheme)

    def test_install_advances_and_is_idempotent(self, template, genesis):
        directory = ShardDirectory({SHARD: genesis}, template.scheme)
        cfg = successor(genesis, replace=(MEMBERS[3], "replica:gX"))
        entry = sign_entry(template, cfg, MEMBERS[:3])
        assert directory.install(SHARD, entry) is True
        assert directory.epoch(SHARD) == 1
        assert directory.config(SHARD) == cfg
        assert directory.install(SHARD, entry) is False  # already known

    def test_install_rejects_invalid_link(self, template, genesis):
        directory = ShardDirectory({SHARD: genesis}, template.scheme)
        cfg = successor(genesis, replace=(MEMBERS[3], "replica:gX"))
        entry = sign_entry(template, cfg, MEMBERS[:2])
        with pytest.raises(ProtocolError):
            directory.install(SHARD, entry)
        assert directory.epoch(SHARD) == 0

    def test_install_unknown_shard(self, template, genesis):
        directory = ShardDirectory({SHARD: genesis}, template.scheme)
        cfg = successor(genesis)
        with pytest.raises(ProtocolError):
            directory.install("shard:9", sign_entry(template, cfg, MEMBERS[:3]))

    def test_chain_and_historical_signers(self, template, genesis):
        directory = ShardDirectory({SHARD: genesis}, template.scheme)
        cfg1 = successor(genesis, replace=(MEMBERS[3], "replica:gX"))
        directory.install(SHARD, sign_entry(template, cfg1, MEMBERS[:3]))
        cfg2 = successor(cfg1, replace=(MEMBERS[0], "replica:gY"))
        directory.install(
            SHARD,
            sign_entry(
                template, cfg2, (MEMBERS[0], MEMBERS[1], "replica:gX")
            ),
        )
        assert [e.config.epoch for e in directory.chain(SHARD)] == [1, 2]
        # Every past member stays a historical signer...
        assert directory.historical_signers(SHARD) >= set(MEMBERS) | {
            "replica:gX",
            "replica:gY",
        }
        # ...and the active quorum system routes only to current members
        # while still accepting the departed ones' old signatures.
        quorums = directory.quorums(SHARD)
        assert set(quorums.members) == set(cfg2.members)
        assert quorums.extra_signers == {MEMBERS[0], MEMBERS[3]}

    def test_install_chain_adopts_prefix(self, template, genesis):
        source = ShardDirectory({SHARD: genesis}, template.scheme)
        cfg1 = successor(genesis, replace=(MEMBERS[3], "replica:gX"))
        source.install(SHARD, sign_entry(template, cfg1, MEMBERS[:3]))
        cfg2 = successor(cfg1, replace=(MEMBERS[0], "replica:gY"))
        source.install(
            SHARD,
            sign_entry(
                template, cfg2, (MEMBERS[0], MEMBERS[1], "replica:gX")
            ),
        )
        fresh = ShardDirectory({SHARD: genesis}, template.scheme)
        assert fresh.install_chain(SHARD, source.chain(SHARD)) == 2
        assert fresh.epoch(SHARD) == 2
