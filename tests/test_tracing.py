"""Tests for the message-tracing facility."""

from __future__ import annotations

from repro import LinkProfile, build_cluster
from repro.sim import MessageTrace, write_script, read_script


class TestMessageTrace:
    def test_records_protocol_flow(self):
        cluster = build_cluster(f=1, seed=400)
        trace = MessageTrace.attach(cluster)
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 1))
        cluster.run(max_time=60)
        kinds = trace.kinds()
        # One 3-phase write: 4 requests per phase + 4 replies per phase.
        assert kinds["READ-TS"] == 4
        assert kinds["PREPARE"] == 4
        assert kinds["WRITE"] == 4
        assert kinds["READ-TS-REPLY"] == 4
        assert kinds["PREPARE-REPLY"] == 4
        assert kinds["WRITE-REPLY"] == 4

    def test_event_ordering_and_times(self):
        cluster = build_cluster(f=1, seed=401)
        trace = MessageTrace.attach(cluster)
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 1))
        cluster.run(max_time=60)
        times = [e.time for e in trace.events]
        assert times == sorted(times)
        # The first event is the client's phase-1 send; delivery follows it.
        assert trace.events[0].event == "sent"
        assert trace.events[0].kind == "READ-TS"

    def test_filtering(self):
        cluster = build_cluster(f=1, seed=402)
        trace = MessageTrace.attach(cluster)
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 1) + read_script(1))
        cluster.run(max_time=60)
        only_r0 = trace.filter(node="replica:0")
        assert only_r0
        assert all("replica:0" in (e.src, e.dst) for e in only_r0)
        only_writes = trace.filter(kind="WRITE", event="delivered")
        assert len(only_writes) == 4

    def test_drop_accounting(self):
        cluster = build_cluster(
            f=1, seed=403, profile=LinkProfile(drop_rate=0.3, max_delay=0.01)
        )
        trace = MessageTrace.attach(cluster)
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 3))
        cluster.run(max_time=120)
        assert 0.05 < trace.drop_rate() < 0.6
        assert trace.filter(event="dropped")

    def test_render_and_summary(self):
        cluster = build_cluster(f=1, seed=404)
        trace = MessageTrace.attach(cluster)
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 1))
        cluster.run(max_time=60)
        text = trace.render(limit=10)
        assert "READ-TS" in text
        assert "more events" in text
        summary = trace.summary()
        assert "sent by kind" in summary and "drop rate" in summary

    def test_detach_and_clear(self):
        cluster = build_cluster(f=1, seed=405)
        trace = MessageTrace.attach(cluster)
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 1))
        cluster.run(max_time=60)
        assert trace.events
        trace.clear()
        assert not trace.events
        trace.detach()
        node.run_script(write_script("client:w", 99, ))
        cluster.run(max_time=60)
        assert not trace.events  # no longer recording
