"""Unit tests for the optimized write operation (§6)."""

from __future__ import annotations

import pytest

from repro.core import OptimizedBftBcClient, Timestamp, make_system
from repro.core.replica import OptimizedBftBcReplica

from tests.helpers import DirectDriver, ProtocolKit, make_replicas


@pytest.fixture
def config():
    return make_system(f=1, seed=b"opt-ops-test")


@pytest.fixture
def replicas(config):
    return make_replicas(config, cls=OptimizedBftBcReplica)


@pytest.fixture
def driver(config, replicas):
    client = OptimizedBftBcClient("client:alice", config)
    return DirectDriver(client, replicas)


class TestFastPath:
    def test_uncontended_write_takes_two_phases(self, driver):
        op = driver.run_write(("v", 1))
        assert op.done
        assert op.phases == 2
        assert op.fast_path
        assert op.result == Timestamp(1, "client:alice")

    def test_sequential_writes_stay_fast(self, driver):
        for seq in range(1, 5):
            op = driver.run_write(("v", seq))
            assert op.fast_path, f"write {seq} fell off the fast path"
            assert op.result == Timestamp(seq, "client:alice")

    def test_replica_state_consistent_after_fast_write(self, driver, replicas):
        driver.run_write(("v", 1))
        for replica in replicas:
            assert replica.data == ("v", 1)
            assert replica.pcert.ts == Timestamp(1, "client:alice")

    def test_fast_path_with_one_crashed_replica(self, driver, replicas):
        driver.drop(replicas[3].node_id)
        op = driver.run_write(("v", 1))
        assert op.done and op.fast_path


class TestFallback:
    def test_divergent_predictions_fall_back(self, driver, replicas, config):
        """When replicas predict different timestamps, the client must fall
        back to an explicit phase 2 (the §6.1 worked example)."""
        # Desynchronise: another client's write reaches replicas 2,3 only.
        kit = ProtocolKit(config, client="client:bob")
        p_max = kit.read_ts(replicas)
        request = kit.prepare_request(p_max, p_max.ts.succ(kit.client), ("w", 1))
        cert = kit.collect_prepare(replicas, request)
        for replica in replicas[2:]:
            replica.handle(kit.client, kit.write_request(("w", 1), cert))
        assert replicas[0].pcert.ts != replicas[2].pcert.ts
        # Now alice writes: predictions split 2/2, no quorum on one ts.
        op = driver.run_write(("v", 1))
        if not op.done:
            driver.tick()  # the fallback decision fires on the tick
        assert op.done
        assert not op.fast_path
        assert op.phases == 3

    def test_fallback_result_is_still_correct(self, driver, replicas, config):
        kit = ProtocolKit(config, client="client:bob")
        p_max = kit.read_ts(replicas)
        request = kit.prepare_request(p_max, p_max.ts.succ(kit.client), ("w", 1))
        cert = kit.collect_prepare(replicas, request)
        for replica in replicas[2:]:
            replica.handle(kit.client, kit.write_request(("w", 1), cert))
        op = driver.run_write(("v", 1))
        if not op.done:
            driver.tick()
        assert op.done
        # The new write's timestamp dominates bob's.
        assert op.result > Timestamp(1, "client:bob")
        fresh = [r for r in replicas if r.data == ("v", 1)]
        assert len(fresh) >= config.quorum_size

    def test_phase1_sigs_seed_phase2(self, driver, replicas, config):
        """Signatures collected in phase 1 count toward the phase-2 quorum
        when the fallback chooses the same timestamp."""
        # One replica lags (its prediction will differ); others agree.
        kit = ProtocolKit(config, client="client:bob")
        p_max = kit.read_ts(replicas)
        request = kit.prepare_request(p_max, p_max.ts.succ(kit.client), ("w", 1))
        cert = kit.collect_prepare(replicas, request)
        replicas[0].handle(kit.client, kit.write_request(("w", 1), cert))
        # replica 0 predicts succ((1, bob)) = (2, alice); replicas 1-3
        # predict succ(genesis) = (1, alice): 3 >= quorum agree -> fast path
        # actually still wins here.
        op = driver.run_write(("v", 1))
        if not op.done:
            driver.tick()
        assert op.done


class TestFallbackRetransmissionRules:
    """Regression pins for the §6 fast-path abandon rule.

    Two triggers: immediately once no timestamp can still reach a quorum
    (counting silent replicas as potential agreers), and on the first
    retransmission tick after a quorum of replies when the fast path has not
    converged.  These pin the behavior across the phase-engine refactor.
    """

    def _desync(self, replicas, config):
        """Install bob's write at replicas[2:] so predictions split."""
        kit = ProtocolKit(config, client="client:bob")
        p_max = kit.read_ts(replicas)
        request = kit.prepare_request(p_max, p_max.ts.succ(kit.client), ("w", 1))
        cert = kit.collect_prepare(replicas, request)
        for replica in replicas[2:]:
            replica.handle(kit.client, kit.write_request(("w", 1), cert))

    def test_hopeless_split_falls_back_without_a_tick(
        self, driver, replicas, config
    ):
        """2/2 prediction split with all replicas heard: top + silent < |Q|,
        so the fast path is abandoned immediately — no retransmit needed."""
        self._desync(replicas, config)
        op = driver.run_write(("v", 1))
        # The fallback decision itself must have fired during delivery.
        assert op._phase != 1
        assert not op.fast_path
        if not op.done:
            driver.tick()  # only message redelivery, not the decision
        assert op.done
        assert op.phases == 3

    def test_quorum_but_unconverged_falls_back_on_first_tick(
        self, driver, replicas, config
    ):
        """With a 2/1 split and one silent replica, a straggler could still
        tip the majority timestamp to a quorum — the client waits, and
        abandons the fast path only on the first retransmission tick."""
        self._desync(replicas, config)
        driver.drop(replicas[3].node_id)
        op = driver.run_write(("v", 1))
        # Quorum of replies (3), but predictions split 2/1: still phase 1.
        assert not op.done
        assert op._phase == 1
        assert op._collector is not None and op._collector.have_quorum
        driver.tick()
        assert op.done
        assert not op.fast_path
        assert op.phases == 3

    def test_tick_before_quorum_retransmits_instead_of_abandoning(
        self, driver, replicas
    ):
        """Below a quorum of replies a tick must retransmit to the silent
        replicas, never trigger the fallback."""
        driver.drop(replicas[2].node_id, replicas[3].node_id)
        op = driver.run_write(("v", 1))
        assert not op.done
        assert op._phase == 1 and op.phases == 1
        driver.tick()
        assert op._phase == 1 and op.phases == 1  # still collecting phase 1
        missing = set(op._collector.missing())
        assert missing == {replicas[2].node_id, replicas[3].node_id}
        # Once the silent replicas are reachable again, the retransmission
        # completes the fast path (all predictions agree).
        driver.restore(replicas[2].node_id, replicas[3].node_id)
        driver.tick()
        assert op.done and op.fast_path

    def test_duplicate_reply_is_a_single_vote(self, driver, replicas):
        """A duplicated (retransmitted) reply never counts twice."""
        sends = driver.client.begin_write(("v", 1))
        op = driver.client.op
        first = next(s for s in sends if s.dest == replicas[0].node_id)
        reply = replicas[0].handle(driver.client.node_id, first.message)
        assert reply is not None
        driver.client.deliver(replicas[0].node_id, reply)
        driver.client.deliver(replicas[0].node_id, reply)
        assert op._collector.count == 1


class TestOptimizedReads:
    def test_read_after_fast_write(self, driver):
        driver.run_write(("v", 1))
        op = driver.run_read()
        assert op.result == ("v", 1)

    def test_equal_ts_tie_broken_by_hash(self, driver, replicas, config):
        """§6.3: readers may see equal timestamps with different values and
        must return (and write back) the larger-hash one."""
        from repro.core.certificates import PrepareCertificate
        from repro.crypto.hashing import hash_value
        from repro.core.messages import PrepareReply
        from repro.core.certificates import genesis_prepare_certificate
        from repro.core.timestamp import ZERO_TS

        kit = ProtocolKit(config, client="client:evil")
        ts = ZERO_TS.succ(kit.client)
        genesis = genesis_prepare_certificate()
        certs = {}
        for tag in ("A", "B"):
            # Obtain a certificate per value: A via optlist, B via plist.
            if tag == "A":
                from repro.core.messages import ReadTsPrepRequest
                from repro.core.statements import read_ts_prep_request_statement

                value = ("v", tag)
                vh = hash_value(value)
                sigs = []
                for replica in replicas:
                    nonce = kit.nonce()
                    statement = read_ts_prep_request_statement(vh, None, nonce)
                    req = ReadTsPrepRequest(
                        value_hash=vh,
                        write_cert=None,
                        nonce=nonce,
                        signature=config.scheme.sign_statement(kit.client, statement),
                    )
                    reply = replica.handle(kit.client, req)
                    if reply is not None and reply.prep_sig is not None:
                        sigs.append(reply.prep_sig)
                certs[tag] = PrepareCertificate(
                    ts=ts, value_hash=vh, signatures=tuple(sigs[:3])
                )
            else:
                value = ("v", tag)
                req = kit.prepare_request(genesis, ts, value)
                sigs = []
                for replica in replicas:
                    reply = replica.handle(kit.client, req)
                    if isinstance(reply, PrepareReply):
                        sigs.append(reply.signature)
                certs[tag] = PrepareCertificate(
                    ts=ts, value_hash=hash_value(value), signatures=tuple(sigs[:3])
                )
        # Install A at replicas 0,1 and B at replicas 2,3.
        for replica in replicas[:2]:
            replica.handle(kit.client, kit.write_request(("v", "A"), certs["A"]))
        for replica in replicas[2:]:
            replica.handle(kit.client, kit.write_request(("v", "B"), certs["B"]))
        op = driver.run_read()
        assert op.done
        winner = max([("v", "A"), ("v", "B")], key=hash_value)
        assert op.result == winner
        # After the write-back a quorum holds the winner.
        holding = [r for r in replicas if r.data == winner]
        assert len(holding) >= config.quorum_size
