"""Tests for the Definition 1 checker and the §7.1 plus-form."""

from __future__ import annotations

from repro.spec import (
    History,
    Invocation,
    Response,
    StopEvent,
    check_bft_linearizable,
    check_bft_linearizable_plus,
    count_lurking_writes,
)


def inv(client, op, arg=None, t=0.0):
    return Invocation(client=client, obj="x", op=op, arg=arg, time=t)


def rsp(client, value=None, t=0.0):
    return Response(client=client, obj="x", value=value, time=t)


def build(*events):
    h = History()
    h.events = list(events)
    return h


BAD = "client:evil"


def bad_value(seq):
    return (BAD, seq, None)


class TestLurkingWriteCounting:
    def test_no_stop_no_lurking(self):
        h = build(
            inv("g", "read", t=0), rsp("g", bad_value(1), t=1),
        )
        assert count_lurking_writes(h, BAD) == 0

    def test_value_seen_before_stop_not_lurking(self):
        h = build(
            inv("g", "read", t=0), rsp("g", bad_value(1), t=1),
            StopEvent(client=BAD, time=2),
            inv("g", "read", t=3), rsp("g", bad_value(1), t=4),
        )
        assert count_lurking_writes(h, BAD) == 0

    def test_value_first_seen_after_stop_is_lurking(self):
        h = build(
            StopEvent(client=BAD, time=0),
            inv("g", "read", t=1), rsp("g", bad_value(1), t=2),
        )
        assert count_lurking_writes(h, BAD) == 1

    def test_distinct_values_counted_once_each(self):
        h = build(
            StopEvent(client=BAD, time=0),
            inv("g", "read", t=1), rsp("g", bad_value(1), t=2),
            inv("g", "read", t=3), rsp("g", bad_value(2), t=4),
            inv("g", "read", t=5), rsp("g", bad_value(1), t=6),
        )
        assert count_lurking_writes(h, BAD) == 2

    def test_other_clients_values_ignored(self):
        h = build(
            StopEvent(client=BAD, time=0),
            inv("g", "read", t=1), rsp("g", ("client:good", 1, None), t=2),
        )
        assert count_lurking_writes(h, BAD) == 0


class TestDefinitionOne:
    def test_clean_history_passes(self):
        h = build(
            inv("g", "write", ("g", 1, None), t=0), rsp("g", t=1),
            inv("g", "read", t=2), rsp("g", ("g", 1, None), t=3),
        )
        result = check_bft_linearizable(h, max_b=1)
        assert result.ok

    def test_byzantine_value_explained_by_inserted_write(self):
        """Theorem 1's construction: a read of a Byzantine value is legal if
        a write by the bad client can be inserted before it."""
        h = build(
            inv("g", "read", t=0), rsp("g", bad_value(1), t=1),
        )
        assert check_bft_linearizable(h, max_b=1, bad_clients={BAD}).ok

    def test_one_lurking_write_within_bound(self):
        h = build(
            StopEvent(client=BAD, time=0),
            inv("g", "read", t=1), rsp("g", bad_value(1), t=2),
        )
        result = check_bft_linearizable(h, max_b=1, bad_clients={BAD})
        assert result.ok
        assert result.lurking_writes[BAD] == 1

    def test_two_lurking_writes_violate_base_bound(self):
        h = build(
            StopEvent(client=BAD, time=0),
            inv("g", "read", t=1), rsp("g", bad_value(1), t=2),
            inv("g", "read", t=3), rsp("g", bad_value(2), t=4),
        )
        result = check_bft_linearizable(h, max_b=1, bad_clients={BAD})
        assert not result.ok
        assert "lurking" in result.violation

    def test_two_lurking_writes_meet_optimized_bound(self):
        h = build(
            StopEvent(client=BAD, time=0),
            inv("g", "read", t=1), rsp("g", bad_value(1), t=2),
            inv("g", "read", t=3), rsp("g", bad_value(2), t=4),
        )
        assert check_bft_linearizable(h, max_b=2, bad_clients={BAD}).ok

    def test_atomicity_violation_detected_despite_byzantine_writes(self):
        """Byzantine writes don't excuse a new-old inversion between good
        readers (write-once semantics example from §1)."""
        h = build(
            inv("r1", "read", t=0), rsp("r1", bad_value(2), t=1),
            inv("r1", "read", t=2), rsp("r1", bad_value(1), t=3),
            inv("r1", "read", t=4), rsp("r1", bad_value(2), t=5),
        )
        result = check_bft_linearizable(h, max_b=10, bad_clients={BAD})
        assert not result.ok
        assert "not linearizable" in result.violation

    def test_malformed_history_rejected(self):
        h = build(
            inv("g", "write", ("g", 1, None), t=0),
            inv("g", "write", ("g", 2, None), t=1),  # overlapping!
        )
        result = check_bft_linearizable(h, max_b=1)
        assert not result.ok
        assert "well-formed" in result.violation


class TestPlusForm:
    def test_masked_after_k_overwrites(self):
        h = build(
            StopEvent(client=BAD, time=0),
            inv("g", "write", ("g", 1, None), t=1), rsp("g", t=2),
            inv("g", "write", ("g", 2, None), t=3), rsp("g", t=4),
            inv("g", "read", t=5), rsp("g", ("g", 2, None), t=6),
        )
        assert check_bft_linearizable_plus(h, k=2, bad_clients={BAD}).ok

    def test_bad_value_after_k_overwrites_violates(self):
        h = build(
            StopEvent(client=BAD, time=0),
            inv("g", "write", ("g", 1, None), t=1), rsp("g", t=2),
            inv("g", "write", ("g", 2, None), t=3), rsp("g", t=4),
            inv("g", "read", t=5), rsp("g", bad_value(7), t=6),
        )
        result = check_bft_linearizable_plus(h, k=2, bad_clients={BAD})
        assert not result.ok
        assert "post-stop overwrite" in result.violation

    def test_bad_value_before_k_overwrites_allowed(self):
        h = build(
            StopEvent(client=BAD, time=0),
            inv("g", "read", t=1), rsp("g", bad_value(7), t=2),
            inv("g", "write", ("g", 1, None), t=3), rsp("g", t=4),
            inv("g", "write", ("g", 2, None), t=5), rsp("g", t=6),
            inv("g", "read", t=7), rsp("g", ("g", 2, None), t=8),
        )
        assert check_bft_linearizable_plus(h, k=2, bad_clients={BAD}).ok

    def test_fewer_than_k_overwrites_never_violates(self):
        h = build(
            StopEvent(client=BAD, time=0),
            inv("g", "write", ("g", 1, None), t=1), rsp("g", t=2),
            inv("g", "read", t=3), rsp("g", bad_value(7), t=4),
        )
        # Hmm: the read after one overwrite returning a *fresh* byzantine
        # value is allowed by the plus condition with k=2 (only one
        # overwrite happened) — but it must still be linearizable.
        assert check_bft_linearizable_plus(h, k=2, bad_clients={BAD}).ok
