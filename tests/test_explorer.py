"""Systematic schedule exploration of small protocol instances.

Every enumerable delivery order of these scenarios must keep the protocol's
invariants: operations complete, replicas converge, readers never see
garbage.  This complements the random-jitter simulator with exhaustive
coverage of small cases.
"""

from __future__ import annotations

import pytest

from repro.core import BftBcClient, make_system
from repro.sim import ScheduleExplorer
from tests.helpers import make_replicas


def two_writers_factory():
    """Two clients concurrently write one value each; 4 replicas."""
    config = make_system(f=1, seed=b"explore-1")
    replicas = {r.node_id: r for r in make_replicas(config)}
    a = BftBcClient("client:a", config)
    b = BftBcClient("client:b", config)
    clients = {a.node_id: a, b.node_id: b}

    def kickoff():
        traffic = []
        for client, value in ((a, ("client:a", 1, None)), (b, ("client:b", 1, None))):
            for send in client.begin_write(value):
                traffic.append((client.node_id, send))
        return traffic

    return replicas, clients, kickoff


def writer_reader_factory():
    """One writer and one concurrent reader."""
    config = make_system(f=1, seed=b"explore-2")
    replicas = {r.node_id: r for r in make_replicas(config)}
    w = BftBcClient("client:w", config)
    r = BftBcClient("client:r", config)
    clients = {w.node_id: w, r.node_id: r}

    def kickoff():
        traffic = [(w.node_id, s) for s in w.begin_write(("client:w", 1, None))]
        traffic += [(r.node_id, s) for s in r.begin_read()]
        return traffic

    return replicas, clients, kickoff


def check_two_writers(replicas, clients):
    for node_id, client in clients.items():
        if client.busy:
            return f"{node_id} did not complete"
    values = {repr(r.data) for r in replicas.values()}
    if len(values) != 1:
        return f"replicas diverged: {values}"
    # The surviving value is the max-timestamp write: (1, client:b) beats
    # (1, client:a) by client-id order.
    winner = next(iter(replicas.values())).data
    if winner != ("client:b", 1, None):
        return f"unexpected winner {winner!r}"
    return None


def check_writer_reader(replicas, clients):
    writer = clients["client:w"]
    reader = clients["client:r"]
    if writer.busy or reader.busy:
        return "an operation did not complete"
    value = reader.op.result
    if value not in (None, ("client:w", 1, None)):
        return f"reader saw garbage: {value!r}"
    values = {repr(r.data) for r in replicas.values()}
    if values != {repr(("client:w", 1, None))}:
        return f"replicas did not converge: {values}"
    return None


class TestExhaustiveSmallModels:
    def test_two_concurrent_writers_all_schedules(self):
        explorer = ScheduleExplorer(
            two_writers_factory,
            check_two_writers,
            max_executions=1500,
            max_depth=200,
        )
        result = explorer.run()
        assert result.executions > 100, result.describe()
        assert result.truncated == 0, result.describe()
        assert result.ok, (result.describe(), result.failures[:3])

    def test_writer_with_concurrent_reader_all_schedules(self):
        explorer = ScheduleExplorer(
            writer_reader_factory,
            check_writer_reader,
            max_executions=1500,
            max_depth=200,
        )
        result = explorer.run()
        assert result.executions > 100, result.describe()
        assert result.ok, (result.describe(), result.failures[:3])

    def test_detects_injected_bug(self):
        """Sanity: the explorer actually finds violations.  A 'broken'
        check demanding the LOSING writer's value must fail somewhere."""

        def bad_check(replicas, clients):
            winner = next(iter(replicas.values())).data
            if winner != ("client:a", 1, None):
                return "winner is not client:a"
            return None

        explorer = ScheduleExplorer(
            two_writers_factory, bad_check, max_executions=200, max_depth=200
        )
        result = explorer.run()
        assert not result.ok

    def test_exploration_is_deterministic(self):
        runs = []
        for _ in range(2):
            explorer = ScheduleExplorer(
                two_writers_factory,
                check_two_writers,
                max_executions=300,
                max_depth=200,
            )
            result = explorer.run()
            runs.append((result.executions, result.truncated, len(result.failures)))
        assert runs[0] == runs[1]
