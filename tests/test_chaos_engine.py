"""The chaos campaign engine: determinism, oracle catches, minimization.

The two load-bearing claims tested here:

* a campaign is a pure function of its seed — byte-identical summaries on
  re-run, and zero violations on the healthy protocol;
* a deliberately injected protocol bug (a replica that skips the Figure-2
  phase-3 timestamp-ordering check before installing) is *caught* by a
  moderate campaign and *minimized* to a tiny replayable plan.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.chaos import (
    CampaignConfig,
    EpisodePlan,
    generate_plan,
    load_artifact,
    minimize_episode,
    replay_artifact,
    run_campaign,
    run_episode,
    save_artifact,
)
from repro.core.replica import BftBcReplica
from repro.errors import SimulationError


class RegressingReplica(BftBcReplica):
    """BUG FIXTURE: installs any write with a valid certificate, skipping
    the ``cert.ts > pcert.ts`` phase-3 ordering check — so a duplicated or
    reordered WRITE of an older timestamp regresses the replica's state."""

    def _should_install(self, cert):
        return True


def buggy_factory(node_id, config, store):
    if store is not None:
        return RegressingReplica(node_id, config, store=store)
    return RegressingReplica(node_id, config)


class TestCampaignDeterminism:
    def test_summary_byte_identical_across_runs(self):
        config = CampaignConfig(seed=7, episodes=6)
        first = run_campaign(config).summary()
        second = run_campaign(config).summary()
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_healthy_protocol_survives(self):
        campaign = run_campaign(CampaignConfig(seed=13, episodes=9))
        assert not campaign.violations
        summary = campaign.summary()
        assert summary["totals"]["operations"] > 0
        assert summary["totals"]["messages_sent"] > 0

    def test_episode_rerun_is_exact(self):
        plan = generate_plan(CampaignConfig(seed=21), 3)
        a, b = run_episode(plan), run_episode(plan)
        assert a.to_summary() == b.to_summary()


class TestFastPathEpisodes:
    def test_fastpath_campaign_survives_and_exercises_fallback(self):
        """A fastpath-only campaign passes the full oracle battery, and the
        planner's FAST-message blackouts actually force fallbacks in at
        least one episode — the fallback path is chaos-tested, not idle."""
        campaign = run_campaign(
            CampaignConfig(seed=7, episodes=12, variants=("fastpath",))
        )
        assert not campaign.violations
        assert any(r.plan.attack == "lurking-fast" for r in campaign.results)
        blackouts = [
            r
            for r in campaign.results
            if any(f["op"] == "block_kinds" for f in r.plan.faults)
        ]
        assert blackouts, "the planner must schedule FAST-message blackouts"
        assert any(r.fallbacks > 0 for r in campaign.results)

    def test_fallback_counter_is_zero_for_signed_variants(self):
        plan = generate_plan(
            CampaignConfig(seed=5, variants=("optimized",)), 0
        )
        assert run_episode(plan).fallbacks == 0


class TestBugCatchAcceptance:
    def test_injected_bug_caught_and_minimized(self, tmp_path):
        """The ISSUE's acceptance bar: a ≤50-episode campaign catches the
        regression, and the minimized repro has ≤5 fault actions."""
        config = CampaignConfig(
            seed=7,
            episodes=50,
            variants=("base",),
            attacks=False,
            byzantine=False,
        )
        campaign = run_campaign(
            config,
            replica_factory=buggy_factory,
            minimize=True,
            minimize_budget=60,
            artifact_dir=tmp_path,
        )
        assert campaign.violations, "the campaign must catch the bug"
        assert campaign.minimized, "violations must be minimized"
        for plan, verdicts, path in campaign.minimized:
            assert len(plan.faults) <= 5
            assert not all(verdicts.values())
            # The artifact replays to the same verdict under the bug.
            outcome = replay_artifact(path, replica_factory=buggy_factory)
            assert outcome.matches

    def test_minimized_artifact_passes_on_fixed_code(self, tmp_path):
        """Replaying a bug artifact on the healthy protocol flips the
        verdict — which is exactly how a fixed bug shows up."""
        config = CampaignConfig(
            seed=7, episodes=50, variants=("base",),
            attacks=False, byzantine=False,
        )
        campaign = run_campaign(
            config,
            replica_factory=buggy_factory,
            minimize=True,
            minimize_budget=60,
            artifact_dir=tmp_path,
        )
        _plan, _verdicts, path = campaign.minimized[0]
        outcome = replay_artifact(path)  # no buggy factory: healthy replicas
        assert outcome.result.ok
        assert not outcome.matches


class TestMinimizer:
    def _fake_runner(self, guilty_predicate):
        """A runner whose 'episode' violates iff the plan satisfies the
        predicate; counts invocations."""
        calls = []

        @dataclasses.dataclass
        class FakeResult:
            violations: tuple

        def runner(plan):
            calls.append(plan)
            bad = guilty_predicate(plan)
            return FakeResult(violations=("lemma1",) if bad else ())

        return runner, calls

    def _plan_with_faults(self, count):
        return EpisodePlan(
            episode=0,
            seed=1,
            faults=[
                {"op": "crash", "time": float(i), "node": "replica:0"}
                for i in range(count)
            ],
            clients=3,
            ops_per_client=8,
        )

    def test_ddmin_finds_single_guilty_fault(self):
        guilty = {"op": "crash", "time": 5.0, "node": "replica:0"}
        runner, calls = self._fake_runner(
            lambda plan: guilty in plan.faults
        )
        result = minimize_episode(self._plan_with_faults(8), runner=runner)
        assert result.plan.faults == [guilty]
        assert result.target == ("lemma1",)
        assert result.runs == len(calls)

    def test_greedy_shrinks_workload(self):
        runner, _ = self._fake_runner(lambda plan: True)
        result = minimize_episode(self._plan_with_faults(4), runner=runner)
        assert result.plan.faults == []
        assert result.plan.clients == 1
        assert result.plan.ops_per_client == 1

    def test_budget_caps_probes(self):
        runner, calls = self._fake_runner(lambda plan: True)
        minimize_episode(self._plan_with_faults(12), runner=runner, budget=5)
        assert len(calls) <= 5 + 1  # the confirmation run plus the budget

    def test_non_violating_plan_rejected(self):
        runner, _ = self._fake_runner(lambda plan: False)
        with pytest.raises(SimulationError, match="nothing to minimize"):
            minimize_episode(self._plan_with_faults(3), runner=runner)

    def test_reduction_must_preserve_original_oracle(self):
        """A reduction that trades the violation for a different oracle's
        failure is rejected."""
        calls = []

        @dataclasses.dataclass
        class FakeResult:
            violations: tuple

        def runner(plan):
            calls.append(plan)
            if len(plan.faults) >= 2:
                return FakeResult(violations=("lemma1",))
            if len(plan.faults) == 1:
                return FakeResult(violations=("liveness",))
            return FakeResult(violations=())

        plan = self._plan_with_faults(4)
        result = minimize_episode(plan, runner=runner)
        assert len(result.plan.faults) == 2
        assert result.target == ("lemma1",)


class TestArtifacts:
    def test_save_load_round_trip(self, tmp_path):
        plan = generate_plan(CampaignConfig(seed=5), 2)
        path = tmp_path / "art.json"
        save_artifact(path, plan, {"lemma1": True}, note="hello")
        loaded_plan, verdicts, note = load_artifact(path)
        assert loaded_plan == plan
        assert verdicts == {"lemma1": True}
        assert note == "hello"

    def test_load_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format": "something-else/1"}', encoding="utf-8")
        with pytest.raises(SimulationError, match="not a chaos artifact"):
            load_artifact(path)


class TestBudgetedStateCompat:
    """Per-client state budgets under chaos: spill/rehydrate must be
    invisible to every invariant oracle, including across crash-restarts
    that rebuild replicas from their WALs."""

    def _budgeted_factory(self, node_id, config, store):
        from repro.core.persistence import ClientStateBudget
        from repro.core.replica import OptimizedBftBcReplica

        budgeted = dataclasses.replace(
            config, client_state_budget=ClientStateBudget(hot_entries=2)
        )
        if store is not None:
            return OptimizedBftBcReplica(node_id, budgeted, store=store)
        return OptimizedBftBcReplica(node_id, budgeted)

    def test_episode_with_spill_active_passes_all_oracles(self):
        from repro.chaos.oracles import ORACLES

        plan = EpisodePlan(
            episode=0,
            seed=424242,
            variant="optimized",
            store="filelog",
            faults=[
                {"op": "crash_restart", "time": 4.0, "node": "replica:1",
                 "down_for": 6.0},
                {"op": "crash_restart", "time": 14.0, "node": "replica:3",
                 "down_for": 6.0},
            ],
            clients=6,
            ops_per_client=4,
            write_fraction=0.7,
            max_time=240.0,
        )
        result = run_episode(plan, replica_factory=self._budgeted_factory)
        assert set(result.verdicts) == set(ORACLES)
        assert result.ok, f"violated: {result.violations}"
        assert result.operations == 6 * 4

    def test_budgeted_episode_matches_unbudgeted_verdicts(self):
        plan = EpisodePlan(
            episode=1,
            seed=77,
            variant="optimized",
            store="filelog",
            faults=[
                {"op": "crash_restart", "time": 3.0, "node": "replica:0",
                 "down_for": 5.0},
            ],
            clients=4,
            ops_per_client=3,
            max_time=240.0,
        )
        budgeted = run_episode(plan, replica_factory=self._budgeted_factory)
        plain = run_episode(plan)
        assert budgeted.ok and plain.ok
        assert budgeted.operations == plain.operations


class TestStabilization:
    """The PR-10 self-stabilization loop under injected state corruption."""

    def _plan(self, spec, *, store="filelog", seed=31, audit_interval=0.2):
        base = generate_plan(
            CampaignConfig(
                seed=seed,
                episodes=1,
                byzantine=False,
                attacks=False,
                corruption=False,
                stores=(store,),
            ),
            0,
        )
        return base.replace(faults=[spec], audit_interval=audit_interval)

    def test_wal_bitflip_episode_stabilizes(self):
        spec = {
            "op": "wal_bitflip",
            "time": 0.5,
            "node": "replica:1",
            "position": 0.5,
            "flip": 0x80,
        }
        result = run_episode(self._plan(spec))
        assert all(v.ok for v in result.verdicts.values())
        assert result.repairs == result.quarantines

    def test_state_perturb_episode_stabilizes(self):
        spec = {
            "op": "state_perturb",
            "time": 0.5,
            "node": "replica:2",
            "target": "data",
            "seed": 5,
        }
        result = run_episode(self._plan(spec, store="memory"))
        assert all(v.ok for v in result.verdicts.values())
        assert result.repairs == result.quarantines

    def test_snapshot_truncate_episode_stabilizes(self):
        spec = {
            "op": "snapshot_truncate",
            "time": 0.6,
            "node": "replica:0",
            "keep": 0.2,
        }
        result = run_episode(self._plan(spec))
        assert all(v.ok for v in result.verdicts.values())

    def test_oracle_flags_unrepaired_quarantine(self):
        from repro.chaos.oracles import _check_stabilization
        from repro.sim.runner import build_cluster

        cluster = build_cluster(f=1, seed=1)
        cluster.run_scripts({"alice": [("write", ("v", 0))]}, max_time=60)
        plan = self._plan(
            {"op": "state_perturb", "time": 0.5, "node": "replica:0",
             "target": "data", "seed": 1},
            store="memory",
        )
        cluster.replicas["replica:0"].enter_quarantine("test")
        verdict = _check_stabilization(cluster, plan, set())
        assert not verdict.ok
        assert "quarantined" in verdict.detail

    def test_audit_loop_ticks_on_every_correct_replica(self):
        from repro.chaos.engine import _arm_audit_loop
        from repro.sim.runner import build_cluster

        cluster = build_cluster(f=1, seed=2)
        plan = self._plan(
            {"op": "state_perturb", "time": 9999.0, "node": "replica:0",
             "target": "data", "seed": 1},
            store="memory",
            audit_interval=0.1,
        )
        _arm_audit_loop(cluster, plan)
        cluster.run_scripts(
            {"alice": [("write", ("v", i)) for i in range(3)]}, max_time=60
        )
        assert all(
            replica.stats.self_audits > 0
            for replica in cluster.replicas.values()
        )

    def test_corruption_campaign_passes_all_oracles(self):
        campaign = run_campaign(CampaignConfig(seed=29, episodes=10))
        assert not campaign.violations
        detected = sum(r.quarantines for r in campaign.results)
        repaired = sum(r.repairs for r in campaign.results)
        assert detected == repaired
