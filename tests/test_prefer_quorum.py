"""Tests for the preferred-quorum messaging discipline (§3.3.1's O(|Q|))."""

from __future__ import annotations

import pytest

from repro import build_cluster
from repro.core import BftBcClient, make_system
from repro.sim import read_script, write_script
from repro.spec import check_register_linearizable

from tests.helpers import DirectDriver, make_replicas


class TestMessageCounts:
    def test_write_contacts_only_a_quorum(self):
        config = make_system(f=1, seed=b"pq-1", prefer_quorum=True)
        replicas = make_replicas(config)
        driver = DirectDriver(BftBcClient("client:a", config), replicas)
        op = driver.run_write(("v", 1))
        assert op.done
        # Every message went to the first 2f+1 replicas only.
        assert {s.dest for s in driver.sent} == {
            "replica:0",
            "replica:1",
            "replica:2",
        }
        assert replicas[3].stats.handled == {}

    def test_messages_per_write_match_paper_model(self):
        cluster = build_cluster(f=1, seed=1, prefer_quorum=True)
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 4))
        cluster.run(max_time=60)
        cluster.settle()
        # 3 phases x (request + reply) x |Q| replicas.
        assert cluster.network.stats.messages_sent == 4 * 3 * 2 * 3

    def test_read_contacts_only_a_quorum(self):
        cluster = build_cluster(f=1, seed=2, prefer_quorum=True)
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 1))
        cluster.run(max_time=60)
        cluster.settle()
        cluster.network.stats.reset()
        node.run_script(read_script(1))
        cluster.run(max_time=60)
        cluster.settle()
        assert cluster.network.stats.messages_sent == 2 * 3


class TestRobustness:
    def test_expands_on_silent_preferred_replica(self):
        """A crashed replica inside the preferred quorum stalls the phase
        only until the retransmission tick widens the target set."""
        config = make_system(f=1, seed=b"pq-2", prefer_quorum=True)
        replicas = make_replicas(config)
        driver = DirectDriver(BftBcClient("client:a", config), replicas)
        driver.drop("replica:1")  # inside the preferred quorum
        op = driver.run_write(("v", 1))
        assert not op.done  # only 2 of 3 preferred replied
        # Each phase re-prefers the (partly dead) quorum and needs one
        # retransmission tick to widen to replica:3.
        for _ in range(3):
            driver.tick()
        assert op.done

    def test_liveness_under_crash_in_preferred_quorum(self):
        cluster = build_cluster(f=1, seed=3, prefer_quorum=True)
        cluster.network.crash("replica:0")
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 3) + read_script(1))
        cluster.run(max_time=120)
        assert cluster.metrics.operations == 4

    def test_still_linearizable_with_concurrency(self):
        cluster = build_cluster(f=1, seed=4, prefer_quorum=True)
        cluster.run_scripts(
            {
                "a": write_script("client:a", 4) + read_script(2),
                "b": write_script("client:b", 4) + read_script(2),
            },
            max_time=120,
        )
        report = check_register_linearizable(cluster.history)
        assert report.ok, report.violation

    def test_optimized_variant_compatible(self):
        cluster = build_cluster(
            f=1, variant="optimized", seed=5, prefer_quorum=True
        )
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 3))
        cluster.run(max_time=60)
        assert cluster.metrics.fast_path_rate() == 1.0

    def test_latency_cost_under_crash(self):
        """The robustness tradeoff: with a dead preferred replica the op
        waits one retransmit interval; broadcasting to all does not."""

        def p50(prefer):
            cluster = build_cluster(f=1, seed=6, prefer_quorum=prefer)
            cluster.network.crash("replica:0")
            node = cluster.add_client("w")
            node.run_script(write_script("client:w", 3))
            cluster.run(max_time=120)
            return cluster.metrics.latency_summary("write").p50

        assert p50(True) > p50(False)
