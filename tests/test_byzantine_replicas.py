"""Tests: good clients survive up to f Byzantine replicas of every flavour."""

from __future__ import annotations

import pytest

from repro import build_cluster
from repro.byzantine import (
    CorruptingReplica,
    CrashedReplica,
    ForgingReplica,
    PromiscuousReplica,
    SilentOptimizedReplica,
    StaleReplica,
)
from repro.sim import read_script, write_script
from repro.spec import check_register_linearizable

BEHAVIOURS = [
    CrashedReplica,
    StaleReplica,
    PromiscuousReplica,
    CorruptingReplica,
    ForgingReplica,
]


@pytest.mark.parametrize("behaviour", BEHAVIOURS)
class TestSingleFaultyReplica:
    def test_writes_and_reads_complete(self, behaviour):
        cluster = build_cluster(
            f=1, seed=40, replica_overrides={1: behaviour}
        )
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 3) + read_script(2))
        cluster.run(max_time=60)
        assert cluster.metrics.operations == 5
        assert node.client.last_result == ("client:w", 2, None)

    def test_history_linearizable(self, behaviour):
        cluster = build_cluster(
            f=1, seed=41, replica_overrides={2: behaviour}
        )
        cluster.run_scripts(
            {
                "a": write_script("client:a", 3) + read_script(1),
                "b": write_script("client:b", 3) + read_script(1),
            },
            max_time=60,
        )
        report = check_register_linearizable(cluster.history)
        assert report.ok, report.violation


class TestFTwo:
    def test_two_faulty_replicas_of_different_kinds(self):
        cluster = build_cluster(
            f=2,
            seed=42,
            replica_overrides={0: CrashedReplica, 4: CorruptingReplica},
        )
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 3) + read_script(1))
        cluster.run(max_time=60)
        assert node.client.last_result == ("client:w", 2, None)

    def test_forging_and_stale_together(self):
        cluster = build_cluster(
            f=2,
            seed=43,
            replica_overrides={1: ForgingReplica, 5: StaleReplica},
        )
        cluster.run_scripts(
            {"a": write_script("client:a", 2) + read_script(2)}, max_time=60
        )
        report = check_register_linearizable(cluster.history)
        assert report.ok, report.violation


class TestOptimizedVariantFaults:
    def test_optimized_with_silent_replica(self):
        cluster = build_cluster(
            f=1,
            variant="optimized",
            seed=44,
            replica_overrides={3: SilentOptimizedReplica},
        )
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 4) + read_script(1))
        cluster.run(max_time=60)
        assert node.client.last_result == ("client:w", 3, None)
        # Fast path still works: the other three replicas agree.
        assert cluster.metrics.fast_path_rate() == 1.0


class TestStrongVariantFaults:
    def test_strong_with_crashed_replica(self):
        cluster = build_cluster(
            f=1,
            variant="strong",
            seed=45,
            replica_overrides={0: CrashedReplica},
        )
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 3) + read_script(1))
        cluster.run(max_time=60)
        assert node.client.last_result == ("client:w", 2, None)


class TestForgeryIsDetected:
    def test_forged_certificate_never_accepted_by_clients(self):
        """The ForgingReplica's fabricated high-timestamp certificate is
        rejected during validation: timestamps never jump."""
        cluster = build_cluster(
            f=1, seed=46, replica_overrides={0: ForgingReplica}
        )
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 3))
        cluster.run(max_time=60)
        cluster.settle()
        for rid, replica in cluster.replicas.items():
            if rid == "replica:0":
                continue
            assert replica.pcert.ts.val <= 3

    def test_corrupt_read_values_filtered(self):
        cluster = build_cluster(
            f=1, seed=47, replica_overrides={1: CorruptingReplica}
        )
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 1) + read_script(3))
        cluster.run(max_time=60)
        for record in cluster.history.operations():
            if record.op == "read":
                assert record.result == ("client:w", 0, None)


class TestAdditionalBehaviours:
    def test_delaying_replica_does_not_slow_quorum(self):
        """Quorum protocols wait for the fastest 2f+1, so one laggard adds
        nothing to latency."""
        from repro.byzantine import DelayingReplica

        def p50(overrides):
            cluster = build_cluster(f=1, seed=48, replica_overrides=overrides)
            node = cluster.add_client("w")
            node.run_script(write_script("client:w", 5))
            cluster.run(max_time=120)
            return cluster.metrics.latency_summary("write").p50

        baseline = p50({})
        with_laggard = p50({3: DelayingReplica})
        assert with_laggard < baseline + 0.01

    def test_delaying_replica_replies_do_arrive(self):
        from repro.byzantine import DelayingReplica

        cluster = build_cluster(f=1, seed=49, replica_overrides={3: DelayingReplica})
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 1))
        cluster.run(max_time=120)
        cluster.settle(1.0)  # let the slow replies land
        assert cluster.replicas["replica:3"].data == ("client:w", 0, None)

    def test_two_faced_replica_cannot_break_atomicity(self):
        from repro.byzantine import TwoFacedReplica

        cluster = build_cluster(f=1, seed=50, replica_overrides={1: TwoFacedReplica})
        cluster.run_scripts(
            {
                "w": write_script("client:w", 4),
                "r1": read_script(4),
                "r2": read_script(4),
            },
            think_time=0.03,
            max_time=120,
        )
        report = check_register_linearizable(cluster.history)
        assert report.ok, report.violation

    def test_two_faced_stale_answers_are_old_truths(self):
        """The stale (value, certificate) pairs the replica serves verify —
        they are yesterday's state, not forgeries — and quorum reads
        overrule them."""
        from repro.byzantine import TwoFacedReplica

        cluster = build_cluster(f=1, seed=51, replica_overrides={0: TwoFacedReplica})
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 3) + read_script(4))
        cluster.run(max_time=120)
        reads = [r.result for r in cluster.history.operations() if r.op == "read"]
        assert all(r == ("client:w", 2, None) for r in reads)
