"""Hostile raw-TCP peers against :class:`ReplicaServer`.

A Byzantine client is not obliged to speak the framing protocol at all —
it can send garbage magic, absurd length prefixes, half a frame, or one
byte per second.  The server's obligations are operational, not
protocol-level: drop the offending connection, leak no handler state, and
keep serving correct clients throughout.  These tests speak raw sockets
(no :class:`AsyncClient`) so nothing sanitises the bytes on the way out.
"""

from __future__ import annotations

import asyncio
import struct

import pytest

from repro.core import BftBcClient, BftBcReplica, make_system
from repro.encoding.codec import MAX_FRAME_SIZE
from repro.net.asyncio_transport import AsyncClient, ReplicaServer


def run(coro):
    return asyncio.run(coro)


async def start_cluster(config):
    servers, addrs = {}, {}
    for rid in config.quorums.replica_ids:
        server = ReplicaServer(BftBcReplica(rid, config))
        addrs[rid] = await server.start()
        servers[rid] = server
    return servers, addrs


async def stop_all(servers, *clients):
    for client in clients:
        await client.close()
    for server in servers.values():
        await server.stop()


async def wait_for(predicate, timeout=2.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        if asyncio.get_running_loop().time() > deadline:
            return False
        await asyncio.sleep(0.01)
    return True


async def assert_cluster_serves(config, addrs, value):
    """A correct client can still complete a full write/read round."""
    client = AsyncClient(
        BftBcClient("client:ok", config), addrs, retransmit_interval=0.05
    )
    await client.connect()
    await client.write(value)
    assert await client.read() == value
    await client.close()


def test_garbage_magic_drops_connection_and_cluster_survives():
    async def main():
        config = make_system(f=1, seed=b"hostile-magic")
        servers, addrs = await start_cluster(config)
        victim = servers["replica:0"]

        reader, writer = await asyncio.open_connection(*addrs["replica:0"])
        writer.write(b"\x00\x00" + b"junk that is certainly not a frame")
        await writer.drain()
        # The server's frame decoder rejects the magic and the handler
        # closes the connection from its side.
        assert (await reader.read(64)) == b""
        assert await wait_for(lambda: not victim._connections)
        writer.close()

        await assert_cluster_serves(config, addrs, ("v", 1))
        await stop_all(servers)

    run(main())


def test_oversized_length_prefix_rejected_before_allocation():
    async def main():
        config = make_system(f=1, seed=b"hostile-length")
        servers, addrs = await start_cluster(config)
        victim = servers["replica:0"]

        reader, writer = await asyncio.open_connection(*addrs["replica:0"])
        # A valid magic with a length beyond MAX_FRAME_SIZE: the decoder
        # must reject it from the header alone, never buffering 4 GiB.
        writer.write(b"\xbf\xbc" + struct.pack(">I", MAX_FRAME_SIZE + 1))
        await writer.drain()
        assert (await reader.read(64)) == b""
        assert await wait_for(lambda: not victim._connections)
        writer.close()

        await assert_cluster_serves(config, addrs, ("v", 2))
        await stop_all(servers)

    run(main())


def test_mid_frame_disconnect_leaves_no_state():
    async def main():
        config = make_system(f=1, seed=b"hostile-midframe")
        servers, addrs = await start_cluster(config)
        victim = servers["replica:0"]
        handled_before = victim.replica.stats.handled

        _, writer = await asyncio.open_connection(*addrs["replica:0"])
        # A correct header promising 1000 bytes, then only 10 — and gone.
        writer.write(b"\xbf\xbc" + struct.pack(">I", 1000) + b"partial...")
        await writer.drain()
        writer.close()
        assert await wait_for(lambda: not victim._connections)
        # The half-frame never reached the replica.
        assert victim.replica.stats.handled == handled_before

        await assert_cluster_serves(config, addrs, ("v", 3))
        await stop_all(servers)

    run(main())


def test_slow_loris_does_not_starve_correct_clients():
    async def main():
        config = make_system(f=1, seed=b"hostile-loris")
        servers, addrs = await start_cluster(config)
        victim = servers["replica:0"]

        # Several connections each dribbling an eternally incomplete frame.
        lorises = []
        for _ in range(5):
            _, writer = await asyncio.open_connection(*addrs["replica:0"])
            writer.write(b"\xbf\xbc" + struct.pack(">I", 4096) + b"\x00")
            await writer.drain()
            lorises.append(writer)
        assert await wait_for(lambda: len(victim._connections) >= 5)

        # Handlers are per-connection tasks: the stuck reads cannot block
        # a correct client's operations on the same server.
        await assert_cluster_serves(config, addrs, ("v", 4))

        for writer in lorises:
            writer.close()
        assert await wait_for(lambda: not victim._connections)

        await stop_all(servers)

    run(main())
