"""Smoke tests for the benchmark-result recorder (tools/bench_record.py)."""

from __future__ import annotations

import json
import pathlib
import sys

import pytest

TOOLS = pathlib.Path(__file__).resolve().parent.parent / "tools"
sys.path.insert(0, str(TOOLS))

import bench_record  # noqa: E402


def test_record_and_load_round_trip(tmp_path):
    target = tmp_path / "BENCH.json"
    bench_record.record("alpha", {"speedup": 2.5}, path=target)
    loaded = bench_record.load(target)
    assert loaded["alpha"]["speedup"] == 2.5
    assert "recorded_at" in loaded["alpha"]
    assert "python" in loaded["alpha"]


def test_record_merges_without_clobbering(tmp_path):
    target = tmp_path / "BENCH.json"
    bench_record.record("alpha", {"x": 1}, path=target)
    bench_record.record("beta", {"y": 2}, path=target)
    bench_record.record("alpha", {"x": 3}, path=target)  # re-record overwrites
    loaded = bench_record.load(target)
    assert set(loaded) == {"alpha", "beta"}
    assert loaded["alpha"]["x"] == 3
    assert loaded["beta"]["y"] == 2


def test_load_missing_and_corrupt_files(tmp_path):
    assert bench_record.load(tmp_path / "absent.json") == {}
    corrupt = tmp_path / "corrupt.json"
    corrupt.write_text("{not json", encoding="utf-8")
    assert bench_record.load(corrupt) == {}
    # A corrupt file is recoverable: recording over it starts fresh.
    bench_record.record("alpha", {"x": 1}, path=corrupt)
    assert bench_record.load(corrupt)["alpha"]["x"] == 1


def test_file_is_valid_sorted_json(tmp_path):
    target = tmp_path / "BENCH.json"
    bench_record.record("zeta", {"v": 1}, path=target)
    bench_record.record("alpha", {"v": 2}, path=target)
    document = json.loads(target.read_text(encoding="utf-8"))
    assert list(document) == sorted(document)


def test_record_rejects_non_identifier_keys(tmp_path):
    """Names and payload keys must be identifiers (dashboard field paths)."""
    target = tmp_path / "BENCH.json"
    with pytest.raises(ValueError, match="identifier"):
        bench_record.record("wal only", {"x": 1}, path=target)
    with pytest.raises(ValueError, match="wal\\+fsync"):
        bench_record.record("e16", {"wal+fsync": 1}, path=target)
    # A rejected record must not create or clobber the results file.
    assert not target.exists()
    # Nested dicts are payload values, not keys — they stay unrestricted.
    bench_record.record("e16", {"wal_fsync": {"wall s": 1}}, path=target)
    assert bench_record.load(target)["e16"]["wal_fsync"] == {"wall s": 1}


def test_repo_results_file_exists_and_parses():
    """The committed BENCH_throughput.json must stay valid JSON."""
    document = bench_record.load()
    assert isinstance(document, dict)
    # Every committed key already satisfies the identifier rule record()
    # enforces, so historic entries stay addressable by dashboards.
    for name, payload in document.items():
        assert name.isidentifier(), name
        for key in payload:
            assert key.isidentifier(), (name, key)
