"""Unit tests for the client operation state machines (base protocol),
driven directly against in-memory replicas."""

from __future__ import annotations

import pytest

from repro.core import BftBcClient, Timestamp, make_system
from repro.core.messages import ReadTsReply, WriteReply
from repro.crypto.signatures import Signature
from repro.errors import ProtocolError

from tests.helpers import DirectDriver, make_replicas


@pytest.fixture
def config():
    return make_system(f=1, seed=b"ops-test")


@pytest.fixture
def replicas(config):
    return make_replicas(config)


@pytest.fixture
def driver(config, replicas):
    client = BftBcClient("client:alice", config)
    return DirectDriver(client, replicas)


class TestWriteOperation:
    def test_write_completes_in_three_phases(self, driver, replicas):
        op = driver.run_write(("v", 1))
        assert op.done
        assert op.phases == 3
        assert op.result == Timestamp(1, "client:alice")
        assert all(r.data == ("v", 1) for r in replicas)

    def test_client_retains_write_certificate(self, driver, config):
        driver.run_write(("v", 1))
        cert = driver.client.write_cert
        assert cert is not None
        assert cert.ts == Timestamp(1, "client:alice")
        cert.validate(config.scheme, config.quorums)

    def test_sequential_writes_increment_timestamp(self, driver):
        for seq in range(1, 4):
            op = driver.run_write(("v", seq))
            assert op.result == Timestamp(seq, "client:alice")

    def test_write_with_one_replica_down(self, driver, replicas):
        driver.drop(replicas[3].node_id)
        op = driver.run_write(("v", 1))
        assert op.done  # quorum of 3 out of 4 suffices

    def test_write_stalls_below_quorum(self, driver, replicas):
        driver.drop(replicas[2].node_id, replicas[3].node_id)
        op = driver.run_write(("v", 1))
        assert not op.done

    def test_retransmission_completes_after_recovery(self, driver, replicas):
        driver.drop(replicas[2].node_id, replicas[3].node_id)
        op = driver.run_write(("v", 1))
        assert not op.done
        driver.restore(replicas[2].node_id)
        driver.tick()
        assert op.done

    def test_cannot_start_op_while_busy(self, driver, replicas):
        driver.drop(*[r.node_id for r in replicas])
        driver.run_write(("v", 1))
        with pytest.raises(ProtocolError):
            driver.client.begin_read()

    def test_duplicate_replies_ignored(self, driver, config, replicas):
        """A reply from the same replica counts once per phase."""
        client = driver.client
        sends = client.begin_write(("v", 1))
        replica = replicas[0]
        reply = replica.handle("client:alice", sends[0].message)
        client.deliver(replica.node_id, reply)
        more = client.deliver(replica.node_id, reply)
        assert more == []
        assert not client.op.done

    def test_reply_with_wrong_nonce_rejected(self, driver, config, replicas):
        client = driver.client
        client.begin_write(("v", 1))
        replica = replicas[0]
        from repro.core.messages import ReadTsRequest

        stale = replica.handle("client:alice", ReadTsRequest(nonce=b"\x00" * 16))
        client.deliver(replica.node_id, stale)
        assert len(client.op._collector.replies) == 0

    def test_reply_from_non_replica_rejected(self, driver, config, replicas):
        client = driver.client
        sends = client.begin_write(("v", 1))
        reply = replicas[0].handle("client:alice", sends[0].message)
        client.deliver("client:mallory", reply)
        assert len(client.op._collector.replies) == 0

    def test_misattributed_signature_rejected(self, driver, config, replicas):
        """A Byzantine replica relaying another's reply gains nothing."""
        client = driver.client
        sends = client.begin_write(("v", 1))
        reply = replicas[0].handle("client:alice", sends[0].message)
        client.deliver(replicas[1].node_id, reply)  # replica:1 replays r0's
        assert len(client.op._collector.replies) == 0

    def test_forged_certificate_in_phase1_rejected(self, driver, config, replicas):
        from repro.core.certificates import PrepareCertificate
        from repro.core.statements import read_ts_reply_statement

        client = driver.client
        sends = client.begin_write(("v", 1))
        nonce = sends[0].message.nonce
        fake_cert = PrepareCertificate(
            ts=Timestamp(99, "client:evil"),
            value_hash=b"\x00" * 32,
            signatures=tuple(
                Signature(signer=f"replica:{i}", value=b"\x00" * 32) for i in range(3)
            ),
        )
        # replica:0 signs the envelope honestly but the cert inside is junk.
        envelope_sig = config.scheme.sign_statement(
            "replica:0", read_ts_reply_statement(fake_cert.to_wire(), nonce)
        )
        reply = ReadTsReply(cert=fake_cert, nonce=nonce, signature=envelope_sig)
        client.deliver("replica:0", reply)
        assert len(client.op._collector.replies) == 0


class TestReadOperation:
    def test_read_genesis(self, driver):
        op = driver.run_read()
        assert op.done
        assert op.result is None
        assert op.phases == 1

    def test_read_after_write_one_phase(self, driver):
        driver.run_write(("v", 1))
        op = driver.run_read()
        assert op.result == ("v", 1)
        assert op.phases == 1

    def test_read_write_back_when_replicas_diverge(self, driver, replicas, config):
        # Write reaches only replicas 0..2 (replica 3 down).
        driver.drop(replicas[3].node_id)
        driver.run_write(("v", 1))
        driver.restore(replicas[3].node_id)
        assert replicas[3].data is None
        # Force the stale replica into the read quorum by silencing a fresh
        # one: the quorum {1, 2, 3} has mixed timestamps.
        driver.drop(replicas[0].node_id)
        op = driver.run_read()
        assert op.result == ("v", 1)
        assert op.phases == 2  # write-back phase ran
        assert replicas[3].data == ("v", 1)  # laggard repaired

    def test_read_requires_quorum(self, driver, replicas):
        driver.drop(replicas[0].node_id, replicas[1].node_id)
        op = driver.run_read()
        assert not op.done

    def test_corrupt_value_with_genuine_cert_rejected(self, driver, config, replicas):
        """A reply whose value doesn't hash to the certificate is discarded."""
        from repro.core.messages import ReadReply
        from repro.core.statements import read_reply_statement

        driver.run_write(("v", 1))
        client = driver.client
        sends = client.begin_read()
        nonce = sends[0].message.nonce
        genuine_cert = replicas[0].pcert
        bad_sig = config.scheme.sign_statement(
            "replica:0",
            read_reply_statement(("garbage",), genuine_cert.to_wire(), nonce),
        )
        reply = ReadReply(
            value=("garbage",), cert=genuine_cert, nonce=nonce, signature=bad_sig
        )
        client.deliver("replica:0", reply)
        assert len(client.op._collector.replies) == 0

    def test_concurrent_write_visible_or_not_but_never_garbage(
        self, driver, replicas, config
    ):
        """A read overlapping a partial write returns either old or new value."""
        from tests.helpers import ProtocolKit

        kit = ProtocolKit(config, client="client:bob")
        driver.run_write(("v", 1))
        # bob's write reaches one replica only.
        p_max = kit.read_ts(replicas)
        request = kit.prepare_request(p_max, p_max.ts.succ(kit.client), ("w", 1))
        cert = kit.collect_prepare(replicas, request)
        replicas[0].handle(kit.client, kit.write_request(("w", 1), cert))
        op = driver.run_read()
        assert op.result in (("v", 1), ("w", 1))


class TestWriteBackTargets:
    def test_write_back_sent_only_to_lagging_replicas(self, driver, replicas):
        driver.drop(replicas[3].node_id)
        driver.run_write(("v", 1))
        driver.restore(replicas[3].node_id)
        driver.drop(replicas[0].node_id)  # force the laggard into the quorum
        driver.sent.clear()
        driver.run_read()
        from repro.core.messages import WriteRequest

        write_backs = [
            s for s in driver.sent if isinstance(s.message, WriteRequest)
        ]
        assert write_backs  # a write-back happened
        # Only replicas not known to hold the value are targeted: the stale
        # replica 3 and the silent replica 0 — never the fresh ones.
        assert {s.dest for s in write_backs} == {
            replicas[0].node_id,
            replicas[3].node_id,
        }
