"""Tests for the §4.1 history model."""

from __future__ import annotations

import pytest

from repro.spec import History, Invocation, Response, StopEvent
from repro.errors import HistoryError


def inv(client, op, arg=None, t=0.0, obj="x"):
    return Invocation(client=client, obj=obj, op=op, arg=arg, time=t)


def rsp(client, value=None, t=0.0, obj="x"):
    return Response(client=client, obj=obj, value=value, time=t)


class TestConstruction:
    def test_append_in_order(self):
        h = History()
        h.append(inv("c", "write", 1, t=1.0))
        h.append(rsp("c", t=2.0))
        assert len(h) == 2

    def test_out_of_order_append_rejected(self):
        h = History()
        h.append(inv("c", "write", 1, t=2.0))
        with pytest.raises(HistoryError):
            h.append(rsp("c", t=1.0))

    def test_iteration(self):
        events = [inv("c", "read", t=0.0), rsp("c", t=1.0)]
        h = History(events)
        assert list(h) == events


class TestSubhistories:
    def test_client_subhistory(self):
        h = History([
            inv("a", "write", 1, t=0.0),
            inv("b", "read", t=0.5),
            rsp("a", t=1.0),
            rsp("b", 1, t=1.5),
        ])
        sub = h.client_subhistory("a")
        assert [e.client for e in sub] == ["a", "a"]

    def test_object_subhistory_keeps_stops(self):
        h = History([
            inv("a", "write", 1, t=0.0, obj="x"),
            rsp("a", t=0.5, obj="x"),
            StopEvent(client="c", time=1.0),
            inv("a", "read", t=2.0, obj="y"),
            rsp("a", t=3.0, obj="y"),
        ])
        sub = h.object_subhistory("x")
        assert len(sub) == 3  # x's two events plus the stop

    def test_clients(self):
        h = History([inv("a", "read", t=0.0), StopEvent(client="z", time=1.0)])
        assert h.clients() == {"a", "z"}


class TestWellFormedness:
    def test_sequential_client_ok(self):
        h = History([
            inv("a", "write", 1, t=0.0),
            rsp("a", t=1.0),
            inv("a", "read", t=2.0),
            rsp("a", 1, t=3.0),
        ])
        assert h.is_well_formed()

    def test_overlapping_invocations_not_well_formed(self):
        h = History([
            inv("a", "write", 1, t=0.0),
            inv("a", "read", t=1.0),
        ])
        assert not h.is_well_formed()

    def test_response_without_invocation_not_well_formed(self):
        h = History([rsp("a", t=0.0)])
        assert not h.is_well_formed()

    def test_pending_final_op_is_well_formed(self):
        h = History([inv("a", "write", 1, t=0.0)])
        assert h.is_well_formed()

    def test_events_after_stop_not_well_formed(self):
        h = History([
            StopEvent(client="a", time=0.0),
            inv("a", "write", 1, t=1.0),
        ])
        assert not h.is_well_formed()

    def test_interleaved_clients_well_formed(self):
        h = History([
            inv("a", "write", 1, t=0.0),
            inv("b", "write", 2, t=0.1),
            rsp("b", t=0.2),
            rsp("a", t=0.3),
        ])
        assert h.is_well_formed()


class TestOperations:
    def test_pairing(self):
        h = History([
            inv("a", "write", 1, t=0.0),
            rsp("a", "ok", t=1.0),
            inv("a", "read", t=2.0),
            rsp("a", 1, t=3.0),
        ])
        ops = h.operations()
        assert len(ops) == 2
        assert ops[0].op == "write" and ops[0].arg == 1
        assert ops[1].op == "read" and ops[1].result == 1
        assert ops[0].precedes(ops[1])

    def test_pending_operation(self):
        h = History([inv("a", "write", 1, t=0.0)])
        ops = h.operations()
        assert len(ops) == 1
        assert not ops[0].complete
        assert ops[0].responded_at is None

    def test_concurrent_ops_do_not_precede(self):
        h = History([
            inv("a", "write", 1, t=0.0),
            inv("b", "write", 2, t=0.5),
            rsp("a", t=1.0),
            rsp("b", t=1.5),
        ])
        ops = {o.client: o for o in h.operations()}
        assert not ops["a"].precedes(ops["b"])
        assert not ops["b"].precedes(ops["a"])

    def test_precedes_stop_event(self):
        stop = StopEvent(client="z", time=5.0)
        h = History([inv("a", "write", 1, t=0.0), rsp("a", t=1.0), stop])
        op = h.operations()[0]
        assert op.precedes(stop)

    def test_stop_time(self):
        h = History([StopEvent(client="z", time=3.0)])
        assert h.stop_time("z") == 3.0
        assert h.stop_time("other") is None
