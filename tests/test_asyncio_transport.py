"""Tests for the real TCP transport (asyncio)."""

from __future__ import annotations

import asyncio

import pytest

from repro.core import (
    BftBcClient,
    BftBcReplica,
    OptimizedBftBcClient,
    OptimizedBftBcReplica,
    make_system,
)
from repro.errors import OperationFailedError
from repro.net.asyncio_transport import AsyncClient, ReplicaServer


def run(coro):
    return asyncio.run(coro)


async def start_cluster(config, replica_cls=BftBcReplica, skip=()):
    servers, addrs = [], {}
    for rid in config.quorums.replica_ids:
        if rid in skip:
            # An address nobody listens on: a crashed replica.
            addrs[rid] = ("127.0.0.1", 1)
            continue
        server = ReplicaServer(replica_cls(rid, config))
        host, port = await server.start()
        addrs[rid] = (host, port)
        servers.append(server)
    return servers, addrs


async def stop_cluster(servers, *clients):
    for client in clients:
        await client.close()
    for server in servers:
        await server.stop()


class TestTcpBase:
    def test_write_and_read(self):
        async def main():
            config = make_system(f=1, seed=b"tcp-1")
            servers, addrs = await start_cluster(config)
            client = AsyncClient(BftBcClient("client:a", config), addrs)
            await client.connect()
            ts = await client.write(("client:a", 1, "x"))
            assert ts.val == 1
            value = await client.read()
            assert value == ("client:a", 1, "x")
            await stop_cluster(servers, client)

        run(main())

    def test_sequential_writes(self):
        async def main():
            config = make_system(f=1, seed=b"tcp-2")
            servers, addrs = await start_cluster(config)
            client = AsyncClient(BftBcClient("client:a", config), addrs)
            await client.connect()
            for seq in range(1, 4):
                ts = await client.write(("client:a", seq, None))
                assert ts.val == seq
            await stop_cluster(servers, client)

        run(main())

    def test_two_clients_interleaved(self):
        async def main():
            config = make_system(f=1, seed=b"tcp-3")
            servers, addrs = await start_cluster(config)
            a = AsyncClient(BftBcClient("client:a", config), addrs)
            b = AsyncClient(BftBcClient("client:b", config), addrs)
            await a.connect()
            await b.connect()
            await a.write(("client:a", 1, None))
            await b.write(("client:b", 1, None))
            assert await a.read() == ("client:b", 1, None)
            await stop_cluster(servers, a, b)

        run(main())

    def test_survives_one_unreachable_replica(self):
        async def main():
            config = make_system(f=1, seed=b"tcp-4")
            servers, addrs = await start_cluster(config, skip={"replica:3"})
            client = AsyncClient(
                BftBcClient("client:a", config), addrs, retransmit_interval=0.05
            )
            await client.connect()
            ts = await client.write(("client:a", 1, None))
            assert ts.val == 1
            await stop_cluster(servers, client)

        run(main())

    def test_times_out_below_quorum(self):
        async def main():
            config = make_system(f=1, seed=b"tcp-5")
            servers, addrs = await start_cluster(
                config, skip={"replica:2", "replica:3"}
            )
            client = AsyncClient(
                BftBcClient("client:a", config),
                addrs,
                retransmit_interval=0.05,
                op_timeout=0.5,
            )
            await client.connect()
            with pytest.raises(OperationFailedError):
                await client.write(("client:a", 1, None))
            await stop_cluster(servers, client)

        run(main())


class TestTcpOptimized:
    def test_optimized_fast_path_over_tcp(self):
        async def main():
            config = make_system(f=1, seed=b"tcp-6")
            servers, addrs = await start_cluster(
                config, replica_cls=OptimizedBftBcReplica
            )
            client = AsyncClient(OptimizedBftBcClient("client:a", config), addrs)
            await client.connect()
            await client.write(("client:a", 1, None))
            assert client.client.op.phases == 2
            assert client.client.last_write_fast_path
            await stop_cluster(servers, client)

        run(main())


class TestTcpRobustness:
    def test_garbage_bytes_ignored_by_server(self):
        async def main():
            config = make_system(f=1, seed=b"tcp-7")
            servers, addrs = await start_cluster(config)
            # Throw garbage at replica:0's port.
            host, port = addrs["replica:0"]
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"\xbf\xbcnot a real frame at all")
            await writer.drain()
            writer.close()
            # The replica must still serve a real client.
            client = AsyncClient(BftBcClient("client:a", config), addrs)
            await client.connect()
            assert (await client.write(("client:a", 1, None))).val == 1
            await stop_cluster(servers, client)

        run(main())


class TestEnvelopeSplice:
    """The framing layer splices cached message bytes into its envelope.

    ``_encode_envelope`` builds ``{"msg": <message>, "src": <src>}`` by byte
    concatenation (the canonical encoding is self-delimiting and dict keys
    sort "msg" < "src"), reusing the message's encode-once bytes.  It must
    be indistinguishable from encoding the whole envelope from scratch.
    """

    def test_splice_equals_fresh_full_encode(self):
        from repro.core.messages import ReadTsRequest, message_to_wire
        from repro.encoding import canonical_decode, canonical_encode
        from repro.net.asyncio_transport import _encode_envelope

        message = ReadTsRequest(nonce=b"splice-test")
        spliced = _encode_envelope("client:a", message)
        fresh = canonical_encode(
            {"msg": message_to_wire(message), "src": "client:a"}
        )
        # Strip the length-prefix framing, then compare payload bytes.
        from repro.encoding import FrameDecoder

        decoder = FrameDecoder()
        frames = list(decoder.feed(spliced))
        assert len(frames) == 1
        assert frames[0] == fresh
        decoded = canonical_decode(frames[0])
        assert decoded["src"] == "client:a"
        assert decoded["msg"] == message_to_wire(message)
