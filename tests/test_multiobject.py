"""Tests for multi-object deployments (§3.2's generalisation)."""

from __future__ import annotations

import pytest

from repro.core import (
    MultiObjectClient,
    MultiObjectReplica,
    ObjectMessage,
    ScopedSignatureScheme,
    Timestamp,
    make_system,
)
from repro.core.messages import ReadTsRequest, message_to_wire
from repro.core.replica import OptimizedBftBcReplica
from repro.net.simnet import SimNetwork
from repro.sim import MultiObjectClientNode, Scheduler


@pytest.fixture
def config():
    return make_system(f=1, seed=b"multi-test")


def build(config, seed=0, replica_cls=None):
    """A wired multi-object cluster on the simulated network."""
    scheduler = Scheduler()
    network = SimNetwork(scheduler, seed=seed)
    replicas = {}
    for rid in config.quorums.replica_ids:
        kwargs = {} if replica_cls is None else {"replica_cls": replica_cls}
        replica = MultiObjectReplica(rid, config, **kwargs)
        replicas[rid] = replica

        def handler(src, msg, r=replica):
            reply = r.handle(src, msg)
            if reply is not None:
                network.send(r.node_id, src, reply)

        network.register(rid, handler)
    return scheduler, network, replicas


class TestScopedScheme:
    def test_signatures_bound_to_scope(self, config):
        a = ScopedSignatureScheme(config.scheme, "obj-a")
        b = ScopedSignatureScheme(config.scheme, "obj-b")
        sig = a.sign("replica:0", b"statement")
        assert a.verify(sig, b"statement")
        assert not b.verify(sig, b"statement")  # cross-object replay fails
        assert not config.scheme.verify(sig, b"statement")

    def test_shares_registry_and_stats(self, config):
        scoped = ScopedSignatureScheme(config.scheme, "obj-a")
        assert scoped.registry is config.scheme.registry
        assert scoped.stats is config.scheme.stats


class TestEnvelope:
    def test_wire_round_trip(self):
        inner = message_to_wire(ReadTsRequest(nonce=b"\x01" * 16))
        msg = ObjectMessage(obj="accounts/42", payload=inner)
        from repro.core.messages import message_from_wire

        again = message_from_wire(message_to_wire(msg))
        assert again == msg

    def test_non_envelope_discarded_by_replica(self, config):
        replica = MultiObjectReplica("replica:0", config)
        assert replica.handle("client:x", ReadTsRequest(nonce=b"n")) is None
        assert replica.envelope_discards == 1

    def test_garbage_payload_discarded(self, config):
        replica = MultiObjectReplica("replica:0", config)
        bad = ObjectMessage(obj="x", payload={"kind": "NOT-A-KIND"})
        assert replica.handle("client:x", bad) is None
        assert replica.envelope_discards == 1


class TestMultiObjectProtocol:
    def test_objects_are_independent(self, config):
        scheduler, network, replicas = build(config)
        client = MultiObjectClient("client:kv", config)
        node = MultiObjectClientNode(client, network, scheduler)
        node.run_script(
            [
                ("a", "write", ("client:kv", 1, "A")),
                ("b", "write", ("client:kv", 2, "B")),
                ("a", "read", None),
                ("b", "read", None),
            ]
        )
        scheduler.run(until=30, stop_when=lambda: node.done)
        assert node.done
        results = {step[0]: result for step, result in node.results if step[1] == "read"}
        assert results == {
            "a": ("client:kv", 1, "A"),
            "b": ("client:kv", 2, "B"),
        }

    def test_per_object_timestamps_independent(self, config):
        scheduler, network, replicas = build(config)
        client = MultiObjectClient("client:kv", config)
        node = MultiObjectClientNode(client, network, scheduler)
        node.run_script(
            [("a", "write", ("client:kv", i, None)) for i in range(3)]
            + [("b", "write", ("client:kv", 10, None))]
        )
        scheduler.run(until=30, stop_when=lambda: node.done)
        replica = replicas["replica:0"]
        assert replica.object_state("a").pcert.ts == Timestamp(3, "client:kv")
        assert replica.object_state("b").pcert.ts == Timestamp(1, "client:kv")

    def test_concurrent_ops_on_different_objects(self, config):
        """Steps on distinct objects overlap; per-object order is kept."""
        scheduler, network, _ = build(config)
        client = MultiObjectClient("client:kv", config)
        node = MultiObjectClientNode(client, network, scheduler, max_in_flight=4)
        script = [(f"obj-{i}", "write", ("client:kv", i, None)) for i in range(4)]
        node.run_script(script)
        # Before running: all four ops should already be in flight.
        scheduler.run(until=0.0001)
        assert sum(client.busy(f"obj-{i}") for i in range(4)) == 4
        scheduler.run(until=30, stop_when=lambda: node.done)
        assert node.done

    def test_sequential_per_object(self, config):
        scheduler, network, _ = build(config)
        client = MultiObjectClient("client:kv", config)
        node = MultiObjectClientNode(client, network, scheduler)
        node.run_script(
            [
                ("a", "write", ("client:kv", 1, "first")),
                ("a", "write", ("client:kv", 2, "second")),
                ("a", "read", None),
            ]
        )
        scheduler.run(until=30, stop_when=lambda: node.done)
        reads = [r for (step, r) in node.results if step[1] == "read"]
        assert reads == [("client:kv", 2, "second")]

    def test_two_clients_same_object(self, config):
        scheduler, network, _ = build(config)
        c1 = MultiObjectClient("client:one", config)
        c2 = MultiObjectClient("client:two", config)
        n1 = MultiObjectClientNode(c1, network, scheduler)
        n2 = MultiObjectClientNode(c2, network, scheduler)
        n1.run_script([("shared", "write", ("client:one", 1, None))])
        n2.run_script([("shared", "write", ("client:two", 1, None)),
                       ("shared", "read", None)])
        scheduler.run(until=30, stop_when=lambda: n1.done and n2.done)
        read = n2.results[-1][1]
        assert read in (("client:one", 1, None), ("client:two", 1, None))

    def test_optimized_replica_class(self, config):
        scheduler, network, replicas = build(
            config, replica_cls=OptimizedBftBcReplica
        )
        from repro.core import OptimizedBftBcClient

        client = MultiObjectClient(
            "client:kv", config, client_cls=OptimizedBftBcClient
        )
        node = MultiObjectClientNode(client, network, scheduler)
        node.run_script([("a", "write", ("client:kv", 1, None))])
        scheduler.run(until=30, stop_when=lambda: node.done)
        inner = client.object_client("a")
        assert inner.op.phases == 2  # fast path works per object


class TestCrossObjectReplayDefence:
    def test_certificate_from_other_object_rejected(self, config):
        """A WRITE with a prepare certificate earned on object A is discarded
        when replayed against object B."""
        scheduler, network, replicas = build(config)
        client = MultiObjectClient("client:kv", config)
        node = MultiObjectClientNode(client, network, scheduler)
        node.run_script([("a", "write", ("client:kv", 1, "A-data"))])
        scheduler.run(until=30, stop_when=lambda: node.done)

        # Steal the WRITE payload for object "a" and replay it under "b".
        replica = replicas["replica:0"]
        state_a = replica.object_state("a")
        cert_a = state_a.pcert
        assert not cert_a.is_genesis
        from repro.core.statements import write_request_statement
        from repro.core.messages import WriteRequest

        scoped_a = ScopedSignatureScheme(config.scheme, "a")
        statement = write_request_statement(("client:kv", 1, "A-data"), cert_a.to_wire())
        request = WriteRequest(
            value=("client:kv", 1, "A-data"),
            prepare_cert=cert_a,
            signature=scoped_a.sign("client:kv", __import__("repro.encoding", fromlist=["canonical_encode"]).canonical_encode(statement)),
        )
        replay = ObjectMessage(obj="b", payload=message_to_wire(request))
        reply = replica.handle("client:kv", replay)
        assert reply is None
        assert replica.object_state("b").data is None

    @pytest.mark.parametrize("scheme", ["hmac", "rsa"])
    def test_replay_rejected_under_both_backends(self, scheme):
        """Regression: the object scope must bind under HMAC *and* RSA.

        Both halves of a write are replayed from object ``a`` to object
        ``b``: the prepare-request signature (client-signed) and the
        prepare certificate (replica-signed).  Each must fail ``b``'s
        scoped verification, whichever signature backend is active — a
        backend that ignored the scope suffix would accept both.
        """
        config = make_system(f=1, scheme=scheme, seed=b"multi-replay")
        scheduler, network, replicas = build(config)
        client = MultiObjectClient("client:kv", config)
        node = MultiObjectClientNode(client, network, scheduler)
        node.run_script([("a", "write", ("client:kv", 1, "A-data"))])
        scheduler.run(until=30, stop_when=lambda: node.done)
        assert node.done

        replica = replicas["replica:0"]
        state_a = replica.object_state("a")
        cert_a = state_a.pcert
        assert not cert_a.is_genesis

        # Replica-signed half: the certificate's signatures were produced
        # under scope "a"; validating them under scope "b" must fail.
        from repro.core.verification import Verifier

        scoped_b = ScopedSignatureScheme(config.scheme, "b")
        verifier_b = Verifier(scoped_b, config.quorums)
        assert not verifier_b.certificate_valid(cert_a)
        scoped_a = ScopedSignatureScheme(config.scheme, "a")
        assert Verifier(scoped_a, config.quorums).certificate_valid(cert_a)

        # Client-signed half: a WRITE carrying the stolen certificate and a
        # scope-"a" request signature is silently discarded by object "b".
        from repro.core.messages import WriteRequest
        from repro.core.statements import write_request_statement
        from repro.encoding import canonical_encode

        value = ("client:kv", 1, "A-data")
        statement = write_request_statement(value, cert_a.to_wire())
        request = WriteRequest(
            value=value,
            prepare_cert=cert_a,
            signature=scoped_a.sign("client:kv", canonical_encode(statement)),
        )
        replay = ObjectMessage(obj="b", payload=message_to_wire(request))
        assert replica.handle("client:kv", replay) is None
        assert replica.object_state("b").data is None
        # And the same envelope is accepted back on its own object.
        assert replica.handle(
            "client:kv", ObjectMessage(obj="a", payload=message_to_wire(request))
        ) is not None


class TestPerObjectHistories:
    def test_each_object_history_linearizable(self, config):
        from repro.spec import check_register_linearizable

        scheduler, network, _ = build(config)
        c1 = MultiObjectClient("client:one", config)
        c2 = MultiObjectClient("client:two", config)
        n1 = MultiObjectClientNode(c1, network, scheduler, record_history=True)
        n2 = MultiObjectClientNode(c2, network, scheduler, record_history=True)
        n1.run_script(
            [
                ("a", "write", ("client:one", 1, None)),
                ("b", "write", ("client:one", 2, None)),
                ("a", "read", None),
            ]
        )
        n2.run_script(
            [
                ("a", "write", ("client:two", 3, None)),
                ("b", "read", None),
            ]
        )
        scheduler.run(until=60, stop_when=lambda: n1.done and n2.done)
        assert n1.done and n2.done
        # Merge both nodes' per-object histories and check each object.
        from repro.spec import History

        for obj in ("a", "b"):
            merged = History()
            events = []
            for node in (n1, n2):
                if obj in node.histories:
                    events.extend(node.histories[obj].events)
            events.sort(key=lambda e: e.time)
            merged.events = events
            report = check_register_linearizable(merged, obj=obj)
            assert report.ok, (obj, report.violation)
