"""Direct unit tests for the per-phase quorum rounds and reply collector."""

from __future__ import annotations

import pytest

from repro.core import make_system
from repro.core.messages import ReadTsRequest
from repro.core.operations import ReplyCollector
from repro.core.phases import QuorumRound


@pytest.fixture
def config():
    return make_system(f=1, seed=b"collector")


MSG = ReadTsRequest(nonce=b"\x01" * 16)


class TestReplyCollector:
    def test_accepts_valid_reply(self, config):
        collector = ReplyCollector(config, lambda s, m: m)
        assert collector.add("replica:0", MSG)
        assert collector.count == 1
        assert collector.responders() == {"replica:0"}

    def test_rejects_duplicate_sender(self, config):
        collector = ReplyCollector(config, lambda s, m: m)
        assert collector.add("replica:0", MSG)
        assert not collector.add("replica:0", MSG)
        assert collector.count == 1

    def test_first_reply_per_sender_wins(self, config):
        """A Byzantine replica cannot revise its vote within a phase."""
        seen = []
        collector = ReplyCollector(config, lambda s, m: (s, len(seen)))
        collector.add("replica:0", MSG)
        collector.add("replica:0", MSG)
        assert collector.replies["replica:0"] == ("replica:0", 0)

    def test_rejects_non_replicas(self, config):
        collector = ReplyCollector(config, lambda s, m: m)
        assert not collector.add("client:mallory", MSG)
        assert not collector.add("replica:99", MSG)
        assert collector.count == 0

    def test_validator_rejection(self, config):
        collector = ReplyCollector(config, lambda s, m: None)
        assert not collector.add("replica:0", MSG)
        # A later valid reply from the same sender is still accepted: the
        # invalid one did not consume the sender's slot.
        collector._validator = lambda s, m: m
        assert collector.add("replica:0", MSG)

    def test_quorum_threshold(self, config):
        collector = ReplyCollector(config, lambda s, m: m)
        for index in range(2):
            collector.add(f"replica:{index}", MSG)
        assert not collector.have_quorum
        collector.add("replica:2", MSG)
        assert collector.have_quorum

    def test_missing_lists_non_responders(self, config):
        collector = ReplyCollector(config, lambda s, m: m)
        collector.add("replica:1", MSG)
        assert collector.missing() == ("replica:0", "replica:2", "replica:3")

    def test_validator_return_value_stored(self, config):
        collector = ReplyCollector(config, lambda s, m: ("derived", s))
        collector.add("replica:2", MSG)
        assert collector.replies["replica:2"] == ("derived", "replica:2")


class TestQuorumRound:
    def test_collector_is_a_quorum_round(self, config):
        """One shared implementation (one-vote guard lives in one place)."""
        assert issubclass(ReplyCollector, QuorumRound)

    def test_begin_targets_all_replicas(self, config):
        round_ = QuorumRound(config, MSG, lambda s, m: m)
        sends = round_.begin()
        assert [s.dest for s in sends] == list(config.quorums.replica_ids)
        assert all(s.message is MSG for s in sends)

    def test_prefer_quorum_trims_initial_batch(self, config):
        config.prefer_quorum = True
        round_ = QuorumRound(config, MSG, lambda s, m: m)
        assert len(round_.begin()) == config.quorum_size

    def test_retransmit_targets_only_missing(self, config):
        round_ = QuorumRound(config, MSG, lambda s, m: m)
        round_.begin()
        round_.add("replica:1", MSG)
        assert [s.dest for s in round_.retransmit()] == [
            "replica:0",
            "replica:2",
            "replica:3",
        ]

    def test_credit_counts_toward_quorum_and_skips_retransmit(self, config):
        round_ = QuorumRound(config, MSG, lambda s, m: m)
        round_.credit("replica:0", "vouch")
        round_.credit("replica:1", "vouch")
        assert round_.count == 2
        assert "replica:0" not in round_.missing()
        round_.add("replica:2", MSG)
        assert round_.have_quorum

    def test_credit_cannot_double_vote(self, config):
        """Neither two credits nor a credit plus a reply give two votes."""
        round_ = QuorumRound(config, MSG, lambda s, m: m)
        assert round_.credit("replica:0", "first")
        assert not round_.credit("replica:0", "second")
        assert not round_.add("replica:0", MSG)
        assert round_.replies["replica:0"] == "first"
        assert round_.count == 1

    def test_credit_rejects_non_replicas(self, config):
        round_ = QuorumRound(config, MSG, lambda s, m: m)
        assert not round_.credit("client:mallory", "vote")
        assert not round_.credit("replica:99", "vote")
        assert round_.count == 0

    def test_prefill_seeds_votes(self, config):
        round_ = QuorumRound(
            config,
            MSG,
            lambda s, m: m,
            targets=("replica:2", "replica:3"),
            prefill={"replica:0": None, "replica:1": None},
        )
        assert round_.count == 2
        assert [s.dest for s in round_.begin()] == ["replica:2", "replica:3"]
        assert set(round_.missing()) == {"replica:2", "replica:3"}

    def test_explicit_threshold(self, config):
        round_ = QuorumRound(config, MSG, lambda s, m: m, threshold=1)
        assert not round_.have_quorum
        round_.add("replica:3", MSG)
        assert round_.have_quorum


class TestCostModelCoverage:
    def test_read_bytes_with_write_back(self):
        from repro.analysis import CostModel
        from repro.core import QuorumSystem

        model = CostModel(QuorumSystem.bft_bc(1))
        assert model.read_bytes(write_back=True) > model.read_bytes()

    def test_strong_write_phases_constant(self):
        from repro.analysis import WRITE_PHASES

        normal, worst = WRITE_PHASES["strong"]
        assert normal == 3 and worst == 5

    def test_optimized_bytes_below_base(self):
        from repro.analysis import CostModel
        from repro.core import QuorumSystem

        model = CostModel(QuorumSystem.bft_bc(2))
        assert model.write_bytes("optimized") < model.write_bytes("base")
