"""Direct unit tests for the per-phase reply collector."""

from __future__ import annotations

import pytest

from repro.core import make_system
from repro.core.messages import ReadTsRequest
from repro.core.operations import ReplyCollector


@pytest.fixture
def config():
    return make_system(f=1, seed=b"collector")


MSG = ReadTsRequest(nonce=b"\x01" * 16)


class TestReplyCollector:
    def test_accepts_valid_reply(self, config):
        collector = ReplyCollector(config, lambda s, m: m)
        assert collector.add("replica:0", MSG)
        assert collector.count == 1
        assert collector.responders() == {"replica:0"}

    def test_rejects_duplicate_sender(self, config):
        collector = ReplyCollector(config, lambda s, m: m)
        assert collector.add("replica:0", MSG)
        assert not collector.add("replica:0", MSG)
        assert collector.count == 1

    def test_first_reply_per_sender_wins(self, config):
        """A Byzantine replica cannot revise its vote within a phase."""
        seen = []
        collector = ReplyCollector(config, lambda s, m: (s, len(seen)))
        collector.add("replica:0", MSG)
        collector.add("replica:0", MSG)
        assert collector.replies["replica:0"] == ("replica:0", 0)

    def test_rejects_non_replicas(self, config):
        collector = ReplyCollector(config, lambda s, m: m)
        assert not collector.add("client:mallory", MSG)
        assert not collector.add("replica:99", MSG)
        assert collector.count == 0

    def test_validator_rejection(self, config):
        collector = ReplyCollector(config, lambda s, m: None)
        assert not collector.add("replica:0", MSG)
        # A later valid reply from the same sender is still accepted: the
        # invalid one did not consume the sender's slot.
        collector._validator = lambda s, m: m
        assert collector.add("replica:0", MSG)

    def test_quorum_threshold(self, config):
        collector = ReplyCollector(config, lambda s, m: m)
        for index in range(2):
            collector.add(f"replica:{index}", MSG)
        assert not collector.have_quorum
        collector.add("replica:2", MSG)
        assert collector.have_quorum

    def test_missing_lists_non_responders(self, config):
        collector = ReplyCollector(config, lambda s, m: m)
        collector.add("replica:1", MSG)
        assert collector.missing() == ("replica:0", "replica:2", "replica:3")

    def test_validator_return_value_stored(self, config):
        collector = ReplyCollector(config, lambda s, m: ("derived", s))
        collector.add("replica:2", MSG)
        assert collector.replies["replica:2"] == ("derived", "replica:2")


class TestCostModelCoverage:
    def test_read_bytes_with_write_back(self):
        from repro.analysis import CostModel
        from repro.core import QuorumSystem

        model = CostModel(QuorumSystem.bft_bc(1))
        assert model.read_bytes(write_back=True) > model.read_bytes()

    def test_strong_write_phases_constant(self):
        from repro.analysis import WRITE_PHASES

        normal, worst = WRITE_PHASES["strong"]
        assert normal == 3 and worst == 5

    def test_optimized_bytes_below_base(self):
        from repro.analysis import CostModel
        from repro.core import QuorumSystem

        model = CostModel(QuorumSystem.bft_bc(2))
        assert model.write_bytes("optimized") < model.write_bytes("base")
