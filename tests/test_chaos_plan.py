"""Episode-plan generation: determinism, serialisation, model discipline.

Every generated plan must stay inside the §2 fault assumptions — at most
``f`` replicas Byzantine-or-down at any instant, partitions always healed,
``crash_restart`` only where a durable store can rebuild the replica — so
that a violation found by the campaign is always a finding, never the
generator cheating the model.
"""

from __future__ import annotations

import pytest

from repro.chaos import CampaignConfig, EpisodePlan, build_schedule, generate_plan
from repro.chaos.plan import CLIENT_ATTACKS, REPLICA_BEHAVIOURS
from repro.errors import SimulationError


class TestGeneratePlan:
    def test_deterministic_per_episode(self):
        config = CampaignConfig(seed=11, episodes=10)
        for episode in range(10):
            assert generate_plan(config, episode) == generate_plan(config, episode)

    def test_different_seeds_differ(self):
        plans_a = [generate_plan(CampaignConfig(seed=1), e) for e in range(10)]
        plans_b = [generate_plan(CampaignConfig(seed=2), e) for e in range(10)]
        assert plans_a != plans_b

    def test_variants_round_robin(self):
        config = CampaignConfig(seed=3, variants=("base", "strong"))
        assert generate_plan(config, 0).variant == "base"
        assert generate_plan(config, 1).variant == "strong"
        assert generate_plan(config, 2).variant == "base"

    def test_fault_budget_respected(self):
        """Byzantine replicas plus concurrently-down correct replicas never
        exceed f, and every crash window is disjoint from the others."""
        for seed in range(6):
            config = CampaignConfig(seed=seed, episodes=20)
            for episode in range(20):
                plan = generate_plan(config, episode)
                assert len(plan.byzantine_replicas) <= plan.f
                windows = []
                open_since = {}
                for spec in plan.faults:
                    if spec["op"] == "crash":
                        open_since[spec["node"]] = spec["time"]
                    elif spec["op"] == "recover":
                        windows.append((open_since.pop(spec["node"]), spec["time"]))
                    elif spec["op"] == "crash_restart":
                        windows.append(
                            (spec["time"], spec["time"] + spec["down_for"])
                        )
                assert not open_since, "every crash is recovered"
                crash_budget = plan.f - len(plan.byzantine_replicas)
                for start, end in windows:
                    overlapping = sum(
                        1 for s, e in windows if s < end and start < e
                    )
                    assert overlapping <= max(crash_budget, 0)

    def test_partitions_always_heal(self):
        for seed in range(6):
            config = CampaignConfig(seed=seed)
            for episode in range(20):
                plan = generate_plan(config, episode)
                cuts = [s for s in plan.faults if s["op"] == "partition"]
                heals = [s for s in plan.faults if s["op"] == "heal"]
                assert len(cuts) == len(heals)
                for cut, heal in zip(cuts, heals):
                    assert heal["time"] > cut["time"]

    def test_crash_restart_only_with_durable_store(self):
        for seed in range(8):
            config = CampaignConfig(seed=seed)
            for episode in range(20):
                plan = generate_plan(config, episode)
                if any(s["op"] == "crash_restart" for s in plan.faults):
                    assert plan.store == "filelog"

    def test_attacks_and_behaviours_from_catalogue(self):
        for seed in range(6):
            config = CampaignConfig(seed=seed)
            for episode in range(20):
                plan = generate_plan(config, episode)
                if plan.attack is not None:
                    assert plan.attack in CLIENT_ATTACKS[plan.variant]
                for kind in plan.byzantine_replicas.values():
                    assert kind in REPLICA_BEHAVIOURS + ("silent-optimized",)


class TestPlanSerialisation:
    def test_json_round_trip(self):
        plan = generate_plan(CampaignConfig(seed=9), 4)
        assert EpisodePlan.from_json(plan.to_json()) == plan

    def test_rejects_unknown_format(self):
        data = generate_plan(CampaignConfig(seed=9), 0).to_json()
        data["format"] = "repro-chaos/999"
        with pytest.raises(SimulationError):
            EpisodePlan.from_json(data)

    def test_rejects_unknown_fields(self):
        data = generate_plan(CampaignConfig(seed=9), 0).to_json()
        data["surprise"] = 1
        with pytest.raises(SimulationError):
            EpisodePlan.from_json(data)

    def test_replace_shares_nothing_mutable(self):
        plan = generate_plan(CampaignConfig(seed=9), 1)
        pristine = generate_plan(CampaignConfig(seed=9), 1)
        copy = plan.replace(clients=1)
        copy.profile["drop_rate"] = 0.99
        if copy.faults:
            copy.faults[0]["time"] = 99.0
        copy.byzantine_replicas["0"] = "crashed"
        assert plan.profile == pristine.profile
        assert plan.faults == pristine.faults
        assert plan.byzantine_replicas == pristine.byzantine_replicas


class TestBuildSchedule:
    def test_materialises_every_op(self):
        schedule = build_schedule(
            [
                {"op": "crash", "time": 0.1, "node": "replica:0"},
                {"op": "recover", "time": 0.5, "node": "replica:0"},
                {"op": "partition", "time": 0.2, "a": "replica:1", "b": "client:w0"},
                {"op": "heal", "time": 0.4, "a": "replica:1", "b": "client:w0"},
                {
                    "op": "degrade",
                    "time": 0.3,
                    "src": "replica:2",
                    "dst": "client:w0",
                    "profile": {"drop_rate": 0.5},
                },
                {
                    "op": "crash_restart",
                    "time": 1.0,
                    "node": "replica:3",
                    "down_for": 0.5,
                },
            ]
        )
        # Five network-level actions, plus crash_restart's two node-level
        # actions (the crash and the recovering restart).
        assert len(schedule.actions) == 5
        assert len(schedule.node_actions) == 2

    def test_unknown_op_raises(self):
        with pytest.raises(SimulationError, match="unknown fault op"):
            build_schedule([{"op": "meteor", "time": 0.1}])


class TestCorruptionFaults:
    """The PR-10 state-corruption ops stay inside the §2 fault budget."""

    def test_victim_spends_a_unit_of_f(self):
        """A corrupted replica counts against the same budget as crashes
        and Byzantine substitutions: at most one victim per episode, never
        also Byzantine, never also crashed."""
        from repro.chaos.oracles import CORRUPTION_OPS

        for seed in range(6):
            config = CampaignConfig(seed=seed, episodes=20)
            for episode in range(20):
                plan = generate_plan(config, episode)
                corrupted = [
                    s for s in plan.faults if s["op"] in CORRUPTION_OPS
                ]
                assert len(corrupted) <= 1
                crashed = {
                    s["node"]
                    for s in plan.faults
                    if s["op"] in ("crash", "crash_restart")
                }
                byzantine = {
                    f"replica:{index}" for index in plan.byzantine_replicas
                }
                for spec in corrupted:
                    assert spec["node"] not in crashed
                    assert spec["node"] not in byzantine
                assert (
                    len(byzantine) + len(corrupted) + (1 if crashed else 0)
                    <= plan.f
                )

    def test_disk_ops_only_with_durable_store(self):
        for seed in range(8):
            config = CampaignConfig(seed=seed, episodes=20)
            for episode in range(20):
                plan = generate_plan(config, episode)
                for spec in plan.faults:
                    if spec["op"] in ("wal_bitflip", "snapshot_truncate"):
                        assert plan.store == "filelog"

    def test_corruption_can_be_disabled(self):
        from repro.chaos.oracles import CORRUPTION_OPS

        config = CampaignConfig(seed=7, episodes=30, corruption=False)
        for episode in range(30):
            plan = generate_plan(config, episode)
            assert not any(s["op"] in CORRUPTION_OPS for s in plan.faults)

    def test_generator_emits_corruption_sometimes(self):
        from repro.chaos.oracles import CORRUPTION_OPS

        config = CampaignConfig(seed=7, episodes=40)
        hits = sum(
            1
            for episode in range(40)
            if any(
                s["op"] in CORRUPTION_OPS
                for s in generate_plan(config, episode).faults
            )
        )
        assert hits > 0

    def test_from_json_defaults_audit_interval(self):
        """Artifacts recorded before the stabilization loop load cleanly."""
        data = generate_plan(CampaignConfig(seed=9), 0).to_json()
        del data["audit_interval"]
        plan = EpisodePlan.from_json(data)
        assert plan.audit_interval == 0.25

    def test_build_schedule_materialises_corruption_ops(self):
        schedule = build_schedule(
            [
                {
                    "op": "wal_bitflip",
                    "time": 0.4,
                    "node": "replica:1",
                    "position": 0.25,
                    "flip": 0x80,
                },
                {
                    "op": "snapshot_truncate",
                    "time": 0.5,
                    "node": "replica:2",
                    "keep": 0.3,
                },
                {
                    "op": "state_perturb",
                    "time": 0.6,
                    "node": "replica:3",
                    "target": "write_ts",
                    "seed": 17,
                },
            ]
        )
        assert len(schedule.node_actions) == 3
