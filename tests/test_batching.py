"""Unit tests for the cross-object batching layer (core.batching)."""

from __future__ import annotations

import pytest

from repro.core.batching import (
    BatchCoalescer,
    BatchEnvelope,
    BatchStats,
    expand_message,
)
from repro.core.messages import (
    ReadTsRequest,
    message_from_wire,
    message_to_wire,
    message_wire_bytes,
)
from repro.core.phases import Send
from repro.encoding import canonical_decode, canonical_encode
from repro.errors import ProtocolError


def _req(nonce: bytes) -> ReadTsRequest:
    return ReadTsRequest(nonce=nonce)


class TestBatchEnvelope:
    def test_wire_round_trip(self):
        batch = BatchEnvelope(
            payloads=(message_wire_bytes(_req(b"n1")), message_wire_bytes(_req(b"n2")))
        )
        decoded = message_from_wire(
            canonical_decode(canonical_encode(message_to_wire(batch)))
        )
        assert decoded == batch
        assert len(decoded) == 2

    def test_rejects_empty_batch(self):
        with pytest.raises(ProtocolError):
            BatchEnvelope.from_wire({"msgs": ()})

    def test_rejects_non_bytes_payloads(self):
        with pytest.raises(ProtocolError):
            BatchEnvelope.from_wire({"msgs": ("not-bytes",)})

    def test_rejects_non_tuple(self):
        with pytest.raises(ProtocolError):
            BatchEnvelope.from_wire({"msgs": b"raw"})


class TestExpandMessage:
    def test_plain_message_passes_through(self):
        request = _req(b"n")
        assert expand_message(request) == [request]

    def test_batch_unpacks_in_order(self):
        inner = [_req(b"n1"), _req(b"n2"), _req(b"n3")]
        batch = BatchEnvelope(payloads=tuple(message_wire_bytes(m) for m in inner))
        assert expand_message(batch) == inner

    def test_malformed_payload_skipped_and_counted(self):
        good = _req(b"ok")
        stats = BatchStats()
        batch = BatchEnvelope(
            payloads=(b"\xffgarbage", message_wire_bytes(good))
        )
        assert expand_message(batch, stats) == [good]
        assert stats.malformed_payloads == 1

    def test_nested_batch_discarded(self):
        inner = BatchEnvelope(payloads=(message_wire_bytes(_req(b"n")),))
        outer = BatchEnvelope(payloads=(message_wire_bytes(inner),))
        stats = BatchStats()
        assert expand_message(outer, stats) == []
        assert stats.malformed_payloads == 1


class TestBatchCoalescer:
    def test_merges_same_destination(self):
        coalescer = BatchCoalescer()
        sends = [
            Send(dest="replica:0", message=_req(b"n1")),
            Send(dest="replica:0", message=_req(b"n2")),
        ]
        out = coalescer.coalesce(sends)
        assert len(out) == 1
        assert out[0].dest == "replica:0"
        assert isinstance(out[0].message, BatchEnvelope)
        assert expand_message(out[0].message) == [s.message for s in sends]

    def test_distinct_destinations_pass_through_unchanged(self):
        coalescer = BatchCoalescer()
        sends = [
            Send(dest=f"replica:{i}", message=_req(b"n%d" % i)) for i in range(4)
        ]
        assert coalescer.coalesce(list(sends)) == sends
        assert coalescer.stats.frames_saved == 0

    def test_preserves_first_appearance_order(self):
        coalescer = BatchCoalescer()
        sends = [
            Send(dest="replica:1", message=_req(b"a")),
            Send(dest="replica:0", message=_req(b"b")),
            Send(dest="replica:1", message=_req(b"c")),
        ]
        out = coalescer.coalesce(sends)
        assert [s.dest for s in out] == ["replica:1", "replica:0"]

    def test_never_nests_envelopes(self):
        coalescer = BatchCoalescer()
        batch = BatchEnvelope(payloads=(message_wire_bytes(_req(b"n")),))
        sends = [
            Send(dest="replica:0", message=batch),
            Send(dest="replica:0", message=_req(b"m")),
        ]
        out = coalescer.coalesce(sends)
        assert out == sends  # group contains a batch: forwarded as-is

    def test_empty_and_singleton_rounds(self):
        coalescer = BatchCoalescer()
        assert coalescer.coalesce([]) == []
        single = [Send(dest="replica:0", message=_req(b"n"))]
        assert coalescer.coalesce(list(single)) == single

    def test_stats_accounting(self):
        stats = BatchStats()
        coalescer = BatchCoalescer(stats)
        sends = [
            Send(dest="replica:0", message=_req(b"n1")),
            Send(dest="replica:0", message=_req(b"n2")),
            Send(dest="replica:1", message=_req(b"n3")),
        ]
        coalescer.coalesce(sends)
        assert stats.sends_in == 3
        assert stats.frames_out == 2
        assert stats.frames_saved == 1
        assert stats.batches == 1
        assert stats.messages_batched == 2
        assert stats.batch_sizes == {2: 1}
        assert stats.mean_batch_size == 2.0
        stats.reset()
        assert stats.sends_in == 0 and not stats.batch_sizes
