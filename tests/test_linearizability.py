"""Tests for the unique-value register linearizability checker."""

from __future__ import annotations

from repro.spec import History, Invocation, Response, check_register_linearizable


def inv(client, op, arg=None, t=0.0):
    return Invocation(client=client, obj="x", op=op, arg=arg, time=t)


def rsp(client, value=None, t=0.0):
    return Response(client=client, obj="x", value=value, time=t)


def build(*events):
    h = History()
    h.events = list(events)  # allow arbitrary times for test convenience
    return h


class TestAccepts:
    def test_empty_history(self):
        assert check_register_linearizable(build()).ok

    def test_sequential_write_then_read(self):
        h = build(
            inv("a", "write", "v1", t=0), rsp("a", t=1),
            inv("a", "read", t=2), rsp("a", "v1", t=3),
        )
        assert check_register_linearizable(h).ok

    def test_read_of_initial_value(self):
        h = build(inv("a", "read", t=0), rsp("a", None, t=1))
        assert check_register_linearizable(h, initial_value=None).ok

    def test_concurrent_reads_may_split_around_concurrent_write(self):
        # w(v1) overlaps both reads: one sees old, one sees new — fine.
        h = build(
            inv("w", "write", "v1", t=0),
            inv("r1", "read", t=1), rsp("r1", None, t=2),
            inv("r2", "read", t=3), rsp("r2", "v1", t=4),
            rsp("w", t=5),
        )
        assert check_register_linearizable(h).ok

    def test_read_from_pending_write_allowed(self):
        # The write never completed but its value may be visible.
        h = build(
            inv("w", "write", "v1", t=0),
            inv("r", "read", t=1), rsp("r", "v1", t=2),
        )
        assert check_register_linearizable(h).ok

    def test_interleaved_writers(self):
        h = build(
            inv("a", "write", "a1", t=0), rsp("a", t=1),
            inv("b", "write", "b1", t=2), rsp("b", t=3),
            inv("a", "read", t=4), rsp("a", "b1", t=5),
        )
        assert check_register_linearizable(h).ok


class TestRejects:
    def test_stale_read_after_newer_write(self):
        # w(v1) ; w(v2) ; read -> v1 is stale: v2 overwrote it.
        h = build(
            inv("a", "write", "v1", t=0), rsp("a", t=1),
            inv("a", "write", "v2", t=2), rsp("a", t=3),
            inv("r", "read", t=4), rsp("r", "v1", t=5),
        )
        report = check_register_linearizable(h)
        assert not report.ok
        assert "cycle" in report.violation

    def test_value_from_nowhere(self):
        h = build(inv("r", "read", t=0), rsp("r", "ghost", t=1))
        report = check_register_linearizable(h)
        assert not report.ok
        assert "no write produced" in report.violation

    def test_new_old_inversion_between_readers(self):
        # r1 returns v2 and completes before r2 starts, but r2 returns v1:
        # the classic atomicity violation.
        h = build(
            inv("w", "write", "v1", t=0), rsp("w", t=1),
            inv("w", "write", "v2", t=2), rsp("w", t=3),
            inv("r1", "read", t=4), rsp("r1", "v2", t=5),
            inv("r2", "read", t=6), rsp("r2", "v1", t=7),
        )
        assert not check_register_linearizable(h).ok

    def test_read_from_the_future(self):
        # The read completes before the write is even invoked.
        h = build(
            inv("r", "read", t=0), rsp("r", "v1", t=1),
            inv("w", "write", "v1", t=2), rsp("w", t=3),
        )
        report = check_register_linearizable(h)
        assert not report.ok

    def test_duplicate_write_values_rejected(self):
        h = build(
            inv("a", "write", "same", t=0), rsp("a", t=1),
            inv("b", "write", "same", t=2), rsp("b", t=3),
        )
        report = check_register_linearizable(h)
        assert not report.ok
        assert "duplicate" in report.violation

    def test_initial_value_after_write_completed(self):
        # A read entirely after a completed write cannot return the initial
        # value any more.
        h = build(
            inv("w", "write", "v1", t=0), rsp("w", t=1),
            inv("r", "read", t=2), rsp("r", None, t=3),
        )
        assert not check_register_linearizable(h, initial_value=None).ok


class TestObjFilter:
    def test_other_objects_ignored(self):
        h = build(
            inv("a", "write", "v1", t=0), rsp("a", t=1),
            Invocation(client="b", obj="y", op="read", arg=None, time=2),
            Response(client="b", obj="y", value="ghost", time=3),
        )
        assert check_register_linearizable(h, obj="x").ok
        assert not check_register_linearizable(h, obj="y").ok
