"""Soak tests: larger, longer, nastier mixed scenarios.

These combine everything at once — many clients, harsh network, Byzantine
replicas, Byzantine clients, faults mid-run — and check full correctness at
the end.  They are the closest thing to the paper's deployment story.
"""

from __future__ import annotations

import pytest

from repro import LinkProfile, build_cluster, count_lurking_writes
from repro.byzantine import (
    Colluder,
    CrashedReplica,
    EquivocationAttack,
    LurkingWriteAttack,
    PromiscuousReplica,
)
from repro.sim import FaultSchedule, make_scripts, read_script, write_script
from repro.spec import check_bft_linearizable, check_register_linearizable


class TestBigHonestWorkloads:
    def test_five_clients_harsh_network(self):
        cluster = build_cluster(
            f=1,
            seed=200,
            profile=LinkProfile(
                drop_rate=0.12,
                duplicate_rate=0.05,
                corrupt_rate=0.01,
                max_delay=0.03,
            ),
        )
        names = [f"client:w{i}" for i in range(5)]
        scripts = make_scripts(names, 10, write_fraction=0.5, seed=9)
        cluster.run_scripts(
            {n.split(":")[1]: s for n, s in scripts.items()}, max_time=600
        )
        assert cluster.metrics.operations == 50
        report = check_register_linearizable(cluster.history)
        assert report.ok, report.violation

    def test_f2_optimized_with_rolling_faults(self):
        cluster = build_cluster(f=2, variant="optimized", seed=201)
        schedule = FaultSchedule()
        for index, rid in enumerate(cluster.config.quorums.replica_ids[:2]):
            schedule.crash(0.1 + 0.3 * index, rid)
            schedule.recover(0.25 + 0.3 * index, rid)
        cluster.install_faults(schedule)
        names = [f"client:w{i}" for i in range(4)]
        scripts = make_scripts(names, 8, write_fraction=0.6, seed=3)
        cluster.run_scripts(
            {n.split(":")[1]: s for n, s in scripts.items()},
            think_time=0.02,
            max_time=600,
        )
        assert cluster.metrics.operations == 32
        report = check_register_linearizable(cluster.history)
        assert report.ok, report.violation


class TestKitchenSink:
    def test_everything_at_once(self):
        """f=2 cluster with one crashed + one promiscuous replica, an
        equivocating client, a lurking-write client with colluder, loss and
        duplication, plus four honest clients — and the history still
        satisfies Definition 1."""
        cluster = build_cluster(
            f=2,
            seed=202,
            profile=LinkProfile(drop_rate=0.05, duplicate_rate=0.03, max_delay=0.02),
            replica_overrides={0: CrashedReplica, 6: PromiscuousReplica},
        )
        equivocator = EquivocationAttack(cluster, "eq-evil")
        equivocator.start()
        lurker = LurkingWriteAttack(cluster, "lw-evil", warmup=1, extra_attempts=1)
        lurker.start()

        names = [f"client:g{i}" for i in range(4)]
        scripts = make_scripts(names, 6, write_fraction=0.5, seed=5)
        cluster.run_scripts(
            {n.split(":")[1]: s for n, s in scripts.items()},
            think_time=0.05,
            max_time=900,
        )

        # The lurker leaves; its colluder replays; readers keep reading.
        lurker.stop()
        if lurker.hoard:
            Colluder(cluster, "colluder", lurker.hoard).start()
        reader = cluster.add_client("late-reader")
        reader.run_script(read_script(3), start_delay=0.3, think_time=0.1)
        cluster.run(max_time=900)

        assert cluster.metrics.operations == 4 * 6 + 3
        # Lemma 1(3) is scoped to timestamps ABOVE the completed state
        # (t > tsmax): once honest writes supersede the attacker's
        # timestamp, replicas may sign a second value for it (phase-2
        # step 5 replies even when the entry is stale) — harmlessly, since
        # every read quorum contains a correct replica with newer state.
        if equivocator.quorums_reached > 1:
            completed = max(r.write_ts for r in cluster.replicas.values())
            for cert in equivocator.certificates.values():
                assert cert.ts <= completed
        # Likewise Lemma 1(2): with honest writes racing past the attacker,
        # it may hoard several certificates, but at most ONE sits above the
        # completed state — the rest can never win a read again.
        completed = max(r.write_ts for r in cluster.replicas.values())
        fresh_hoard = [c for c in lurker.hoard if c.ts > completed]
        assert len(fresh_hoard) <= 1
        assert count_lurking_writes(cluster.history, "client:lw-evil") <= 1
        result = check_bft_linearizable(
            cluster.history,
            max_b=1,
            bad_clients={"client:lw-evil", "client:eq-evil"},
        )
        assert result.ok, result.violation

    def test_long_alternating_session_strong_variant(self):
        from repro.sim import alternating_script

        cluster = build_cluster(f=1, variant="strong", seed=203)
        cluster.run_scripts(
            {
                "a": alternating_script("client:a", 10),
                "b": alternating_script("client:b", 10),
            },
            max_time=600,
        )
        assert cluster.metrics.operations == 40
        report = check_register_linearizable(cluster.history)
        assert report.ok, report.violation
        # Reads stayed within the paper's two-phase bound throughout.
        assert max(s.phases for s in cluster.metrics.by_kind("read")) <= 2
