"""The committed chaos corpus replays green.

``traces/chaos/`` holds the deepest *surviving* episodes found by the
seed-7 campaign — schedules with Byzantine replicas, client attacks,
crash/restarts, and hostile links that the protocol nonetheless handled
correctly.  Their green replay is a regression floor: a code change that
turns any of them red has made the protocol less resilient than the
checked-in evidence says it is.

The corpus mixes two artifact formats: single-group episodes
(``repro-chaos-artifact/*``) and sharded reconfiguration episodes
(``repro-chaos-shard-artifact/*``); each replays through its own engine.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.chaos import replay_artifact, replay_shard_artifact
from repro.chaos.shard import SHARD_ARTIFACT_FORMAT

TRACES = pathlib.Path(__file__).resolve().parent.parent / "traces" / "chaos"
CORPUS = sorted(TRACES.glob("*.json"))


def _is_shard(path: pathlib.Path) -> bool:
    data = json.loads(path.read_text(encoding="utf-8"))
    return data.get("format") == SHARD_ARTIFACT_FORMAT


SINGLE = [p for p in CORPUS if not _is_shard(p)]
SHARDED = [p for p in CORPUS if _is_shard(p)]


def test_corpus_is_committed():
    assert len(SINGLE) >= 2, "the chaos corpus must ship with the repo"
    assert len(SHARDED) >= 1, "a shard reconfiguration artifact must ship too"


@pytest.mark.parametrize("path", SINGLE, ids=lambda p: p.stem)
def test_corpus_artifact_replays_green(path):
    outcome = replay_artifact(path)
    assert outcome.matches, (
        f"{path.name} diverged: expected {outcome.expected}, "
        f"got {outcome.actual}"
    )
    assert outcome.result.ok


@pytest.mark.parametrize("path", SHARDED, ids=lambda p: p.stem)
def test_corpus_shard_artifact_replays_green(path):
    outcome = replay_shard_artifact(path)
    assert outcome.matches, (
        f"{path.name} diverged: expected {outcome.expected}, "
        f"got {outcome.actual}"
    )
    assert outcome.result.ok
