"""The committed chaos corpus replays green.

``traces/chaos/`` holds the deepest *surviving* episodes found by the
seed-7 campaign — schedules with Byzantine replicas, client attacks,
crash/restarts, and hostile links that the protocol nonetheless handled
correctly.  Their green replay is a regression floor: a code change that
turns any of them red has made the protocol less resilient than the
checked-in evidence says it is.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.chaos import replay_artifact

CORPUS = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "traces" / "chaos").glob(
        "*.json"
    )
)


def test_corpus_is_committed():
    assert len(CORPUS) >= 2, "the chaos corpus must ship with the repo"


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_corpus_artifact_replays_green(path):
    outcome = replay_artifact(path)
    assert outcome.matches, (
        f"{path.name} diverged: expected {outcome.expected}, "
        f"got {outcome.actual}"
    )
    assert outcome.result.ok
