"""The unified observability layer: spans, histograms, exporters, shims.

Covers the redesigned single-entry instrumentation API:

* span completeness — one full strong write produces exactly one op span
  and one span per protocol phase, correctly parented, on **both** the
  deterministic simulator and the asyncio TCP transport;
* latency histogram algebra — merge/percentile properties (hypothesis);
* exporters — JSON-lines spans and Prometheus-style text;
* the null fast path — disabled instrumentation allocates nothing;
* the legacy ``MetricsCollector.attach_*`` shims — deprecation plus the
  double-attach regression (previously a silent overwrite).
"""

from __future__ import annotations

import asyncio
import json
from collections import Counter

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    AsyncClient,
    BftBcReplica,
    Instrumentation,
    ReplicaServer,
    StrongBftBcClient,
    build_cluster,
    make_system,
    read_script,
    write_script,
)
from repro.errors import ReproError
from repro.obs import (
    NULL_SPAN,
    InMemorySpanRecorder,
    LatencyHistogram,
    ObservabilityError,
    render_phase_table,
    render_prometheus,
    spans_to_jsonl,
)
from repro.sim import MetricsCollector

WRITE_PHASES = ("READ-TS", "PREPARE", "WRITE")


def spans_by_kind(spans):
    grouped = {}
    for span in spans:
        grouped.setdefault(span.kind, []).append(span)
    return grouped


class TestSpanCompletenessSim:
    def run_strong(self, writes=1, reads=0):
        instr = Instrumentation()
        cluster = build_cluster(
            f=1, variant="strong", seed=11, instrumentation=instr
        )
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", writes) + read_script(reads))
        cluster.run(max_time=120)
        return instr

    def test_one_write_emits_every_phase_exactly_once(self):
        instr = self.run_strong(writes=1)
        grouped = spans_by_kind(instr.spans())
        ops = grouped["op"]
        assert [span.name for span in ops] == ["write"]
        phases = Counter(span.name for span in grouped["phase"])
        assert phases == Counter(WRITE_PHASES)

    def test_phase_spans_parent_to_the_op_span(self):
        instr = self.run_strong(writes=1)
        grouped = spans_by_kind(instr.spans())
        (op,) = grouped["op"]
        for phase in grouped["phase"]:
            assert phase.parent_id == op.span_id
            assert phase.trace_id == op.trace_id
            assert op.start <= phase.start <= phase.end <= op.end

    def test_read_emits_one_read_phase(self):
        instr = self.run_strong(writes=0, reads=1)
        grouped = spans_by_kind(instr.spans())
        assert [span.name for span in grouped["op"]] == ["read"]
        assert [span.name for span in grouped["phase"]] == ["READ"]

    def test_handler_spans_cover_every_request_kind(self):
        instr = self.run_strong(writes=1)
        grouped = spans_by_kind(instr.spans())
        handled = Counter(span.name for span in grouped["handler"])
        # 4 replicas (f=1) each handle every broadcast phase once: no
        # retransmits on the loss-free default profile.
        for kind in WRITE_PHASES:
            assert handled[kind] == 4, handled

    def test_histograms_record_virtual_time_series(self):
        instr = self.run_strong(writes=2, reads=1)
        assert instr.histograms["op.write"].count == 2
        assert instr.histograms["op.read"].count == 1
        for kind in WRITE_PHASES:
            assert instr.histograms[f"phase.{kind}"].count == 2
        # Virtual-time durations are positive and bounded by the run.
        assert 0 < instr.histograms["op.write"].mean < 120

    def test_op_span_records_phase_count(self):
        instr = self.run_strong(writes=1)
        (op,) = spans_by_kind(instr.spans())["op"]
        assert op.attrs["phases"] == 3


class TestSpanCompletenessAsyncio:
    def run_tcp_strong_write(self):
        instr = Instrumentation()

        async def main():
            config = make_system(f=1, seed=b"obs-tcp", strong=True)
            servers, addrs = [], {}
            for rid in config.quorums.replica_ids:
                replica = BftBcReplica(rid, config, instrumentation=instr)
                server = ReplicaServer(replica)
                host, port = await server.start()
                addrs[rid] = (host, port)
                servers.append(server)
            client = AsyncClient(
                StrongBftBcClient("client:w", config, instrumentation=instr),
                addrs,
            )
            await client.connect()
            await client.write(("client:w", 0, "tcp-payload"))
            await client.close()
            for server in servers:
                await server.stop()

        asyncio.run(main())
        return instr

    def test_one_write_emits_every_phase_exactly_once(self):
        instr = self.run_tcp_strong_write()
        grouped = spans_by_kind(instr.spans())
        (op,) = grouped["op"]
        assert op.name == "write"
        phases = Counter(span.name for span in grouped["phase"])
        assert phases == Counter(WRITE_PHASES)
        for phase in grouped["phase"]:
            assert phase.parent_id == op.span_id
            assert phase.trace_id == op.trace_id

    def test_wall_clock_feeds_the_histograms(self):
        instr = self.run_tcp_strong_write()
        hist = instr.histograms["op.write"]
        assert hist.count == 1
        assert hist.mean > 0  # perf_counter durations, not virtual time


class TestHistogramProperties:
    durations = st.lists(
        st.floats(min_value=0.0, max_value=1e3, allow_nan=False), max_size=60
    )

    @given(durations)
    @settings(max_examples=60, deadline=None)
    def test_count_total_and_bounds(self, values):
        hist = LatencyHistogram()
        hist.record_many(values)
        assert hist.count == len(values)
        assert hist.total == pytest.approx(sum(values))
        if values:
            assert hist.minimum == min(values)
            assert hist.maximum == max(values)
            assert hist.mean == pytest.approx(sum(values) / len(values))

    @given(durations)
    @settings(max_examples=60, deadline=None)
    def test_quantiles_are_monotone_and_bound_the_max(self, values):
        hist = LatencyHistogram()
        hist.record_many(values)
        qs = [hist.quantile(q) for q in (0.0, 0.5, 0.9, 0.99, 1.0)]
        assert qs == sorted(qs)
        if values:
            assert qs[-1] >= max(values) * (1 - 1e-9)

    @given(durations, durations)
    @settings(max_examples=60, deadline=None)
    def test_merge_equals_recording_the_concatenation(self, a, b):
        merged = LatencyHistogram()
        merged.record_many(a)
        other = LatencyHistogram()
        other.record_many(b)
        merged.merge(other)

        combined = LatencyHistogram()
        combined.record_many(a + b)
        assert merged.counts == combined.counts
        assert merged.count == combined.count
        assert merged.total == pytest.approx(combined.total)
        for q in (0.5, 0.95, 1.0):
            assert merged.quantile(q) == combined.quantile(q)

    def test_merge_rejects_layout_mismatch(self):
        with pytest.raises(ReproError):
            LatencyHistogram().merge(LatencyHistogram(buckets=8))

    def test_overflow_is_counted_and_quantile_degrades_to_max(self):
        hist = LatencyHistogram(min_bound=1e-3, growth=2.0, buckets=4)
        hist.record(1e9)
        assert hist.overflow == 1
        assert hist.quantile(0.99) == 1e9


class TestExporters:
    def make_instr(self):
        instr = Instrumentation()
        cluster = build_cluster(f=1, variant="strong", seed=5,
                                instrumentation=instr)
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 1) + read_script(1))
        cluster.run(max_time=120)
        return instr

    def test_jsonl_round_trips_every_span(self):
        instr = self.make_instr()
        lines = spans_to_jsonl(instr.spans()).splitlines()
        assert len(lines) == len(instr.spans())
        decoded = [json.loads(line) for line in lines]
        names = {(d["kind"], d["name"]) for d in decoded}
        for kind in WRITE_PHASES:
            assert ("phase", kind) in names
        for record in decoded:
            assert record["end"] >= record["start"]

    def test_prometheus_rendering_shape(self):
        instr = self.make_instr()
        text = render_prometheus(instr.histograms, sources=instr.sources)
        assert "# TYPE repro_phase_read_ts_seconds histogram" in text
        assert 'repro_phase_read_ts_seconds_bucket{le="+Inf"}' in text
        assert "repro_op_write_seconds_count 1" in text
        assert text.endswith("\n")

    def test_phase_table_lists_series(self):
        instr = self.make_instr()
        table = render_phase_table(instr.histograms)
        for series in ("phase.READ-TS", "phase.PREPARE", "phase.WRITE"):
            assert series in table


class TestNullFastPath:
    def test_disabled_handle_returns_the_null_singleton(self):
        instr = Instrumentation.off()
        assert instr.op_span("write", client="c") is NULL_SPAN
        assert instr.phase_span("WRITE", parent=NULL_SPAN) is NULL_SPAN
        assert instr.handler_span("WRITE", node="replica:0") is NULL_SPAN

    def test_disabled_wrappers_pass_through_untouched(self):
        instr = Instrumentation.off()
        sentinel = object()
        assert instr.wrap_verifier(sentinel) is sentinel
        assert instr.wrap_store(sentinel) is sentinel
        assert instr.wrap_store(None) is None

    def test_uninstrumented_cluster_records_nothing(self):
        cluster = build_cluster(f=1, seed=9)
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 1))
        cluster.run(max_time=120)
        assert cluster.instrumentation.spans() == []
        assert cluster.instrumentation.histograms == {}

    def test_null_span_is_inert(self):
        NULL_SPAN.set("k", 1)
        NULL_SPAN.incr("k")
        NULL_SPAN.end()
        assert NULL_SPAN.closed


class TestLegacyAttachShims:
    def test_attach_warns_deprecated(self):
        collector = MetricsCollector()
        with pytest.warns(DeprecationWarning):
            collector.attach_verification(object())

    def test_double_attach_raises_instead_of_overwriting(self):
        collector = MetricsCollector()
        first = object()
        with pytest.warns(DeprecationWarning):
            collector.attach_verification(first)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ObservabilityError):
                collector.attach_verification(object())
        assert collector.verification is first

    def test_double_attach_guard_covers_every_source(self):
        collector = MetricsCollector()
        attachers = [
            collector.attach_wire_cache,
            collector.attach_batching,
        ]
        for attach in attachers:
            with pytest.warns(DeprecationWarning):
                attach(object())
            with pytest.warns(DeprecationWarning):
                with pytest.raises(ObservabilityError):
                    attach(object())

    def test_storage_attach_guards_per_replica(self):
        collector = MetricsCollector()
        with pytest.warns(DeprecationWarning):
            collector.attach_storage({"replica:0": object()})
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ObservabilityError):
                collector.attach_storage({"replica:0": object()})


class TestRecorderBounds:
    def test_recorder_drops_beyond_capacity(self):
        recorder = InMemorySpanRecorder(max_spans=2)
        instr = Instrumentation(recorder=recorder, clock=lambda: 0.0)
        for index in range(4):
            instr.op_span(f"op{index}", client="c").end()
        assert len(instr.spans()) == 2
        assert recorder.dropped == 2

    def test_drain_clears(self):
        recorder = InMemorySpanRecorder()
        instr = Instrumentation(recorder=recorder, clock=lambda: 0.0)
        instr.op_span("w", client="c").end()
        assert len(recorder.drain()) == 1
        assert instr.spans() == []
