"""Unit and property tests for the canonical encoding."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.encoding import canonical_decode, canonical_encode
from repro.errors import EncodingError


class TestScalars:
    def test_none(self):
        assert canonical_encode(None) == b"n"
        assert canonical_decode(b"n") is None

    def test_booleans(self):
        assert canonical_encode(True) == b"t"
        assert canonical_encode(False) == b"f"
        assert canonical_decode(b"t") is True
        assert canonical_decode(b"f") is False

    def test_int_zero(self):
        assert canonical_encode(0) == b"i0;"

    def test_int_negative(self):
        assert canonical_decode(canonical_encode(-12345)) == -12345

    def test_large_int(self):
        n = 10**50
        assert canonical_decode(canonical_encode(n)) == n

    def test_bool_and_int_encode_differently(self):
        assert canonical_encode(True) != canonical_encode(1)
        assert canonical_encode(False) != canonical_encode(0)

    def test_str_utf8(self):
        value = "héllo ✓ wörld"
        assert canonical_decode(canonical_encode(value)) == value

    def test_bytes(self):
        value = bytes(range(256))
        assert canonical_decode(canonical_encode(value)) == value

    def test_str_and_bytes_distinct(self):
        assert canonical_encode("ab") != canonical_encode(b"ab")

    def test_float_round_trip(self):
        for value in (0.0, -1.5, 3.14159, 1e300, 1e-300):
            assert canonical_decode(canonical_encode(value)) == value


class TestContainers:
    def test_empty_list(self):
        assert canonical_decode(canonical_encode([])) == ()

    def test_list_and_tuple_encode_identically(self):
        assert canonical_encode([1, 2, 3]) == canonical_encode((1, 2, 3))

    def test_nested(self):
        value = (1, ("a", b"b", None), {"k": (True, False)})
        decoded = canonical_decode(canonical_encode(value))
        assert decoded == (1, ("a", b"b", None), {"k": (True, False)})

    def test_dict_key_order_is_canonical(self):
        a = canonical_encode({"b": 1, "a": 2})
        b = canonical_encode({"a": 2, "b": 1})
        assert a == b

    def test_dict_round_trip(self):
        value = {"z": 1, "a": (2, 3), "m": {"nested": b"x"}}
        assert canonical_decode(canonical_encode(value)) == value


class TestErrors:
    def test_unsupported_type(self):
        with pytest.raises(EncodingError):
            canonical_encode(object())

    def test_non_string_dict_key(self):
        with pytest.raises(EncodingError):
            canonical_encode({1: "a"})

    def test_trailing_bytes(self):
        with pytest.raises(EncodingError):
            canonical_decode(b"nn")

    def test_truncated_input(self):
        encoded = canonical_encode(("abc", 123))
        with pytest.raises(EncodingError):
            canonical_decode(encoded[:-1])

    def test_empty_input(self):
        with pytest.raises(EncodingError):
            canonical_decode(b"")

    def test_bad_tag(self):
        with pytest.raises(EncodingError):
            canonical_decode(b"q")

    def test_unterminated_int(self):
        with pytest.raises(EncodingError):
            canonical_decode(b"i42")

    def test_non_canonical_int_leading_zero(self):
        with pytest.raises(EncodingError):
            canonical_decode(b"i042;")

    def test_non_canonical_negative_zero(self):
        with pytest.raises(EncodingError):
            canonical_decode(b"i-0;")

    def test_unterminated_list(self):
        with pytest.raises(EncodingError):
            canonical_decode(b"li1;")

    def test_dict_non_canonical_key_order_rejected(self):
        # d <"b":1> <"a":2> e — keys out of order must be rejected.
        bad = b"du1:bi1;u1:ai2;e"
        with pytest.raises(EncodingError):
            canonical_decode(bad)

    def test_dict_duplicate_key_rejected(self):
        bad = b"du1:ai1;u1:ai2;e"
        with pytest.raises(EncodingError):
            canonical_decode(bad)

    def test_invalid_utf8_rejected(self):
        with pytest.raises(EncodingError):
            canonical_decode(b"u2:\xff\xfe")

    def test_huge_declared_length_rejected(self):
        with pytest.raises(EncodingError):
            canonical_decode(b"b99999999999:")


# -- property-based -----------------------------------------------------------

values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers()
    | st.text(max_size=40)
    | st.binary(max_size=40),
    lambda children: st.lists(children, max_size=5).map(tuple)
    | st.dictionaries(st.text(max_size=10), children, max_size=5),
    max_leaves=25,
)


@given(values)
def test_round_trip_property(value):
    assert canonical_decode(canonical_encode(value)) == value


@given(values, values)
def test_injective_property(a, b):
    """Distinct values have distinct encodings (lists/tuples identified)."""
    ea, eb = canonical_encode(a), canonical_encode(b)
    if ea == eb:
        assert canonical_decode(ea) == canonical_decode(eb)


@given(values)
def test_deterministic_property(value):
    assert canonical_encode(value) == canonical_encode(value)


@given(st.binary(max_size=60))
def test_decoder_never_crashes_on_garbage(data):
    """Arbitrary bytes either decode or raise EncodingError, never crash."""
    try:
        canonical_decode(data)
    except EncodingError:
        pass
