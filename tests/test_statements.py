"""Domain separation of signed statements.

Every signed byte-string must be unambiguous: no two different statement
builders (across the core protocol AND the baselines) may ever produce the
same canonical encoding, or a signature earned in one role could be replayed
in another.
"""

from __future__ import annotations

from repro.baselines.statements import (
    bqs_read_reply_statement,
    bqs_read_ts_reply_statement,
    bqs_write_reply_statement,
    bqs_write_statement,
    phx_echo_request_statement,
    phx_echo_statement,
    phx_read_reply_statement,
    phx_read_ts_reply_statement,
    phx_write_reply_statement,
    phx_write_request_statement,
)
from repro.core.statements import (
    prepare_reply_statement,
    prepare_request_statement,
    read_reply_statement,
    read_ts_prep_reply_statement,
    read_ts_prep_request_statement,
    read_ts_reply_statement,
    write_reply_statement,
    write_request_statement,
)
from repro.core.timestamp import Timestamp
from repro.encoding import canonical_encode

TS = Timestamp(1, "client:a")
H = b"\x01" * 32
NONCE = b"\x02" * 16
VALUE = ("client:a", 1, None)
CERT_WIRE = ((1, "client:a"), H, ())


def all_statements():
    return {
        "prepare_reply": prepare_reply_statement(TS, H),
        "write_reply": write_reply_statement(TS),
        "read_ts_reply": read_ts_reply_statement(CERT_WIRE, NONCE),
        "read_reply": read_reply_statement(VALUE, CERT_WIRE, NONCE),
        "prepare_request": prepare_request_statement(CERT_WIRE, TS, H, None, None),
        "write_request": write_request_statement(VALUE, CERT_WIRE),
        "rtsp_request": read_ts_prep_request_statement(H, None, NONCE),
        "rtsp_reply": read_ts_prep_reply_statement(CERT_WIRE, TS.to_wire(), NONCE),
        "bqs_write": bqs_write_statement(TS, H),
        "bqs_read_ts_reply": bqs_read_ts_reply_statement(TS, NONCE),
        "bqs_write_reply": bqs_write_reply_statement(TS),
        "bqs_read_reply": bqs_read_reply_statement(VALUE, TS, NONCE),
        "phx_echo_request": phx_echo_request_statement(TS, H),
        "phx_echo": phx_echo_statement(TS, H),
        "phx_write_request": phx_write_request_statement(VALUE, TS),
        "phx_read_ts_reply": phx_read_ts_reply_statement(TS, NONCE),
        "phx_write_reply": phx_write_reply_statement(TS),
        "phx_read_reply": phx_read_reply_statement(VALUE, TS, NONCE),
    }


def test_all_statement_types_pairwise_distinct():
    encoded = {name: canonical_encode(stmt) for name, stmt in all_statements().items()}
    names = list(encoded)
    for i, a in enumerate(names):
        for b in names[i + 1:]:
            assert encoded[a] != encoded[b], (a, b)


def test_statements_start_with_type_tag():
    """Each statement leads with its distinct type string — the mechanism
    behind the pairwise-distinctness guarantee."""
    tags = set()
    for name, stmt in all_statements().items():
        assert isinstance(stmt, tuple) and isinstance(stmt[0], str), name
        assert stmt[0] not in tags, (name, stmt[0])
        tags.add(stmt[0])


def test_parameter_changes_change_encoding():
    base = canonical_encode(prepare_reply_statement(TS, H))
    assert canonical_encode(prepare_reply_statement(TS.succ("client:a"), H)) != base
    assert canonical_encode(prepare_reply_statement(TS, b"\x03" * 32)) != base
