"""Integration tests for the sharded simulator harness (repro.sim.shard_cluster).

Covers routing across groups, online reconfiguration under live traffic
(graceful and crash-replacement), state durability across a replacement,
per-object correctness, and the exact match between the analytical
reconfiguration cost model and the simulator's message counters.
"""

from __future__ import annotations

import pytest

from repro.analysis.costs import CostModel
from repro.errors import SimulationError
from repro.net.simnet import LinkProfile
from repro.sim import ShardClusterOptions, build_shard_cluster
from repro.sim.shard_cluster import member_id, shard_id
from repro.spec import check_bft_linearizable

LOSSY = LinkProfile(
    min_delay=0.001, max_delay=0.02, drop_rate=0.05, reorder_rate=0.1
)


def spanning_objects(cluster, per_shard=2):
    """Object names guaranteed to cover every shard of the ring."""
    chosen: dict[str, list[str]] = {s: [] for s in cluster.shard_ids}
    index = 0
    while any(len(objs) < per_shard for objs in chosen.values()):
        obj = f"obj-{index}"
        owner = cluster.ring.shard_for(obj)
        if len(chosen[owner]) < per_shard:
            chosen[owner].append(obj)
        index += 1
    return [obj for objs in chosen.values() for obj in objs]


class TestOptions:
    def test_rejects_zero_shards(self):
        with pytest.raises(SimulationError):
            ShardClusterOptions(shards=0)

    def test_rejects_unknown_variant(self):
        with pytest.raises(SimulationError):
            ShardClusterOptions(variant="nope")

    def test_build_rejects_options_plus_overrides(self):
        with pytest.raises(SimulationError):
            build_shard_cluster(ShardClusterOptions(), shards=3)


class TestRouting:
    def test_objects_span_shards_and_route_correctly(self):
        cluster = build_shard_cluster(shards=2, seed=11)
        objects = spanning_objects(cluster)
        owners = {cluster.ring.shard_for(obj) for obj in objects}
        assert owners == set(cluster.shard_ids)
        script = []
        for i, obj in enumerate(objects):
            script.append((obj, "write", ("client:w", 1, f"v{i}")))
            script.append((obj, "read", None))
        cluster.run_scripts({"w": script})
        node = cluster.routers["client:w"]
        reads = {
            step[0]: result
            for step, result in node.results
            if step[1] == "read"
        }
        for i, obj in enumerate(objects):
            assert reads[obj] == ("client:w", 1, f"v{i}"), obj

    def test_per_object_histories_bft_linearizable(self):
        cluster = build_shard_cluster(shards=2, seed=5, profile=LOSSY)
        objects = spanning_objects(cluster)
        scripts = {}
        for name in ("alice", "bob"):
            script = []
            for i, obj in enumerate(objects):
                script.append((obj, "write", (f"client:{name}", i + 1, name)))
                script.append((obj, "read", None))
            scripts[name] = script
        cluster.run_scripts(scripts)
        histories = cluster.merged_histories()
        assert set(histories) == set(objects)
        for obj, history in histories.items():
            result = check_bft_linearizable(history, max_b=1, obj=obj)
            assert result.ok, (obj, result.reason)


class TestReconfiguration:
    def test_graceful_replace_under_live_traffic(self):
        cluster = build_shard_cluster(shards=2, seed=23, handoff=0.2)
        objects = spanning_objects(cluster)
        script = []
        for i, obj in enumerate(objects):
            script.append((obj, "write", ("client:w", 1, f"v{i}")))
            script.append((obj, "read", None))
        target = shard_id(0)
        remove = member_id(0, 1)
        node = cluster.add_router("w")
        node.run_script(script)
        cluster.start_reconfiguration(
            target, remove=remove, add="replica:s0nX", crash_old=False
        )
        cluster.run()
        cluster.settle(1.0)
        assert cluster.directory.epoch(target) == 1
        assert "replica:s0nX" in cluster.directory.config(target).members
        joiner = cluster.replica_nodes["replica:s0nX"].replica
        assert joiner.ready and joiner.epoch == 1
        # The gracefully removed member knows it is out...
        assert cluster.replica_nodes[remove].replica.retired
        # ...but its key is NOT revoked: past signatures must keep verifying
        # and it must keep answering old-epoch traffic during handoff.
        assert cluster.template.registry.is_registered(remove)
        assert not cluster.template.registry.is_revoked(remove)
        # The untouched shard never advanced.
        assert cluster.directory.epoch(shard_id(1)) == 0

    def test_crash_replace_preserves_state(self):
        """A value written before the crash is readable from the new
        membership afterwards: state transfer carried it over."""
        cluster = build_shard_cluster(shards=1, seed=31, handoff=0.2)
        target = shard_id(0)
        crashed = member_id(0, 2)
        obj = "durable-object"
        cluster.run_scripts({"w": [(obj, "write", ("client:w", 1, "precious"))]})
        cluster.replica_nodes[crashed].crash()
        cluster.start_reconfiguration(
            target, remove=crashed, add="replica:s0nX", crash_old=False
        )
        cluster.run()
        node = cluster.routers["client:w"]
        node.run_script([(obj, "read", None)])
        cluster.run()
        assert node.results[-1][1] == ("client:w", 1, "precious")
        # The joiner itself holds the transferred value.
        joiner = cluster.replica_nodes["replica:s0nX"].replica
        state = joiner.inner.object_state(obj)
        assert state.data == ("client:w", 1, "precious")
        # Crash-replacement revokes the dead member's key.
        cluster2 = build_shard_cluster(shards=1, seed=32, handoff=0.2)
        cluster2.start_reconfiguration(
            shard_id(0),
            remove=member_id(0, 2),
            add="replica:s0nX",
            crash_old=True,
        )
        cluster2.run()
        # Revocation keeps the key registered (past signatures verify) but
        # bars it from signing anything new.
        assert cluster2.template.registry.is_revoked(member_id(0, 2))

    def test_sequential_reconfigurations_chain(self):
        cluster = build_shard_cluster(shards=1, seed=41, handoff=0.1)
        target = shard_id(0)
        cluster.start_reconfiguration(
            target, remove=member_id(0, 0), add="replica:s0nX"
        )
        cluster.run()
        cluster.start_reconfiguration(
            target, remove=member_id(0, 1), add="replica:s0nY"
        )
        cluster.run()
        cluster.settle(0.5)
        assert cluster.directory.epoch(target) == 2
        members = set(cluster.directory.config(target).members)
        assert {"replica:s0nX", "replica:s0nY"} <= members
        # Both epochs' entries chain from genesis in every live member.
        for replica in cluster.live_members(target):
            assert replica.epoch == 2
            assert [
                e.config.epoch for e in replica.directory.chain(target)
            ] == [1, 2]

    def test_rejects_removing_non_member(self):
        cluster = build_shard_cluster(shards=1, seed=43)
        with pytest.raises(SimulationError):
            cluster.start_reconfiguration(
                shard_id(0), remove="replica:stranger", add="replica:s0nX"
            )


class TestClosedFormCosts:
    def test_reconfigure_and_transfer_message_counts_exact(self):
        """On a reliable network the simulator's per-kind message counters
        match the analytical model exactly — no fudge factors."""
        cluster = build_shard_cluster(shards=1, seed=2, handoff=0.1)
        cluster.start_reconfiguration(
            shard_id(0), remove=member_id(0, 3), add="replica:s0nX"
        )
        cluster.run()
        cluster.settle(0.5)
        model = CostModel(quorums=cluster.template.quorums)
        kinds = cluster.network.stats.sent_by_kind
        reconfigure_sent = (
            kinds.get("CFG-SIGN-REQ", 0)
            + kinds.get("CFG-SIGN-REPLY", 0)
            + kinds.get("EPOCH-INSTALL", 0)
            + kinds.get("EPOCH-ACK", 0)
        )
        assert reconfigure_sent == model.reconfigure_messages()
        transfer_sent = kinds.get("XFER-REQ", 0) + kinds.get("XFER-REPLY", 0)
        assert transfer_sent == model.state_transfer_messages()
        assert kinds.get("CFG-SIGN-REPLY", 0) == model.reconfigure_signatures()
        entry = cluster.directory.chain(shard_id(0))[-1]
        assert len(entry.signatures) >= model.reconfigure_entry_signatures()

    def test_directory_fetch_message_count_exact(self):
        """A router refreshed by EPOCH-STALE fetches the chain with one
        DIR-REQ per member and gets one DIR-REPLY each: 2n."""
        cluster = build_shard_cluster(shards=1, seed=3, handoff=0.1)
        target = shard_id(0)
        # The router exists before the change, so its directory is genesis.
        node = cluster.add_router("w")
        cluster.start_reconfiguration(
            target, remove=member_id(0, 3), add="replica:s0nX"
        )
        cluster.run()
        cluster.settle(0.5)  # close the handoff window: epoch 0 now rebuffed
        # Now route traffic with the router's stale (genesis) directory.
        node.run_script([("obj", "write", ("client:w", 1, "v"))])
        cluster.run()
        model = CostModel(quorums=cluster.template.quorums)
        kinds = cluster.network.stats.sent_by_kind
        fetch_sent = kinds.get("DIR-REQ", 0) + kinds.get("DIR-REPLY", 0)
        assert fetch_sent == model.directory_fetch_messages()
        assert node.router.refreshes == 1
        assert node.router.epoch(target) == 1


class TestCapacityModel:
    def test_service_delay_gives_per_shard_capacity(self):
        """With a per-frame service cost, the same workload finishes faster
        when spread over more shards — the effect E19 charts."""
        elapsed = {}
        for shards in (1, 2):
            cluster = build_shard_cluster(
                shards=shards, seed=17, service_delay=0.002
            )
            objects = [f"obj-{i}" for i in range(12)]
            script = [
                (obj, "write", ("client:w", 1, None)) for obj in objects
            ]
            cluster.run_scripts({"w": script})
            elapsed[shards] = cluster.scheduler.now
        assert elapsed[2] < elapsed[1]
