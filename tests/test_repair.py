"""Quarantine-and-rebuild repair: wire codecs, the sans-I/O driver, the
quarantine gate, and the analytical cost closed form asserted exactly
against simulator counters."""

from __future__ import annotations

import pytest

from repro.analysis.costs import CostModel
from repro.core.config import make_system
from repro.core.messages import RepairReply, RepairRequest
from repro.core.repair import StateRepair, validate_repair_candidate
from repro.core.replica import BftBcReplica
from repro.crypto.hashing import hash_value
from repro.errors import ProtocolError
from repro.sim.nodes import ScriptStep
from repro.sim.runner import build_cluster

SCRIPT: list[ScriptStep] = [("write", ("v", i)) for i in range(4)] + [("read", None)]


def _group(f: int = 1):
    config = make_system(f, scheme="hmac", seed=b"repair-test")
    replicas = {
        node_id: BftBcReplica(node_id, config)
        for node_id in config.quorums.replica_ids
    }
    return config, replicas


def _reply_from(replica: BftBcReplica, nonce: bytes) -> RepairReply:
    return RepairReply(
        replica=replica.node_id,
        nonce=nonce,
        snapshot=replica.snapshot_wire(),
        fingerprint=replica.state_fingerprint(),
    )


# -- wire codecs ------------------------------------------------------------


def test_repair_request_wire_round_trip() -> None:
    message = RepairRequest(replica="replica:2", nonce=b"n" * 16)
    assert RepairRequest.from_wire(message.to_wire()) == message


def test_repair_request_rejects_malformed_wire() -> None:
    with pytest.raises(ProtocolError):
        RepairRequest.from_wire({"replica": "replica:0", "nonce": "not-bytes"})
    with pytest.raises(ProtocolError):
        RepairRequest.from_wire({"nonce": b"n" * 16})


def test_repair_reply_wire_round_trip() -> None:
    config, replicas = _group()
    replica = replicas["replica:0"]
    message = _reply_from(replica, b"x" * 16)
    assert RepairReply.from_wire(message.to_wire()) == message


def test_repair_reply_rejects_malformed_wire() -> None:
    config, replicas = _group()
    wire = _reply_from(replicas["replica:0"], b"x" * 16).to_wire()
    for field, bad in (
        ("replica", 7),
        ("nonce", "n"),
        ("snapshot", [1, 2]),
        ("fingerprint", "fp"),
    ):
        mangled = dict(wire)
        mangled[field] = bad
        with pytest.raises(ProtocolError):
            RepairReply.from_wire(mangled)


# -- the sans-I/O driver -----------------------------------------------------


def test_begin_addresses_every_peer_with_deterministic_nonce() -> None:
    config, replicas = _group()
    repair = StateRepair("replica:0", config, lambda snap: None)
    sends = repair.begin()
    assert sorted(s.dest for s in sends) == ["replica:1", "replica:2", "replica:3"]
    expected = hash_value(("state-repair", "replica:0", 1))[:16]
    assert repair.nonce == expected
    assert all(s.message.nonce == expected for s in sends)
    # A restarted round derives a fresh nonce from the round counter.
    assert repair.begin()[0].message.nonce == hash_value(
        ("state-repair", "replica:0", 2)
    )[:16]


def test_driver_completes_at_quorum_and_installs_winner() -> None:
    config, replicas = _group()
    installed: list[dict] = []
    repair = StateRepair("replica:0", config, installed.append)
    nonce_holder = repair.begin()[0].message.nonce
    peers = ["replica:1", "replica:2", "replica:3"]
    done = [
        repair.on_reply(peer, _reply_from(replicas[peer], nonce_holder))
        for peer in peers
    ]
    # quorum_size is 3 for f=1: the third reply completes the round.
    assert done == [False, False, True]
    assert installed and not repair.active
    assert repair.rejects == 0


def test_driver_ignores_stale_duplicate_and_foreign_replies() -> None:
    config, replicas = _group()
    repair = StateRepair("replica:0", config, lambda snap: None)
    nonce = repair.begin()[0].message.nonce
    good = _reply_from(replicas["replica:1"], nonce)
    assert not repair.on_reply("replica:1", good)
    # Duplicate sender, wrong nonce, and a non-peer all bounce without
    # advancing the reply count.
    assert not repair.on_reply("replica:1", good)
    stale = _reply_from(replicas["replica:2"], b"z" * 16)
    assert not repair.on_reply("replica:2", stale)
    outsider = _reply_from(replicas["replica:2"], nonce)
    assert not repair.on_reply("client:mallory", outsider)
    assert len(repair._replies) == 1


def test_driver_stays_active_until_a_candidate_validates() -> None:
    config, replicas = _group()
    installed: list[dict] = []
    repair = StateRepair("replica:0", config, installed.append)
    nonce = repair.begin()[0].message.nonce
    # A full quorum of tampered replies (fingerprint lies about the
    # snapshot) must not complete the repair.
    for peer in ["replica:1", "replica:2"]:
        reply = _reply_from(replicas[peer], nonce)
        forged = RepairReply(
            replica=reply.replica,
            nonce=nonce,
            snapshot=reply.snapshot,
            fingerprint=b"\x00" * 32,
        )
        assert not repair.on_reply(peer, forged)
    assert not repair.on_reply(
        "replica:3",
        RepairReply(
            replica="replica:3",
            nonce=nonce,
            snapshot={"garbage": True},
            fingerprint=b"\x00" * 32,
        ),
    )
    assert repair.active and not installed
    # Retransmit targets nobody (all peers answered); a fresh round can
    # still heal the replica.
    assert repair.retransmit() == []
    nonce2 = repair.begin()[0].message.nonce
    assert nonce2 != nonce
    for index, peer in enumerate(["replica:1", "replica:2", "replica:3"]):
        done = repair.on_reply(peer, _reply_from(replicas[peer], nonce2))
        assert done == (index == 2)
    assert installed and not repair.active


def test_validate_repair_candidate_rejects_mismatch_and_garbage() -> None:
    config, replicas = _group()
    replica = replicas["replica:1"]
    snapshot = replica.snapshot_wire()
    good = validate_repair_candidate(
        snapshot, replica.state_fingerprint(), config.scheme, config.quorums
    )
    assert good is not None
    assert (
        validate_repair_candidate(
            snapshot, b"\x00" * 32, config.scheme, config.quorums
        )
        is None
    )
    assert (
        validate_repair_candidate(
            {"not": "a snapshot"}, b"\x00" * 32, config.scheme, config.quorums
        )
        is None
    )


def test_cert_check_hook_overrides_third_party_validation() -> None:
    """A hosting replica's own acceptance rule substitutes for is_valid.

    The fast-path variant needs this: proof-evidence certificates are not
    third-party verifiable, so repair defers to the replica's hook.  Here
    we pin the plumbing: the hook sees the scratch-recovered pcert and its
    verdict is authoritative in both directions.
    """
    config, replicas = _group()
    cluster = build_cluster(f=1, seed=3)
    cluster.run_scripts({"alice": SCRIPT}, max_time=60)
    donor = cluster.replicas["replica:1"]
    snapshot = donor.snapshot_wire()
    fingerprint = donor.state_fingerprint()
    assert not donor.pcert.is_genesis
    seen: list[object] = []

    def accept(pcert) -> bool:
        seen.append(pcert)
        return True

    checked = validate_repair_candidate(
        snapshot,
        fingerprint,
        cluster.config.scheme,
        cluster.config.quorums,
        cert_check=accept,
    )
    assert checked is not None and seen
    rejected = validate_repair_candidate(
        snapshot,
        fingerprint,
        cluster.config.scheme,
        cluster.config.quorums,
        cert_check=lambda pcert: False,
    )
    assert rejected is None


# -- the quarantine gate ----------------------------------------------------


def test_quarantined_replica_discards_protocol_traffic() -> None:
    config, replicas = _group()
    replica = replicas["replica:0"]
    from repro.core.messages import ReadTsRequest

    replica.enter_quarantine("test")
    assert replica.quarantined
    assert replica.handle("client:alice", ReadTsRequest(nonce=b"q" * 16)) is None
    assert replica.stats.discards["quarantined"] == 1
    # Re-detecting the same damage does not double-count the episode.
    replica.enter_quarantine("test")
    assert replica.stats.quarantines == 1
    # A quarantined peer refuses to serve repair pulls (known-bad state
    # must not propagate) ...
    request = RepairRequest(replica="replica:1", nonce=b"r" * 16)
    assert replica.handle("replica:1", request) is None
    assert replica.stats.discards["quarantined"] == 2
    # ... but a healthy peer answers with its snapshot.
    healthy = replicas["replica:1"]
    reply = healthy.handle("replica:0", request)
    assert isinstance(reply, RepairReply)
    assert reply.nonce == request.nonce


def test_begin_repair_is_a_noop_on_healthy_replicas() -> None:
    config, replicas = _group()
    replica = replicas["replica:0"]
    assert replica.begin_repair() == []
    assert replica.repair_retransmit() == []


# -- the cost closed form, asserted against sim counters --------------------


@pytest.mark.parametrize("f", [1, 2])
def test_repair_message_cost_matches_closed_form(f: int) -> None:
    """One repair on a reliable network costs exactly 2(n-1) messages.

    Every REPAIR-REQ a peer handles and every REPAIR-REPLY the victim
    handles is counted by the replicas themselves; the analytical model's
    closed form must match those counters with no slack.
    """
    cluster = build_cluster(f=f, seed=7)
    cluster.run_scripts({"alice": SCRIPT}, max_time=120)
    victim_id = cluster.config.quorums.replica_ids[0]
    victim_node = cluster.replica_nodes[victim_id]
    victim = victim_node.replica
    before = victim.state_fingerprint()
    victim.enter_quarantine("test")
    assert not victim_node.audit_and_repair()
    cluster.settle(2.0)
    assert not victim.quarantined
    assert victim.stats.repairs == 1
    assert victim.repair.rounds == 1  # no retransmissions were needed
    assert victim.state_fingerprint() == before
    requests_served = sum(
        replica.stats.handled["REPAIR-REQ"]
        for node_id, replica in cluster.replicas.items()
        if node_id != victim_id
    )
    replies_received = victim.stats.handled["REPAIR-REPLY"]
    model = CostModel(quorums=cluster.config.quorums)
    assert requests_served + replies_received == model.repair_messages()
    assert model.repair_messages() == 2 * (cluster.config.quorums.n - 1)
    # A repair is a bootstrap minus the slot the joiner would fill.
    assert model.state_transfer_messages() - model.repair_messages() == 2
    assert model.repair_verifications() == cluster.config.quorums.quorum_size
