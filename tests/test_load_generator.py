"""The open-loop generator: determinism, distributions, profile algebra."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.load import BurstPhase, LoadProfile, OpenLoopGenerator
from repro.load.generator import zipf_weights


def schedule(profile: LoadProfile) -> list:
    return list(OpenLoopGenerator(profile).arrivals())


class TestDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        rate=st.floats(min_value=10.0, max_value=500.0),
        skew=st.floats(min_value=0.0, max_value=2.0),
        write_fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_identical_profiles_yield_identical_schedules(
        self, seed, rate, skew, write_fraction
    ):
        profile = LoadProfile(
            rate=rate,
            duration=2.0,
            identities=500,
            objects=16,
            write_fraction=write_fraction,
            zipf_skew=skew,
            seed=seed,
        )
        assert schedule(profile) == schedule(profile)

    def test_different_seeds_differ(self):
        base = dict(rate=200.0, duration=2.0, identities=100, objects=8)
        a = schedule(LoadProfile(seed=1, **base))
        b = schedule(LoadProfile(seed=2, **base))
        assert a != b

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_schedule_is_well_formed(self, seed):
        profile = LoadProfile(
            rate=300.0, duration=1.5, identities=200, objects=8, seed=seed
        )
        arrivals = schedule(profile)
        assert [a.index for a in arrivals] == list(range(len(arrivals)))
        times = [a.at for a in arrivals]
        assert times == sorted(times)
        assert all(0.0 <= t < profile.duration for t in times)
        assert all(a.kind in ("write", "read") for a in arrivals)


class TestIdentityPolicies:
    def test_sequential_walks_the_universe(self):
        profile = LoadProfile(
            rate=2000.0, duration=1.0, identities=50, objects=4, seed=5
        )
        arrivals = schedule(profile)
        assert len(arrivals) > 50
        # Round-robin: arrival i gets identity slot i mod universe.
        for arrival in arrivals[:100]:
            assert arrival.client == f"load:{arrival.index % 50}"
        assert len({a.client for a in arrivals}) == 50

    def test_identity_offset_shifts_coverage(self):
        base = dict(rate=500.0, duration=1.0, identities=1000, objects=4, seed=9)
        plain = schedule(LoadProfile(**base))
        shifted = schedule(LoadProfile(identity_offset=100, **base))
        assert shifted[0].client == "load:100"
        # Same schedule, identity window slid by the offset (mod universe).
        for a, b in zip(plain, shifted):
            assert b.client == f"load:{(a.index + 100) % 1000}"
            assert (b.at, b.obj, b.kind) == (a.at, a.obj, a.kind)

    def test_uniform_policy_draws_repeats(self):
        profile = LoadProfile(
            rate=2000.0,
            duration=1.0,
            identities=20,
            objects=4,
            seed=5,
            identity_policy="uniform",
        )
        arrivals = schedule(profile)
        clients = [a.client for a in arrivals]
        assert len(set(clients)) <= 20
        # A uniform draw over 20 identities repeats within ~2000 arrivals.
        assert len(clients) > len(set(clients))


class TestZipf:
    def test_weights_shape(self):
        weights = zipf_weights(4, 1.0)
        assert weights == [1.0, 0.5, pytest.approx(1 / 3), 0.25]
        assert zipf_weights(3, 0.0) == [1.0, 1.0, 1.0]

    @settings(max_examples=15, deadline=None)
    @given(skew=st.floats(min_value=0.5, max_value=1.5))
    def test_empirical_skew_matches_weights(self, skew):
        objects = 8
        profile = LoadProfile(
            rate=4000.0,
            duration=1.0,
            identities=100,
            objects=objects,
            zipf_skew=skew,
            seed=17,
        )
        arrivals = schedule(profile)
        counts = {f"obj-{rank}": 0 for rank in range(objects)}
        for arrival in arrivals:
            counts[arrival.obj] += 1
        total = len(arrivals)
        weights = zipf_weights(objects, skew)
        norm = sum(weights)
        # Each object's empirical frequency tracks its zipf weight within
        # a loose absolute tolerance (a few thousand samples).
        for rank in range(objects):
            expected = weights[rank] / norm
            observed = counts[f"obj-{rank}"] / total
            assert abs(observed - expected) < 0.05
        # And the headline property: rank 0 strictly dominates the tail.
        assert counts["obj-0"] > counts[f"obj-{objects - 1}"]


class TestProfiles:
    def test_rate_at_applies_bursts(self):
        profile = LoadProfile.bursty(
            100.0, 10.0, burst_multiplier=4.0, burst_fraction=0.2
        )
        assert profile.rate_at(0.0) == 100.0
        assert profile.rate_at(5.0) == 400.0  # centred burst: [4, 6)
        assert profile.rate_at(9.9) == 100.0
        assert profile.expected_arrivals() == pytest.approx(
            100 * 10 + 100 * 3 * 2
        )

    def test_burst_raises_arrival_density_inside_the_window(self):
        profile = LoadProfile.bursty(
            200.0,
            4.0,
            burst_multiplier=5.0,
            burst_fraction=0.25,
            identities=100,
            seed=3,
        )
        arrivals = schedule(profile)
        burst = [a for a in arrivals if 1.5 <= a.at < 2.5]
        outside = [a for a in arrivals if a.at < 1.0]
        assert len(burst) > 2 * len(outside)

    def test_max_arrivals_caps_the_stream(self):
        profile = LoadProfile(
            rate=1000.0, duration=5.0, identities=100, seed=1, max_arrivals=37
        )
        assert len(schedule(profile)) == 37

    def test_write_fraction_extremes(self):
        base = dict(rate=500.0, duration=1.0, identities=50, seed=2)
        assert all(
            a.kind == "write"
            for a in schedule(LoadProfile(write_fraction=1.0, **base))
        )
        assert all(
            a.kind == "read"
            for a in schedule(LoadProfile(write_fraction=0.0, **base))
        )

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(rate=0.0),
            dict(duration=-1.0),
            dict(identities=0),
            dict(objects=0),
            dict(write_fraction=1.5),
            dict(zipf_skew=-0.1),
            dict(identity_policy="hot"),
            dict(identity_offset=-1),
        ],
    )
    def test_invalid_profiles_rejected(self, kwargs):
        with pytest.raises(SimulationError):
            LoadProfile(**kwargs)

    def test_invalid_burst_rejected(self):
        with pytest.raises(SimulationError):
            BurstPhase(start=-1.0, duration=1.0, multiplier=2.0)
        with pytest.raises(SimulationError):
            BurstPhase(start=0.0, duration=1.0, multiplier=0.0)
