"""Unit tests for the §7 strong-mode replica checks."""

from __future__ import annotations

import pytest

from repro.core.certificates import genesis_prepare_certificate
from repro.core.messages import PrepareReply, ReadRequest, ReadTsRequest
from repro.core.statements import write_reply_statement
from repro.core.timestamp import ZERO_TS

from tests.conftest import make_write_cert
from tests.helpers import ProtocolKit, make_replicas


@pytest.fixture
def kit(strong_config):
    return ProtocolKit(strong_config)


@pytest.fixture
def replicas(strong_config):
    return make_replicas(strong_config)


@pytest.fixture
def replica(replicas):
    return replicas[0]


class TestVouches:
    def test_read_ts_reply_carries_vouch(self, kit, replica, strong_config):
        reply = replica.handle(kit.client, ReadTsRequest(nonce=kit.nonce()))
        assert reply.ts_vouch is not None
        statement = write_reply_statement(reply.cert.ts)
        assert strong_config.scheme.verify_statement(reply.ts_vouch, statement)

    def test_read_reply_carries_vouch(self, kit, replica, strong_config):
        reply = replica.handle(kit.client, ReadRequest(nonce=kit.nonce()))
        assert reply.ts_vouch is not None

    def test_vouches_assemble_into_write_certificate(self, kit, replicas, strong_config):
        from repro.core.certificates import WriteCertificate

        vouches = []
        for replica in replicas[: strong_config.quorum_size]:
            reply = replica.handle(kit.client, ReadTsRequest(nonce=kit.nonce()))
            vouches.append(reply.ts_vouch)
        cert = WriteCertificate(ts=ZERO_TS, signatures=tuple(vouches))
        cert.validate(strong_config.scheme, strong_config.quorums)


class TestJustifyChecks:
    def test_prepare_without_justify_discarded(self, kit, replica):
        genesis = genesis_prepare_certificate()
        request = kit.prepare_request(genesis, ZERO_TS.succ(kit.client), ("v", 1))
        assert replica.handle(kit.client, request) is None
        assert replica.stats.discards["missing-justify"] == 1

    def test_prepare_with_valid_justify_approved(self, kit, replica, strong_config):
        genesis = genesis_prepare_certificate()
        justify = make_write_cert(strong_config, ZERO_TS)
        request = kit.prepare_request(
            genesis, ZERO_TS.succ(kit.client), ("v", 1), justify_cert=justify
        )
        assert isinstance(replica.handle(kit.client, request), PrepareReply)

    def test_justify_timestamp_mismatch_discarded(self, kit, replica, strong_config):
        from repro.core.timestamp import Timestamp

        genesis = genesis_prepare_certificate()
        # Justify proves ts (5, bob) completed, but the proposal must then be
        # succ((5, bob), alice) = (6, alice); proposing succ(genesis) fails.
        justify = make_write_cert(strong_config, Timestamp(5, "client:bob"))
        request = kit.prepare_request(
            genesis, ZERO_TS.succ(kit.client), ("v", 1), justify_cert=justify
        )
        assert replica.handle(kit.client, request) is None
        assert replica.stats.discards["bad-justify-ts"] == 1

    def test_forged_justify_discarded(self, kit, replica, strong_config):
        from repro.core.certificates import WriteCertificate
        from repro.crypto.signatures import Signature

        genesis = genesis_prepare_certificate()
        forged = WriteCertificate(
            ts=ZERO_TS,
            signatures=tuple(
                Signature(signer=f"replica:{i}", value=b"\x00" * 32) for i in range(3)
            ),
        )
        request = kit.prepare_request(
            genesis, ZERO_TS.succ(kit.client), ("v", 1), justify_cert=forged
        )
        assert replica.handle(kit.client, request) is None
        assert replica.stats.discards["bad-justify-cert"] == 1

    def test_full_strong_write_chain(self, kit, replicas, strong_config):
        """Two consecutive strong writes, each justified by the previous."""
        justify1 = make_write_cert(strong_config, ZERO_TS)
        cert1, wcert1 = kit.full_write(replicas, ("v", 1), justify_cert=justify1)
        cert2, wcert2 = kit.full_write(
            replicas, ("v", 2), write_cert=wcert1, justify_cert=wcert1
        )
        assert replicas[0].data == ("v", 2)
        assert cert2.ts == cert1.ts.succ(kit.client)
