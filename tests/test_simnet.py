"""Tests for the simulated unreliable network."""

from __future__ import annotations

import pytest

from repro.core.messages import ReadTsRequest
from repro.net.simnet import LinkProfile, SimNetwork
from repro.sim import Scheduler
from repro.errors import NetworkError


def make_net(profile=None, seed=0):
    sched = Scheduler()
    return sched, SimNetwork(sched, profile=profile, seed=seed)


MSG = ReadTsRequest(nonce=b"\x01" * 16)


class TestDelivery:
    def test_basic_delivery(self):
        sched, net = make_net()
        got = []
        net.register("b", lambda src, msg: got.append((src, msg)))
        net.send("a", "b", MSG)
        sched.run_until_idle()
        assert got == [("a", MSG)]

    def test_delivery_is_delayed(self):
        sched, net = make_net(LinkProfile(min_delay=0.5, max_delay=0.5))
        times = []
        net.register("b", lambda src, msg: times.append(sched.now))
        net.send("a", "b", MSG)
        sched.run_until_idle()
        assert times == [0.5]

    def test_unknown_destination_dropped(self):
        sched, net = make_net()
        net.send("a", "ghost", MSG)
        sched.run_until_idle()
        assert net.stats.messages_dropped == 1

    def test_duplicate_registration_rejected(self):
        _, net = make_net()
        net.register("a", lambda s, m: None)
        with pytest.raises(NetworkError):
            net.register("a", lambda s, m: None)

    def test_reordering_occurs_with_jitter(self):
        sched, net = make_net(LinkProfile(min_delay=0.0, max_delay=1.0), seed=3)
        got = []
        net.register("b", lambda src, msg: got.append(msg.nonce))
        for i in range(20):
            net.send("a", "b", ReadTsRequest(nonce=bytes([i]) * 16))
        sched.run_until_idle()
        assert len(got) == 20
        assert got != sorted(got)  # some reordering happened


class TestLossAndCorruption:
    def test_full_loss(self):
        sched, net = make_net(LinkProfile(drop_rate=1.0))
        got = []
        net.register("b", lambda src, msg: got.append(msg))
        for _ in range(10):
            net.send("a", "b", MSG)
        sched.run_until_idle()
        assert got == []
        assert net.stats.messages_dropped == 10

    def test_statistical_loss(self):
        sched, net = make_net(LinkProfile(drop_rate=0.5), seed=7)
        got = []
        net.register("b", lambda src, msg: got.append(msg))
        for _ in range(200):
            net.send("a", "b", MSG)
        sched.run_until_idle()
        assert 40 < len(got) < 160

    def test_duplication(self):
        sched, net = make_net(LinkProfile(duplicate_rate=1.0))
        got = []
        net.register("b", lambda src, msg: got.append(msg))
        net.send("a", "b", MSG)
        sched.run_until_idle()
        assert len(got) == 2
        assert net.stats.messages_duplicated == 1

    def test_corruption_is_discarded_not_delivered(self):
        sched, net = make_net(LinkProfile(corrupt_rate=1.0), seed=1)
        got = []
        net.register("b", lambda src, msg: got.append(msg))
        for _ in range(20):
            net.send("a", "b", MSG)
        sched.run_until_idle()
        # A flipped byte nearly always breaks parsing; anything delivered
        # must have parsed back into a real message.
        assert net.stats.messages_corrupted == 20
        for msg in got:
            assert isinstance(msg, ReadTsRequest)

    def test_invalid_profile_rejected(self):
        with pytest.raises(NetworkError):
            LinkProfile(drop_rate=1.5)
        with pytest.raises(NetworkError):
            LinkProfile(min_delay=2.0, max_delay=1.0)
        with pytest.raises(NetworkError):
            LinkProfile(duplicate_rate=-0.1)


class TestTopology:
    def test_partition_and_heal(self):
        sched, net = make_net()
        got = []
        net.register("b", lambda src, msg: got.append(msg))
        net.partition("a", "b")
        net.send("a", "b", MSG)
        sched.run_until_idle()
        assert got == []
        net.heal("a", "b")
        net.send("a", "b", MSG)
        sched.run_until_idle()
        assert len(got) == 1

    def test_partition_is_bidirectional(self):
        sched, net = make_net()
        got = []
        net.register("a", lambda src, msg: got.append(msg))
        net.register("b", lambda src, msg: got.append(msg))
        net.partition("a", "b")
        net.send("b", "a", MSG)
        sched.run_until_idle()
        assert got == []

    def test_crash_and_recover(self):
        sched, net = make_net()
        got = []
        net.register("b", lambda src, msg: got.append(msg))
        net.crash("b")
        net.send("a", "b", MSG)
        sched.run_until_idle()
        assert got == []
        net.recover("b")
        net.send("a", "b", MSG)
        sched.run_until_idle()
        assert len(got) == 1

    def test_crashed_sender_sends_nothing(self):
        sched, net = make_net()
        got = []
        net.register("b", lambda src, msg: got.append(msg))
        net.crash("a")
        net.send("a", "b", MSG)
        sched.run_until_idle()
        assert got == []

    def test_message_in_flight_to_crashed_node_dropped(self):
        sched, net = make_net(LinkProfile(min_delay=1.0, max_delay=1.0))
        got = []
        net.register("b", lambda src, msg: got.append(msg))
        net.send("a", "b", MSG)
        net.crash("b")  # crashes while the message is in flight
        sched.run_until_idle()
        assert got == []

    def test_per_link_profile_override(self):
        sched, net = make_net()
        got = []
        net.register("b", lambda src, msg: got.append(msg))
        net.register("c", lambda src, msg: got.append(msg))
        net.set_link_profile("a", "b", LinkProfile(drop_rate=1.0))
        net.send("a", "b", MSG)
        net.send("a", "c", MSG)
        sched.run_until_idle()
        assert len(got) == 1


class TestStats:
    def test_byte_accounting(self):
        sched, net = make_net()
        net.register("b", lambda src, msg: None)
        net.send("a", "b", MSG)
        sched.run_until_idle()
        assert net.stats.bytes_sent > 0
        assert net.stats.bytes_delivered == net.stats.bytes_sent
        assert net.stats.sent_by_kind == {"READ-TS": 1}

    def test_determinism_under_seed(self):
        def run(seed):
            sched, net = make_net(LinkProfile(drop_rate=0.3, max_delay=0.5), seed=seed)
            got = []
            net.register("b", lambda src, msg: got.append(sched.now))
            for _ in range(50):
                net.send("a", "b", MSG)
            sched.run_until_idle()
            return got
        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_reset(self):
        sched, net = make_net()
        net.register("b", lambda src, msg: None)
        net.send("a", "b", MSG)
        sched.run_until_idle()
        net.stats.reset()
        assert net.stats.messages_sent == 0
        assert net.stats.bytes_by_kind == {}


class TestDropAccounting:
    """Dropped messages are attributed to their real kind and a reason."""

    def test_link_loss_reason_and_kind(self):
        sched, net = make_net(LinkProfile(drop_rate=1.0))
        net.register("b", lambda s, m: None)
        net.send("a", "b", MSG)
        sched.run_until_idle()
        assert net.stats.dropped_by_reason == {"link-loss": 1}
        assert net.stats.dropped_by_kind == {"READ-TS": 1}

    def test_partitioned_reason(self):
        sched, net = make_net()
        net.register("b", lambda s, m: None)
        net.partition("a", "b")
        net.send("a", "b", MSG)
        sched.run_until_idle()
        assert net.stats.dropped_by_reason == {"partitioned": 1}

    def test_crashed_source_reason(self):
        sched, net = make_net()
        net.register("b", lambda s, m: None)
        net.crash("a")
        net.send("a", "b", MSG)
        sched.run_until_idle()
        assert net.stats.dropped_by_reason == {"crashed": 1}

    def test_crashed_destination_counts_real_kind(self):
        """A message in flight when its destination crashes is dropped with
        the 'crashed' reason under the message's actual kind — the
        regression this accounting split pins down."""
        sched, net = make_net(LinkProfile(min_delay=0.5, max_delay=0.5))
        net.register("b", lambda s, m: None)
        net.send("a", "b", MSG)
        net.crash("b")
        sched.run_until_idle()
        assert net.stats.dropped_by_reason == {"crashed": 1}
        assert net.stats.dropped_by_kind == {"READ-TS": 1}

    def test_unregistered_destination_reason(self):
        sched, net = make_net()
        net.send("a", "ghost", MSG)
        sched.run_until_idle()
        assert net.stats.dropped_by_reason == {"unregistered": 1}

    def test_corruption_parse_failure_reason(self):
        sched, net = make_net(LinkProfile(corrupt_rate=1.0))
        got = []
        net.register("b", lambda s, m: got.append(m))
        for _ in range(5):
            net.send("a", "b", MSG)
        sched.run_until_idle()
        # Bit flips that break parsing are dropped as parse-failure; flips
        # that survive parsing deliver (possibly altered) messages.
        dropped = net.stats.dropped_by_reason.get("parse-failure", 0)
        assert dropped + len(got) == 5
        assert net.stats.messages_dropped == dropped

    def test_totals_match_reason_split(self):
        sched, net = make_net(LinkProfile(drop_rate=0.5), seed=5)
        net.register("b", lambda s, m: None)
        for _ in range(40):
            net.send("a", "b", MSG)
        sched.run_until_idle()
        assert net.stats.messages_dropped == sum(
            net.stats.dropped_by_reason.values()
        )
        assert net.stats.messages_dropped == sum(
            net.stats.dropped_by_kind.values()
        )

    def test_reset_clears_split_counters(self):
        sched, net = make_net(LinkProfile(drop_rate=1.0))
        net.register("b", lambda s, m: None)
        net.send("a", "b", MSG)
        sched.run_until_idle()
        net.stats.reset()
        assert net.stats.dropped_by_reason == {}
        assert net.stats.dropped_by_kind == {}
        assert net.stats.messages_reordered == 0


class TestReorderRate:
    def test_reorder_rate_validated(self):
        with pytest.raises(NetworkError):
            LinkProfile(reorder_rate=1.5)
        with pytest.raises(NetworkError):
            LinkProfile(reorder_rate=-0.1)

    def test_reordering_forced_and_counted(self):
        sched, net = make_net(
            LinkProfile(min_delay=0.01, max_delay=0.01, reorder_rate=0.5),
            seed=7,
        )
        got = []
        net.register("b", lambda src, msg: got.append(msg.nonce))
        for i in range(30):
            net.send("a", "b", ReadTsRequest(nonce=bytes([i]) * 16))
        sched.run_until_idle()
        assert len(got) == 30
        assert got != sorted(got)
        assert net.stats.messages_reordered > 0

    def test_zero_rate_consumes_no_extra_randomness(self):
        """reorder_rate=0 must leave the RNG draw sequence untouched, so
        seeded runs predating the knob replay identically."""
        def deliveries(profile):
            sched, net = make_net(profile, seed=11)
            times = []
            net.register("b", lambda src, msg: times.append(sched.now))
            for _ in range(10):
                net.send("a", "b", MSG)
            sched.run_until_idle()
            return times

        with_knob = deliveries(
            LinkProfile(min_delay=0.0, max_delay=0.5, reorder_rate=0.0)
        )
        without = deliveries(LinkProfile(min_delay=0.0, max_delay=0.5))
        assert with_knob == without
