"""Tests for §3.3.1's optional write-certificate piggybacking on reads."""

from __future__ import annotations

import pytest

from repro import build_cluster
from repro.core import make_system
from repro.core.messages import ReadRequest, ReadTsRequest
from repro.core.certificates import WriteCertificate
from repro.core.timestamp import Timestamp
from repro.crypto.signatures import Signature
from repro.sim import read_script, write_script

from tests.helpers import ProtocolKit, make_replicas


class TestReplicaSide:
    def test_piggybacked_cert_prunes_plist(self, config):
        kit = ProtocolKit(config)
        replicas = make_replicas(config)
        _, wcert = kit.full_write(replicas, ("v", 1))
        replica = replicas[0]
        assert kit.client in replica.plist
        reply = replica.handle(
            "client:someone", ReadTsRequest(nonce=b"n" * 16, write_cert=wcert)
        )
        assert reply is not None
        assert kit.client not in replica.plist
        assert replica.write_ts == wcert.ts

    def test_piggyback_on_read_request(self, config):
        kit = ProtocolKit(config)
        replicas = make_replicas(config)
        _, wcert = kit.full_write(replicas, ("v", 1))
        replica = replicas[0]
        reply = replica.handle(
            "client:someone", ReadRequest(nonce=b"n" * 16, write_cert=wcert)
        )
        assert reply is not None
        assert replica.write_ts == wcert.ts

    def test_invalid_piggyback_ignored_but_read_served(self, config):
        replicas = make_replicas(config)
        replica = replicas[0]
        forged = WriteCertificate(
            ts=Timestamp(9, "client:x"),
            signatures=tuple(
                Signature(signer=f"replica:{i}", value=b"\x00" * 32)
                for i in range(3)
            ),
        )
        reply = replica.handle(
            "client:someone", ReadTsRequest(nonce=b"n" * 16, write_cert=forged)
        )
        assert reply is not None  # the read is still answered
        assert replica.write_ts.val == 0  # the forged cert changed nothing
        assert replica.stats.discards["bad-write-cert"] == 1

    def test_piggyback_cannot_regress_write_ts(self, config):
        kit = ProtocolKit(config)
        replicas = make_replicas(config)
        _, wcert1 = kit.full_write(replicas, ("v", 1))
        _, wcert2 = kit.full_write(replicas, ("v", 2), write_cert=wcert1)
        replica = replicas[0]
        replica.handle("c", ReadTsRequest(nonce=b"1" * 16, write_cert=wcert2))
        assert replica.write_ts == wcert2.ts
        replica.handle("c", ReadTsRequest(nonce=b"2" * 16, write_cert=wcert1))
        assert replica.write_ts == wcert2.ts  # max(), not overwrite


class TestClientSide:
    def test_flag_off_by_default(self):
        cluster = build_cluster(f=1, seed=70)
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 1) + read_script(1))
        cluster.run(max_time=60)
        # With the flag off, read requests carried no certificate; replicas
        # never learned of the completed write outside phase 2.
        for replica in cluster.replicas.values():
            assert replica.write_ts.val == 0

    def test_flag_on_propagates_certificates(self):
        from repro.sim import ClusterOptions, Cluster

        options = ClusterOptions(f=1, seed=71)
        cluster = Cluster(options)
        cluster.config.piggyback_write_certs = True
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 1) + read_script(1))
        cluster.run(max_time=60)
        cluster.settle()
        # The read after the write carried the write certificate: every
        # replica's write_ts advanced without any further phase-2 traffic.
        advanced = [
            r for r in cluster.replicas.values() if r.write_ts.val == 1
        ]
        assert len(advanced) == len(cluster.replicas)

    def test_plists_drain_faster_with_piggyback(self):
        """The §3.3.1 motivation: entries for completed writes disappear as
        soon as the writer reads, not only on its next write."""

        def residual_entries(piggyback: bool) -> int:
            config = make_system(f=1, seed=b"pgb", piggyback_write_certs=piggyback)
            kit = ProtocolKit(config)
            replicas = make_replicas(config)
            _, wcert = kit.full_write(replicas, ("v", 1))
            # The writer now issues a read through the real client path.
            from repro.core.client import BftBcClient
            from tests.helpers import DirectDriver

            client = BftBcClient("client:alice", config)
            client.write_cert = wcert
            driver = DirectDriver(client, replicas)
            driver.run_read()
            return sum(len(r.plist) for r in replicas)

        assert residual_entries(piggyback=False) > 0
        assert residual_entries(piggyback=True) == 0
