"""Differential crash-recovery schedules on the simulator.

Acceptance test for the durable storage engine: for every protocol variant,
a replica is crashed mid-protocol (losing its process) and restarted from
its :class:`~repro.storage.FileLogStore`.  The run must stay
BFT-linearizable, and — once post-restart writes have flowed through every
replica — each replica's Figure-2 state fingerprint must equal its twin's
from a fault-free :class:`~repro.storage.MemoryStore` run of the same
workload.  Signing logs are excluded from the fingerprints: a replica that
was down for an operation legitimately never signed it.
"""

from __future__ import annotations

import pytest

from repro.sim import build_cluster
from repro.sim.faults import FaultSchedule
from repro.sim.nodes import ScriptStep
from repro.sim.runner import ClusterOptions
from repro.spec import check_bft_linearizable
from repro.storage import FileLogStore
from repro.errors import SimulationError

MAX_B = {"base": 1, "optimized": 2, "strong": 1, "fastpath": 2}

#: Enough writes that several complete before the crash, some run during the
#: outage, and at least one full write lands after the restart.
SCRIPT: list[ScriptStep] = [("write", ("w", i)) for i in range(8)] + [
    ("read", None)
]

CRASHED = "replica:2"


def run_workload(options, schedule=None):
    cluster = build_cluster(options)
    if schedule is not None:
        cluster.install_faults(schedule)
    cluster.run_scripts({"alice": SCRIPT}, max_time=120)
    cluster.settle(2.0)
    return cluster


def fingerprints(cluster):
    return {
        rid: replica.state_fingerprint()
        for rid, replica in cluster.replicas.items()
    }


@pytest.mark.parametrize("variant", ["base", "optimized", "strong", "fastpath"])
def test_crash_recovery_matches_fault_free_run(variant, tmp_path):
    baseline = run_workload(ClusterOptions(variant=variant, seed=7))

    # Crash a third of the way into the (measured) workload and restart
    # just past the middle, so several full writes flow through the
    # recovered replica before the run ends and state can converge.
    duration = baseline.scheduler.now
    durable = run_workload(
        ClusterOptions(
            variant=variant,
            seed=7,
            store_factory=lambda rid: FileLogStore(tmp_path / variant / rid),
        ),
        schedule=FaultSchedule().crash_restart(
            0.3 * duration, CRASHED, down_for=0.25 * duration
        ),
    )

    node = durable.replica_nodes[CRASHED]
    assert node.crashes == 1 and node.restarts == 1

    report = check_bft_linearizable(durable.history, max_b=MAX_B[variant])
    assert report.ok, report

    assert fingerprints(durable) == fingerprints(baseline)


def test_memory_store_crash_is_the_unsafe_baseline():
    """Crash/restart with the volatile default wipes the replica, yet the
    protocol still masks it (it looks like one faulty replica, f=1)."""
    cluster = build_cluster(ClusterOptions(seed=3))
    cluster.install_faults(
        FaultSchedule().crash_restart(0.1, CRASHED, down_for=0.1)
    )
    cluster.run_scripts({"alice": SCRIPT}, max_time=120)
    node = cluster.replica_nodes[CRASHED]
    assert node.crashes == 1 and node.restarts == 1
    assert cluster.replicas[CRASHED].store.stats.crashes == 1
    assert check_bft_linearizable(cluster.history, max_b=1).ok


def test_torn_tail_recovery_under_fsync_never(tmp_path):
    """With fsync="never" the crash loses the unsynced WAL tail; recovery
    truncates it and the run still converges and linearizes."""
    options = ClusterOptions(
        seed=11,
        store_factory=lambda rid: FileLogStore(tmp_path / rid, fsync="never"),
    )
    cluster = build_cluster(options)
    cluster.install_faults(
        FaultSchedule().crash_restart(0.1, CRASHED, down_for=0.1)
    )
    cluster.run_scripts({"alice": SCRIPT}, max_time=120)
    cluster.settle(2.0)
    assert check_bft_linearizable(cluster.history, max_b=1).ok

    baseline = run_workload(ClusterOptions(seed=11))
    assert fingerprints(cluster) == fingerprints(baseline)


def test_node_actions_require_nodes():
    schedule = FaultSchedule().crash_restart(1.0, "replica:0", down_for=1.0)
    cluster = build_cluster(ClusterOptions(seed=0))
    with pytest.raises(SimulationError):
        schedule.install(cluster.scheduler, cluster.network)
    with pytest.raises(SimulationError):
        FaultSchedule().crash_restart(1.0, "replica:99", down_for=1.0).install(
            cluster.scheduler, cluster.network, nodes=cluster.replica_nodes
        )


def test_storage_metrics_flow_through_collector(tmp_path):
    options = ClusterOptions(
        seed=5, store_factory=lambda rid: FileLogStore(tmp_path / rid)
    )
    cluster = run_workload(options)
    totals = cluster.metrics.storage_totals()
    assert totals.appends > 0
    assert totals.fsyncs > 0
    assert cluster.metrics.log_appends_per_op() > 0
    assert cluster.metrics.fsyncs_per_op() > 0


def test_jittered_backoff_is_deterministic_and_still_live():
    def run_once():
        options = ClusterOptions(
            seed=9,
            retransmit_interval=0.03,
            retransmit_backoff=2.0,
            retransmit_jitter=0.2,
            retransmit_max_interval=0.5,
        )
        cluster = build_cluster(options)
        cluster.install_faults(
            FaultSchedule().crash_restart(0.1, CRASHED, down_for=0.1)
        )
        cluster.run_scripts({"alice": SCRIPT}, max_time=120)
        return cluster

    first, second = run_once(), run_once()
    assert first.scheduler.now == second.scheduler.now
    assert (
        first.metrics.retransmit_ticks == second.metrics.retransmit_ticks
    )
    assert check_bft_linearizable(first.history, max_b=1).ok
