"""Access control and the two stop-notions of §4.1.1."""

from __future__ import annotations

import pytest

from repro import (
    ExplicitWriters,
    NamespaceWriters,
    PredicateWriters,
    build_cluster,
)
from repro.core import make_system
from repro.errors import KeyRevokedError
from repro.sim import read_script


class TestAcl:
    def test_default_authorizes_every_registered_client(self, config):
        assert config.is_authorized_writer("client:alice")
        assert not config.is_authorized_writer("client:ghost")  # unregistered

    def test_explicit_acl_restricts(self, config):
        config.authorized_writers = {"client:alice"}
        assert config.is_authorized_writer("client:alice")
        assert not config.is_authorized_writer("client:bob")

    def test_authorize_writer_creates_acl(self):
        cfg = make_system(f=1, seed=b"acl")
        cfg.registry.register("client:x")
        cfg.authorize_writer("client:x")
        assert cfg.authorized_writers == {"client:x"}
        assert cfg.is_authorized_writer("client:x")
        # Registering alone no longer suffices once an ACL exists.
        cfg.registry.register("client:y")
        assert not cfg.is_authorized_writer("client:y")

    def test_revoke_writer_removes_key_and_acl_entry(self):
        cfg = make_system(f=1, seed=b"acl2")
        cfg.registry.register("client:x")
        cfg.authorize_writer("client:x")
        cfg.revoke_writer("client:x")
        assert cfg.registry.is_revoked("client:x")
        assert "client:x" not in (cfg.authorized_writers or set())
        with pytest.raises(KeyRevokedError):
            cfg.scheme.sign("client:x", b"m")


class TestStopNotions:
    def _hoard(self, cluster):
        from repro.byzantine import LurkingWriteAttack

        attack = LurkingWriteAttack(cluster, "evil", warmup=1, extra_attempts=0)
        attack.start()
        cluster.run(max_time=60)
        assert attack.hoard
        return attack

    def test_default_stop_allows_replays(self):
        """§4.1.1's base notion: after the stop, *replays* of previously
        signed messages still work (that is what makes lurking writes a
        threat worth bounding)."""
        from repro.byzantine import Colluder

        cluster = build_cluster(f=1, seed=60)
        attack = self._hoard(cluster)
        attack.stop()
        colluder = Colluder(cluster, "colluder", attack.hoard)
        colluder.start()
        reader = cluster.add_client("r")
        reader.run_script(read_script(1), start_delay=0.5)
        cluster.run(max_time=60)
        assert reader.client.last_result == attack.hoard[0].value

    def test_strict_stop_discards_replays(self):
        """The stronger notion ('an administrator removing the node's public
        key from the access control list ... where replays are also
        discarded'): the colluder's replay is rejected and the lurking write
        never becomes visible."""
        from repro.byzantine import Colluder

        cluster = build_cluster(f=1, seed=61, strict_stop=True)
        attack = self._hoard(cluster)
        attack.stop()
        colluder = Colluder(cluster, "colluder", attack.hoard)
        colluder.start()
        reader = cluster.add_client("r")
        reader.run_script(read_script(1), start_delay=0.5)
        cluster.run(max_time=60)
        # The hoarded value is nowhere: replicas discarded the replay.
        assert reader.client.last_result != attack.hoard[0].value
        for replica in cluster.replicas.values():
            assert replica.data != attack.hoard[0].value
            assert replica.stats.discards["revoked"] >= 1

    def test_strict_stop_does_not_affect_other_clients(self):
        cluster = build_cluster(f=1, seed=62, strict_stop=True)
        attack = self._hoard(cluster)
        attack.stop()
        good = cluster.add_client("good")
        good.run_script([("write", ("client:good", 1, None)), ("read", None)])
        cluster.run(max_time=60)
        assert good.client.last_result == ("client:good", 1, None)


class TestAccessPolicies:
    """The pluggable AccessPolicy rules behind ``authorized_writers``."""

    def test_explicit_writers_is_a_set(self):
        policy = ExplicitWriters({"client:a"})
        assert policy == {"client:a"}  # set-equality compatibility
        policy.authorize("client:b")
        assert policy.allows("client:b")
        policy.retract("client:b")
        assert not policy.allows("client:b")
        assert policy == {"client:a"}

    def test_namespace_admits_prefix_in_constant_memory(self):
        policy = NamespaceWriters("load:")
        for i in (0, 1, 999_999):
            assert policy.allows(f"load:{i}")
        assert not policy.allows("client:alice")
        # No per-member state materialised for the million admitted ids.
        assert not policy.extra and not policy.denied

    def test_namespace_extra_and_denied(self):
        policy = NamespaceWriters(
            ("load:", "svc:"), extra=("client:admin",), denied=("load:13",)
        )
        assert policy.allows("svc:payments")
        assert policy.allows("client:admin")
        assert not policy.allows("load:13")  # exact denial wins the prefix
        policy.authorize("load:13")  # re-grant clears the denial
        assert policy.allows("load:13")
        assert "load:13" not in policy.extra  # prefix covers it again
        policy.retract("client:admin")
        assert not policy.allows("client:admin")

    def test_predicate_with_overrides(self):
        policy = PredicateWriters(lambda c: c.endswith(":writer"))
        assert policy.allows("a:writer")
        assert not policy.allows("a:reader")
        policy.authorize("a:reader")
        assert policy.allows("a:reader")
        policy.retract("a:writer")
        assert not policy.allows("a:writer")

    def test_config_funnels_through_policy(self):
        cfg = make_system(f=1, seed=b"policy")
        cfg.authorized_writers = NamespaceWriters("load:")
        cfg.registry.open_namespace("load:")
        assert cfg.is_authorized_writer("load:42")
        assert not cfg.is_authorized_writer("client:ghost")
        cfg.authorize_writer("client:admin")  # lands in policy.extra
        cfg.registry.register("client:admin")
        assert cfg.is_authorized_writer("client:admin")
        cfg.revoke_writer("load:42")
        assert not cfg.is_authorized_writer("load:42")
        with pytest.raises(KeyRevokedError):
            cfg.scheme.sign("load:42", b"m")

    def test_callable_policy_is_read_only(self):
        from repro.errors import QuorumConfigError

        cfg = make_system(f=1, seed=b"policy2")
        cfg.authorized_writers = lambda client: client.startswith("x:")
        cfg.registry.register("x:1")
        cfg.registry.register("y:1")
        assert cfg.is_authorized_writer("x:1")
        assert not cfg.is_authorized_writer("y:1")
        with pytest.raises(QuorumConfigError):
            cfg.authorize_writer("y:1")
