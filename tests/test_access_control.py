"""Access control and the two stop-notions of §4.1.1."""

from __future__ import annotations

import pytest

from repro import build_cluster
from repro.core import make_system
from repro.errors import KeyRevokedError
from repro.sim import read_script


class TestAcl:
    def test_default_authorizes_every_registered_client(self, config):
        assert config.is_authorized_writer("client:alice")
        assert not config.is_authorized_writer("client:ghost")  # unregistered

    def test_explicit_acl_restricts(self, config):
        config.authorized_writers = {"client:alice"}
        assert config.is_authorized_writer("client:alice")
        assert not config.is_authorized_writer("client:bob")

    def test_authorize_writer_creates_acl(self):
        cfg = make_system(f=1, seed=b"acl")
        cfg.registry.register("client:x")
        cfg.authorize_writer("client:x")
        assert cfg.authorized_writers == {"client:x"}
        assert cfg.is_authorized_writer("client:x")
        # Registering alone no longer suffices once an ACL exists.
        cfg.registry.register("client:y")
        assert not cfg.is_authorized_writer("client:y")

    def test_revoke_writer_removes_key_and_acl_entry(self):
        cfg = make_system(f=1, seed=b"acl2")
        cfg.registry.register("client:x")
        cfg.authorize_writer("client:x")
        cfg.revoke_writer("client:x")
        assert cfg.registry.is_revoked("client:x")
        assert "client:x" not in (cfg.authorized_writers or set())
        with pytest.raises(KeyRevokedError):
            cfg.scheme.sign("client:x", b"m")


class TestStopNotions:
    def _hoard(self, cluster):
        from repro.byzantine import LurkingWriteAttack

        attack = LurkingWriteAttack(cluster, "evil", warmup=1, extra_attempts=0)
        attack.start()
        cluster.run(max_time=60)
        assert attack.hoard
        return attack

    def test_default_stop_allows_replays(self):
        """§4.1.1's base notion: after the stop, *replays* of previously
        signed messages still work (that is what makes lurking writes a
        threat worth bounding)."""
        from repro.byzantine import Colluder

        cluster = build_cluster(f=1, seed=60)
        attack = self._hoard(cluster)
        attack.stop()
        colluder = Colluder(cluster, "colluder", attack.hoard)
        colluder.start()
        reader = cluster.add_client("r")
        reader.run_script(read_script(1), start_delay=0.5)
        cluster.run(max_time=60)
        assert reader.client.last_result == attack.hoard[0].value

    def test_strict_stop_discards_replays(self):
        """The stronger notion ('an administrator removing the node's public
        key from the access control list ... where replays are also
        discarded'): the colluder's replay is rejected and the lurking write
        never becomes visible."""
        from repro.byzantine import Colluder

        cluster = build_cluster(f=1, seed=61, strict_stop=True)
        attack = self._hoard(cluster)
        attack.stop()
        colluder = Colluder(cluster, "colluder", attack.hoard)
        colluder.start()
        reader = cluster.add_client("r")
        reader.run_script(read_script(1), start_delay=0.5)
        cluster.run(max_time=60)
        # The hoarded value is nowhere: replicas discarded the replay.
        assert reader.client.last_result != attack.hoard[0].value
        for replica in cluster.replicas.values():
            assert replica.data != attack.hoard[0].value
            assert replica.stats.discards["revoked"] >= 1

    def test_strict_stop_does_not_affect_other_clients(self):
        cluster = build_cluster(f=1, seed=62, strict_stop=True)
        attack = self._hoard(cluster)
        attack.stop()
        good = cluster.add_client("good")
        good.run_script([("write", ("client:good", 1, None)), ("read", None)])
        cluster.run(max_time=60)
        assert good.client.last_result == ("client:good", 1, None)
