"""Targeted failure injection: faults landing at precise protocol moments.

These tests pin down recovery behaviour that coarse fault schedules might
miss: partitions opening mid-phase, replicas crashing between phases, and
messages lost at each individual protocol step.
"""

from __future__ import annotations

import pytest

from repro import build_cluster
from repro.core import BftBcClient, make_system
from repro.core.messages import PrepareReply, ReadTsReply, WriteReply
from repro.sim import read_script, write_script
from repro.spec import check_register_linearizable

from tests.helpers import DirectDriver, make_replicas


@pytest.fixture
def config():
    return make_system(f=1, seed=b"failure-inject")


@pytest.fixture
def replicas(config):
    return make_replicas(config)


@pytest.fixture
def driver(config, replicas):
    return DirectDriver(BftBcClient("client:alice", config), replicas)


class TestPerPhaseLoss:
    """Drop all of one phase's traffic, then recover via retransmission."""

    def test_phase1_blackout(self, driver, replicas):
        driver.drop(*[r.node_id for r in replicas])
        op = driver.run_write(("v", 1))
        assert not op.done and op.phases == 1
        driver.restore(*[r.node_id for r in replicas])
        driver.tick()
        assert op.done

    def test_phase2_blackout(self, driver, replicas, config):
        # Let phase 1 succeed, then cut everything for phase 2.
        client = driver.client
        sends = client.begin_write(("v", 1))
        # Deliver phase-1 replies manually.
        for replica in replicas:
            reply = replica.handle(client.node_id, sends[0].message)
            out = client.deliver(replica.node_id, reply)
            if out:  # phase-2 requests produced: swallow them (blackout)
                break
        op = client.op
        assert not op.done
        driver.tick()  # retransmits phase 2 to everyone
        assert op.done
        assert op.phases == 3

    def test_phase3_partial_then_recover(self, driver, replicas):
        # Phase 3 reaches only 2 replicas at first (below quorum).
        client = driver.client
        driver.drop(replicas[2].node_id, replicas[3].node_id)
        op = driver.run_write(("v", 1))
        # Phases 1-2 failed already? No: quorum needs 3; with two dropped
        # only 2 respond, so the op is stuck in phase 1.
        assert not op.done
        driver.restore(replicas[2].node_id)
        driver.tick()
        assert op.done

    def test_write_back_loss_recovered(self, driver, replicas, config):
        driver.drop(replicas[3].node_id)
        driver.run_write(("v", 1))
        driver.restore(replicas[3].node_id)
        driver.drop(replicas[0].node_id)  # force laggard into quorum
        # Now drop the laggard *during* the write-back.
        client = driver.client
        sends = client.begin_read()
        driver.pump(sends[:2])  # two fresh replies
        driver.drop(replicas[3].node_id)
        driver.pump(sends[2:])  # third reply triggers write-back, which is lost
        op = client.op
        assert not op.done
        driver.restore(replicas[3].node_id)
        driver.tick()
        assert op.done
        assert replicas[3].data == ("v", 1)


class TestMidRunPartitions:
    def test_partition_during_concurrent_writes(self):
        from repro.sim import FaultSchedule

        cluster = build_cluster(f=1, seed=80)
        schedule = (
            FaultSchedule()
            .partition(0.005, "client:a", "replica:0")
            .partition(0.005, "client:b", "replica:1")
            .heal(0.4, "client:a", "replica:0")
            .heal(0.4, "client:b", "replica:1")
        )
        cluster.install_faults(schedule)
        cluster.run_scripts(
            {
                "a": write_script("client:a", 4) + read_script(1),
                "b": write_script("client:b", 4) + read_script(1),
            },
            max_time=300,
        )
        report = check_register_linearizable(cluster.history)
        assert report.ok, report.violation

    def test_replica_crash_between_client_ops(self):
        cluster = build_cluster(f=1, seed=81)
        w = cluster.add_client("w")
        w.run_script(write_script("client:w", 2))
        cluster.run(max_time=60)
        cluster.network.crash("replica:1")
        w.run_script(read_script(1) + [("write", ("client:w", 99, None))])
        cluster.run(max_time=60)
        assert cluster.metrics.operations == 4

    def test_quorum_loss_then_recovery(self):
        """Two replicas down (> f): the system stalls but does not corrupt;
        recovery restores liveness and atomicity."""
        from repro.errors import OperationFailedError
        from repro.sim import FaultSchedule

        cluster = build_cluster(f=1, seed=82)
        cluster.network.crash("replica:0")
        cluster.network.crash("replica:1")
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 1))
        with pytest.raises(OperationFailedError):
            cluster.run(max_time=0.5)
        cluster.network.recover("replica:0")
        cluster.run(max_time=60)
        assert cluster.metrics.operations == 1
        report = check_register_linearizable(cluster.history)
        assert report.ok, report.violation


class TestDuplicatedDelayedReplies:
    def test_stale_phase_replies_ignored(self, driver, replicas, config):
        """Replies from a *previous* operation (captured and replayed) must
        not satisfy the current operation's collector."""
        client = driver.client
        # Run a full write and capture its replies.
        captured = []
        sends = client.begin_write(("v", 1))
        for replica in replicas:
            reply = replica.handle(client.node_id, sends[0].message)
            captured.append((replica.node_id, reply))
            driver.pump(client.deliver(replica.node_id, reply))
        assert client.op.done
        # Start a second write; replay the first op's phase-1 replies.
        client.begin_write(("v", 2))
        for sender, reply in captured:
            client.deliver(sender, reply)
        # The nonce binds replies to operations: nothing was accepted.
        assert client.op._collector is not None
        assert len(client.op._collector.replies) == 0

    def test_duplicated_write_replies_harmless(self, driver, replicas, config):
        from repro.core.statements import write_reply_statement

        op = driver.run_write(("v", 1))
        assert op.done
        # A duplicate WRITE-REPLY arriving after completion is ignored.
        duplicate = WriteReply(
            ts=op.result,
            signature=config.scheme.sign_statement(
                replicas[0].node_id, write_reply_statement(op.result)
            ),
        )
        sends = driver.client.deliver(replicas[0].node_id, duplicate)
        assert sends == []
