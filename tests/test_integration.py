"""End-to-end integration tests: full clusters, all variants, hostile
networks, fault schedules, and atomicity checking on every run."""

from __future__ import annotations

import pytest

from repro import LinkProfile, build_cluster
from repro.sim import FaultSchedule, make_scripts, read_script, write_script
from repro.spec import check_register_linearizable

VARIANTS = ["base", "optimized", "strong", "fastpath"]


@pytest.mark.parametrize("variant", VARIANTS)
class TestVariantsEndToEnd:
    def test_single_client_all_ops(self, variant):
        cluster = build_cluster(f=1, variant=variant, seed=50)
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 5) + read_script(3))
        cluster.run(max_time=120)
        assert node.client.last_result == ("client:w", 4, None)
        report = check_register_linearizable(cluster.history)
        assert report.ok, report.violation

    def test_three_concurrent_clients(self, variant):
        cluster = build_cluster(f=1, variant=variant, seed=51)
        scripts = make_scripts(
            ["client:a", "client:b", "client:c"], 6, write_fraction=0.5, seed=3
        )
        cluster.run_scripts(
            {name.split(":")[1]: s for name, s in scripts.items()}, max_time=120
        )
        report = check_register_linearizable(cluster.history)
        assert report.ok, report.violation

    def test_lossy_network(self, variant):
        cluster = build_cluster(
            f=1, variant=variant, seed=52, profile=LinkProfile.lossy(0.15)
        )
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 4) + read_script(2))
        cluster.run(max_time=300)
        report = check_register_linearizable(cluster.history)
        assert report.ok, report.violation

    def test_harsh_network(self, variant):
        cluster = build_cluster(
            f=1, variant=variant, seed=53, profile=LinkProfile.harsh()
        )
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 3) + read_script(1))
        cluster.run(max_time=300)
        assert cluster.metrics.operations == 4

    def test_f2_cluster(self, variant):
        cluster = build_cluster(f=2, variant=variant, seed=54)
        cluster.run_scripts(
            {
                "a": write_script("client:a", 3) + read_script(1),
                "b": write_script("client:b", 3) + read_script(1),
            },
            max_time=120,
        )
        report = check_register_linearizable(cluster.history)
        assert report.ok, report.violation


class TestFaultScheduleIntegration:
    def test_rolling_crashes_within_f(self):
        """Replicas crash and recover one at a time; ops keep completing."""
        cluster = build_cluster(f=1, seed=55)
        schedule = (
            FaultSchedule()
            .crash(0.02, "replica:0")
            .recover(0.30, "replica:0")
            .crash(0.35, "replica:1")
            .recover(0.60, "replica:1")
        )
        cluster.install_faults(schedule)
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 10), think_time=0.05)
        cluster.run(max_time=300)
        assert cluster.metrics.operations == 10
        report = check_register_linearizable(cluster.history)
        assert report.ok, report.violation

    def test_partition_blocks_then_heals(self):
        cluster = build_cluster(f=1, seed=56)
        # Cut the client off from 2 replicas: no quorum, the op stalls;
        # after healing it completes.
        schedule = (
            FaultSchedule()
            .partition(0.0, "client:w", "replica:0")
            .partition(0.0, "client:w", "replica:1")
            .heal(0.5, "client:w", "replica:0")
        )
        cluster.install_faults(schedule)
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 1))
        cluster.run(max_time=300)
        ops = cluster.history.operations()
        assert ops[0].responded_at is not None
        assert ops[0].responded_at >= 0.5  # couldn't finish before healing

    def test_degraded_links_slow_but_do_not_block(self):
        cluster = build_cluster(f=1, seed=57)
        schedule = FaultSchedule()
        for rid in cluster.config.quorums.replica_ids[:2]:
            schedule.degrade_link(
                0.0, "client:w", rid, LinkProfile(drop_rate=0.6, max_delay=0.03)
            )
        cluster.install_faults(schedule)
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 5))
        cluster.run(max_time=300)
        assert cluster.metrics.operations == 5


class TestReadWriteBackChaining:
    def test_reader_repairs_enable_future_readers(self):
        """After a reader writes back, later readers need only one phase."""
        cluster = build_cluster(f=1, seed=58)
        cluster.network.crash("replica:3")
        w = cluster.add_client("w")
        w.run_script(write_script("client:w", 1))
        cluster.run(max_time=60)
        cluster.network.recover("replica:3")
        cluster.network.crash("replica:0")  # force laggard into quorums
        r1 = cluster.add_client("r1")
        r1.run_script(read_script(1))
        cluster.run(max_time=60)
        first_read = cluster.metrics.by_kind("read")[-1]
        assert first_read.phases == 2
        r2 = cluster.add_client("r2")
        r2.run_script(read_script(1))
        cluster.run(max_time=60)
        second_read = cluster.metrics.by_kind("read")[-1]
        assert second_read.phases == 1


class TestMixedVariantProperties:
    def test_metrics_match_paper_phase_claims(self):
        """E1 in miniature: base 3 / optimized 2 / read 1."""
        for variant, expected in (("base", 3), ("optimized", 2), ("strong", 3)):
            cluster = build_cluster(f=1, variant=variant, seed=59)
            node = cluster.add_client("w")
            node.run_script(write_script("client:w", 3) + read_script(2))
            cluster.run(max_time=120)
            write_phases = cluster.metrics.phases_summary("write")
            read_phases = cluster.metrics.phases_summary("read")
            assert write_phases.p50 == expected, variant
            assert read_phases.p50 == 1.0, variant

    def test_write_certificates_chain_across_sessions(self):
        """A client's write certificate from one run of ops keeps working
        for subsequent prepares (no reset between operations)."""
        cluster = build_cluster(f=1, seed=60)
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 2))
        cluster.run(max_time=60)
        cert = node.client.write_cert
        assert cert is not None and cert.ts.val == 2
        node.run_script([("write", ("client:w", 99, None))])
        cluster.run(max_time=60)
        assert node.client.write_cert.ts.val == 3
