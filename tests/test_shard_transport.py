"""Tests for the sharded TCP transport (asyncio).

Same shape as ``test_asyncio_transport``: real sockets on localhost, the
sans-I/O shard roles driven by their async facades.  Covers routed
writes/reads across shards and a full online reconfiguration — TCP state
transfer for the joiner, sign/install over sockets, then traffic at the
new epoch after the old member is gone.
"""

from __future__ import annotations

import asyncio

from repro.core import make_system
from repro.net.shard_transport import (
    AsyncReconfigurator,
    AsyncShardRouter,
    ShardReplicaServer,
    bootstrap_over_tcp,
)
from repro.shard import (
    HashRing,
    Reconfigurator,
    ShardConfig,
    ShardDirectory,
    ShardReplica,
    ShardRouter,
)


def run(coro):
    return asyncio.run(coro)


def make_world(shards=1, *, seed=b"shard-tcp"):
    template = make_system(f=1, seed=seed)
    genesis = {}
    for s in range(shards):
        members = tuple(f"replica:s{s}n{i}" for i in range(4))
        for member in members:
            template.registry.register(member)
        genesis[f"shard:{s}"] = ShardConfig(
            shard=f"shard:{s}", epoch=0, members=members, f=1
        )
    return template, genesis


async def start_shard_cluster(template, genesis, *, handoff=0.5):
    servers, addrs = {}, {}
    for shard, config in genesis.items():
        for rid in config.members:
            replica = ShardReplica(
                rid,
                shard,
                ShardDirectory(genesis, template.scheme),
                template,
                handoff=handoff,
            )
            server = ShardReplicaServer(replica)
            host, port = await server.start()
            addrs[rid] = (host, port)
            servers[rid] = server
    return servers, addrs


def make_router(name, template, genesis, addrs, **kwargs):
    template.registry.register(f"client:{name}")
    router = ShardRouter(
        f"client:{name}",
        HashRing(tuple(genesis)),
        ShardDirectory(genesis, template.scheme),
        template,
    )
    return AsyncShardRouter(router, addrs, **kwargs)


async def stop_all(servers, *routers):
    for router in routers:
        await router.close()
    for server in servers.values():
        await server.stop()


class TestShardTcpRouting:
    def test_write_and_read_across_shards(self):
        async def main():
            template, genesis = make_world(shards=2)
            servers, addrs = await start_shard_cluster(template, genesis)
            client = make_router("a", template, genesis, addrs)
            ring = client.router.ring
            # Pick one object per shard so both groups serve traffic.
            chosen, index = {}, 0
            while len(chosen) < 2:
                obj = f"obj-{index}"
                chosen.setdefault(ring.shard_for(obj), obj)
                index += 1
            for obj in sorted(chosen.values()):
                ts = await client.write(obj, ("client:a", 1, obj))
                assert ts.val == 1  # timestamps are per-object
                assert await client.read(obj) == ("client:a", 1, obj)
            await stop_all(servers, client)

        run(main())

    def test_reconfigure_over_tcp_then_route_at_new_epoch(self):
        async def main():
            template, genesis = make_world(shards=1, seed=b"shard-tcp-reconf")
            shard = "shard:0"
            servers, addrs = await start_shard_cluster(
                template, genesis, handoff=0.3
            )
            client = make_router("w", template, genesis, addrs)
            ts = await client.write("x", ("client:w", 1, "before"))
            assert ts.val == 1

            # The joiner bootstraps its state over TCP from the old members,
            # then starts serving on its own listener.
            remove, add = "replica:s0n3", "replica:s0nX"
            template.registry.register(add)
            joiner = ShardReplica(
                add,
                shard,
                ShardDirectory(genesis, template.scheme),
                template,
                handoff=0.3,
                bootstrap_from=genesis[shard],
            )
            await bootstrap_over_tcp(joiner, addrs)
            assert joiner.ready
            assert joiner.inner.object_state("x").data == (
                "client:w", 1, "before",
            )
            joiner_server = ShardReplicaServer(joiner)
            addrs[add] = await joiner_server.start()
            servers[add] = joiner_server

            admin = AsyncReconfigurator(
                Reconfigurator(
                    "admin:1",
                    shard,
                    ShardDirectory(genesis, template.scheme),
                    template,
                ),
                addrs,
            )
            await admin.replace(remove, add)
            assert admin.reconfigurator.done

            # The removed member goes away entirely; once the handoff window
            # lapses the survivors rebuff epoch-0 traffic and the router
            # refreshes + migrates mid-operation.
            await servers.pop(remove).stop()
            await asyncio.sleep(0.4)
            ts = await client.write("x", ("client:w", 2, "after"))
            assert ts.val == 2
            assert await client.read("x") == ("client:w", 2, "after")
            assert client.router.epoch(shard) == 1
            assert client.router.refreshes >= 1
            await stop_all(servers, client)

        run(main())
