"""The signature-free fast path: protocol, replica handlers, fallback,
recovery, and the closed-form cost model.

Covers the tentpole claims directly: common-case writes perform zero
public-key signature operations, proof evidence convinces exactly the
replica that checks its own MAC column, transfer points upgrade to signed
vouches, and every degraded run falls back to the signed protocol with no
safety loss.
"""

from __future__ import annotations

import pytest

from repro import LinkProfile, build_cluster
from repro.analysis import CostModel, WRITE_PHASES
from repro.core import make_system
from repro.core.certificates import PrepareCertificate, WriteCertificate
from repro.core.fast_replica import FastBftBcReplica
from repro.core.messages import (
    FastPrepReply,
    FastPrepRequest,
    FastWriteReply,
    FastWriteRequest,
    message_from_wire,
    message_to_wire,
)
from repro.core.statements import (
    fast_prep_request_statement,
    fast_vouch_statement,
    fast_write_request_statement,
    statement_bytes,
)
from repro.core.timestamp import Timestamp
from repro.crypto.commitments import (
    ProofOfWriting,
    make_commitment,
    make_mac_row,
    make_opening,
)
from repro.crypto.hashing import hash_value
from repro.errors import CertificateError
from repro.sim.faults import FaultSchedule
from repro.sim.runner import ClusterOptions
from repro.spec import check_register_linearizable
from repro.storage import FileLogStore

CLIENT = "client:alice"


# -- direct-drive helpers ---------------------------------------------------


def fast_system():
    config = make_system(1)
    config.registry.register(CLIENT)
    replicas = {
        rid: FastBftBcReplica(rid, config)
        for rid in config.quorums.replica_ids
    }
    return config, replicas


def make_fast_prep(config, value, nonce, *, client=CLIENT, write_cert=None):
    value_hash = hash_value(value)
    opening = make_opening(client, value_hash, nonce)
    commitment = make_commitment(opening)
    statement = statement_bytes(
        fast_prep_request_statement(
            client,
            value_hash,
            commitment,
            None if write_cert is None else write_cert.to_wire(),
            nonce,
        )
    )
    request = FastPrepRequest(
        client=client,
        value_hash=value_hash,
        commitment=commitment,
        nonce=nonce,
        write_cert=write_cert,
        macs=make_mac_row(
            config.authenticator, client, config.quorums.replica_ids, statement
        ),
    )
    return request, opening


def make_fast_write(config, ts, value, proof, nonce, *, client=CLIENT):
    statement = statement_bytes(
        fast_write_request_statement(
            client, ts.to_wire(), hash_value(value), proof.commitment, nonce
        )
    )
    return FastWriteRequest(
        client=client,
        ts=ts,
        value=value,
        proof=proof,
        nonce=nonce,
        macs=make_mac_row(
            config.authenticator, client, config.quorums.replica_ids, statement
        ),
    )


def run_fast_write(config, replicas, value, nonce, *, write_cert=None):
    """Drive one complete fast write against every replica.

    Returns ``(ts, proof, write_cert)`` where ``write_cert`` is the
    proof-evidence certificate the real client would attach to its next
    FAST-PREP.
    """
    prep, opening = make_fast_prep(config, value, nonce, write_cert=write_cert)
    replies = {
        rid: replica.handle(CLIENT, prep) for rid, replica in replicas.items()
    }
    assert all(isinstance(r, FastPrepReply) for r in replies.values())
    ts_values = {r.prepared_ts for r in replies.values()}
    assert len(ts_values) == 1 and None not in ts_values
    ts = ts_values.pop()
    proof = ProofOfWriting(
        commitment=prep.commitment,
        opening=opening,
        rows=tuple(sorted((r.replica, r.row) for r in replies.values())),
    )
    write = make_fast_write(config, ts, value, proof, nonce + b"w")
    ack_rows = {}
    for rid, replica in replicas.items():
        reply = replica.handle(CLIENT, write)
        assert isinstance(reply, FastWriteReply) and reply.ts == ts
        ack_rows[rid] = reply.row
    next_cert = WriteCertificate(
        ts=ts,
        signatures=(),
        evidence="proof",
        rows=tuple(sorted(ack_rows.items())),
    )
    return ts, proof, next_cert


# -- end-to-end: the tentpole numbers --------------------------------------


class TestFastPathEndToEnd:
    def test_writes_are_signature_free(self):
        cluster = build_cluster(f=1, variant="fastpath", seed=20)
        node = cluster.add_client("w")
        node.run_script([("write", ("w", i)) for i in range(5)])
        cluster.run(max_time=60)
        assert cluster.config.scheme.stats.signs == 0
        assert cluster.metrics.fast_path_rate() == 1.0
        assert cluster.metrics.fallback_rate() == 0.0
        assert cluster.metrics.phase_histogram("write") == {2: 5}
        assert WRITE_PHASES["fastpath"] == (2, 4)

    def test_write_signature_closed_forms(self):
        """Measured counters equal the CostModel closed forms exactly."""
        cluster = build_cluster(f=1, variant="fastpath", seed=21)
        cluster.run_scripts({"w": [("write", ("warm",))]})
        signs0 = cluster.config.scheme.stats.signs
        macs0 = cluster.config.authenticator.macs_computed
        cluster.run_scripts({"w": [("write", ("w", i)) for i in range(3)]})
        model = CostModel(cluster.config.quorums)
        assert cluster.config.scheme.stats.signs - signs0 == 0
        assert model.write_signature_ops("fastpath") == 0
        assert (
            cluster.config.authenticator.macs_computed - macs0
            == 3 * model.fast_write_macs_computed()
        )

    def test_signed_variants_match_signature_closed_form(self):
        for variant in ("base", "optimized"):
            cluster = build_cluster(f=1, variant=variant, seed=22)
            cluster.run_scripts({"w": [("write", ("warm",))]})
            signs0 = cluster.config.scheme.stats.signs
            cluster.run_scripts({"w": [("write", ("w", i)) for i in range(3)]})
            model = CostModel(cluster.config.quorums)
            assert (
                cluster.config.scheme.stats.signs - signs0
                == 3 * model.write_signature_ops(variant)
            )

    def test_reads_converge_and_vouch_lazily(self):
        cluster = build_cluster(f=1, variant="fastpath", seed=23)
        node = cluster.add_client("w")
        node.run_script([("write", ("w", 0)), ("read", None), ("read", None)])
        cluster.run(max_time=60)
        assert node.client.op.result == ("w", 0)
        assert cluster.metrics.phase_histogram("read") == {1: 2}
        # Vouches are produced once per (ts, h) and cached: the second read
        # costs no further vouch signatures.
        vouches = sum(
            r.stats.vouch_signs for r in cluster.replicas.values()
        )
        assert vouches == cluster.config.quorums.n
        # Vouch signs are accounted separately from foreground ones, and the
        # two together explain every signature the scheme ever produced
        # (reads sign their replies; the writes signed nothing).
        foreground = sum(
            r.stats.foreground_signs for r in cluster.replicas.values()
        )
        assert vouches + foreground == cluster.config.scheme.stats.signs

    def test_fresh_reader_after_fast_writes(self):
        """A client that never wrote reads the fast-written value in one
        phase — the vouch upgrade makes the write-back transferable."""
        cluster = build_cluster(f=1, variant="fastpath", seed=24)
        writer = cluster.add_client("w")
        writer.run_script([("write", ("w", i)) for i in range(3)])
        cluster.run(max_time=60)
        reader = cluster.add_client("r")
        reader.run_script([("read", None)])
        cluster.run(max_time=60)
        assert reader.client.op.result == ("w", 2)
        assert check_register_linearizable(cluster.history).ok

    def test_wal_record_closed_form(self):
        cluster = build_cluster(f=1, variant="fastpath", seed=25)
        cluster.run_scripts({"w": [("write", ("warm",))]})
        appends0 = cluster.metrics.storage_totals().appends
        cluster.run_scripts({"w": [("write", ("w", i)) for i in range(2)]})
        per_write = (
            cluster.metrics.storage_totals().appends - appends0
        ) / 2 / cluster.config.quorums.n
        model = CostModel(cluster.config.quorums)
        assert per_write == model.write_log_records("fastpath") == 8


# -- fallback ---------------------------------------------------------------


class TestFallback:
    def _blocked(self, replica_ids, count, heal_at=None):
        schedule = FaultSchedule()
        for rid in replica_ids[:count]:
            schedule.block_kinds(0.0, rid, ("FAST-PREP", "FAST-WRITE"))
            if heal_at is not None:
                schedule.unblock_kinds(heal_at, rid)
        return schedule

    def test_fallback_when_fast_quorum_unreachable(self):
        cluster = build_cluster(f=1, variant="fastpath", seed=30)
        cluster.install_faults(
            self._blocked(cluster.config.quorums.replica_ids, 2)
        )
        node = cluster.add_client("w")
        node.run_script([("write", ("w", 0)), ("read", None)])
        cluster.run(max_time=120)
        assert cluster.metrics.fallback_rate() == 1.0
        assert cluster.metrics.phase_histogram("write") == {4: 1}
        assert node.client.op.result == ("w", 0)
        assert check_register_linearizable(cluster.history).ok

    def test_fast_path_resumes_after_heal(self):
        cluster = build_cluster(f=1, variant="fastpath", seed=31)
        cluster.install_faults(
            self._blocked(cluster.config.quorums.replica_ids, 2, heal_at=1.0)
        )
        node = cluster.add_client("w")
        node.run_script(
            [("write", ("w", 0)), ("write", ("w", 1))], think_time=1.2
        )
        cluster.run(max_time=120)
        samples = cluster.metrics.by_kind("write")
        assert [s.fell_back for s in samples] == [True, False]
        assert [s.fast_path for s in samples] == [False, True]
        assert check_register_linearizable(cluster.history).ok

    @pytest.mark.parametrize("drop_rate", [0.1, 0.25])
    def test_lossy_network_stays_linearizable(self, drop_rate):
        cluster = build_cluster(
            f=1,
            variant="fastpath",
            seed=32,
            profile=LinkProfile(
                min_delay=0.001,
                max_delay=0.01,
                drop_rate=drop_rate,
                duplicate_rate=0.05,
                reorder_rate=0.1,
            ),
        )
        cluster.run_scripts(
            {
                "a": [("write", ("a", i)) for i in range(4)] + [("read", None)],
                "b": [("write", ("b", i)) for i in range(4)] + [("read", None)],
            },
            max_time=300,
        )
        assert check_register_linearizable(cluster.history).ok


# -- replica handlers (direct drive) ----------------------------------------


class TestFastHandlers:
    def test_complete_fast_write_installs_proof_cert(self):
        config, replicas = fast_system()
        ts, _proof, _cert = run_fast_write(config, replicas, ("v", 1), b"n1")
        assert ts == Timestamp(1, CLIENT)
        for replica in replicas.values():
            assert replica.pcert.evidence == "proof"
            assert replica.pcert.ts == ts
            assert replica.data == ("v", 1)
            assert replica.stats.foreground_signs == 0

    def test_unauthorized_client_discarded(self):
        config, replicas = fast_system()
        config.registry.register("client:mallory")
        config.authorize_writer(CLIENT)  # real ACL: alice only
        request, _ = make_fast_prep(
            config, ("v",), b"n", client="client:mallory"
        )
        replica = replicas["replica:0"]
        assert replica.handle("client:mallory", request) is None
        assert replica.stats.discards["unauthorized"] == 1

    def test_bad_request_mac_discarded(self):
        config, replicas = fast_system()
        good, _ = make_fast_prep(config, ("v",), b"n")
        tampered = FastPrepRequest(
            client=good.client,
            value_hash=good.value_hash,
            commitment=good.commitment,
            nonce=b"other-nonce",  # statement changes, MACs do not
            write_cert=None,
            macs=good.macs,
        )
        replica = replicas["replica:0"]
        assert replica.handle(CLIENT, tampered) is None
        assert replica.stats.discards["bad-mac"] == 1

    def test_bad_opening_discarded(self):
        config, replicas = fast_system()
        prep, opening = make_fast_prep(config, ("v",), b"n")
        replies = {
            rid: replica.handle(CLIENT, prep)
            for rid, replica in replicas.items()
        }
        ts = next(iter(replies.values())).prepared_ts
        bad_proof = ProofOfWriting(
            commitment=prep.commitment,
            opening=bytes(32),  # does not open the commitment
            rows=tuple(sorted((r.replica, r.row) for r in replies.values())),
        )
        write = make_fast_write(config, ts, ("v",), bad_proof, b"nw")
        replica = replicas["replica:0"]
        assert replica.handle(CLIENT, write) is None
        assert replica.stats.discards["bad-opening"] == 1

    def test_insufficient_rows_discarded_as_bad_proof(self):
        config, replicas = fast_system()
        prep, opening = make_fast_prep(config, ("v",), b"n")
        replies = {
            rid: replica.handle(CLIENT, prep)
            for rid, replica in replicas.items()
        }
        ts = next(iter(replies.values())).prepared_ts
        rows = tuple(sorted((r.replica, r.row) for r in replies.values()))
        thin_proof = ProofOfWriting(
            commitment=prep.commitment,
            opening=opening,
            rows=rows[: config.quorum_size - 1],
        )
        write = make_fast_write(config, ts, ("v",), thin_proof, b"nw")
        replica = replicas["replica:0"]
        assert replica.handle(CLIENT, write) is None
        assert replica.stats.discards["bad-proof"] == 1

    def test_forged_rows_do_not_count(self):
        """Rows from non-replica ackers are ignored; a Byzantine client
        cannot pad a proof with identities it controls."""
        config, replicas = fast_system()
        prep, opening = make_fast_prep(config, ("v",), b"n")
        reply = replicas["replica:0"].handle(CLIENT, prep)
        forged = tuple(
            (f"client:sock{i}", reply.row) for i in range(3)
        )
        proof = ProofOfWriting(
            commitment=prep.commitment,
            opening=opening,
            rows=tuple(sorted((("replica:0", reply.row),) + forged)),
        )
        write = make_fast_write(config, reply.prepared_ts, ("v",), proof, b"nw")
        replica = replicas["replica:1"]
        assert replica.handle(CLIENT, write) is None
        assert replica.stats.discards["bad-proof"] == 1

    def test_commitment_pinned_per_predicted_ts(self):
        """One fast prepare, one commitment: a second FAST-PREP for the same
        predicted timestamp with a different commitment is refused (the
        reply still arrives, MAC'd, with ``prepared_ts=None``)."""
        config, replicas = fast_system()
        replica = replicas["replica:0"]
        first, _ = make_fast_prep(config, ("v", 1), b"n1")
        reply = replica.handle(CLIENT, first)
        assert reply.prepared_ts is not None
        second, _ = make_fast_prep(config, ("v", 2), b"n2")
        refusal = replica.handle(CLIENT, second)
        assert isinstance(refusal, FastPrepReply)
        assert refusal.prepared_ts is None
        # Same request again (a retransmission) is still acknowledged.
        again = replica.handle(CLIENT, first)
        assert again.prepared_ts == reply.prepared_ts

    def test_fastc_gc_after_install(self):
        config, replicas = fast_system()
        ts, _proof, cert = run_fast_write(config, replicas, ("v", 1), b"n1")
        for replica in replicas.values():
            # write_ts only advances when a later request carries the write
            # certificate, so the consumed entry is still pinned for now.
            assert replica.fastc.get(CLIENT).ts == ts
        # The second write attaches the proof-evidence write certificate,
        # exactly as the real client does; applying it advances write_ts
        # past ts=1 and prunes the consumed entry, re-pinning at ts=2.
        prep, _ = make_fast_prep(config, ("v", 2), b"n2", write_cert=cert)
        for replica in replicas.values():
            reply = replica.handle(CLIENT, prep)
            assert reply.prepared_ts == Timestamp(2, CLIENT)
            assert replica.write_ts == ts
            assert replica.fastc.get(CLIENT).ts == Timestamp(2, CLIENT)
            assert len(replica.fastc) == 1


# -- certificates and transfer ----------------------------------------------


class TestProofEvidence:
    def test_proof_cert_never_validates_via_shared_verifier(self):
        """Third parties cannot be convinced by MAC evidence: the shared
        verifier refuses proof certificates outright (and therefore never
        caches a wrong positive)."""
        config, replicas = fast_system()
        _ts, _proof, _wcert = run_fast_write(config, replicas, ("v", 1), b"n1")
        cert = replicas["replica:0"].pcert
        assert cert.evidence == "proof"
        with pytest.raises(CertificateError):
            cert.validate(config.scheme, config.quorums)
        assert not config.verifier.certificate_valid(cert)

    def test_own_column_acceptance_is_per_replica(self):
        config, replicas = fast_system()
        run_fast_write(config, replicas, ("v", 1), b"n1")
        cert = replicas["replica:0"].pcert
        for replica in replicas.values():
            assert replica._certificate_valid(cert)

    def test_vouch_certificate_is_transferable(self):
        config, replicas = fast_system()
        ts, _proof, _wcert = run_fast_write(config, replicas, ("v", 1), b"n1")
        value_hash = hash_value(("v", 1))
        vouches = []
        for replica in replicas.values():
            sig = replica._pvouch()
            assert sig is not None
            assert config.scheme.verify_statement(
                sig, fast_vouch_statement(ts.to_wire(), value_hash)
            )
            vouches.append(sig)
        cert = PrepareCertificate(
            ts=ts,
            value_hash=value_hash,
            signatures=tuple(vouches[: config.f + 1]),
            evidence="vouch",
        )
        # f+1 vouches validate through the shared verifier: transferable.
        assert config.verifier.certificate_valid(cert)
        thin = PrepareCertificate(
            ts=ts,
            value_hash=value_hash,
            signatures=tuple(vouches[:1]),
            evidence="vouch",
        )
        assert not config.verifier.certificate_valid(thin)

    def test_fast_message_wire_round_trips(self):
        config, replicas = fast_system()
        prep, opening = make_fast_prep(config, ("v", 1), b"n1")
        assert message_from_wire(message_to_wire(prep)) == prep
        reply = replicas["replica:0"].handle(CLIENT, prep)
        assert message_from_wire(message_to_wire(reply)) == reply
        proof = ProofOfWriting(
            commitment=prep.commitment,
            opening=opening,
            rows=(("replica:0", reply.row),),
        )
        write = make_fast_write(config, reply.prepared_ts, ("v", 1), proof, b"nw")
        assert message_from_wire(message_to_wire(write)) == write


# -- recovery ---------------------------------------------------------------


class TestFastRecovery:
    def test_fastc_survives_crash_recovery(self, tmp_path):
        config = make_system(1)
        config.registry.register(CLIENT)
        rid = config.quorums.replica_ids[0]
        store = FileLogStore(tmp_path / "r0")
        replica = FastBftBcReplica(rid, config, store=store)
        prep, _ = make_fast_prep(config, ("v", 1), b"n1")
        reply = replica.handle(CLIENT, prep)
        assert reply.prepared_ts is not None
        fingerprint = replica.state_fingerprint()
        store.crash()
        twin = FastBftBcReplica(rid, config, store=store)
        twin.recover()
        entry = twin.fastc.get(CLIENT)
        assert entry is not None
        assert entry.ts == reply.prepared_ts
        assert entry.commitment == prep.commitment
        assert twin.state_fingerprint() == fingerprint
        # The pinning rule survives recovery: a different commitment for
        # the same predicted timestamp is still refused.
        other, _ = make_fast_prep(config, ("v", 2), b"n2")
        assert twin.handle(CLIENT, other).prepared_ts is None

    def test_pre_fastpath_snapshot_restores(self, tmp_path):
        """A snapshot written by an optimized replica (no ``fastc`` key)
        restores cleanly under the fast replica."""
        from repro.core.replica import OptimizedBftBcReplica

        config = make_system(1)
        config.registry.register(CLIENT)
        rid = config.quorums.replica_ids[0]
        store = FileLogStore(tmp_path / "r0")
        old = OptimizedBftBcReplica(rid, config, store=store)
        old.store.write_snapshot(old._state.snapshot_wire())
        new = FastBftBcReplica(rid, config, store=store)
        new.recover()
        assert len(new.fastc) == 0
