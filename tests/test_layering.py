"""Tier-1 gate for the package layering (tools/check_layering.py).

The verification refactor introduced explicit layers —
``crypto`` → ``core.verification`` → ``core.*`` → ``net``/``sim`` — and this
test keeps them from silently eroding: any new import that reaches *up* the
stack fails the suite with the offending edge named.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "tools"))

import check_layering  # noqa: E402


def test_layering_clean():
    assert check_layering.find_violations() == []


def test_checker_cli_passes():
    result = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_layering.py")],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "layering ok" in result.stdout


def test_checker_flags_synthetic_violation(tmp_path):
    """A crypto module importing core must be reported as an upward edge."""
    pkg = tmp_path / "repro" / "crypto"
    pkg.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text('"""pkg."""\n')
    (pkg / "__init__.py").write_text('"""pkg."""\n')
    (pkg / "bad.py").write_text("from repro.core.replica import BftBcReplica\n")
    violations = check_layering.find_violations(tmp_path)
    assert ("repro.crypto.bad", "repro.core.replica", 1, 3) in violations


def test_checker_resolves_relative_imports(tmp_path):
    """Relative imports are resolved to absolute names before layering."""
    core = tmp_path / "repro" / "core"
    core.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text('"""pkg."""\n')
    (core / "__init__.py").write_text('"""pkg."""\n')
    (core / "verification.py").write_text("from .config import SystemConfig\n")
    violations = check_layering.find_violations(tmp_path)
    assert ("repro.core.verification", "repro.core.config", 2, 3) in violations


def test_storage_sits_below_core():
    """The storage engine is a lower layer than the protocol that uses it."""
    assert check_layering.layer_of("repro.storage") is not None
    assert (
        check_layering.layer_of("repro.storage")
        < check_layering.layer_of("repro.core")
    )


def test_storage_imports_no_protocol_types():
    """Stores traffic only in wire values: encoding/errors, never core.

    The protocol-to-wire translation lives in ``repro.core.persistence``;
    if a store ever imported ``repro.core`` the same backend could no
    longer serve every replica variant.
    """
    src = ROOT / "src"
    for path in sorted((src / "repro" / "storage").rglob("*.py")):
        importer = check_layering.module_name_for(path, src)
        for imported in check_layering.imports_of(path, importer):
            assert not imported.startswith("repro.core"), (importer, imported)
            assert not imported.startswith("repro.crypto"), (importer, imported)


def test_checker_flags_storage_importing_core(tmp_path):
    """A store importing protocol state must be reported as an upward edge."""
    pkg = tmp_path / "repro" / "storage"
    pkg.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").write_text('"""pkg."""\n')
    (pkg / "__init__.py").write_text('"""pkg."""\n')
    (pkg / "bad.py").write_text("from repro.core.replica import BftBcReplica\n")
    violations = check_layering.find_violations(tmp_path)
    assert ("repro.storage.bad", "repro.core.replica", 1, 3) in violations


def test_obs_sits_below_core():
    """The observability layer is below the protocol it instruments."""
    assert check_layering.layer_of("repro.obs") is not None
    assert (
        check_layering.layer_of("repro.obs")
        < check_layering.layer_of("repro.core")
    )


def test_obs_imports_no_protocol_types():
    """Instrumentation is transport- and protocol-agnostic: errors only."""
    src = ROOT / "src"
    for path in sorted((src / "repro" / "obs").rglob("*.py")):
        importer = check_layering.module_name_for(path, src)
        for imported in check_layering.imports_of(path, importer):
            assert not imported.startswith("repro.core"), (importer, imported)
            assert not imported.startswith("repro.sim"), (importer, imported)
            assert not imported.startswith("repro.net"), (importer, imported)


def test_verification_imports_no_core_siblings():
    """The pipeline layer depends only on crypto/encoding/errors."""
    src = ROOT / "src"
    path = src / "repro" / "core" / "verification.py"
    imports = check_layering.imports_of(path, "repro.core.verification")
    uplevel = {
        m
        for m in imports
        if check_layering.layer_of(m) is not None
        and check_layering.layer_of(m) > 2
    }
    assert not uplevel, uplevel
