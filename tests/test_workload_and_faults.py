"""Tests for workload generation and fault schedules."""

from __future__ import annotations

from repro.net.simnet import LinkProfile, SimNetwork
from repro.sim import FaultSchedule, Scheduler
from repro.sim.workload import (
    alternating_script,
    make_scripts,
    mixed_script,
    read_script,
    value_for,
    write_script,
)


class TestWorkloads:
    def test_write_script_unique_values(self):
        script = write_script("client:w", 10)
        assert len(script) == 10
        values = [arg for _, arg in script]
        assert len(set(values)) == 10
        assert all(kind == "write" for kind, _ in script)

    def test_value_convention(self):
        v = value_for("client:w", 3, "payload")
        assert v == ("client:w", 3, "payload")

    def test_payload_size(self):
        script = write_script("client:w", 1, payload_size=100)
        assert len(script[0][1][2]) == 100

    def test_read_script(self):
        script = read_script(5)
        assert script == [("read", None)] * 5

    def test_alternating(self):
        script = alternating_script("client:w", 3)
        kinds = [kind for kind, _ in script]
        assert kinds == ["write", "read"] * 3

    def test_mixed_script_fraction(self):
        script = mixed_script("client:w", 1000, write_fraction=0.3, seed=1)
        writes = sum(1 for kind, _ in script if kind == "write")
        assert 200 < writes < 400

    def test_mixed_script_deterministic(self):
        a = mixed_script("client:w", 50, seed=9)
        b = mixed_script("client:w", 50, seed=9)
        assert a == b

    def test_make_scripts_distinct_seeds(self):
        scripts = make_scripts(["client:a", "client:b"], 50, seed=0)
        kinds_a = [k for k, _ in scripts["client:a"]]
        kinds_b = [k for k, _ in scripts["client:b"]]
        assert kinds_a != kinds_b  # different per-client randomness

    def test_cross_client_values_unique(self):
        scripts = make_scripts(["client:a", "client:b"], 50, seed=0)
        values = [
            arg
            for script in scripts.values()
            for kind, arg in script
            if kind == "write"
        ]
        assert len(values) == len(set(values))


class TestFaultSchedules:
    def test_crash_at_time(self):
        sched = Scheduler()
        net = SimNetwork(sched)
        FaultSchedule().crash(1.0, "replica:0").install(sched, net)
        assert not net.is_crashed("replica:0")
        sched.run(until=2.0)
        assert net.is_crashed("replica:0")

    def test_crash_then_recover(self):
        sched = Scheduler()
        net = SimNetwork(sched)
        schedule = FaultSchedule().crash(1.0, "r").recover(2.0, "r")
        schedule.install(sched, net)
        sched.run(until=1.5)
        assert net.is_crashed("r")
        sched.run(until=3.0)
        assert not net.is_crashed("r")

    def test_partition_heal(self):
        sched = Scheduler()
        net = SimNetwork(sched)
        got = []
        net.register("b", lambda s, m: got.append(m))
        schedule = FaultSchedule().partition(1.0, "a", "b").heal(2.0, "a", "b")
        schedule.install(sched, net)
        sched.run(until=1.5)
        from repro.core.messages import ReadTsRequest

        net.send("a", "b", ReadTsRequest(nonce=b"x"))
        sched.run(until=1.9)
        assert got == []
        sched.run(until=2.5)
        net.send("a", "b", ReadTsRequest(nonce=b"y"))
        sched.run(until=3.0)
        assert len(got) == 1

    def test_degrade_link(self):
        sched = Scheduler()
        net = SimNetwork(sched)
        got = []
        net.register("b", lambda s, m: got.append(m))
        FaultSchedule().degrade_link(
            1.0, "a", "b", LinkProfile(drop_rate=1.0)
        ).install(sched, net)
        sched.run(until=2.0)
        from repro.core.messages import ReadTsRequest

        net.send("a", "b", ReadTsRequest(nonce=b"x"))
        sched.run(until=3.0)
        assert got == []

    def test_descriptions(self):
        schedule = FaultSchedule().crash(1.0, "r").partition(2.0, "a", "b")
        descriptions = [a.description for a in schedule.actions]
        assert descriptions == ["crash r", "partition a | b"]


class TestFaultScheduleHardening:
    """The validation added with the chaos engine: schedules that could
    fire nonsense (overlapping restarts, double installs) are rejected
    loudly instead of corrupting an episode."""

    def test_crash_restart_requires_positive_down_time(self):
        import pytest

        from repro.errors import SimulationError

        schedule = FaultSchedule()
        with pytest.raises(SimulationError, match="must be positive"):
            schedule.crash_restart(1.0, "replica:0", down_for=0.0)

    def test_overlapping_restart_windows_rejected(self):
        import pytest

        from repro.errors import SimulationError

        schedule = FaultSchedule()
        schedule.crash_restart(1.0, "replica:0", down_for=2.0)
        with pytest.raises(SimulationError, match="overlaps"):
            schedule.crash_restart(2.5, "replica:0", down_for=1.0)

    def test_adjacent_and_cross_node_windows_allowed(self):
        schedule = FaultSchedule()
        schedule.crash_restart(1.0, "replica:0", down_for=2.0)
        schedule.crash_restart(3.0, "replica:0", down_for=1.0)  # touches, ok
        schedule.crash_restart(1.5, "replica:1", down_for=2.0)  # other node
        assert len(schedule.node_actions) == 6

    def test_double_install_rejected(self):
        import pytest

        from repro.errors import SimulationError

        sched = Scheduler()
        net = SimNetwork(sched)
        schedule = FaultSchedule()
        schedule.crash(1.0, "a")
        schedule.install(sched, net)
        with pytest.raises(SimulationError, match="already installed"):
            schedule.install(sched, net)

    def test_failed_install_leaves_schedule_usable(self):
        """Validation runs before arming: an install that fails on an
        unknown node arms nothing and the schedule can be installed again
        once the caller fixes the node map."""
        import pytest

        from repro.errors import SimulationError

        sched = Scheduler()
        net = SimNetwork(sched)
        schedule = FaultSchedule()
        schedule.crash(1.0, "a")
        schedule.crash_restart(2.0, "replica:0", down_for=0.5)
        with pytest.raises(SimulationError, match="unknown node"):
            schedule.install(sched, net, nodes={})
        assert sched.pending == 0  # nothing was half-armed

        class FakeNode:
            def crash(self):
                pass

            def restart(self):
                pass

        schedule.install(sched, net, nodes={"replica:0": FakeNode()})
        assert sched.pending > 0
