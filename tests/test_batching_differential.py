"""Differential tests: batching must not change protocol behaviour.

Two regimes, two proof obligations:

* **Single-object deployments** (base / optimized / strong / BQS): no two
  sends of a round share a destination, so the coalescer is a strict
  pass-through.  Run the same seeded workload — under a lossy, duplicating
  link schedule — with batching off and on, and demand the runs are
  *identical*: same history events, same operation samples, same network
  counters, same virtual clock.  The coalescer consumes no randomness, so
  any divergence at all is a batching bug.

* **Multi-object deployments**, where batches genuinely form and message
  timing therefore differs: demand equal protocol *outcomes* — every
  per-object operation sequence returns the same results, replicas converge
  to the same state, and each per-object history stays linearizable.
"""

from __future__ import annotations

import pytest

from repro.baselines.runner import build_bqs_cluster
from repro.core import GENESIS_VALUE, make_system
from repro.core.batching import BatchCoalescer, BatchStats
from repro.core.multiobject import MultiObjectClient, MultiObjectReplica
from repro.net.simnet import LinkProfile, SimNetwork
from repro.sim import (
    MultiObjectClientNode,
    MultiObjectReplicaNode,
    Scheduler,
    build_cluster,
)
from repro.spec.linearizability import check_register_linearizable

#: A schedule that exercises retransmission and duplicate suppression.
FAULTY_PROFILE = dict(drop_rate=0.1, duplicate_rate=0.05)

SCRIPTS = {
    "w1": [("write", "a1"), ("read", None), ("write", "a2")],
    "w2": [("write", "b1"), ("write", "b2"), ("read", None)],
}


def _fingerprint(cluster) -> dict:
    """Everything observable about a finished run, for exact comparison."""
    net = cluster.network.stats
    return {
        "events": list(cluster.history.events),
        "samples": list(cluster.metrics.samples),
        "retransmit_ticks": cluster.metrics.retransmit_ticks,
        "network": (
            net.messages_sent,
            net.messages_delivered,
            net.messages_dropped,
            net.messages_duplicated,
            net.bytes_sent,
            net.bytes_delivered,
            dict(net.sent_by_kind),
            dict(net.bytes_by_kind),
        ),
        "virtual_now": cluster.scheduler.now,
        "events_processed": cluster.scheduler.events_processed,
    }


@pytest.mark.parametrize("variant", ["base", "optimized", "strong", "fastpath"])
def test_single_object_variants_byte_identical(variant):
    def run(batching: bool) -> dict:
        cluster = build_cluster(
            f=1,
            variant=variant,
            seed=77,
            profile=LinkProfile(**FAULTY_PROFILE),
            batching=batching,
        )
        cluster.run_scripts(SCRIPTS)
        return _fingerprint(cluster)

    off, on = run(False), run(True)
    assert off == on


def test_bqs_baseline_byte_identical():
    def run(batching: bool) -> dict:
        cluster = build_bqs_cluster(
            f=1, seed=78, profile=LinkProfile(**FAULTY_PROFILE), batching=batching
        )
        cluster.run_scripts(SCRIPTS)
        return _fingerprint(cluster)

    off, on = run(False), run(True)
    assert off == on


def test_single_object_coalescer_is_pure_passthrough():
    """With one object in flight, the coalescer forms no batches at all."""
    cluster = build_cluster(
        f=1, variant="base", seed=79, profile=LinkProfile(**FAULTY_PROFILE),
        batching=True,
    )
    cluster.run_scripts(SCRIPTS)
    assert cluster.batch_stats is not None
    assert cluster.batch_stats.batches == 0
    assert cluster.batch_stats.frames_saved == 0
    assert cluster.batch_stats.sends_in == cluster.batch_stats.frames_out


class TestMultiObjectOutcomes:
    OBJECTS = 4

    def _run(self, batching: bool):
        config = make_system(f=1, seed=b"diff-multi")
        scheduler = Scheduler()
        network = SimNetwork(
            scheduler, profile=LinkProfile(**FAULTY_PROFILE), seed=80
        )
        replicas = {
            rid: MultiObjectReplica(rid, config)
            for rid in config.quorums.replica_ids
        }
        for replica in replicas.values():
            MultiObjectReplicaNode(replica, network)
        client = MultiObjectClient("client:m", config)
        node = MultiObjectClientNode(
            client,
            network,
            scheduler,
            max_in_flight=self.OBJECTS,
            record_history=True,
            coalescer=BatchCoalescer(BatchStats()) if batching else None,
        )
        script = []
        for round_no in range(3):
            for obj_no in range(self.OBJECTS):
                obj = f"obj-{obj_no}"
                if (round_no + obj_no) % 3 == 2:
                    script.append((obj, "read", None))
                else:
                    script.append((obj, "write", f"v{round_no}-{obj_no}"))
        node.run_script(script)
        scheduler.run(until=120.0, stop_when=lambda: node.done)
        assert node.done
        return node, replicas

    @staticmethod
    def _per_object_results(node) -> dict:
        results: dict = {}
        for (obj, kind, value), result in node.results:
            results.setdefault(obj, []).append((kind, value, result))
        return results

    def test_batched_and_unbatched_agree(self):
        plain_node, plain_replicas = self._run(batching=False)
        batch_node, batch_replicas = self._run(batching=True)

        # Per-object operation sequences return identical results.
        assert self._per_object_results(plain_node) == self._per_object_results(
            batch_node
        )

        # Replicas converge to the same per-object values.
        for rid, plain in plain_replicas.items():
            batched = batch_replicas[rid]
            assert plain.objects == batched.objects
            for obj in plain.objects:
                assert (
                    plain.object_state(obj).data == batched.object_state(obj).data
                ), (rid, obj)

        # Batches actually formed in the batched arm (the test is vacuous
        # otherwise), and every per-object history stays linearizable.
        assert batch_node.batch_stats.batches > 0
        for node in (plain_node, batch_node):
            for obj, history in node.histories.items():
                report = check_register_linearizable(
                    history, initial_value=GENESIS_VALUE, obj=obj
                )
                assert report, (obj, report)
