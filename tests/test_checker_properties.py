"""Property-based validation of the correctness checkers themselves.

The checkers are trusted by every experiment, so they get their own
adversarial testing: randomly generated histories that are linearizable *by
construction* must be accepted, and mechanically injected violations must be
rejected.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.spec import (
    History,
    Invocation,
    Response,
    check_register_linearizable,
)


def _generate_linearizable_history(seed: int, n_clients: int, n_ops: int) -> History:
    """Build a history by simulating an actual atomic register.

    Operations are generated as intervals around an explicit linearization
    point; each read returns the register's value at its linearization
    point, so the result is linearizable by construction.
    """
    rng = random.Random(seed)
    register = None
    events = []
    seq = 0
    point_clock = 0.0
    last_end: dict[str, float] = {}
    for _ in range(n_ops):
        client = f"c{rng.randrange(n_clients)}"
        # Invocation must follow the client's previous response; the
        # linearization point must follow every earlier point AND lie within
        # this operation's interval.  Construct in that order.
        start = max(last_end.get(client, 0.0) + 0.001, point_clock - rng.uniform(0, 0.3))
        point = max(point_clock + 0.001, start + rng.uniform(0.001, 0.2))
        end = point + rng.uniform(0.001, 0.4)
        point_clock = point
        last_end[client] = end
        if rng.random() < 0.5:
            seq += 1
            value = (client, seq, None)
            register = value
            op, arg, result = "write", value, None
        else:
            op, arg, result = "read", None, register
        events.append(Invocation(client=client, obj="x", op=op, arg=arg, time=start))
        events.append(Response(client=client, obj="x", value=result, time=end))
    events.sort(key=lambda e: e.time)
    history = History()
    history.events = events
    return history


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    n_clients=st.integers(1, 4),
    n_ops=st.integers(1, 25),
)
def test_constructed_linearizable_histories_accepted(seed, n_clients, n_ops):
    history = _generate_linearizable_history(seed, n_clients, n_ops)
    report = check_register_linearizable(history)
    assert report.ok, report.violation


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_stale_read_injection_rejected(seed):
    """Append a read of an overwritten value strictly after everything: the
    checker must flag it (if at least two writes exist)."""
    history = _generate_linearizable_history(seed, 3, 20)
    writes = [r for r in history.operations() if r.op == "write"]
    if len(writes) < 2:
        return
    stale_value = writes[0].arg
    last_time = history.events[-1].time
    history.events.append(
        Invocation(client="probe", obj="x", op="read", arg=None, time=last_time + 1)
    )
    history.events.append(
        Response(client="probe", obj="x", value=stale_value, time=last_time + 2)
    )
    report = check_register_linearizable(history)
    assert not report.ok


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_phantom_value_injection_rejected(seed):
    history = _generate_linearizable_history(seed, 2, 10)
    last_time = history.events[-1].time if history.events else 0.0
    history.events.append(
        Invocation(client="probe", obj="x", op="read", arg=None, time=last_time + 1)
    )
    history.events.append(
        Response(client="probe", obj="x", value=("ghost", 1, None), time=last_time + 2)
    )
    report = check_register_linearizable(history)
    assert not report.ok
    assert "no write produced" in report.violation


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_new_old_inversion_injection_rejected(seed):
    """Two sequential probe reads returning (new, old) must be rejected."""
    history = _generate_linearizable_history(seed, 3, 20)
    writes = [r for r in history.operations() if r.op == "write"]
    if len(writes) < 2:
        return
    old, new = writes[0].arg, writes[-1].arg
    t = history.events[-1].time
    for index, value in enumerate((new, old)):
        history.events.append(
            Invocation(
                client="probe", obj="x", op="read", arg=None, time=t + 1 + 2 * index
            )
        )
        history.events.append(
            Response(client="probe", obj="x", value=value, time=t + 2 + 2 * index)
        )
    report = check_register_linearizable(history)
    assert not report.ok
