"""Differential tests for the memoizing verification pipeline.

The §4 safety argument requires that caching never changes a verdict: for any
stream of signature and certificate checks — including tampered signatures,
wrong-signer attributions, unknown signers, duplicates, and retransmission
patterns — the cached :class:`~repro.core.verification.Verifier` must agree
exactly with the uncached backend, for both the HMAC-registry and RSA-FDH
schemes.
"""

from __future__ import annotations

import random

import pytest

from repro.core import make_system
from repro.core.certificates import (
    PrepareCertificate,
    WriteCertificate,
    genesis_prepare_certificate,
)
from repro.core.statements import prepare_reply_statement, write_reply_statement
from repro.core.timestamp import ZERO_TS
from repro.core.verification import Verifier
from repro.crypto.hashing import hash_value
from repro.crypto.signatures import Signature

#: (scheme name, number of randomized operations) — RSA is slower, so fewer.
BACKENDS = [("hmac", 200), ("rsa", 30)]


def _statement_pool(rng: random.Random) -> list:
    pool = [("stmt", i, rng.randbytes(8)) for i in range(12)]
    pool += [prepare_reply_statement(ZERO_TS.succ(f"client:{i}"), hash_value(i))
             for i in range(4)]
    return pool


@pytest.mark.parametrize("scheme_name,ops", BACKENDS)
def test_signature_verdicts_match_uncached_backend(scheme_name, ops):
    config = make_system(scheme=scheme_name)
    config.registry.register("client:alice")
    rng = random.Random(1234)
    signers = list(config.quorums.replica_ids) + ["client:alice"]
    statements = _statement_pool(rng)

    signatures = [
        config.scheme.sign_statement(rng.choice(signers), rng.choice(statements))
        for _ in range(10)
    ]

    for _ in range(ops):
        statement = rng.choice(statements)
        roll = rng.random()
        if roll < 0.4:
            # A genuine signature, possibly over a different statement.
            sig = rng.choice(signatures)
        elif roll < 0.6:
            # Tampered signature bytes.
            base = rng.choice(signatures)
            tampered = bytearray(base.value)
            tampered[rng.randrange(len(tampered))] ^= 0xFF
            sig = Signature(signer=base.signer, value=bytes(tampered))
        elif roll < 0.8:
            # Wrong-signer attribution of a genuine signature value.
            base = rng.choice(signatures)
            sig = Signature(signer=rng.choice(signers), value=base.value)
        else:
            # Unknown signer.
            sig = Signature(signer=f"ghost:{rng.randrange(3)}", value=rng.randbytes(16))
        expected = config.scheme.verify_statement(sig, statement)
        assert config.verifier.verify_statement(sig, statement) == expected
        # Repeat immediately (duplicate/retransmission): still identical.
        assert config.verifier.verify_statement(sig, statement) == expected


@pytest.mark.parametrize("scheme_name,ops", BACKENDS)
def test_certificate_verdicts_match_uncached_backend(scheme_name, ops):
    config = make_system(scheme=scheme_name)
    rng = random.Random(99)
    replicas = list(config.quorums.replica_ids)
    quorum = config.quorum_size

    def prepare_cert(ts, value, signer_pool):
        h = hash_value(value)
        statement = prepare_reply_statement(ts, h)
        sigs = tuple(
            config.scheme.sign_statement(r, statement) for r in signer_pool
        )
        return PrepareCertificate(ts=ts, value_hash=h, signatures=sigs)

    ts = ZERO_TS.succ("client:w")
    certs = [
        genesis_prepare_certificate(),
        prepare_cert(ts, "v1", replicas[:quorum]),
        prepare_cert(ts, "v2", replicas[:quorum]),
        # Too few signers: not a quorum.
        prepare_cert(ts, "v1", replicas[: quorum - 1]),
        # Duplicate signer.
        prepare_cert(ts, "v1", [replicas[0]] * quorum),
    ]
    # Tampered: one signature byte flipped inside an otherwise valid cert.
    good = certs[1]
    broken = bytearray(good.signatures[0].value)
    broken[0] ^= 0x01
    certs.append(
        PrepareCertificate(
            ts=good.ts,
            value_hash=good.value_hash,
            signatures=(Signature(good.signatures[0].signer, bytes(broken)),)
            + good.signatures[1:],
        )
    )
    # Write certificates too (both valid and truncated).
    wstmt = write_reply_statement(ts)
    wsigs = tuple(config.scheme.sign_statement(r, wstmt) for r in replicas[:quorum])
    certs.append(WriteCertificate(ts=ts, signatures=wsigs))
    certs.append(WriteCertificate(ts=ts, signatures=wsigs[:-1]))

    for _ in range(ops):
        cert = rng.choice(certs)
        expected = cert.is_valid(config.scheme, config.quorums)
        assert config.verifier.certificate_valid(cert) == expected
        # A duplicate certificate (retransmission) must agree as well.
        assert config.verifier.certificate_valid(cert) == expected


def test_unregistered_signer_verdict_not_stuck_after_registration():
    """Registration only grows; a pre-registration False must not be cached."""
    config_a = make_system()
    config_b = make_system()  # same master seed -> same derived keys
    config_b.registry.register("client:late")
    sig = config_b.scheme.sign_statement("client:late", "hello")

    # Before registration in A: both cached and uncached say False.
    assert config_a.scheme.verify_statement(sig, "hello") is False
    assert config_a.verifier.verify_statement(sig, "hello") is False

    config_a.registry.register("client:late")

    # After registration the very same signature must now verify.
    assert config_a.scheme.verify_statement(sig, "hello") is True
    assert config_a.verifier.verify_statement(sig, "hello") is True


def test_negative_certificate_verdicts_not_cached_across_registration():
    """A cert invalid only because signers were unknown must recover."""
    config_a = make_system()
    config_b = make_system()
    config_b.registry.register("client:w")
    ts = ZERO_TS.succ("client:w")
    h = hash_value("v")
    statement = prepare_reply_statement(ts, h)
    sigs = tuple(
        config_b.scheme.sign_statement(r, statement)
        for r in config_b.quorums.replica_ids[: config_b.quorum_size]
    )
    cert = PrepareCertificate(ts=ts, value_hash=h, signatures=sigs)

    fresh = make_system(seed=b"different-world")
    assert fresh.verifier.certificate_valid(cert) is False
    # Same-world verifier: valid, and stays valid on the cached path.
    assert config_a.verifier.certificate_valid(cert) is True
    assert config_a.verifier.certificate_valid(cert) is True


def test_signature_memo_is_bounded():
    config = make_system()
    verifier = Verifier(
        config.scheme, config.quorums, max_signatures=4, max_certificates=2
    )
    replica = config.quorums.replica_ids[0]
    for i in range(10):
        sig = config.scheme.sign_statement(replica, ("bounded", i))
        assert verifier.verify_statement(sig, ("bounded", i)) is True
    assert len(verifier._signature_memo) <= 4
    # Evicted entries re-verify correctly (just a miss, not an error).
    sig0 = config.scheme.sign_statement(replica, ("bounded", 0))
    assert verifier.verify_statement(sig0, ("bounded", 0)) is True


def test_stats_count_hits_and_misses():
    config = make_system()
    verifier = config.verifier
    replica = config.quorums.replica_ids[0]
    sig = config.scheme.sign_statement(replica, "counted")

    assert verifier.verify_statement(sig, "counted") is True
    assert verifier.stats.signature_checks == 1
    assert verifier.stats.signature_hits == 0
    assert verifier.stats.backend_verifies == 1

    assert verifier.verify_statement(sig, "counted") is True
    assert verifier.stats.signature_checks == 2
    assert verifier.stats.signature_hits == 1
    assert verifier.stats.backend_verifies == 1

    ts = ZERO_TS.succ("client:w")
    stmt = prepare_reply_statement(ts, hash_value("v"))
    sigs = tuple(
        config.scheme.sign_statement(r, stmt)
        for r in config.quorums.replica_ids[: config.quorum_size]
    )
    cert = PrepareCertificate(ts=ts, value_hash=hash_value("v"), signatures=sigs)
    assert verifier.certificate_valid(cert) is True
    assert verifier.certificate_valid(cert) is True
    assert verifier.stats.certificate_checks == 2
    assert verifier.stats.certificate_hits == 1
    # The second validation did not re-verify the inner signatures either.
    assert verifier.stats.backend_verifies == 1 + config.quorum_size

    verifier.stats.reset()
    assert verifier.stats.signature_checks == 0
    assert verifier.stats.certificate_hit_rate == 0.0


def test_disabled_verifier_always_hits_backend():
    config = make_system(verification_cache=False)
    assert config.verifier.enabled is False
    replica = config.quorums.replica_ids[0]
    sig = config.scheme.sign_statement(replica, "raw")
    before = config.scheme.stats.verifies
    assert config.verifier.verify_statement(sig, "raw") is True
    assert config.verifier.verify_statement(sig, "raw") is True
    assert config.scheme.stats.verifies == before + 2
    assert config.verifier.stats.signature_hits == 0
