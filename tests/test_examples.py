"""Smoke tests: every shipped example runs cleanly end to end."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(path):
    result = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "example produced no output"


def test_all_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "byzantine_tolerance_demo.py",
        "shared_config_store.py",
        "tcp_cluster.py",
        "kv_store.py",
    } <= names


def test_expected_claims_in_demo_output():
    path = next(p for p in EXAMPLES if p.name == "byzantine_tolerance_demo.py")
    result = subprocess.run(
        [sys.executable, str(path)], capture_output=True, text=True, timeout=120
    )
    out = result.stdout
    assert "linearizable? False" in out  # BQS breaks
    assert "prepare certificates the attacker could assemble: 0" in out
    assert "lurking writes seen after the stop: 1" in out
