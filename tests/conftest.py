"""Shared fixtures for the test suite."""

from __future__ import annotations

import pathlib
import sys

# Allow running the suite without installing the package: resolve the
# src-layout sources directly if `repro` is not importable.
try:
    import repro  # noqa: F401
except ModuleNotFoundError:  # pragma: no cover
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import pytest

from repro.core import make_system
from repro.core.quorum import replica_id


@pytest.fixture
def config():
    """A base-protocol f=1 configuration with one registered client."""
    cfg = make_system(f=1, seed=b"test-seed")
    cfg.registry.register("client:alice")
    cfg.registry.register("client:bob")
    return cfg


@pytest.fixture
def strong_config():
    cfg = make_system(f=1, seed=b"test-seed-strong", strong=True)
    cfg.registry.register("client:alice")
    return cfg


@pytest.fixture
def f2_config():
    cfg = make_system(f=2, seed=b"test-seed-f2")
    cfg.registry.register("client:alice")
    return cfg


def make_prepare_cert(config, ts, value_hash):
    """Assemble a genuine prepare certificate by signing at each replica."""
    from repro.core.certificates import PrepareCertificate
    from repro.core.statements import prepare_reply_statement

    statement = prepare_reply_statement(ts, value_hash)
    sigs = tuple(
        config.scheme.sign_statement(replica_id(i), statement)
        for i in range(config.quorum_size)
    )
    return PrepareCertificate(ts=ts, value_hash=value_hash, signatures=sigs)


def make_write_cert(config, ts):
    """Assemble a genuine write certificate by signing at each replica."""
    from repro.core.certificates import WriteCertificate
    from repro.core.statements import write_reply_statement

    statement = write_reply_statement(ts)
    sigs = tuple(
        config.scheme.sign_statement(replica_id(i), statement)
        for i in range(config.quorum_size)
    )
    return WriteCertificate(ts=ts, signatures=sigs)
