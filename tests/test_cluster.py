"""The deployment API and the process cluster.

Fast tests cover the declarative :class:`DeploymentSpec` (validation, wire
round-trip, key-derivation seed), the worker data-directory layout rule,
and the ``deploy()`` dispatcher over the sim transport.  The slow-marked
tests spawn real OS processes: a bare ``serve --port 0 --announce`` worker,
the :class:`ProcessCluster` lifecycle, the ``cluster up/status/down`` CLI,
and the full kill-and-recover smoke from ``tools/cluster_smoke.py``.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.cluster import (
    DeploymentSpec,
    ProcessCluster,
    SimDeployment,
    deploy,
)
from repro.cluster.process import replica_data_dir
from repro.core.timestamp import Timestamp
from repro.errors import QuorumConfigError


class TestDeploymentSpec:
    def test_defaults_are_valid(self):
        spec = DeploymentSpec()
        assert spec.n == 4
        assert spec.transport == "sim"
        assert spec.master_seed == b"cluster-seed-0"

    def test_master_seed_tracks_seed(self):
        assert DeploymentSpec(seed=7).master_seed == b"cluster-seed-7"

    def test_with_returns_modified_copy(self):
        spec = DeploymentSpec(pipeline=2)
        wider = spec.with_(pipeline=8, transport="tcp")
        assert (wider.pipeline, wider.transport) == (8, "tcp")
        assert (spec.pipeline, spec.transport) == (2, "sim")

    def test_wire_round_trip(self):
        spec = DeploymentSpec(
            f=2,
            variant="optimized",
            seed=3,
            transport="process",
            store="file",
            fsync="never",
            pipeline=4,
            workers=5,
        )
        assert DeploymentSpec.from_wire(spec.to_wire()) == spec
        assert json.loads(json.dumps(spec.to_wire())) == spec.to_wire()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"transport": "udp"},
            {"store": "redis"},
            {"scheme": "ecdsa"},
            {"fsync": "sometimes"},
            {"f": 0},
            {"pipeline": 0},
            {"workers": 0},
            {"workers": 5},  # n = 4 at f=1
        ],
    )
    def test_invalid_fields_rejected(self, overrides):
        with pytest.raises(QuorumConfigError):
            DeploymentSpec(**overrides)


class TestReplicaDataDir:
    def test_single_replica_journals_in_the_worker_dir(self):
        assert replica_data_dir("/d/worker-0", ["replica:2"], "replica:2") == (
            "/d/worker-0"
        )

    def test_cohosted_replicas_get_subdirectories(self):
        path = replica_data_dir(
            "/d/worker-0", ["replica:0", "replica:3"], "replica:3"
        )
        assert path == str(Path("/d/worker-0") / "replica_3")


class TestDeploySim:
    def test_uniform_handle_over_sim(self):
        spec = DeploymentSpec(transport="sim", pipeline=2, seed=5)
        with deploy(spec) as dep:
            assert isinstance(dep, SimDeployment)
            records = dep.run_script([("write", f"v{i}") for i in range(6)])
            assert len(records) == 6
            assert all(isinstance(r.result, Timestamp) for r in records)
            ts = dep.write("last")
            assert ts == max(r.result for r in records).succ("client:pipe0")
            assert dep.read() == "last"
            prints = dep.fingerprints()
        assert len(prints) == spec.n
        assert len(set(prints.values())) == 1

    def test_unknown_transport_is_rejected_at_spec_time(self):
        with pytest.raises(QuorumConfigError, match="unknown transport"):
            DeploymentSpec(transport="carrier-pigeon")


def _wait(predicate, timeout: float = 30.0, interval: float = 0.05) -> None:
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, "condition never became true"
        time.sleep(interval)


@pytest.mark.slow
class TestServeAnnounce:
    def test_port_zero_announces_ephemeral_address(self, tmp_path):
        """``serve --port 0 --announce`` prints a JSON line per replica and
        accepts connections on the announced port."""
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parent.parent / "src")
        env["PYTHONPATH"] = os.pathsep.join(
            [src] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "replica:0",
                "--data-dir", str(tmp_path), "--port", "0", "--announce",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            env=env,
        )
        try:
            assert process.stdout is not None
            event = json.loads(process.stdout.readline())
            assert event["event"] == "listening"
            assert event["node_id"] == "replica:0"
            assert event["port"] > 0
            with socket.create_connection(
                (event["host"], event["port"]), timeout=5
            ):
                pass
        finally:
            process.send_signal(signal.SIGTERM)
            process.wait(timeout=10)


@pytest.mark.slow
class TestProcessCluster:
    def test_lifecycle_and_restart(self, tmp_path):
        cluster = ProcessCluster(
            f=1, seed=2, data_dir=str(tmp_path), workers=2, auto_restart=True
        )
        with cluster:
            addrs = cluster.addrs
            assert len(addrs) == 4
            assert ProcessCluster.read_state(str(tmp_path)) is not None
            victim = cluster.worker_for("replica:0")
            before = dict(victim.addrs)
            cluster.kill("replica:0")
            _wait(lambda: victim.restarts >= 1 and victim.alive)
            # The supervisor re-requests the originally announced ports so
            # the other processes' address books stay valid.
            assert victim.addrs == before
            assert cluster.crashes >= 1
            statuses = cluster.status()
            assert all(row["alive"] for row in statuses)
        assert ProcessCluster.read_state(str(tmp_path)) is None
        for worker in cluster.workers:
            assert not worker.alive


@pytest.mark.slow
class TestClusterCli:
    def test_up_status_down(self, tmp_path, capsys):
        data_dir = str(tmp_path)
        assert main(["cluster", "up", "--data-dir", data_dir,
                     "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "replica:0 listening on" in out
        assert "cluster.json" in out
        try:
            assert main(["cluster", "status", "--data-dir", data_dir,
                         "--json"]) == 0
            state = json.loads(capsys.readouterr().out)
            assert {w["index"] for w in state["workers"]} == {0, 1}
            assert main(["cluster", "status", "--data-dir", data_dir]) == 0
            table = capsys.readouterr().out
            assert "replica:3" in table and "up" in table
        finally:
            assert main(["cluster", "down", "--data-dir", data_dir]) == 0
        out = capsys.readouterr().out
        assert "terminated 2 worker(s)" in out
        assert not (tmp_path / "cluster.json").exists()
        # A second down finds nothing to manage.
        assert main(["cluster", "down", "--data-dir", data_dir]) == 1

    def test_status_without_state_fails(self, tmp_path, capsys):
        assert main(["cluster", "status", "--data-dir", str(tmp_path)]) == 1
        assert "no cluster state" in capsys.readouterr().err


@pytest.mark.slow
class TestClusterSmoke:
    def test_kill_and_recover_smoke(self, tmp_path):
        sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))
        try:
            from cluster_smoke import run_smoke
        finally:
            sys.path.pop(0)
        result = run_smoke(
            ops=60, data_dir=str(tmp_path), verbose=False
        )
        assert result["ops"] == 60
        # One restart from the stage-1 kill, one from the corrupt-data-dir
        # kill of stage 2 (which also exercised quarantine + repair).
        assert result["restarts"] >= 2
        assert result["fingerprint"]
