"""Documentation quality gates.

* every module, public class, and public function in ``repro`` carries a
  docstring;
* the README's quickstart code block actually runs.
"""

from __future__ import annotations

import importlib
import inspect
import pathlib
import pkgutil

import pytest

import repro

ROOT = pathlib.Path(__file__).resolve().parent.parent


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def test_every_module_has_a_docstring():
    missing = [m.__name__ for m in iter_modules() if not (m.__doc__ or "").strip()]
    assert not missing, missing


def test_every_public_class_and_function_documented():
    undocumented = []
    for module in iter_modules():
        exported = getattr(module, "__all__", [])
        for name in exported:
            obj = getattr(module, name, None)
            if obj is None or not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", "") != module.__name__:
                continue  # re-export; documented at its home module
            if not (inspect.getdoc(obj) or "").strip():
                undocumented.append(f"{module.__name__}.{name}")
    assert not undocumented, undocumented


def test_public_methods_documented_on_core_classes():
    from repro.core import (
        BftBcClient,
        BftBcReplica,
        PrepareCertificate,
        QuorumSystem,
        Timestamp,
        WriteCertificate,
    )

    undocumented = []
    for cls in (
        BftBcReplica,
        BftBcClient,
        PrepareCertificate,
        WriteCertificate,
        QuorumSystem,
        Timestamp,
    ):
        for name, member in inspect.getmembers(cls):
            if name.startswith("_"):
                continue
            if inspect.isfunction(member) and member.__qualname__.startswith(
                cls.__name__
            ):
                if not (inspect.getdoc(member) or "").strip():
                    undocumented.append(f"{cls.__name__}.{name}")
    assert not undocumented, undocumented


def _readme_code_blocks() -> list[str]:
    text = (ROOT / "README.md").read_text(encoding="utf-8")
    blocks = []
    inside = False
    current: list[str] = []
    for line in text.splitlines():
        if line.strip() == "```python":
            inside = True
            current = []
        elif line.strip() == "```" and inside:
            inside = False
            blocks.append("\n".join(current))
        elif inside:
            current.append(line)
    return blocks


def test_readme_quickstart_runs():
    blocks = _readme_code_blocks()
    assert blocks, "README has no python code blocks"
    namespace: dict = {}
    exec(compile(blocks[0], "<README quickstart>", "exec"), namespace)  # noqa: S102
