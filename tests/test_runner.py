"""Tests for cluster construction and the simulation runner."""

from __future__ import annotations

import pytest

from repro import build_cluster, ClusterOptions, LinkProfile
from repro.byzantine import CrashedReplica
from repro.core.replica import BftBcReplica, OptimizedBftBcReplica
from repro.errors import OperationFailedError, SimulationError
from repro.sim import write_script, read_script


class TestConstruction:
    def test_default_cluster_shape(self):
        cluster = build_cluster(f=1)
        assert len(cluster.replicas) == 4
        assert all(isinstance(r, BftBcReplica) for r in cluster.replicas.values())

    def test_variant_selects_replica_class(self):
        cluster = build_cluster(f=1, variant="optimized")
        assert all(
            isinstance(r, OptimizedBftBcReplica) for r in cluster.replicas.values()
        )

    def test_strong_variant_sets_config(self):
        cluster = build_cluster(f=1, variant="strong")
        assert cluster.config.strong

    def test_unknown_variant_rejected(self):
        with pytest.raises(SimulationError):
            build_cluster(variant="bogus")

    def test_replica_override(self):
        cluster = build_cluster(
            f=1, replica_overrides={0: CrashedReplica}
        )
        assert isinstance(cluster.replicas["replica:0"], CrashedReplica)
        assert isinstance(cluster.replicas["replica:1"], BftBcReplica)

    def test_options_and_kwargs_mutually_exclusive(self):
        with pytest.raises(SimulationError):
            build_cluster(ClusterOptions(), f=2)

    def test_f2_cluster(self):
        cluster = build_cluster(f=2)
        assert len(cluster.replicas) == 7


class TestExecution:
    def test_run_scripts_completes(self):
        cluster = build_cluster(f=1, seed=1)
        cluster.run_scripts({"w": write_script("client:w", 3)})
        assert cluster.metrics.operations == 3

    def test_incomplete_workload_raises(self):
        # All four replicas crashed: nothing can complete.
        cluster = build_cluster(
            f=1,
            replica_overrides={i: CrashedReplica for i in range(4)},
        )
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 1))
        with pytest.raises(OperationFailedError):
            cluster.run(max_time=1.0)

    def test_stagger_spaces_clients(self):
        cluster = build_cluster(f=1, seed=2)
        cluster.run_scripts(
            {"a": write_script("client:a", 1), "b": write_script("client:b", 1)},
            stagger=1.0,
        )
        ops = cluster.history.operations()
        assert ops[1].invoked_at >= 1.0

    def test_history_records_all_ops(self):
        cluster = build_cluster(f=1, seed=3)
        cluster.run_scripts(
            {"w": write_script("client:w", 2) + read_script(1)}
        )
        ops = cluster.history.operations()
        assert [o.op for o in ops] == ["write", "write", "read"]
        assert all(o.complete for o in ops)

    def test_stop_client_revokes_and_records(self):
        cluster = build_cluster(f=1)
        cluster.config.registry.register("client:bad")
        cluster.stop_client("client:bad")
        assert cluster.config.registry.is_revoked("client:bad")
        assert cluster.history.stop_time("client:bad") is not None

    def test_settle_advances_time(self):
        cluster = build_cluster(f=1)
        before = cluster.scheduler.now
        cluster.settle(2.0)
        assert cluster.scheduler.now >= before

    def test_determinism_across_identical_clusters(self):
        def run(seed):
            cluster = build_cluster(f=1, seed=seed, profile=LinkProfile.lossy(0.1))
            cluster.run_scripts({"w": write_script("client:w", 5)})
            return (
                cluster.scheduler.now,
                cluster.network.stats.messages_sent,
                [s.latency for s in cluster.metrics.samples],
            )

        assert run(7) == run(7)

    def test_client_lookup(self):
        cluster = build_cluster(f=1)
        node = cluster.add_client("alice")
        assert cluster.client("alice") is node


class TestLiveness:
    def test_completes_under_heavy_loss(self):
        cluster = build_cluster(f=1, seed=11, profile=LinkProfile(drop_rate=0.3, max_delay=0.02))
        cluster.run_scripts({"w": write_script("client:w", 3)}, max_time=120)
        assert cluster.metrics.operations == 3

    def test_completes_with_f_crashed_replicas(self):
        cluster = build_cluster(
            f=1, seed=12, replica_overrides={3: CrashedReplica}
        )
        cluster.run_scripts({"w": write_script("client:w", 3) + read_script(2)})
        assert cluster.metrics.operations == 5

    def test_completes_after_mid_run_crash(self):
        from repro.sim import FaultSchedule

        cluster = build_cluster(f=1, seed=13)
        cluster.install_faults(FaultSchedule().crash(0.05, "replica:2"))
        cluster.run_scripts({"w": write_script("client:w", 10)}, max_time=120)
        assert cluster.metrics.operations == 10
