"""Tests for the protocol message wire codec (core + baselines)."""

from __future__ import annotations

import pytest

from repro.baselines.messages import (
    BqsReadReply,
    BqsReadTsRequest,
    BqsWriteRequest,
    PhxEchoRequest,
    PhxReadReply,
    PhxWriteRequest,
)
from repro.core import Timestamp
from repro.core.certificates import genesis_prepare_certificate
from repro.core.messages import (
    PrepareReply,
    PrepareRequest,
    ReadReply,
    ReadRequest,
    ReadTsPrepReply,
    ReadTsPrepRequest,
    ReadTsReply,
    ReadTsRequest,
    WriteReply,
    WriteRequest,
    message_from_wire,
    message_to_wire,
)
from repro.crypto.signatures import Signature
from repro.encoding import canonical_decode, canonical_encode
from repro.errors import ProtocolError

from tests.conftest import make_prepare_cert, make_write_cert

SIG = Signature(signer="replica:0", value=b"\x01" * 32)
TS = Timestamp(1, "client:alice")


def round_trip(message):
    wire = message_to_wire(message)
    # Also push it through the canonical codec, as the network does.
    wire2 = canonical_decode(canonical_encode(wire))
    return message_from_wire(wire2)


class TestCoreMessages:
    def test_read_ts_request(self):
        msg = ReadTsRequest(nonce=b"\x05" * 16)
        assert round_trip(msg) == msg

    def test_read_ts_reply(self, config):
        cert = make_prepare_cert(config, TS, b"\x02" * 32)
        msg = ReadTsReply(cert=cert, nonce=b"n" * 16, signature=SIG)
        assert round_trip(msg) == msg

    def test_read_ts_reply_with_vouch(self, config):
        cert = make_prepare_cert(config, TS, b"\x02" * 32)
        msg = ReadTsReply(cert=cert, nonce=b"n" * 16, signature=SIG, ts_vouch=SIG)
        assert round_trip(msg) == msg

    def test_prepare_request(self, config):
        msg = PrepareRequest(
            prev_cert=genesis_prepare_certificate(),
            ts=TS,
            value_hash=b"\x03" * 32,
            write_cert=None,
            justify_cert=None,
            signature=SIG,
        )
        assert round_trip(msg) == msg

    def test_prepare_request_with_certs(self, config):
        msg = PrepareRequest(
            prev_cert=make_prepare_cert(config, TS, b"\x02" * 32),
            ts=Timestamp(2, "client:alice"),
            value_hash=b"\x03" * 32,
            write_cert=make_write_cert(config, TS),
            justify_cert=make_write_cert(config, TS),
            signature=SIG,
        )
        assert round_trip(msg) == msg

    def test_prepare_reply(self):
        msg = PrepareReply(ts=TS, value_hash=b"\x04" * 32, signature=SIG)
        assert round_trip(msg) == msg

    def test_write_request(self, config):
        msg = WriteRequest(
            value=("client:alice", 1, "payload"),
            prepare_cert=make_prepare_cert(config, TS, b"\x05" * 32),
            signature=SIG,
        )
        assert round_trip(msg) == msg

    def test_write_reply(self):
        msg = WriteReply(ts=TS, signature=SIG)
        assert round_trip(msg) == msg

    def test_read_request_and_reply(self, config):
        assert round_trip(ReadRequest(nonce=b"x" * 16)) == ReadRequest(nonce=b"x" * 16)
        msg = ReadReply(
            value=None,
            cert=genesis_prepare_certificate(),
            nonce=b"y" * 16,
            signature=SIG,
        )
        assert round_trip(msg) == msg

    def test_read_ts_prep_messages(self, config):
        req = ReadTsPrepRequest(
            value_hash=b"\x06" * 32, write_cert=None, nonce=b"z" * 16, signature=SIG
        )
        assert round_trip(req) == req
        reply = ReadTsPrepReply(
            cert=genesis_prepare_certificate(),
            prepared_ts=TS,
            prep_sig=SIG,
            nonce=b"z" * 16,
            signature=SIG,
        )
        assert round_trip(reply) == reply
        reply_no_prep = ReadTsPrepReply(
            cert=genesis_prepare_certificate(),
            prepared_ts=None,
            prep_sig=None,
            nonce=b"z" * 16,
            signature=SIG,
        )
        assert round_trip(reply_no_prep) == reply_no_prep


class TestBaselineMessages:
    def test_bqs_messages(self):
        assert round_trip(BqsReadTsRequest(nonce=b"n")) == BqsReadTsRequest(nonce=b"n")
        msg = BqsWriteRequest(value=("w", 1, None), ts=TS, writer_sig=SIG)
        assert round_trip(msg) == msg
        reply = BqsReadReply(
            value=None, ts=TS, writer_sig=None, nonce=b"n", signature=SIG
        )
        assert round_trip(reply) == reply

    def test_phalanx_messages(self):
        echo = PhxEchoRequest(ts=TS, value_hash=b"\x07" * 32, signature=SIG)
        assert round_trip(echo) == echo
        write = PhxWriteRequest(
            value=("w", 1, None), ts=TS, echo_sigs=(SIG, SIG), signature=SIG
        )
        assert round_trip(write) == write
        read = PhxReadReply(value="v", ts=TS, nonce=b"n", signature=SIG)
        assert round_trip(read) == read


class TestCodecErrors:
    def test_unknown_kind(self):
        with pytest.raises(ProtocolError):
            message_from_wire({"kind": "NOT-A-THING"})

    def test_missing_kind(self):
        with pytest.raises(ProtocolError):
            message_from_wire({"nonce": b"x"})

    def test_not_a_dict(self):
        with pytest.raises(ProtocolError):
            message_from_wire("READ-TS")

    def test_malformed_body(self):
        with pytest.raises(ProtocolError):
            message_from_wire({"kind": "PREPARE", "ts": "garbage"})

    def test_duplicate_registration_rejected(self):
        from repro.core.messages import Message, register_message

        class Dup(Message):
            KIND = "READ-TS"

        with pytest.raises(ProtocolError):
            register_message(Dup)

    def test_registration_without_kind_rejected(self):
        from repro.core.messages import Message, register_message

        class NoKind(Message):
            pass

        with pytest.raises(ProtocolError):
            register_message(NoKind)
