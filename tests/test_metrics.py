"""Tests for the metrics collector and summary statistics."""

from __future__ import annotations

from repro.sim import MetricsCollector, OperationSample, Summary


def sample(kind="write", phases=3, latency=0.1, fast=False, client="client:a"):
    return OperationSample(
        client=client, kind=kind, phases=phases, latency=latency, fast_path=fast
    )


class TestSummary:
    def test_empty(self):
        s = Summary.of([])
        assert s.count == 0 and s.mean == 0.0

    def test_single(self):
        s = Summary.of([2.0])
        assert s.count == 1
        assert s.mean == 2.0
        assert s.p50 == 2.0
        assert s.p95 == 2.0
        assert s.maximum == 2.0

    def test_percentiles(self):
        values = [float(i) for i in range(1, 101)]
        s = Summary.of(values)
        assert s.p50 == 50.0
        assert s.p95 == 95.0
        assert s.maximum == 100.0
        assert abs(s.mean - 50.5) < 1e-9

    def test_unsorted_input(self):
        s = Summary.of([3.0, 1.0, 2.0])
        assert s.p50 == 2.0
        assert s.maximum == 3.0


class TestCollector:
    def test_phase_histogram(self):
        m = MetricsCollector()
        m.record(sample(phases=3))
        m.record(sample(phases=3))
        m.record(sample(kind="read", phases=1))
        assert m.phase_histogram() == {3: 2, 1: 1}
        assert m.phase_histogram("write") == {3: 2}

    def test_fast_path_rate(self):
        m = MetricsCollector()
        m.record(sample(fast=True))
        m.record(sample(fast=False))
        m.record(sample(kind="read"))  # reads don't count
        assert m.fast_path_rate() == 0.5

    def test_fast_path_rate_no_writes(self):
        m = MetricsCollector()
        m.record(sample(kind="read"))
        assert m.fast_path_rate() == 0.0

    def test_latency_summary_by_kind(self):
        m = MetricsCollector()
        m.record(sample(kind="write", latency=1.0))
        m.record(sample(kind="read", latency=3.0))
        assert m.latency_summary("write").mean == 1.0
        assert m.latency_summary("read").mean == 3.0
        assert m.latency_summary().count == 2

    def test_per_client_counts(self):
        m = MetricsCollector()
        m.record(sample(client="client:a"))
        m.record(sample(client="client:a"))
        m.record(sample(client="client:b"))
        assert m.per_client_counts() == {"client:a": 2, "client:b": 1}

    def test_operations_total(self):
        m = MetricsCollector()
        assert m.operations == 0
        m.record(sample())
        assert m.operations == 1
