"""Tests for the BQS baseline: functional correctness for honest clients and
the known vulnerabilities to Byzantine ones."""

from __future__ import annotations

import pytest

from repro.baselines.runner import build_bqs_cluster
from repro.core.timestamp import Timestamp, ZERO_TS
from repro.sim import read_script, write_script
from repro.spec import check_register_linearizable


class TestHonestOperation:
    def test_write_then_read(self):
        cluster = build_bqs_cluster(f=1, seed=1)
        node = cluster.add_client("a")
        node.run_script(write_script("client:a", 1) + read_script(1))
        cluster.run()
        assert node.client.last_result == ("client:a", 0, None)

    def test_writes_take_two_phases(self):
        cluster = build_bqs_cluster(f=1, seed=2)
        node = cluster.add_client("a")
        node.run_script(write_script("client:a", 3))
        cluster.run()
        assert cluster.metrics.phase_histogram("write") == {2: 3}

    def test_reads_take_one_phase_when_stable(self):
        cluster = build_bqs_cluster(f=1, seed=3)
        node = cluster.add_client("a")
        node.run_script(write_script("client:a", 1) + read_script(2))
        cluster.run()
        assert cluster.metrics.phase_histogram("read") == {1: 2}

    def test_concurrent_honest_clients_linearizable(self):
        cluster = build_bqs_cluster(f=1, seed=4)
        cluster.run_scripts(
            {
                "a": write_script("client:a", 3) + read_script(2),
                "b": write_script("client:b", 3) + read_script(2),
            }
        )
        assert check_register_linearizable(cluster.history).ok

    def test_replica_state_after_write(self):
        cluster = build_bqs_cluster(f=1, seed=5)
        node = cluster.add_client("a")
        node.run_script(write_script("client:a", 1))
        cluster.run()
        cluster.settle()
        fresh = [
            r
            for r in cluster.replicas.values()
            if r.ts == Timestamp(1, "client:a")
        ]
        assert len(fresh) >= cluster.config.quorum_size

    def test_genesis_read(self):
        cluster = build_bqs_cluster(f=1, seed=6)
        node = cluster.add_client("a")
        node.run_script(read_script(1))
        cluster.run()
        assert node.client.last_result is None


class TestReplicaValidation:
    def test_forged_writer_signature_rejected(self):
        from repro.baselines.bqs import BqsReplica
        from repro.baselines.messages import BqsWriteRequest
        from repro.core import make_system
        from repro.crypto.signatures import Signature

        config = make_system(f=1, seed=b"bqs-unit")
        config.registry.register("client:a")
        replica = BqsReplica("replica:0", config)
        request = BqsWriteRequest(
            value=("v", 1),
            ts=Timestamp(1, "client:a"),
            writer_sig=Signature(signer="client:a", value=b"\x00" * 32),
        )
        assert replica.handle("client:a", request) is None
        assert replica.stats.discards["bad-signature"] == 1

    def test_unauthorized_writer_rejected(self):
        from repro.baselines.bqs import BqsReplica
        from repro.baselines.messages import BqsWriteRequest
        from repro.baselines.statements import bqs_write_statement
        from repro.core import make_system
        from repro.crypto.hashing import hash_value

        config = make_system(f=1, seed=b"bqs-unit2")
        config.registry.register("client:a")
        config.authorized_writers = set()  # nobody may write
        replica = BqsReplica("replica:0", config)
        ts = Timestamp(1, "client:a")
        sig = config.scheme.sign_statement(
            "client:a", bqs_write_statement(ts, hash_value(("v", 1)))
        )
        request = BqsWriteRequest(value=("v", 1), ts=ts, writer_sig=sig)
        assert replica.handle("client:a", request) is None

    def test_stale_timestamp_not_installed(self):
        from repro.baselines.bqs import BqsReplica
        from repro.baselines.messages import BqsWriteRequest
        from repro.baselines.statements import bqs_write_statement
        from repro.core import make_system
        from repro.crypto.hashing import hash_value

        config = make_system(f=1, seed=b"bqs-unit3")
        config.registry.register("client:a")
        replica = BqsReplica("replica:0", config)

        def write(ts_val, value):
            ts = Timestamp(ts_val, "client:a")
            sig = config.scheme.sign_statement(
                "client:a", bqs_write_statement(ts, hash_value(value))
            )
            return replica.handle(
                "client:a", BqsWriteRequest(value=value, ts=ts, writer_sig=sig)
            )

        write(2, ("v", 2))
        write(1, ("v", 1))  # stale: acked but not installed
        assert replica.data == ("v", 2)
        assert replica.stats.writes_installed == 1


class TestKnownVulnerabilities:
    def test_equivocation_splits_state(self):
        """The §3.2 issue-1 attack succeeds against BQS."""
        from repro.byzantine import BqsEquivocationAttack

        cluster = build_bqs_cluster(f=1, seed=8)
        attack = BqsEquivocationAttack(cluster, "evil")
        attack.start()
        cluster.run(max_time=30)
        assert len(attack.acks_a) >= 1 and len(attack.acks_b) >= 1
        values = {repr(r.data) for r in cluster.replicas.values() if r.data}
        assert len(values) == 2  # two values under one timestamp

    def test_equivocation_breaks_atomicity_for_readers(self):
        from repro.byzantine import BqsEquivocationAttack

        cluster = build_bqs_cluster(f=1, seed=8)
        attack = BqsEquivocationAttack(cluster, "evil")
        attack.start()
        cluster.run(max_time=30)
        r1 = cluster.add_client("r1")
        r2 = cluster.add_client("r2")
        r1.run_script(read_script(1))
        r2.run_script(read_script(1), start_delay=0.2)
        cluster.run(max_time=30)
        assert not check_register_linearizable(cluster.history).ok

    def test_timestamp_exhaustion_succeeds(self):
        """The §3.2 issue-3 attack succeeds against BQS."""
        from repro.byzantine import BqsTimestampExhaustionAttack

        cluster = build_bqs_cluster(f=1, seed=9)
        attack = BqsTimestampExhaustionAttack(cluster, "evil")
        attack.start()
        cluster.run(max_time=30)
        assert attack.succeeded
        assert any(
            r.ts.val >= attack.HUGE for r in cluster.replicas.values()
        )
