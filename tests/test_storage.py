"""Unit and property tests for the replica storage engines.

The property test is the torn-final-record acceptance check: truncating the
WAL at *any* byte offset must recover exactly the records whose frames are
fully on disk, and recovery must be idempotent and leave a log that accepts
further appends.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding import canonical_encode, encode_frame
from repro.errors import StorageError
from repro.storage import (
    WAL_RECORD_DOMAIN,
    FileLogStore,
    MemoryStore,
    StorageStats,
    seal,
)


def records_for(n):
    return [("record", i, b"x" * (i % 7)) for i in range(n)]


class TestMemoryStore:
    def test_round_trip(self):
        store = MemoryStore()
        for record in records_for(5):
            store.append(record)
        snapshot, records = store.load()
        assert snapshot is None
        assert records == records_for(5)
        assert store.stats.appends == 5

    def test_snapshot_truncates_log(self):
        store = MemoryStore()
        store.append(("a",))
        store.write_snapshot({"state": 1})
        store.append(("b",))
        snapshot, records = store.load()
        assert snapshot == {"state": 1}
        assert records == [("b",)]

    def test_crash_wipes_everything(self):
        store = MemoryStore()
        store.append(("a",))
        store.write_snapshot({"state": 1})
        store.append(("b",))
        store.crash()
        assert store.load() == (None, [])
        assert store.stats.crashes == 1

    def test_auto_compaction_uses_snapshot_source(self):
        store = MemoryStore(snapshot_interval=3)
        state = {"installed": 0}
        store.snapshot_source = lambda: dict(state)
        for i in range(7):
            # Write-ahead order: log, apply, then offer to compact.
            store.append(("r", i))
            state["installed"] = i
            store.maybe_compact()
        assert store.stats.snapshots == 2
        snapshot, records = store.load()
        assert snapshot == {"installed": 5}
        assert records == [("r", 6)]


class TestFileLogStore:
    def test_round_trip_across_reopen(self, tmp_path):
        store = FileLogStore(tmp_path)
        for record in records_for(4):
            store.append(record)
        store.close()
        reopened = FileLogStore(tmp_path)
        snapshot, records = reopened.load()
        assert snapshot is None
        assert records == records_for(4)
        reopened.close()

    def test_snapshot_compaction(self, tmp_path):
        store = FileLogStore(tmp_path)
        store.append(("old",))
        store.write_snapshot({"v": 41})
        store.append(("new",))
        store.close()
        reopened = FileLogStore(tmp_path)
        assert reopened.load() == ({"v": 41}, [("new",)])
        reopened.close()

    def test_fsync_always_survives_crash(self, tmp_path):
        store = FileLogStore(tmp_path, fsync="always")
        store.append(("kept",))
        store.crash()
        assert store.load() == (None, [("kept",)])
        store.close()

    def test_fsync_never_loses_unsynced_tail(self, tmp_path):
        store = FileLogStore(tmp_path, fsync="never")
        store.append(("lost-1",))
        store.sync()
        store.append(("lost-2",))
        store.crash()
        assert store.load() == (None, [("lost-1",)])
        store.close()

    def test_rejects_unknown_fsync_policy(self, tmp_path):
        with pytest.raises(StorageError):
            FileLogStore(tmp_path, fsync="sometimes")

    def test_auto_compaction(self, tmp_path):
        store = FileLogStore(tmp_path, snapshot_interval=2)
        state = {"n": 0}
        store.snapshot_source = lambda: dict(state)
        for i in range(5):
            store.append(("r", i))
            state["n"] = i
            store.maybe_compact()
        assert store.stats.snapshots == 2
        store.close()
        reopened = FileLogStore(tmp_path)
        snapshot, records = reopened.load()
        assert snapshot == {"n": 3}
        assert records == [("r", 4)]
        reopened.close()

    def test_corrupt_snapshot_quarantined_and_flagged(self, tmp_path):
        store = FileLogStore(tmp_path)
        store.write_snapshot({"v": 1})
        store.close()
        (tmp_path / "snapshot.bin").write_bytes(b"\x00garbage")
        reopened = FileLogStore(tmp_path)
        # No previous generation and no WAL: recovery yields the empty
        # state, but never silently — the store is marked suspect and the
        # bad file is preserved for post-mortem.
        assert reopened.load() == (None, [])
        assert reopened.suspect
        assert reopened.stats.corrupt_snapshots == 1
        assert (tmp_path / "snapshot.quarantine").exists()
        reopened.close()

    def test_corrupt_snapshot_falls_back_to_previous_generation(self, tmp_path):
        store = FileLogStore(tmp_path)
        store.write_snapshot({"v": 1})
        store.write_snapshot({"v": 2})  # {"v": 1} becomes snapshot.prev.bin
        store.close()
        (tmp_path / "snapshot.bin").write_bytes(b"\x00garbage")
        reopened = FileLogStore(tmp_path)
        snapshot, records = reopened.load()
        assert snapshot == {"v": 1}
        assert records == []
        assert reopened.suspect  # prev may trail: repair is still required
        assert reopened.stats.corrupt_snapshots == 1
        reopened.close()

    def test_counts_bytes_and_fsyncs(self, tmp_path):
        store = FileLogStore(tmp_path, fsync="always")
        store.append(("r",))
        assert store.stats.appends == 1
        assert store.stats.fsyncs == 1
        assert store.stats.appended_bytes == os.path.getsize(tmp_path / "wal.bin")
        store.close()


class TestTornFinalRecord:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data(), n_records=st.integers(min_value=1, max_value=6))
    def test_any_truncation_recovers_complete_prefix(
        self, data, n_records, tmp_path_factory
    ):
        tmp_path = tmp_path_factory.mktemp("torn")
        records = records_for(n_records)
        store = FileLogStore(tmp_path, fsync="never")
        for record in records:
            store.append(record)
        store.close()

        wal_path = tmp_path / "wal.bin"
        raw = wal_path.read_bytes()
        cut = data.draw(st.integers(min_value=0, max_value=len(raw)))
        wal_path.write_bytes(raw[:cut])

        # Which records remain fully framed at this cut?
        expected, offset = [], 0
        for record in records:
            frame = encode_frame(seal(canonical_encode(record), WAL_RECORD_DOMAIN))
            if offset + len(frame) <= cut:
                expected.append(record)
            offset += len(frame)

        reopened = FileLogStore(tmp_path)
        snapshot, recovered = reopened.load()
        assert snapshot is None
        assert recovered == expected
        # Idempotent: a second load sees the same (now truncated) log.
        assert reopened.load() == (None, expected)
        # And the truncated log accepts further appends cleanly.
        reopened.append(("post-recovery",))
        assert reopened.load() == (None, expected + [("post-recovery",)])
        reopened.close()


def test_storage_stats_add():
    a, b = StorageStats(), StorageStats()
    a.appends, a.fsyncs = 3, 2
    b.appends, b.snapshots = 4, 1
    a.add(b)
    assert (a.appends, a.fsyncs, a.snapshots) == (7, 2, 1)
