"""Every protocol option composes with every variant.

The ablation flags (§3.3's optimizations, §4.1.1 strict stop) are
independent toggles; this matrix guards against cross-flag regressions.
"""

from __future__ import annotations

import itertools

import pytest

from repro import build_cluster
from repro.sim import read_script, write_script
from repro.spec import check_register_linearizable

VARIANTS = ("base", "optimized", "strong")
FLAGS = ("background_signing", "piggyback_write_certs", "prefer_quorum")


@pytest.mark.parametrize(
    "variant,flag",
    list(itertools.product(VARIANTS, FLAGS)),
)
def test_single_flag_with_each_variant(variant, flag):
    cluster = build_cluster(f=1, variant=variant, seed=700, **{flag: True})
    node = cluster.add_client("w")
    node.run_script(write_script("client:w", 3) + read_script(2))
    cluster.run(max_time=120)
    assert node.client.last_result == ("client:w", 2, None)
    report = check_register_linearizable(cluster.history)
    assert report.ok, (variant, flag, report.violation)


@pytest.mark.parametrize("variant", VARIANTS)
def test_all_flags_together(variant):
    cluster = build_cluster(
        f=1,
        variant=variant,
        seed=701,
        background_signing=True,
        piggyback_write_certs=True,
        prefer_quorum=True,
        strict_stop=True,
        sign_delay=0.002,
    )
    cluster.run_scripts(
        {
            "a": write_script("client:a", 3) + read_script(1),
            "b": write_script("client:b", 3) + read_script(1),
        },
        max_time=300,
    )
    report = check_register_linearizable(cluster.history)
    assert report.ok, (variant, report.violation)


@pytest.mark.parametrize("variant", VARIANTS)
def test_all_flags_with_gc_disabled_single_writes(variant):
    """gc_plist=False is special: repeat writes by one client would stall
    by design, so each client writes once."""
    cluster = build_cluster(
        f=1,
        variant=variant,
        seed=702,
        gc_plist=False,
        background_signing=True,
        prefer_quorum=True,
    )
    cluster.run_scripts(
        {name: write_script(f"client:{name}", 1) for name in ("a", "b", "c")},
        max_time=300,
    )
    report = check_register_linearizable(cluster.history)
    assert report.ok, (variant, report.violation)


@pytest.mark.parametrize("scheme", ["hmac", "rsa"])
@pytest.mark.parametrize("variant", VARIANTS)
def test_signature_backends_with_each_variant(scheme, variant):
    cluster = build_cluster(f=1, variant=variant, seed=703, scheme=scheme)
    node = cluster.add_client("w")
    node.run_script(write_script("client:w", 2) + read_script(1))
    cluster.run(max_time=300)
    assert node.client.last_result == ("client:w", 1, None)
