"""The sim/TCP load harness: determinism, budget differential, SLOs."""

from __future__ import annotations

import json

import pytest

from repro.core.persistence import ClientStateBudget
from repro.errors import SimulationError
from repro.load import (
    DEFAULT_SLOS,
    LoadProfile,
    SimLoadHarness,
    SimLoadOptions,
    SloTarget,
    judge_slos,
    run_open_loop,
    run_tcp_load,
)
from repro.obs import LatencyHistogram


def small_profile(**overrides) -> LoadProfile:
    kwargs = dict(
        rate=300.0,
        duration=1.0,
        identities=120,
        objects=8,
        write_fraction=0.5,
        zipf_skew=1.1,
        seed=7,
    )
    kwargs.update(overrides)
    return LoadProfile(**kwargs)


class TestSimHarness:
    def test_small_run_completes_everything(self):
        report = run_open_loop(small_profile(), variant="optimized")
        assert report.arrivals > 100
        assert report.completed == report.arrivals
        assert report.failed == 0
        assert report.distinct_identities == min(report.arrivals, 120)
        assert report.ops_digest
        assert report.slo_ok
        # Zero service delay: no queueing model, capacity unbounded.
        assert report.predicted_capacity == float("inf")
        assert report.utilization == 0.0
        wire = report.to_wire()
        json.dumps(wire)  # must round-trip to JSON for the CLI / bench record
        assert wire["completed"] == report.completed
        assert wire["slos"]

    def test_identity_accounting_counters(self):
        report = run_open_loop(
            small_profile(identities=400, rate=600.0),
            variant="optimized",
            budget=ClientStateBudget(hot_entries=4),
            secret_cache=32,
        )
        identity = report.identity
        assert identity["registry_derivations"] >= 400
        assert identity["registry_resident"] <= 32
        assert identity["registry_evictions"] > 0
        assert identity["client_state_spills"] > 0
        assert identity["tracked_entries"] > 0
        assert identity["driver_activations"] >= report.distinct_identities

    def test_runs_are_deterministic(self):
        def once():
            return run_open_loop(small_profile(), variant="optimized")

        a, b = once(), once()
        assert a.ops_digest == b.ops_digest
        assert a.completed == b.completed
        assert a.write_p95 == b.write_p95

    @pytest.mark.parametrize("variant", ["base", "fastpath", "strong"])
    def test_other_variants_run(self, variant):
        report = run_open_loop(
            small_profile(rate=120.0, identities=40), variant=variant
        )
        assert report.failed == 0
        assert report.slo_ok

    def test_burst_profile_runs(self):
        profile = LoadProfile.bursty(
            200.0,
            1.5,
            burst_multiplier=3.0,
            burst_fraction=0.3,
            identities=100,
            objects=8,
            seed=11,
        )
        report = run_open_loop(profile, variant="optimized")
        assert report.failed == 0
        assert report.arrivals > profile.rate * profile.duration

    def test_overload_blows_the_slo(self):
        # Offered at ~2x the single-server capacity: queueing delay grows
        # without bound, so tail latency must violate any sane SLO.
        capacity = 1.0 / (1.5 * 0.002)  # optimized, 50/50 mix, 2ms service
        report = run_open_loop(
            small_profile(rate=2 * capacity, duration=2.0, identities=500),
            variant="optimized",
            service_delay=0.002,
            slos=(SloTarget("write.p95", 0.05),),
        )
        assert report.utilization > 1.5
        assert not report.slo_ok
        assert report.write_p95 > 0.05

    def test_harness_exposes_fingerprints_and_tracked_entries(self):
        harness = SimLoadHarness(small_profile(), SimLoadOptions())
        harness.run()
        prints = harness.object_fingerprints()
        assert len(prints) == 4  # 3f+1 replicas
        per_node = list(prints.values())
        assert all(node == per_node[0] for node in per_node)
        assert harness.tracked_entries() > 0
        assert harness.active_drivers == 0  # everyone parked after drain


class TestBudgetDifferential:
    """The acceptance differential, at tier-1 scale.

    The full 10^5-identity version lives in TestBudgetDifferentialSlow;
    this one keeps the same structure at ~2.5k identities so it runs in
    seconds on every push.
    """

    IDENTITIES = 2500

    def _arm(self, budgeted: bool) -> SimLoadHarness:
        profile = small_profile(
            identities=self.IDENTITIES, rate=1500.0, duration=2.0
        )
        options = SimLoadOptions(
            variant="optimized",
            budget=ClientStateBudget(hot_entries=4) if budgeted else None,
            secret_cache=128 if budgeted else 10_000_000,
        )
        return SimLoadHarness(profile, options)

    def test_budgeted_matches_unbounded_with_a_fraction_of_the_state(self):
        budgeted, unbounded = self._arm(True), self._arm(False)
        budgeted_report = budgeted.run()
        unbounded_report = unbounded.run()

        # Identical operation results, completion order, and replica state.
        assert budgeted_report.ops_digest == unbounded_report.ops_digest
        assert budgeted_report.completed == unbounded_report.completed
        assert budgeted.object_fingerprints() == unbounded.object_fingerprints()

        # ... at a tenth (or less) of the tracked identity state.
        ratio = budgeted.tracked_entries() / unbounded.tracked_entries()
        assert ratio <= 0.10, f"tracked ratio {ratio:.3f} exceeds 0.10"
        assert budgeted_report.identity["client_state_spills"] > 0


@pytest.mark.slow
class TestBudgetDifferentialSlow:
    """ISSUE 8 acceptance: the differential at 10^5 distinct identities."""

    def test_full_scale_differential(self):
        profile = LoadProfile(
            rate=4000.0,
            duration=27.0,
            identities=100_000,
            objects=32,
            write_fraction=0.3,
            zipf_skew=1.1,
            seed=21,
        )

        def arm(budgeted: bool) -> SimLoadHarness:
            options = SimLoadOptions(
                variant="optimized",
                budget=(
                    ClientStateBudget(hot_entries=64) if budgeted else None
                ),
                secret_cache=1024 if budgeted else 10_000_000,
                retransmit_interval=30.0,
            )
            return SimLoadHarness(profile, options)

        budgeted, unbounded = arm(True), arm(False)
        budgeted_report = budgeted.run()
        unbounded_report = unbounded.run()

        assert budgeted_report.distinct_identities >= 100_000
        assert budgeted_report.ops_digest == unbounded_report.ops_digest
        assert budgeted.object_fingerprints() == unbounded.object_fingerprints()
        ratio = budgeted.tracked_entries() / unbounded.tracked_entries()
        assert ratio <= 0.10, f"tracked ratio {ratio:.3f} exceeds 0.10"


class TestSloJudgment:
    def _hist(self, values) -> LatencyHistogram:
        hist = LatencyHistogram()
        for value in values:
            hist.record(value)
        return hist

    def test_latency_ceilings_and_completion_floor(self):
        write = self._hist([0.01, 0.02, 0.03])
        read = self._hist([0.001])
        verdicts = judge_slos(
            DEFAULT_SLOS,
            write_hist=write,
            read_hist=read,
            completion_fraction=1.0,
        )
        assert all(v.ok for v in verdicts)

        verdicts = judge_slos(
            (SloTarget("write.p95", 0.005), SloTarget("completion", 0.999)),
            write_hist=write,
            read_hist=read,
            completion_fraction=0.5,
        )
        assert [v.ok for v in verdicts] == [False, False]

    def test_empty_histogram_passes_trivially(self):
        verdicts = judge_slos(
            (SloTarget("read.p99", 0.001),),
            write_hist=self._hist([]),
            read_hist=self._hist([]),
            completion_fraction=1.0,
        )
        assert verdicts[0].ok

    def test_unknown_metric_rejected(self):
        with pytest.raises(SimulationError):
            judge_slos(
                (SloTarget("commit.p95", 0.1),),
                write_hist=self._hist([]),
                read_hist=self._hist([]),
                completion_fraction=1.0,
            )


class TestTcpHarness:
    def test_small_tcp_run(self):
        profile = LoadProfile(
            rate=40.0,
            duration=1.0,
            identities=50,
            objects=4,
            write_fraction=0.5,
            seed=13,
        )
        report = run_tcp_load(profile, variant="optimized")
        assert report.arrivals > 10
        assert report.failed == 0
        assert report.completed == report.arrivals
        assert report.distinct_identities == min(report.arrivals, 50)
        assert report.elapsed > 0
        json.dumps(report.to_wire())
