"""Property tests for the encode-once wire cache and statement interning.

The caches are pure memoization: their one correctness obligation is that
cached bytes are *identical* to a fresh ``canonical_encode`` of the same
value.  Hypothesis drives randomized values — including the adversarial
``True == 1 == 1.0`` aliasing family, whose members compare and hash equal
yet encode differently — through both paths and demands byte equality.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.messages import (
    ReadTsRequest,
    message_to_wire,
    message_wire_bytes,
    wire_cache_stats,
)
from repro.encoding import (
    canonical_encode,
    intern_encode,
    intern_stats,
    reset_interning,
)

#: Every value the canonical encoding supports (dict keys must be str).
#: Finite floats only: the canonical form round-trips via repr, and the
#: interning memo must distinguish 1.0 from 1 — not relitigate NaN identity.
values = st.recursive(
    st.none()
    | st.booleans()
    | st.integers()
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20)
    | st.binary(max_size=20),
    lambda leaf: st.lists(leaf, max_size=4)
    | st.dictionaries(st.text(max_size=8), leaf, max_size=4),
    max_leaves=12,
)


class TestInterningMatchesFreshEncode:
    @given(values)
    @settings(max_examples=300, deadline=None)
    def test_intern_encode_equals_canonical_encode(self, value):
        assert intern_encode(value) == canonical_encode(value)

    @given(values)
    @settings(max_examples=100, deadline=None)
    def test_repeat_lookup_returns_identical_bytes(self, value):
        assert intern_encode(value) == intern_encode(value)

    def test_aliasing_family_kept_distinct(self):
        # True == 1 == 1.0 (and False == 0 == 0.0) hash alike but have
        # different canonical forms; the memo must never cross them.
        reset_interning()
        for family in ([True, 1, 1.0], [False, 0, 0.0]):
            encodings = [intern_encode(v) for v in family]
            assert len(set(encodings)) == len(family)
            for value, encoded in zip(family, encodings):
                assert encoded == canonical_encode(value)

    def test_nested_aliases_kept_distinct(self):
        reset_interning()
        nests = [[True], [1], [1.0], {"k": True}, {"k": 1}, {"k": 1.0}]
        encodings = [intern_encode(v) for v in nests]
        assert len(set(encodings)) == len(nests)
        for value, encoded in zip(nests, encodings):
            assert encoded == canonical_encode(value)

    def test_unhashable_leaf_falls_back_to_fresh_encode(self):
        reset_interning()

        class Weird(str):
            __hash__ = None  # hashable nowhere, still encodes as str

        value = [Weird("x")]
        assert intern_encode(value) == canonical_encode(value)
        assert intern_stats().uncacheable == 1

    def test_hits_are_counted(self):
        reset_interning()
        intern_encode(("s", 1))
        intern_encode(("s", 1))
        assert intern_stats().hits == 1
        assert intern_stats().misses == 1
        assert intern_stats().hit_rate == 0.5


class TestWireCacheMatchesFreshEncode:
    @given(st.binary(min_size=1, max_size=32))
    @settings(max_examples=100, deadline=None)
    def test_cached_bytes_equal_fresh_encode(self, nonce):
        message = ReadTsRequest(nonce=nonce)
        first = message_wire_bytes(message)
        assert first == canonical_encode(message_to_wire(message))
        # Second call is served from the instance cache: same bytes, one hit.
        hits_before = wire_cache_stats().hits
        assert message_wire_bytes(message) == first
        assert wire_cache_stats().hits == hits_before + 1

    @given(st.binary(min_size=1, max_size=16))
    @settings(max_examples=100, deadline=None)
    def test_distinct_instances_cache_independently(self, nonce):
        a = ReadTsRequest(nonce=nonce)
        b = ReadTsRequest(nonce=nonce + b"x")
        assert message_wire_bytes(a) == canonical_encode(message_to_wire(a))
        assert message_wire_bytes(b) == canonical_encode(message_to_wire(b))
        assert message_wire_bytes(a) != message_wire_bytes(b)
