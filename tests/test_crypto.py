"""Tests for hashing, keys, signature schemes, MACs, and nonces."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import (
    DIGEST_SIZE,
    HmacSignatureScheme,
    KeyRegistry,
    MacAuthenticator,
    NonceSource,
    NonceTracker,
    RsaSignatureScheme,
    Signature,
    digest,
    digest_bytes,
    hash_value,
)
from repro.errors import (
    CryptoError,
    InvalidSignatureError,
    KeyRevokedError,
    UnknownSignerError,
)


class TestHashing:
    def test_digest_size(self):
        assert len(digest_bytes(b"abc")) == DIGEST_SIZE

    def test_hash_value_deterministic(self):
        assert hash_value(("a", 1)) == hash_value(("a", 1))

    def test_hash_value_discriminates(self):
        assert hash_value(("a", 1)) != hash_value(("a", 2))

    def test_multi_part_digest_is_unambiguous(self):
        assert digest(b"ab", b"c") != digest(b"a", b"bc")

    def test_list_and_tuple_hash_identically(self):
        assert hash_value([1, 2]) == hash_value((1, 2))


class TestKeyRegistry:
    def test_register_is_idempotent(self):
        registry = KeyRegistry(master_seed=b"s")
        a = registry.register("node:1")
        b = registry.register("node:1")
        assert a == b

    def test_different_nodes_get_different_secrets(self):
        registry = KeyRegistry(master_seed=b"s")
        assert registry.register("a").secret != registry.register("b").secret

    def test_deterministic_from_seed(self):
        a = KeyRegistry(master_seed=b"s").register("n").secret
        b = KeyRegistry(master_seed=b"s").register("n").secret
        assert a == b

    def test_unknown_secret_raises(self):
        registry = KeyRegistry()
        with pytest.raises(UnknownSignerError):
            registry.secret_for("ghost")

    def test_revocation(self):
        registry = KeyRegistry()
        registry.register("n")
        registry.revoke("n")
        assert registry.is_revoked("n")
        with pytest.raises(KeyRevokedError):
            registry.check_may_sign("n")

    def test_revoke_unknown_raises(self):
        with pytest.raises(UnknownSignerError):
            KeyRegistry().revoke("ghost")


@pytest.fixture(params=["hmac", "rsa"])
def scheme(request):
    registry = KeyRegistry(master_seed=b"scheme-test")
    registry.register("alice")
    registry.register("bob")
    if request.param == "hmac":
        return HmacSignatureScheme(registry)
    return RsaSignatureScheme(registry, bits=256)


class TestSignatureSchemes:
    def test_sign_verify_round_trip(self, scheme):
        sig = scheme.sign("alice", b"message")
        assert scheme.verify(sig, b"message")

    def test_wrong_message_rejected(self, scheme):
        sig = scheme.sign("alice", b"message")
        assert not scheme.verify(sig, b"other")

    def test_wrong_signer_attribution_rejected(self, scheme):
        sig = scheme.sign("alice", b"message")
        forged = Signature(signer="bob", value=sig.value)
        assert not scheme.verify(forged, b"message")

    def test_unknown_signer_rejected(self, scheme):
        sig = Signature(signer="ghost", value=b"\x00" * 32)
        assert not scheme.verify(sig, b"message")

    def test_statement_signing(self, scheme):
        statement = ("PREPARE-REPLY", (1, "client:a"), b"hash")
        sig = scheme.sign_statement("alice", statement)
        assert scheme.verify_statement(sig, statement)
        assert not scheme.verify_statement(sig, ("PREPARE-REPLY", (2, "x"), b"hash"))

    def test_revoked_signer_cannot_sign(self, scheme):
        scheme.registry.revoke("alice")
        with pytest.raises(KeyRevokedError):
            scheme.sign("alice", b"m")

    def test_old_signatures_survive_revocation(self, scheme):
        """§4.1.1: replays of pre-stop messages still verify."""
        sig = scheme.sign("alice", b"m")
        scheme.registry.revoke("alice")
        assert scheme.verify(sig, b"m")

    def test_stats_counting(self, scheme):
        scheme.stats.reset()
        sig = scheme.sign("alice", b"m")
        scheme.verify(sig, b"m")
        scheme.verify(sig, b"wrong")
        assert scheme.stats.signs == 1
        assert scheme.stats.verifies == 2
        assert scheme.stats.verify_failures == 1

    def test_tampered_signature_rejected(self, scheme):
        sig = scheme.sign("alice", b"m")
        tampered = Signature(signer="alice", value=bytes(sig.value[:-1]) + b"\x00")
        if tampered.value != sig.value:
            assert not scheme.verify(tampered, b"m")


class TestSignatureWire:
    def test_wire_round_trip(self):
        sig = Signature(signer="n", value=b"\x01\x02")
        assert Signature.from_wire(sig.to_wire()) == sig

    def test_malformed_wire(self):
        with pytest.raises(CryptoError):
            Signature.from_wire(("only-one",))
        with pytest.raises(CryptoError):
            Signature.from_wire((1, b"x"))


class TestRsaDeterminism:
    def test_keypair_deterministic(self):
        from repro.crypto.rsa import generate_rsa_keypair

        a = generate_rsa_keypair(b"seed", bits=256)
        b = generate_rsa_keypair(b"seed", bits=256)
        assert a.n == b.n and a.d == b.d

    def test_different_seeds_differ(self):
        from repro.crypto.rsa import generate_rsa_keypair

        assert (
            generate_rsa_keypair(b"s1", bits=256).n
            != generate_rsa_keypair(b"s2", bits=256).n
        )

    def test_small_modulus_rejected(self):
        from repro.crypto.rsa import generate_rsa_keypair

        with pytest.raises(CryptoError):
            generate_rsa_keypair(b"s", bits=64)

    @settings(max_examples=10, deadline=None)
    @given(st.binary(min_size=0, max_size=64))
    def test_sign_verify_property(self, message):
        from repro.crypto.rsa import generate_rsa_keypair, rsa_sign, rsa_verify

        key = generate_rsa_keypair(b"prop-seed", bits=256)
        sig = rsa_sign(key, message)
        assert rsa_verify(key.public, message, sig)
        assert not rsa_verify(key.public, message + b"x", sig)


class TestMacAuthenticator:
    def test_round_trip(self):
        registry = KeyRegistry(master_seed=b"mac")
        registry.register("a")
        registry.register("b")
        auth = MacAuthenticator(registry)
        tag = auth.mac("a", "b", b"hello")
        assert auth.check("a", "b", b"hello", tag)
        assert auth.check("b", "a", b"hello", tag)  # symmetric session key

    def test_wrong_peer_rejected(self):
        registry = KeyRegistry(master_seed=b"mac")
        for n in ("a", "b", "c"):
            registry.register(n)
        auth = MacAuthenticator(registry)
        tag = auth.mac("a", "b", b"hello")
        assert not auth.check("a", "c", b"hello", tag)

    def test_tampered_message_rejected(self):
        registry = KeyRegistry(master_seed=b"mac")
        registry.register("a")
        registry.register("b")
        auth = MacAuthenticator(registry)
        tag = auth.mac("a", "b", b"hello")
        assert not auth.check("a", "b", b"hellp", tag)


class TestNonces:
    def test_nonces_never_repeat(self):
        source = NonceSource("n", secret=b"s")
        seen = {source.next() for _ in range(1000)}
        assert len(seen) == 1000

    def test_nonce_length(self):
        assert len(NonceSource("n").next()) == 16

    def test_different_nodes_different_nonces(self):
        assert NonceSource("a", b"s").next() != NonceSource("b", b"s").next()

    def test_tracker_detects_replay(self):
        tracker = NonceTracker()
        nonce = b"\x01" * 16
        assert tracker.check_and_record(nonce)
        assert not tracker.check_and_record(nonce)

    def test_tracker_eviction(self):
        tracker = NonceTracker(capacity=2)
        tracker.check_and_record(b"a")
        tracker.check_and_record(b"b")
        tracker.check_and_record(b"c")
        assert len(tracker) == 2
        assert b"a" not in tracker

    def test_tracker_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            NonceTracker(capacity=0)


# Mark InvalidSignatureError as part of the public error surface.
def test_error_hierarchy():
    assert issubclass(KeyRevokedError, CryptoError)
    assert issubclass(UnknownSignerError, CryptoError)
    assert issubclass(InvalidSignatureError, CryptoError)
