"""The simulator and the TCP transport drive identical protocol outcomes."""

from __future__ import annotations

import asyncio

from repro import build_cluster
from repro.core import BftBcClient, BftBcReplica, make_system
from repro.net.asyncio_transport import AsyncClient, ReplicaServer
from repro.sim import write_script, read_script

VALUES = [("client:w", seq, f"payload-{seq}") for seq in range(3)]


def run_simulated():
    cluster = build_cluster(f=1, seed=77)
    node = cluster.add_client("w")
    node.run_script([("write", v) for v in VALUES] + read_script(1))
    cluster.run(max_time=60)
    cluster.settle()
    replica = cluster.replicas["replica:0"]
    return node.client.last_result, replica.data, replica.pcert.ts


def run_tcp():
    async def main():
        config = make_system(f=1, seed=b"cross-transport")
        servers, addrs = [], {}
        replicas = {}
        for rid in config.quorums.replica_ids:
            replica = BftBcReplica(rid, config)
            replicas[rid] = replica
            server = ReplicaServer(replica)
            host, port = await server.start()
            addrs[rid] = (host, port)
            servers.append(server)
        client = AsyncClient(BftBcClient("client:w", config), addrs)
        await client.connect()
        for value in VALUES:
            await client.write(value)
        read = await client.read()
        await client.close()
        for server in servers:
            await server.stop()
        replica = replicas["replica:0"]
        return read, replica.data, replica.pcert.ts

    return asyncio.run(main())


def test_same_outcome_on_both_transports():
    sim_read, sim_data, sim_ts = run_simulated()
    tcp_read, tcp_data, tcp_ts = run_tcp()
    assert sim_read == tcp_read == VALUES[-1]
    assert sim_data == tcp_data == VALUES[-1]
    assert sim_ts == tcp_ts  # same protocol, same timestamps
