"""ChaosProxy byte-mangling and the TCP chaos campaign.

The proxy is chaos *infrastructure*, so it gets its own correctness tests
(a zero-rate profile must be a transparent TCP relay; a dead upstream must
refuse, not hang).  The campaign test is the ISSUE's acceptance bar: with
durable stores and a mid-episode server crash/recover, the full oracle
battery passes on every protocol variant through misbehaving proxies.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.chaos.oracles import ORACLES
from repro.chaos.tcp import TcpChaosConfig, run_tcp_campaign, run_tcp_episode
from repro.errors import SimulationError
from repro.net.chaos_proxy import ChaosProxy, ProxyProfile


def run(coro):
    return asyncio.run(coro)


async def _echo_server():
    async def handle(reader, writer):
        while True:
            chunk = await reader.read(65536)
            if not chunk:
                break
            writer.write(chunk)
            await writer.drain()
        writer.close()

    server = await asyncio.start_server(handle, "127.0.0.1", 0)
    host, port = server.sockets[0].getsockname()[:2]
    return server, host, port


class TestProxyProfile:
    def test_rejects_negative_rates(self):
        with pytest.raises(SimulationError):
            ProxyProfile(drop_rate=-0.1)

    def test_rejects_rates_above_one(self):
        with pytest.raises(SimulationError):
            ProxyProfile(garbage_rate=1.5)

    def test_rejects_inverted_delay_window(self):
        with pytest.raises(SimulationError):
            ProxyProfile(min_delay=0.5, max_delay=0.1)


class TestChaosProxy:
    def test_zero_rate_profile_is_transparent(self):
        async def main():
            server, host, port = await _echo_server()
            proxy = ChaosProxy(host, port, profile=ProxyProfile(), seed=1)
            p_host, p_port = await proxy.start()

            reader, writer = await asyncio.open_connection(p_host, p_port)
            payload = bytes(range(256)) * 64
            writer.write(payload)
            await writer.drain()
            echoed = await reader.readexactly(len(payload))
            assert echoed == payload
            assert proxy.stats.connections == 1
            assert proxy.stats.chunks_forwarded >= 2  # both directions
            assert proxy.stats.chunks_dropped == 0
            assert proxy.stats.garbage_injected == 0

            writer.close()
            await proxy.stop()
            server.close()
            await server.wait_closed()

        run(main())

    def test_dead_upstream_refuses_by_closing(self):
        async def main():
            server, host, port = await _echo_server()
            server.close()
            await server.wait_closed()  # upstream is now gone

            proxy = ChaosProxy(host, port, seed=2)
            p_host, p_port = await proxy.start()
            reader, writer = await asyncio.open_connection(p_host, p_port)
            assert (await reader.read(64)) == b""  # closed, not hung
            assert proxy.stats.refused == 1
            writer.close()
            await proxy.stop()

        run(main())

    def test_drop_chunk_closes_connection(self):
        async def main():
            server, host, port = await _echo_server()
            proxy = ChaosProxy(
                host, port, profile=ProxyProfile(drop_rate=1.0), seed=3
            )
            p_host, p_port = await proxy.start()
            reader, writer = await asyncio.open_connection(p_host, p_port)
            writer.write(b"doomed bytes")
            await writer.drain()
            # The chunk is swallowed and the connection torn down — the
            # stream never silently desynchronises.
            assert (await reader.read(64)) == b""
            assert proxy.stats.chunks_dropped == 1
            writer.close()
            await proxy.stop()
            server.close()
            await server.wait_closed()

        run(main())


class TestTcpCampaignAcceptance:
    def test_all_variants_pass_oracles_through_chaos(self, tmp_path):
        """Durable servers + chaos proxies + a mid-episode crash_restart:
        every variant must pass the full battery."""
        summary = run_tcp_campaign(
            TcpChaosConfig(seed=4), data_dir=tmp_path
        )
        assert summary["ok"], [
            (ep["variant"], ep["violations"], ep["error"])
            for ep in summary["episodes"]
            if not ep["ok"]
        ]
        for ep in summary["episodes"]:
            assert ep["operations"] > 0
            # The proxies actually interfered, and the client recovered.
            meddling = sum(
                stats["chunks_dropped"]
                + stats["chunks_truncated"]
                + stats["garbage_injected"]
                + stats["resets"]
                for stats in ep["proxy"].values()
            )
            assert meddling > 0
            assert ep["reconnects"] > 0

    def test_single_episode_runner(self, tmp_path):
        result = run_tcp_episode(
            TcpChaosConfig(seed=9, crash_restart=False), "base", tmp_path
        )
        assert result.ok, (result.violations, result.error)
        assert set(result.verdicts) == set(ORACLES)
