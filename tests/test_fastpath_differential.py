"""Differential safety: the fast path must be observably equivalent to the
signed optimized protocol it replaces.

Two comparison regimes:

* **Single-writer workloads** are timing-insensitive — every read returns
  the writer's own latest value regardless of message schedules — so a
  ``fastpath`` run and an ``optimized`` run of the same seeded script must
  return *identical* per-operation results and converge every replica to
  the same Figure-2 durable state (signing logs excluded: the two variants
  legitimately sign different things).  We demand this under a clean
  network and under a lossy/duplicating/reordering one, and under both the
  HMAC and RSA signature schemes — the fast path's claim is a *cost*
  claim, never a behavioural one.

* **Concurrent workloads** diverge in interleaving (message timing differs
  between the variants), so there we demand the invariants that survive
  reordering: both runs linearize, both complete the same operations, and
  each run's replicas converge to one common state.
"""

from __future__ import annotations

import pytest

from repro.analysis import CostModel
from repro.net.simnet import LinkProfile
from repro.sim import build_cluster
from repro.sim.faults import FaultSchedule
from repro.sim.runner import ClusterOptions
from repro.spec import check_register_linearizable

SOLO_SCRIPT = {
    "alice": [
        ("write", ("a", 0)),
        ("read", None),
        ("write", ("a", 1)),
        ("write", ("a", 2)),
        ("read", None),
        ("write", ("a", 3)),
        ("read", None),
    ]
}

CONCURRENT_SCRIPTS = {
    "alice": [("write", ("a", i)) for i in range(4)] + [("read", None)],
    "bob": [("write", ("b", i)) for i in range(3)]
    + [("read", None), ("write", ("b", 99))],
}

PROFILES = {
    "reliable": LinkProfile(),
    "faulty": LinkProfile(
        min_delay=0.001,
        max_delay=0.01,
        drop_rate=0.1,
        duplicate_rate=0.05,
        reorder_rate=0.1,
    ),
}


def run_variant(variant, profile, scheme="hmac", scripts=SOLO_SCRIPT, seed=90):
    cluster = build_cluster(
        ClusterOptions(
            variant=variant,
            seed=seed,
            scheme=scheme,
            profile=PROFILES[profile],
        )
    )
    cluster.run_scripts(scripts, max_time=300)
    cluster.settle(2.0)
    return cluster


def per_client_results(cluster) -> dict:
    results: dict = {}
    for op in cluster.history.operations():
        results.setdefault(op.client, []).append((op.op, op.arg, op.result))
    return results


def fingerprints(cluster) -> dict:
    return {
        rid: replica.state_fingerprint(include_signing_logs=False)
        for rid, replica in cluster.replicas.items()
    }


@pytest.mark.parametrize("profile", ["reliable", "faulty"])
@pytest.mark.parametrize("scheme", ["hmac", "rsa"])
def test_fastpath_equivalent_to_optimized(profile, scheme):
    fast = run_variant("fastpath", profile, scheme)
    signed = run_variant("optimized", profile, scheme)

    # Same per-operation outcomes, op for op.
    assert per_client_results(fast) == per_client_results(signed)

    # Same converged durable state on every replica.
    assert fingerprints(fast) == fingerprints(signed)

    # Both runs linearize.
    for cluster in (fast, signed):
        report = check_register_linearizable(cluster.history)
        assert report.ok, report.violation

    # The equivalence is behavioural, not cost-wise: the fast run signs
    # only for reads (reply signatures + lazy vouches), never for writes.
    writes = sum(1 for k, _ in SOLO_SCRIPT["alice"] if k == "write")
    model = CostModel(fast.config.quorums)
    if profile == "reliable":
        assert (
            signed.config.scheme.stats.signs
            >= writes * model.write_signature_ops("optimized")
        )
        # Whatever the fast run signed, it was for reads (reply signatures
        # and lazy vouches) — never the per-write closed form.
        assert (
            fast.config.scheme.stats.signs
            < writes * model.write_signature_ops("optimized")
        )
    assert fast.config.scheme.stats.signs < signed.config.scheme.stats.signs


@pytest.mark.parametrize("profile", ["reliable", "faulty"])
def test_concurrent_runs_share_invariants(profile):
    fast = run_variant(
        "fastpath", profile, scripts=CONCURRENT_SCRIPTS, seed=91
    )
    signed = run_variant(
        "optimized", profile, scripts=CONCURRENT_SCRIPTS, seed=91
    )
    for cluster in (fast, signed):
        report = check_register_linearizable(cluster.history)
        assert report.ok, report.violation
        # Every scripted operation completed.
        ops = cluster.history.operations()
        assert len(ops) == sum(len(s) for s in CONCURRENT_SCRIPTS.values())
        assert all(op.complete for op in ops)
        # A quorum of replicas agree on the installed value (prepare-list
        # residue may legitimately differ replica to replica, and a
        # minority replica may miss the final broadcast).
        from collections import Counter

        states = Counter(
            (replica.write_ts, repr(replica.data))
            for replica in cluster.replicas.values()
        )
        assert states.most_common(1)[0][1] >= cluster.config.quorum_size
    # The same writes were issued in both runs (reads may interleave
    # differently; writes are fixed by the scripts).
    def writes_of(cluster):
        return {
            (op.client, op.arg)
            for op in cluster.history.operations()
            if op.op == "write"
        }

    assert writes_of(fast) == writes_of(signed)


def test_fallback_still_equivalent():
    """Even a run forced entirely onto the fallback path (fast messages
    blocked at f+1 replicas) produces the optimized run's outcomes."""

    def run(variant: str):
        cluster = build_cluster(
            ClusterOptions(variant=variant, seed=92, profile=PROFILES["faulty"])
        )
        if variant == "fastpath":
            schedule = FaultSchedule()
            for rid in cluster.config.quorums.replica_ids[:2]:
                schedule.block_kinds(0.0, rid, ("FAST-PREP", "FAST-WRITE"))
            cluster.install_faults(schedule)
        cluster.run_scripts(SOLO_SCRIPT, max_time=300)
        cluster.settle(2.0)
        return cluster

    fast, signed = run("fastpath"), run("optimized")
    assert fast.metrics.fallback_rate() == 1.0
    assert per_client_results(fast) == per_client_results(signed)
    # Fast preps that were abandoned mid-operation leave prepare-list
    # residue at the unblocked replicas, so full fingerprints legitimately
    # differ here; the *installed* state must still match exactly.
    def installed(cluster):
        return {
            rid: (
                replica.write_ts,
                repr(replica.data),
                replica.pcert.ts,
                replica.pcert.value_hash,
            )
            for rid, replica in cluster.replicas.items()
        }

    assert installed(fast) == installed(signed)
    for cluster in (fast, signed):
        report = check_register_linearizable(cluster.history)
        assert report.ok, report.violation
