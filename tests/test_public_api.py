"""The facade boundary holds: examples/tests/benchmarks import public paths.

Runs ``tools/check_public_api.py`` (same pattern as test_layering) and also
spot-checks the facade exports directly so a failure points at the name.
"""

from __future__ import annotations

import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_check_public_api_passes():
    result = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "check_public_api.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_facade_exports_resolve():
    import repro

    missing = [name for name in repro.__all__ if not hasattr(repro, name)]
    assert missing == []


def test_facade_covers_the_supported_entry_points():
    import repro

    for name in (
        "build_cluster",
        "ClusterOptions",
        "SystemConfig",
        "Variant",
        "Instrumentation",
        "BftBcClient",
        "OptimizedBftBcClient",
        "StrongBftBcClient",
        "BftBcReplica",
        "OptimizedBftBcReplica",
        "AsyncClient",
        "ReplicaServer",
    ):
        assert name in repro.__all__, name
