"""Tests for the deterministic virtual-time scheduler."""

from __future__ import annotations

import pytest

from repro.sim import Scheduler
from repro.errors import SimulationError


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sched = Scheduler()
        fired = []
        sched.call_later(0.3, lambda: fired.append("c"))
        sched.call_later(0.1, lambda: fired.append("a"))
        sched.call_later(0.2, lambda: fired.append("b"))
        sched.run_until_idle()
        assert fired == ["a", "b", "c"]

    def test_fifo_within_same_time(self):
        sched = Scheduler()
        fired = []
        for tag in range(5):
            sched.call_later(1.0, lambda t=tag: fired.append(t))
        sched.run_until_idle()
        assert fired == [0, 1, 2, 3, 4]

    def test_now_advances(self):
        sched = Scheduler()
        seen = []
        sched.call_later(2.5, lambda: seen.append(sched.now))
        sched.run_until_idle()
        assert seen == [2.5]

    def test_nested_scheduling(self):
        sched = Scheduler()
        fired = []
        def outer():
            fired.append("outer")
            sched.call_later(1.0, lambda: fired.append("inner"))
        sched.call_later(1.0, outer)
        sched.run_until_idle()
        assert fired == ["outer", "inner"]
        assert sched.now == 2.0

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Scheduler().call_later(-1, lambda: None)

    def test_call_at(self):
        sched = Scheduler()
        fired = []
        sched.call_at(5.0, lambda: fired.append(sched.now))
        sched.run_until_idle()
        assert fired == [5.0]

    def test_call_at_past_rejected(self):
        sched = Scheduler()
        sched.call_later(1.0, lambda: None)
        sched.run_until_idle()
        with pytest.raises(SimulationError):
            sched.call_at(0.5, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sched = Scheduler()
        fired = []
        handle = sched.call_later(1.0, lambda: fired.append("x"))
        handle.cancel()
        sched.run_until_idle()
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        sched = Scheduler()
        handle = sched.call_later(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        sched.run_until_idle()


class TestRunLimits:
    def test_until_bound(self):
        sched = Scheduler()
        fired = []
        sched.call_later(1.0, lambda: fired.append(1))
        sched.call_later(10.0, lambda: fired.append(2))
        sched.run(until=5.0)
        assert fired == [1]
        assert sched.now == 5.0
        assert sched.pending == 1

    def test_stop_when_predicate(self):
        sched = Scheduler()
        fired = []
        for i in range(10):
            sched.call_later(float(i + 1), lambda i=i: fired.append(i))
        sched.run(stop_when=lambda: len(fired) >= 3)
        assert len(fired) == 3

    def test_max_events(self):
        sched = Scheduler()
        def reschedule():
            sched.call_later(1.0, reschedule)
        sched.call_later(1.0, reschedule)
        sched.run(max_events=100)
        assert sched.events_processed == 100

    def test_run_until_idle_raises_on_runaway(self):
        sched = Scheduler()
        def reschedule():
            sched.call_later(1.0, reschedule)
        sched.call_later(1.0, reschedule)
        with pytest.raises(SimulationError):
            sched.run_until_idle(max_events=50)

    def test_step_returns_false_when_empty(self):
        assert Scheduler().step() is False

    def test_determinism(self):
        def run_once():
            sched = Scheduler()
            order = []
            sched.call_later(0.5, lambda: order.append("a"))
            sched.call_later(0.5, lambda: (order.append("b"), sched.call_later(0.1, lambda: order.append("c"))))
            sched.run_until_idle()
            return order
        assert run_once() == run_once()


class TestLazyCompaction:
    """Cancelled entries must not grow the heap without bound."""

    def test_cancelled_pending_counts_cancellations(self):
        sched = Scheduler()
        handles = [sched.call_later(1.0, lambda: None) for _ in range(10)]
        assert sched.cancelled_pending == 0
        for handle in handles[:4]:
            handle.cancel()
        assert sched.cancelled_pending == 4
        assert sched.live_pending == 6

    def test_double_cancel_counts_once(self):
        sched = Scheduler()
        handle = sched.call_later(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sched.cancelled_pending == 1

    def test_cancel_after_fire_does_not_skew_counter(self):
        sched = Scheduler()
        handle = sched.call_later(1.0, lambda: None)
        sched.run_until_idle()
        handle.cancel()  # stale handle: the event already left the queue
        assert sched.cancelled_pending == 0

    def test_compaction_bounds_heap_growth(self):
        sched = Scheduler()
        # Timer-churn pattern: arm far-future timers and cancel almost all,
        # like a retransmission timer cancelled on every completion.
        for _ in range(50):
            handles = [sched.call_later(100.0, lambda: None) for _ in range(100)]
            for handle in handles:
                handle.cancel()
        assert sched.compactions > 0
        # The heap holds at most a constant factor of the live events.
        assert sched.pending <= max(64, 2 * sched.live_pending + 1)
        assert sched.cancelled_pending <= sched.pending

    def test_compaction_preserves_order_and_live_events(self):
        sched = Scheduler()
        fired = []
        keep = []
        for i in range(200):
            handle = sched.call_later(float(i), lambda i=i: fired.append(i))
            if i % 10 == 0:
                keep.append(i)
            else:
                handle.cancel()
        sched.run_until_idle()
        assert fired == keep
        assert sched.cancelled_pending == 0

    def test_no_compaction_below_threshold(self):
        sched = Scheduler()
        handles = [sched.call_later(1.0, lambda: None) for _ in range(10)]
        for handle in handles:
            handle.cancel()
        # Tiny queues are never compacted; popping cleans them up instead.
        assert sched.compactions == 0
        sched.run_until_idle()
        assert sched.pending == 0
        assert sched.cancelled_pending == 0


class TestTimerStress:
    """Open-loop load scale: 10^5+ pending timers with heavy churn.

    The load harness arms one retransmission timer per in-flight operation
    and cancels it on completion; at production rates that is hundreds of
    thousands of arm/cancel cycles.  The heap must stay within a constant
    factor of the live timer count throughout.
    """

    def test_hundred_thousand_pending_timers(self):
        sched = Scheduler()
        fired = []
        handles = [
            sched.call_later(1.0 + (i % 977) * 0.001, lambda i=i: fired.append(i))
            for i in range(120_000)
        ]
        assert sched.pending >= 120_000
        assert sched.live_pending == 120_000
        sched.run_until_idle(max_events=500_000)
        assert len(fired) == 120_000
        assert sched.pending == 0

    def test_churn_keeps_heap_bounded(self):
        sched = Scheduler()
        survivors = []
        # 10 waves of 15k timers; ~93% cancelled per wave, like per-op
        # retransmission timers cancelled on completion.
        for wave in range(10):
            handles = [
                sched.call_later(
                    10.0 + wave + (i % 311) * 0.01,
                    lambda w=wave, i=i: survivors.append((w, i)),
                )
                for i in range(15_000)
            ]
            for index, handle in enumerate(handles):
                if index % 16 != 0:
                    handle.cancel()
        live = sched.live_pending
        assert live == 10 * (15_000 // 16 + 1)  # 938 kept per wave
        # Compaction fired and kept the heap near the live population,
        # not the 150k timers ever armed.
        assert sched.compactions > 0
        assert sched.pending <= max(64, 2 * live + 1)
        assert sched.cancelled_pending <= sched.pending
        sched.run_until_idle(max_events=500_000)
        assert len(survivors) == live
        assert sched.pending == 0
        assert sched.cancelled_pending == 0
