"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import main


class TestCli:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "base" in out and "optimized" in out and "strong" in out
        assert "yes" in out

    def test_attacks(self, capsys):
        assert main(["attacks"]) == 0
        out = capsys.readouterr().out
        assert "equivocation" in out
        assert "blocked" in out
        assert "bounded at 1" in out

    def test_compare(self, capsys):
        assert main(["compare"]) == 0
        out = capsys.readouterr().out
        assert "Phalanx" in out and "BQS" in out

    def test_simulate(self, capsys):
        code = main(
            ["simulate", "--clients", "2", "--ops", "4", "--loss", "0.05"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "linearizable: True" in out

    def test_simulate_optimized_reports_fast_path(self, capsys):
        assert main(["simulate", "--variant", "optimized", "--ops", "3"]) == 0
        assert "fast-path rate" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_f2(self, capsys):
        assert main(["--f", "2", "demo"]) == 0
