"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import main


class TestCli:
    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "base" in out and "optimized" in out and "strong" in out
        assert "yes" in out

    def test_attacks(self, capsys):
        assert main(["attacks"]) == 0
        out = capsys.readouterr().out
        assert "equivocation" in out
        assert "blocked" in out
        assert "bounded at 1" in out

    def test_compare(self, capsys):
        assert main(["compare"]) == 0
        out = capsys.readouterr().out
        assert "Phalanx" in out and "BQS" in out

    def test_simulate(self, capsys):
        code = main(
            ["simulate", "--clients", "2", "--ops", "4", "--loss", "0.05"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "linearizable: True" in out

    def test_simulate_optimized_reports_fast_path(self, capsys):
        assert main(["simulate", "--variant", "optimized", "--ops", "3"]) == 0
        assert "fast-path rate" in capsys.readouterr().out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_f2(self, capsys):
        assert main(["--f", "2", "demo"]) == 0


class TestChaosCli:
    def test_chaos_run_deterministic_stdout(self, capsys):
        assert main(["chaos", "run", "--seed", "5", "--episodes", "4"]) == 0
        first = capsys.readouterr().out
        assert main(["chaos", "run", "--seed", "5", "--episodes", "4"]) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "chaos campaign (seed 5, 4 episodes)" in first
        assert "violations: none" in first

    def test_chaos_run_json(self, capsys):
        import json

        assert main(
            ["chaos", "run", "--seed", "5", "--episodes", "3", "--json"]
        ) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["format"] == "repro-chaos-campaign/1"
        assert summary["episodes"] == 3
        assert summary["violations"] == 0

    def test_chaos_run_writes_artifacts_on_violation(self, capsys, tmp_path,
                                                     monkeypatch):
        """With an oracle forced red the campaign exits 1 and pins
        minimized artifacts."""
        import repro.chaos.engine as engine_mod

        real_battery = engine_mod.run_oracle_battery

        def rigged_battery(*args, **kwargs):
            from repro.chaos.oracles import OracleVerdict

            verdicts = dict(real_battery(*args, **kwargs))
            verdicts["lemma1"] = OracleVerdict(
                "lemma1", False, "rigged for the CLI test"
            )
            return verdicts

        monkeypatch.setattr(engine_mod, "run_oracle_battery", rigged_battery)
        code = main(
            [
                "chaos", "run", "--seed", "5", "--episodes", "2",
                "--variants", "base", "--artifact-dir", str(tmp_path),
            ]
        )
        assert code == 1
        assert "VIOLATIONS" in capsys.readouterr().out
        assert list(tmp_path.glob("chaos-seed5-ep*.json"))

    def test_chaos_replay_corpus(self, capsys):
        import pathlib

        corpus = sorted(
            (pathlib.Path(__file__).resolve().parent.parent / "traces" /
             "chaos").glob("*.json")
        )
        assert corpus
        assert main(["chaos", "replay", str(corpus[0])]) == 0
        assert "replay matches" in capsys.readouterr().out

    def test_chaos_tcp(self, capsys):
        assert main(["chaos", "tcp", "--seed", "6"]) == 0
        out = capsys.readouterr().out
        assert "TCP chaos campaign" in out
        for variant in ("base", "optimized", "strong"):
            assert variant in out


class TestLoadCli:
    def test_load_human_output(self, capsys):
        code = main(
            [
                "--seed", "3", "load", "--rate", "150", "--duration", "1",
                "--identities", "60", "--objects", "8",
                "--service-delay", "0.001",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "arrivals" in out
        assert "slo" in out
        assert "completion >=" in out  # floor metric printed as a floor

    def test_load_json_output(self, capsys):
        import json

        code = main(
            [
                "--seed", "3", "load", "--rate", "150", "--duration", "1",
                "--identities", "60", "--objects", "8",
                "--budget", "4", "--secret-cache", "32", "--json",
            ]
        )
        assert code == 0
        wire = json.loads(capsys.readouterr().out)
        assert wire["failed"] == 0
        assert wire["distinct_identities"] == 60
        assert wire["identity"]["client_state_spills"] > 0
        assert all(v["ok"] for v in wire["slos"])

    def test_load_burst_profile(self, capsys):
        code = main(
            [
                "--seed", "4", "load", "--rate", "120", "--duration", "1.5",
                "--identities", "50", "--burst", "3.0",
            ]
        )
        assert code == 0
        assert "arrivals" in capsys.readouterr().out


class TestStorageCli:
    def _record(self, root) -> None:
        from repro.sim.runner import build_cluster
        from repro.storage.filelog import FileLogStore

        cluster = build_cluster(
            f=1,
            seed=5,
            store_factory=lambda nid: FileLogStore(
                root / nid.replace(":", "_"), snapshot_interval=4
            ),
        )
        cluster.run_scripts(
            {"alice": [("write", ("v", i)) for i in range(6)]}, max_time=60
        )

    def test_scrub_clean_cluster_root(self, tmp_path, capsys):
        self._record(tmp_path)
        assert main(["storage", "scrub", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "scrub clean" in out
        assert out.count("clean") >= 4

    def test_scrub_detects_flipped_byte(self, tmp_path, capsys):
        import json

        self._record(tmp_path)
        wal = tmp_path / "replica_1" / "wal.bin"
        raw = bytearray(wal.read_bytes())
        raw[len(raw) // 2] ^= 0x80
        wal.write_bytes(bytes(raw))
        assert main(["storage", "scrub", str(tmp_path)]) == 1
        assert "CORRUPT" in capsys.readouterr().out
        # Single-store form, machine-readable.
        assert main(["storage", "scrub", str(tmp_path / "replica_1"), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        (entry,) = report.values()
        assert not entry["clean"]
        # The scrub never mutates: the damage is still there on re-read.
        assert wal.read_bytes() == bytes(raw)

    def test_scrub_missing_directory(self, tmp_path, capsys):
        assert main(["storage", "scrub", str(tmp_path / "nope")]) == 2
