"""Unit tests for ShardReplica configuration duties and the Reconfigurator.

These drive the sans-I/O objects directly (no network, no scheduler):
message in, reply out.  The integration-level behaviour under live traffic
is covered by tests/test_shard_cluster.py.
"""

from __future__ import annotations

import pytest

from repro.core import make_system
from repro.core.messages import ReadTsRequest, message_to_wire
from repro.core.multiobject import EpochStaleReply, ObjectMessage
from repro.errors import ProtocolError
from repro.shard import (
    ConfigSignReply,
    ConfigSignRequest,
    DirectoryReply,
    DirectoryRequest,
    InstallEpochAck,
    InstallEpochRequest,
    Reconfigurator,
    ShardConfig,
    ShardDirectory,
    ShardReplica,
    StateTransferReply,
    StateTransferRequest,
)

MEMBERS = tuple(f"replica:g{i}" for i in range(4))
SHARD = "shard:0"


def make_world(extra=("replica:gX", "replica:gY")):
    template = make_system(f=1, seed=b"shard-reconfig-test")
    for node in MEMBERS + tuple(extra):
        template.registry.register(node)
    genesis = ShardConfig(shard=SHARD, epoch=0, members=MEMBERS, f=1)
    return template, genesis


def make_replica(template, genesis, node_id, *, clock=None, **kwargs):
    directory = ShardDirectory({SHARD: genesis}, template.scheme)
    return ShardReplica(
        node_id, SHARD, directory, template, clock=clock, **kwargs
    )


def proposal_for(genesis, remove, add):
    members = tuple(add if m == remove else m for m in genesis.members)
    return ShardConfig(shard=SHARD, epoch=1, members=members, f=genesis.f)


class TestConfigSigning:
    def test_endorses_valid_successor(self):
        template, genesis = make_world()
        replica = make_replica(template, genesis, MEMBERS[0])
        proposal = proposal_for(genesis, MEMBERS[3], "replica:gX")
        reply = replica.handle(
            "admin:1", ConfigSignRequest(config=proposal.to_wire())
        )
        assert isinstance(reply, ConfigSignReply)
        assert reply.epoch == 1
        from repro.crypto.signatures import Signature

        signature = Signature.from_wire(reply.signature)
        assert signature.signer == MEMBERS[0]
        assert template.scheme.verify(signature, proposal.statement_bytes())

    def test_refuses_equivocation(self):
        """One successor per epoch: a second, different member set for the
        same epoch gets no signature — the rule quorum-signed entries'
        uniqueness rests on."""
        template, genesis = make_world()
        replica = make_replica(template, genesis, MEMBERS[0])
        first = proposal_for(genesis, MEMBERS[3], "replica:gX")
        second = proposal_for(genesis, MEMBERS[3], "replica:gY")
        assert replica.handle(
            "admin:1", ConfigSignRequest(config=first.to_wire())
        ) is not None
        assert replica.handle(
            "admin:2", ConfigSignRequest(config=second.to_wire())
        ) is None
        assert replica.sign_conflicts == 1
        # Re-asking for the *same* proposal is fine (idempotent retransmit).
        assert replica.handle(
            "admin:1", ConfigSignRequest(config=first.to_wire())
        ) is not None

    def test_refuses_epoch_gap_and_churn(self):
        template, genesis = make_world()
        replica = make_replica(template, genesis, MEMBERS[0])
        gap = ShardConfig(
            shard=SHARD,
            epoch=2,
            members=proposal_for(genesis, MEMBERS[3], "replica:gX").members,
            f=1,
        )
        assert replica.handle(
            "admin:1", ConfigSignRequest(config=gap.to_wire())
        ) is None
        churn = ShardConfig(
            shard=SHARD,
            epoch=1,
            members=(MEMBERS[0], MEMBERS[1], "replica:gX", "replica:gY"),
            f=1,
        )
        assert replica.handle(
            "admin:1", ConfigSignRequest(config=churn.to_wire())
        ) is None

    def test_refuses_garbage(self):
        template, genesis = make_world()
        replica = make_replica(template, genesis, MEMBERS[0])
        assert replica.handle(
            "admin:1", ConfigSignRequest(config={"nope": 1})
        ) is None


class TestEpochInstall:
    def _signed_entry(self, template, genesis, proposal):
        from repro.shard import DirectoryEntry

        return DirectoryEntry(
            config=proposal,
            signatures=tuple(
                template.scheme.sign(m, proposal.statement_bytes())
                for m in MEMBERS[:3]
            ),
        )

    def test_adopts_and_acks(self):
        template, genesis = make_world()
        replica = make_replica(template, genesis, MEMBERS[0])
        proposal = proposal_for(genesis, MEMBERS[3], "replica:gX")
        entry = self._signed_entry(template, genesis, proposal)
        ack = replica.handle(
            "admin:1", InstallEpochRequest(entry=entry.to_wire())
        )
        assert isinstance(ack, InstallEpochAck)
        assert ack.epoch == 1
        assert replica.epoch == 1
        assert not replica.retired
        # Idempotent re-install re-acks without changing anything.
        again = replica.handle(
            "admin:1", InstallEpochRequest(entry=entry.to_wire())
        )
        assert isinstance(again, InstallEpochAck) and again.epoch == 1

    def test_removed_member_retires_and_rebuffs_traffic(self):
        template, genesis = make_world()
        replica = make_replica(template, genesis, MEMBERS[3])
        proposal = proposal_for(genesis, MEMBERS[3], "replica:gX")
        entry = self._signed_entry(template, genesis, proposal)
        replica.handle("admin:1", InstallEpochRequest(entry=entry.to_wire()))
        assert replica.retired
        envelope = ObjectMessage(
            obj="x",
            payload=message_to_wire(ReadTsRequest(nonce=b"\x01" * 16)),
            epoch=1,
        )
        reply = replica.handle("client:kv", envelope)
        assert isinstance(reply, EpochStaleReply)

    def test_unsigned_entry_ignored(self):
        template, genesis = make_world()
        replica = make_replica(template, genesis, MEMBERS[0])
        from repro.shard import DirectoryEntry

        proposal = proposal_for(genesis, MEMBERS[3], "replica:gX")
        entry = DirectoryEntry(
            config=proposal,
            signatures=(
                template.scheme.sign(MEMBERS[0], proposal.statement_bytes()),
            ),
        )
        assert replica.handle(
            "admin:1", InstallEpochRequest(entry=entry.to_wire())
        ) is None
        assert replica.epoch == 0

    def test_handoff_window_closes_on_the_clock(self):
        template, genesis = make_world()
        now = [0.0]
        replica = make_replica(
            template, genesis, MEMBERS[0], clock=lambda: now[0], handoff=0.5
        )
        proposal = proposal_for(genesis, MEMBERS[3], "replica:gX")
        entry = self._signed_entry(template, genesis, proposal)
        replica.handle("admin:1", InstallEpochRequest(entry=entry.to_wire()))

        def probe(epoch):
            """A garbage-payload envelope: epoch gate first, then discard."""
            return replica.handle(
                "client:kv",
                ObjectMessage(obj="x", payload={"kind": "?"}, epoch=epoch),
            )

        # Inside the window the superseded tag still passes the gate (the
        # envelope then dies on its garbage payload, without a stale reply).
        assert probe(0) is None
        discards = replica.inner.envelope_discards
        assert discards >= 1
        # A genuinely foreign epoch is rebuffed even inside the window.
        assert isinstance(probe(7), EpochStaleReply)
        # Past the deadline the old tag is rebuffed too.
        now[0] = 1.0
        reply = probe(0)
        assert isinstance(reply, EpochStaleReply)
        assert reply.epoch == 1


class TestStateTransfer:
    def test_serves_directory_and_transfer(self):
        template, genesis = make_world()
        replica = make_replica(template, genesis, MEMBERS[0])
        reply = replica.handle("anyone", DirectoryRequest(shard=SHARD))
        assert isinstance(reply, DirectoryReply)
        assert reply.entries == ()  # nothing beyond genesis yet
        xfer = replica.handle(
            "replica:gX", StateTransferRequest(shard=SHARD, nonce=b"n" * 16)
        )
        assert isinstance(xfer, StateTransferReply)
        assert replica.transfers_served == 1

    def test_joiner_blocks_traffic_until_ready(self):
        template, genesis = make_world()
        joiner = make_replica(
            template, genesis, "replica:gX", bootstrap_from=genesis
        )
        assert not joiner.ready
        envelope = ObjectMessage(
            obj="x",
            payload=message_to_wire(ReadTsRequest(nonce=b"\x01" * 16)),
            epoch=0,
        )
        assert joiner.handle("client:kv", envelope) is None
        assert joiner.not_ready_drops == 1
        # A not-ready replica also refuses to endorse or serve transfers.
        proposal = proposal_for(genesis, MEMBERS[3], "replica:gY")
        assert joiner.handle(
            "admin:1", ConfigSignRequest(config=proposal.to_wire())
        ) is None
        assert joiner.handle(
            "replica:gY", StateTransferRequest(shard=SHARD, nonce=b"n" * 16)
        ) is None

    def test_bootstrap_validates_and_adopts(self):
        template, genesis = make_world()
        serving = make_replica(template, genesis, MEMBERS[0])
        snapshot = serving.inner.object_state("x")
        good = {
            "x": {
                "snapshot": snapshot.snapshot_wire(),
                "fingerprint": snapshot.state_fingerprint(),
            }
        }
        tampered = {
            "x": {
                "snapshot": snapshot.snapshot_wire(),
                "fingerprint": b"\x00" * 32,
            }
        }
        joiner = make_replica(
            template, genesis, "replica:gX", bootstrap_from=genesis
        )
        sends = joiner.begin_bootstrap()
        assert sorted(s.dest for s in sends) == sorted(MEMBERS)
        nonce = sends[0].message.nonce
        # Quorum of replies: one tampered (rejected), two good (adopted).
        for peer, objects in (
            (MEMBERS[0], tampered),
            (MEMBERS[1], good),
            (MEMBERS[2], good),
        ):
            joiner.handle(
                peer,
                StateTransferReply(
                    shard=SHARD, nonce=nonce, epoch=0, objects=objects
                ),
            )
        assert joiner.ready
        assert joiner.bootstrap_rejects >= 1
        assert (
            joiner.inner.object_state("x").state_fingerprint()
            == snapshot.state_fingerprint()
        )

    def test_bootstrap_ignores_wrong_nonce_and_strangers(self):
        template, genesis = make_world()
        serving = make_replica(template, genesis, MEMBERS[0])
        state = serving.inner.object_state("x")
        objects = {
            "x": {
                "snapshot": state.snapshot_wire(),
                "fingerprint": state.state_fingerprint(),
            }
        }
        joiner = make_replica(
            template, genesis, "replica:gX", bootstrap_from=genesis
        )
        nonce = joiner.begin_bootstrap()[0].message.nonce
        joiner.handle(
            MEMBERS[0],
            StateTransferReply(
                shard=SHARD, nonce=b"z" * 16, epoch=0, objects=objects
            ),
        )
        joiner.handle(
            "replica:gY",  # not an old member
            StateTransferReply(
                shard=SHARD, nonce=nonce, epoch=0, objects=objects
            ),
        )
        assert not joiner.ready

    def test_non_joiner_cannot_bootstrap(self):
        template, genesis = make_world()
        replica = make_replica(template, genesis, MEMBERS[0])
        with pytest.raises(ProtocolError):
            replica.begin_bootstrap()


class TestReconfigurator:
    def _world(self):
        template, genesis = make_world()
        replicas = {
            m: make_replica(template, genesis, m) for m in MEMBERS
        }
        joiner = make_replica(
            template, genesis, "replica:gX", bootstrap_from=genesis
        )
        joiner.ready = True  # unit test: skip the transfer
        replicas["replica:gX"] = joiner
        return template, genesis, replicas

    def test_happy_path_replace(self):
        template, genesis, replicas = self._world()
        directory = ShardDirectory({SHARD: genesis}, template.scheme)
        rec = Reconfigurator("admin:1", SHARD, directory, template)
        sends = rec.begin_replace(MEMBERS[3], "replica:gX")
        # Sign requests go to every old member except the one leaving.
        assert sorted(s.dest for s in sends) == sorted(MEMBERS[:3])
        # Manual pump: deliver sign requests, feed replies, then installs.
        pending = sends
        while pending and not rec.done:
            batch, pending = pending, []
            for send in batch:
                replica = replicas.get(send.dest)
                if replica is None:
                    continue
                reply = replica.handle("admin:1", send.message)
                if reply is not None:
                    pending.extend(rec.deliver(send.dest, reply))
        assert rec.done
        assert directory.epoch(SHARD) == 1
        assert rec.entry is not None
        assert rec.entry.config.members == (
            MEMBERS[0],
            MEMBERS[1],
            MEMBERS[2],
            "replica:gX",
        )
        # Old members adopted too (they were install targets).
        assert replicas[MEMBERS[0]].epoch == 1
        assert replicas[MEMBERS[3]].retired

    def test_begin_replace_validates_membership(self):
        template, genesis, replicas = self._world()
        directory = ShardDirectory({SHARD: genesis}, template.scheme)
        rec = Reconfigurator("admin:1", SHARD, directory, template)
        with pytest.raises(ProtocolError):
            rec.begin_replace("replica:gY", "replica:gX")  # not a member
        with pytest.raises(ProtocolError):
            rec.begin_replace(MEMBERS[3], MEMBERS[0])  # already a member

    def test_racing_reconfigurators_cannot_both_win(self):
        """Each correct member signs one successor per epoch, so two racing
        proposals with different member sets cannot both reach a quorum."""
        template, genesis, replicas = self._world()
        template.registry.register("replica:gY")
        d1 = ShardDirectory({SHARD: genesis}, template.scheme)
        d2 = ShardDirectory({SHARD: genesis}, template.scheme)
        rec1 = Reconfigurator("admin:1", SHARD, d1, template)
        rec2 = Reconfigurator("admin:2", SHARD, d2, template)
        sends1 = rec1.begin_replace(MEMBERS[3], "replica:gX")
        sends2 = rec2.begin_replace(MEMBERS[3], "replica:gY")
        # rec1's requests all land first: it gathers the full quorum.
        for send in sends1:
            reply = replicas[send.dest].handle("admin:1", send.message)
            if reply is not None:
                rec1.deliver(send.dest, reply)
        assert rec1.phase == "installing"
        # rec2 now finds every signer already committed to rec1's proposal.
        for send in sends2:
            reply = replicas[send.dest].handle("admin:2", send.message)
            assert reply is None
        assert rec2.phase == "signing"
        assert not rec2.done
        assert sum(r.sign_conflicts for r in replicas.values()) == 3

    def test_bad_sign_replies_ignored(self):
        template, genesis, replicas = self._world()
        directory = ShardDirectory({SHARD: genesis}, template.scheme)
        rec = Reconfigurator("admin:1", SHARD, directory, template)
        rec.begin_replace(MEMBERS[3], "replica:gX")
        good = replicas[MEMBERS[0]].handle(
            "admin:1",
            ConfigSignRequest(config=rec._proposal.to_wire()),
        )
        # Wrong epoch, stranger sender, garbage signature: all dropped.
        rec.deliver(MEMBERS[0], ConfigSignReply(
            shard=SHARD, epoch=9, signature=good.signature
        ))
        rec.deliver("replica:gY", good)
        rec.deliver(MEMBERS[0], ConfigSignReply(
            shard=SHARD, epoch=1, signature={"greetings": 1}
        ))
        assert rec._signatures == {}
        # The genuine reply from the genuine sender counts once.
        rec.deliver(MEMBERS[0], good)
        rec.deliver(MEMBERS[0], good)
        assert set(rec._signatures) == {MEMBERS[0]}
