"""Connection-failure recovery in the asyncio transport."""

from __future__ import annotations

import asyncio

import pytest

from repro.core import BftBcClient, BftBcReplica, make_system
from repro.errors import NetworkError
from repro.net.asyncio_transport import AsyncClient, ReplicaServer


def run(coro):
    return asyncio.run(coro)


class TestReconnection:
    def test_replica_restart_mid_session(self):
        """A replica dies after the first write and comes back (same state
        machine, new socket) — the client reconnects lazily and continues."""

        async def main():
            config = make_system(f=1, seed=b"reconn-1")
            replicas = {
                rid: BftBcReplica(rid, config)
                for rid in config.quorums.replica_ids
            }
            servers = {}
            addrs = {}
            for rid, replica in replicas.items():
                server = ReplicaServer(replica)
                host, port = await server.start()
                servers[rid] = server
                addrs[rid] = (host, port)
            client = AsyncClient(
                BftBcClient("client:a", config), addrs, retransmit_interval=0.05
            )
            await client.connect()
            await client.write(("client:a", 1, None))

            # Kill replica:0's listener, then restart it on the SAME port.
            host, port = addrs["replica:0"]
            await servers["replica:0"].stop()
            await asyncio.sleep(0.05)
            servers["replica:0"] = ReplicaServer(
                replicas["replica:0"], host=host, port=port
            )
            await servers["replica:0"].start()

            ts = await client.write(("client:a", 2, None))
            assert ts.val == 2
            value = await client.read()
            assert value == ("client:a", 2, None)
            await client.close()
            for server in servers.values():
                await server.stop()

        run(main())

    def test_connect_requires_at_least_one_replica(self):
        async def main():
            config = make_system(f=1, seed=b"reconn-2")
            addrs = {
                rid: ("127.0.0.1", 1)  # nothing listens on port 1
                for rid in config.quorums.replica_ids
            }
            client = AsyncClient(BftBcClient("client:a", config), addrs)
            with pytest.raises(NetworkError):
                await client.connect()

        run(main())

    def test_half_open_connections_tolerated(self):
        """Sends into connections the peer already closed count as loss;
        retransmission routes around them."""

        async def main():
            config = make_system(f=1, seed=b"reconn-3")
            servers, addrs = {}, {}
            for rid in config.quorums.replica_ids:
                server = ReplicaServer(BftBcReplica(rid, config))
                host, port = await server.start()
                servers[rid] = server
                addrs[rid] = (host, port)
            client = AsyncClient(
                BftBcClient("client:a", config), addrs, retransmit_interval=0.05
            )
            await client.connect()
            # Close one server *without* the client noticing yet.
            await servers["replica:3"].stop()
            ts = await client.write(("client:a", 1, None))
            assert ts.val == 1
            await client.close()
            for rid, server in servers.items():
                if rid != "replica:3":
                    await server.stop()

        run(main())
