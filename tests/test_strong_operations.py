"""Unit tests for the §7 strong write operation (justify certificates)."""

from __future__ import annotations

import pytest

from repro.core import StrongBftBcClient, Timestamp, make_system
from repro.errors import ProtocolError

from tests.helpers import DirectDriver, ProtocolKit, make_replicas


@pytest.fixture
def config():
    return make_system(f=1, seed=b"strong-ops-test", strong=True)


@pytest.fixture
def replicas(config):
    return make_replicas(config)


@pytest.fixture
def driver(config, replicas):
    client = StrongBftBcClient("client:alice", config)
    return DirectDriver(client, replicas)


class TestStrongWrites:
    def test_requires_strong_config(self):
        plain = make_system(f=1, seed=b"plain")
        with pytest.raises(ProtocolError):
            StrongBftBcClient("client:x", plain)

    def test_agreeing_phase1_takes_three_phases(self, driver):
        op = driver.run_write(("v", 1))
        assert op.done
        assert op.phases == 3  # vouches supplied the justify certificate
        assert op.result == Timestamp(1, "client:alice")

    def test_sequential_strong_writes(self, driver, replicas):
        for seq in range(1, 4):
            op = driver.run_write(("v", seq))
            assert op.done
        assert all(r.data == ("v", 3) for r in replicas)

    def test_divergent_phase1_triggers_fetch_and_write_back(
        self, driver, replicas, config
    ):
        """Mixed phase-1 timestamps force the read + write-back detour."""
        kit = ProtocolKit(config, client="client:bob")
        # bob completes a write at replicas 1..3 only (replica 0 stale).
        others = replicas[1:]
        p_max = kit.read_ts(others)
        justify_sigs = []
        from repro.core.messages import ReadTsRequest

        for replica in others:
            reply = replica.handle(kit.client, ReadTsRequest(nonce=kit.nonce()))
            justify_sigs.append(reply.ts_vouch)
        from repro.core.certificates import WriteCertificate

        justify = WriteCertificate(ts=p_max.ts, signatures=tuple(justify_sigs))
        request = kit.prepare_request(
            p_max, p_max.ts.succ(kit.client), ("w", 1), justify_cert=justify
        )
        cert = kit.collect_prepare(others, request)
        assert cert is not None
        kit.collect_write(others, kit.write_request(("w", 1), cert))
        assert replicas[0].data is None  # stale

        op = driver.run_write(("v", 1))
        assert op.done
        assert op.phases == 5  # read-ts, fetch, write-back, prepare, write
        assert op.result > Timestamp(1, "client:bob")
        # The write-back repaired the stale replica before the new write.
        assert replicas[0].data == ("v", 1)

    def test_divergence_without_write_back_targets(self, driver, replicas, config):
        """If f+1 replicas already vouch for the max ts after the fetch, no
        write-back round is needed beyond collecting vouches."""
        op1 = driver.run_write(("v", 1))
        assert op1.done
        op2 = driver.run_write(("v", 2))
        assert op2.done and op2.phases == 3

    def test_strong_write_with_crashed_replica(self, driver, replicas):
        driver.drop(replicas[3].node_id)
        op = driver.run_write(("v", 1))
        assert op.done

    def test_reads_unaffected_by_strong_mode(self, driver):
        driver.run_write(("v", 1))
        op = driver.run_read()
        assert op.result == ("v", 1)
        assert op.phases == 1
