"""Batch signature verification: ``Verifier.verify_batch`` and the
prevalidation pass (E22's per-write amortization).

The unit tests pin the counter semantics — one amortized pass is one
``verify_calls`` entry however many signatures it covers, dedup and the memo
absorb repeats, bad signatures stay bad — and the differential test drives a
full base write with and without prevalidation, asserting the measured
passes match the :class:`~repro.analysis.costs.CostModel` closed forms and
clear the E22 acceptance floor (>= 2x fewer).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.analysis.costs import CostModel
from repro.core.batching import batch_signature_checks, prevalidate_batch
from repro.core.client import BftBcClient
from repro.core.config import make_system
from repro.core.replica import BftBcReplica
from repro.crypto.signatures import Signature


def _signed_checks(config, signer: str, count: int):
    """``count`` distinct (signature, statement) pairs signed by ``signer``."""
    checks = []
    for i in range(count):
        statement = ("stmt", signer, i)
        checks.append((config.scheme.sign_statement(signer, statement), statement))
    return checks


@pytest.fixture
def config():
    cfg = make_system(1, seed=b"batch-verify-test")
    cfg.registry.register("c1")
    return cfg


class TestVerifyBatch:
    def test_one_pass_one_verify_call(self, config):
        checks = _signed_checks(config, "c1", 6)
        stats = config.verifier.stats
        verdicts = config.verifier.verify_batch(checks)
        assert verdicts == [True] * 6
        assert stats.batch_calls == 1
        assert stats.batched_signatures == 6
        assert stats.verify_calls == 1  # six backend verifies, one pass
        assert stats.backend_verifies == 6

    def test_second_pass_is_all_memo_hits(self, config):
        checks = _signed_checks(config, "c1", 4)
        config.verifier.verify_batch(checks)
        stats = config.verifier.stats
        before = (stats.verify_calls, stats.backend_verifies)
        assert config.verifier.verify_batch(checks) == [True] * 4
        # No backend work happened, so the pass does not count.
        assert (stats.verify_calls, stats.backend_verifies) == before
        # Individual re-verification afterwards is also free.
        sig, statement = checks[0]
        assert config.verifier.verify_statement(sig, statement)
        assert (stats.verify_calls, stats.backend_verifies) == before

    def test_duplicate_checks_dedup_to_one_backend_verify(self, config):
        sig, statement = _signed_checks(config, "c1", 1)[0]
        stats = config.verifier.stats
        verdicts = config.verifier.verify_batch([(sig, statement)] * 5)
        assert verdicts == [True] * 5
        assert stats.backend_verifies == 1
        assert stats.verify_calls == 1

    def test_bad_signature_stays_bad(self, config):
        checks = _signed_checks(config, "c1", 3)
        good_sig, _ = checks[0]
        forged = (
            Signature(signer="c1", value=b"\x00" * len(good_sig.value)),
            ("stmt", "c1", 0),
        )
        verdicts = config.verifier.verify_batch([forged] + checks[1:])
        assert verdicts == [False, True, True]
        # The False verdict is memoized too: the handler's own check fails
        # without another backend trip.
        stats = config.verifier.stats
        before = stats.backend_verifies
        assert not config.verifier.verify_statement(*forged)
        assert stats.backend_verifies == before

    def test_executor_fan_out(self, config):
        checks = _signed_checks(config, "c1", 8)
        with ThreadPoolExecutor(max_workers=2) as pool:
            config.verifier.set_batch_executor(pool, min_misses=2)
            try:
                verdicts = config.verifier.verify_batch(checks)
            finally:
                config.verifier.set_batch_executor(None)
        assert verdicts == [True] * 8
        stats = config.verifier.stats
        assert stats.batch_pool_tasks == 8
        assert stats.verify_calls == 1

    def test_small_batches_stay_inline(self, config):
        checks = _signed_checks(config, "c1", 2)
        with ThreadPoolExecutor(max_workers=2) as pool:
            config.verifier.set_batch_executor(pool, min_misses=4)
            try:
                config.verifier.verify_batch(checks)
            finally:
                config.verifier.set_batch_executor(None)
        assert config.verifier.stats.batch_pool_tasks == 0


class TestPrevalidateBatch:
    def test_trivial_batches_are_skipped(self, config):
        assert prevalidate_batch(config.verifier, []) == 0
        assert config.verifier.stats.batch_calls == 0

    def test_unextractable_messages_contribute_nothing(self, config):
        checks, certs = batch_signature_checks([object()])
        assert checks == [] and certs == []


def _run_write(prevalidate: bool):
    """One steady-state base write, counting verification passes.

    Mirrors the TCP deployment's shape: each replica prevalidates the
    frames it received (here one per round), and the client prevalidates
    each round's replies as one batch before delivering them.  The *first*
    write warms certificates shared across writes; the second write is the
    steady state the closed forms model.
    """
    config = make_system(1, seed=b"bv-differential")
    config.registry.register("c1")
    replicas = {
        node_id: BftBcReplica(node_id, config)
        for node_id in config.quorums.replica_ids
    }
    client = BftBcClient("c1", config)

    def pump(sends):
        while sends:
            replies = []
            for send in sends:
                if prevalidate:
                    replicas[send.dest].prevalidate([send.message])
                reply = replicas[send.dest].handle("c1", send.message)
                if reply is not None:
                    replies.append((send.dest, reply))
            if prevalidate:
                prevalidate_batch(config.verifier, [r for _, r in replies])
            sends = [
                out
                for dest, reply in replies
                for out in client.deliver(dest, reply)
            ]

    pump(client.begin_write(b"v1"))
    assert not client.busy
    steady_start = config.verifier.stats.verify_calls
    pump(client.begin_write(b"v2"))
    assert not client.busy
    return config.verifier.stats.verify_calls - steady_start


class TestE22Differential:
    def test_verify_calls_match_closed_forms(self):
        unbatched = _run_write(prevalidate=False)
        batched = _run_write(prevalidate=True)
        model = CostModel(make_system(1, seed=b"x").quorums)
        assert unbatched == model.write_verify_calls_unbatched() == 11
        assert batched == model.write_verify_calls_batched() == 5
        # The E22 acceptance floor: batching at least halves the passes.
        assert unbatched / batched >= 2.0
        assert model.batch_verify_reduction() == pytest.approx(unbatched / batched)

    def test_reduction_scales_with_pipeline_depth(self):
        model = CostModel(make_system(1, seed=b"x").quorums)
        assert model.batch_verify_reduction(in_flight=4) == pytest.approx(
            4 * model.batch_verify_reduction()
        )
        with pytest.raises(ValueError):
            model.write_verify_calls_batched(in_flight=0)
