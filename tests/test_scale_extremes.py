"""Degenerate and large configurations: f = 0 and f = 6."""

from __future__ import annotations

import pytest

from repro import build_cluster
from repro.core import QuorumSystem
from repro.sim import read_script, write_script
from repro.spec import check_register_linearizable


class TestFZero:
    """f = 0: a single replica, quorums of one.  The protocol degenerates
    gracefully — still three phases, still certificates (of one signature)."""

    def test_shape(self):
        qs = QuorumSystem.bft_bc(0)
        assert qs.n == 1 and qs.quorum_size == 1
        assert qs.min_intersection == 1

    @pytest.mark.parametrize("variant", ["base", "optimized", "strong"])
    def test_variants_work(self, variant):
        cluster = build_cluster(f=0, variant=variant, seed=500)
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 3) + read_script(2))
        cluster.run(max_time=60)
        assert node.client.last_result == ("client:w", 2, None)
        report = check_register_linearizable(cluster.history)
        assert report.ok, report.violation

    def test_concurrent_clients_f0(self):
        cluster = build_cluster(f=0, seed=501)
        cluster.run_scripts(
            {
                "a": write_script("client:a", 3),
                "b": write_script("client:b", 3) + read_script(1),
            },
            max_time=60,
        )
        report = check_register_linearizable(cluster.history)
        assert report.ok, report.violation


class TestLargeF:
    def test_f6_cluster_runs(self):
        cluster = build_cluster(f=6, seed=502)  # 19 replicas, quorums of 13
        assert cluster.config.n == 19
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 2) + read_script(1))
        cluster.run(max_time=120)
        assert node.client.last_result == ("client:w", 1, None)

    def test_f4_with_four_crashed_replicas(self):
        from repro.byzantine import CrashedReplica

        cluster = build_cluster(
            f=4,
            seed=503,
            replica_overrides={i: CrashedReplica for i in range(4)},
        )
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 2) + read_script(1))
        cluster.run(max_time=120)
        assert node.client.last_result == ("client:w", 1, None)

    def test_f4_with_five_crashed_stalls(self):
        """One more crash than the budget: no quorum, liveness is lost
        (safety is not — nothing wrong is ever returned)."""
        from repro.byzantine import CrashedReplica
        from repro.errors import OperationFailedError

        cluster = build_cluster(
            f=4,
            seed=504,
            replica_overrides={i: CrashedReplica for i in range(5)},
        )
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 1))
        with pytest.raises(OperationFailedError):
            cluster.run(max_time=1.0)
