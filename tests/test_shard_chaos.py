"""Unit tests for sharded chaos episodes and their replayable artifacts."""

from __future__ import annotations

import pytest

from repro.chaos import (
    ShardEpisodePlan,
    replay_shard_artifact,
    run_shard_episode,
    save_shard_artifact,
)
from repro.chaos.shard import SHARD_ARTIFACT_FORMAT, load_shard_artifact
from repro.errors import SimulationError


class TestPlanSerialisation:
    def test_json_round_trip(self):
        plan = ShardEpisodePlan(
            seed=9,
            shards=2,
            clients=3,
            ops_per_client=7,
            profile={"drop_rate": 0.1},
            reconfigurations=[
                {"time": 0.5, "shard": "shard:0", "remove": "replica:s0n0",
                 "add": "replica:s0nX", "crash_old": True}
            ],
            faults=[{"kind": "partition", "time": 0.2, "duration": 0.1,
                     "group": ["replica:s0n1"]}],
        )
        again = ShardEpisodePlan.from_json(plan.to_json())
        assert again == plan

    def test_from_json_rejects_unknown_fields(self):
        data = ShardEpisodePlan(seed=1).to_json()
        data["surprise"] = True
        with pytest.raises(SimulationError):
            ShardEpisodePlan.from_json(data)

    def test_from_json_rejects_wrong_format(self):
        data = ShardEpisodePlan(seed=1).to_json()
        data["format"] = "repro-chaos/1"
        with pytest.raises(SimulationError):
            ShardEpisodePlan.from_json(data)


class TestEpisodes:
    def test_clean_episode_all_green(self):
        plan = ShardEpisodePlan(
            seed=4, shards=2, clients=2, ops_per_client=10, objects=6
        )
        result = run_shard_episode(plan)
        assert result.ok, result.violated
        assert result.stats["ops"] == plan.clients * plan.ops_per_client
        assert set(result.stats["epochs"]) == {"shard:0", "shard:1"}
        assert all(epoch == 0 for epoch in result.stats["epochs"].values())

    def test_reconfiguration_episode_advances_epoch(self):
        plan = ShardEpisodePlan(
            seed=5,
            shards=2,
            clients=2,
            ops_per_client=30,
            objects=8,
            handoff=0.2,
            reconfigurations=[
                {"time": 0.1, "shard": "shard:0", "remove": "replica:s0n1",
                 "add": "replica:s0nX", "crash_old": True}
            ],
        )
        result = run_shard_episode(plan)
        assert result.ok, result.violated
        assert result.stats["epochs"]["shard:0"] == 1
        assert result.stats["epochs"]["shard:1"] == 0
        assert "epoch-agreement" in result.verdicts


class TestArtifacts:
    def test_save_load_replay_round_trip(self, tmp_path):
        plan = ShardEpisodePlan(
            seed=6, shards=2, clients=2, ops_per_client=8, objects=6
        )
        result = run_shard_episode(plan)
        assert result.ok
        verdicts = {name: v.ok for name, v in result.verdicts.items()}
        path = tmp_path / "episode.json"
        payload = save_shard_artifact(path, plan, verdicts, note="round trip")
        assert payload["format"] == SHARD_ARTIFACT_FORMAT

        loaded_plan, expected, note = load_shard_artifact(path)
        assert loaded_plan == plan
        assert expected == verdicts
        assert note == "round trip"

        outcome = replay_shard_artifact(path)
        assert outcome.matches, (outcome.expected, outcome.actual)
        assert outcome.result.ok

    def test_load_rejects_single_group_artifact(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "repro-chaos-artifact/1"}', encoding="utf-8")
        with pytest.raises(SimulationError):
            load_shard_artifact(path)
