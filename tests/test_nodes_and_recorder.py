"""Tests for the ClientNode driver and the history recorder."""

from __future__ import annotations

import pytest

from repro import build_cluster
from repro.sim import HistoryRecorder, Scheduler, read_script, write_script
from repro.spec import Invocation, Response, StopEvent


class TestHistoryRecorder:
    def test_records_virtual_time(self):
        scheduler = Scheduler()
        recorder = HistoryRecorder(scheduler)
        scheduler.call_later(1.5, lambda: recorder.record_invocation("c", "write", 1))
        scheduler.call_later(2.5, lambda: recorder.record_response("c", "ok"))
        scheduler.run_until_idle()
        events = recorder.history.events
        assert isinstance(events[0], Invocation) and events[0].time == 1.5
        assert isinstance(events[1], Response) and events[1].time == 2.5

    def test_records_stop_events(self):
        scheduler = Scheduler()
        recorder = HistoryRecorder(scheduler)
        recorder.record_stop("client:bad")
        assert isinstance(recorder.history.events[0], StopEvent)

    def test_object_name(self):
        scheduler = Scheduler()
        recorder = HistoryRecorder(scheduler, obj="register-7")
        recorder.record_invocation("c", "read")
        assert recorder.history.events[0].obj == "register-7"


class TestClientNodeDriving:
    def test_think_time_spaces_operations(self):
        cluster = build_cluster(f=1, seed=90)
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 3), think_time=0.5)
        cluster.run(max_time=60)
        ops = cluster.history.operations()
        gaps = [
            ops[i + 1].invoked_at - ops[i].responded_at for i in range(len(ops) - 1)
        ]
        assert all(gap >= 0.5 for gap in gaps)

    def test_start_delay(self):
        cluster = build_cluster(f=1, seed=91)
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 1), start_delay=2.0)
        cluster.run(max_time=60)
        assert cluster.history.operations()[0].invoked_at >= 2.0

    def test_on_done_callback(self):
        cluster = build_cluster(f=1, seed=92)
        node = cluster.add_client("w")
        fired = []
        node.run_script(write_script("client:w", 1), on_done=lambda: fired.append(1))
        cluster.run(max_time=60)
        assert fired == [1]

    def test_empty_script_is_immediately_done(self):
        cluster = build_cluster(f=1, seed=93)
        node = cluster.add_client("w")
        node.run_script([])
        assert node.done

    def test_unknown_step_kind_rejected(self):
        cluster = build_cluster(f=1, seed=94)
        node = cluster.add_client("w")
        node.run_script([("delete", None)])
        with pytest.raises(ValueError):
            cluster.run(max_time=5)

    def test_retransmit_ticks_counted_under_loss(self):
        from repro import LinkProfile

        cluster = build_cluster(
            f=1, seed=95, profile=LinkProfile(drop_rate=0.4, max_delay=0.01)
        )
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 3))
        cluster.run(max_time=300)
        assert cluster.metrics.retransmit_ticks > 0

    def test_no_retransmits_on_reliable_network(self):
        cluster = build_cluster(f=1, seed=96)
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 3))
        cluster.run(max_time=60)
        assert cluster.metrics.retransmit_ticks == 0

    def test_sequential_scripts_on_same_node(self):
        cluster = build_cluster(f=1, seed=97)
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 2))
        cluster.run(max_time=60)
        node.run_script(read_script(1))
        cluster.run(max_time=60)
        assert cluster.metrics.operations == 3
        assert node.client.last_result == ("client:w", 1, None)
