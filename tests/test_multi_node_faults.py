"""Multi-object simulator adapters under network faults.

The shard layer leans on :mod:`repro.sim.multi_node` as the per-group
protocol driver, so this file pins down the adapter's behaviour under the
conditions the shard cluster actually produces: two independent replica
groups sharing one lossy, reordering network, several clients with
overlapping object working sets, and retransmission doing the liveness
work.  Each object's recorded history must stay BFT-linearizable.
"""

from __future__ import annotations

import pytest

from repro.core import MultiObjectClient, MultiObjectReplica, make_system
from repro.net.simnet import LinkProfile, SimNetwork
from repro.sim import MultiObjectClientNode, Scheduler
from repro.sim.multi_node import MultiObjectReplicaNode
from repro.spec import History, check_bft_linearizable


def build_group(group: str, network: SimNetwork, *, f: int = 1, seed: bytes):
    """One replica group with its own keys on a shared network."""
    # Name each group's replicas explicitly so two groups coexist on one
    # network without id collisions.
    from repro.core.quorum import QuorumSystem

    ids = tuple(f"replica:{group}n{i}" for i in range(3 * f + 1))
    quorums = QuorumSystem(
        n=3 * f + 1, f=f, quorum_size=2 * f + 1, members=ids
    )
    config = make_system(f=f, seed=seed, quorums=quorums)
    nodes = {}
    for rid in quorums.replica_ids:
        replica = MultiObjectReplica(rid, config)
        nodes[rid] = MultiObjectReplicaNode(replica, network)
    return config, nodes


LOSSY = LinkProfile(
    min_delay=0.001, max_delay=0.03, drop_rate=0.08, reorder_rate=0.15
)


@pytest.mark.parametrize("seed", [7, 21])
def test_two_groups_under_drops_and_reorders(seed):
    """Two replica groups, three clients, lossy links: per-object BFT-lin.

    Clients alpha and beta contend on the same objects within each group;
    gamma writes a disjoint object per group.  Despite 8% drops and 15%
    reorders, every script completes via retransmission and every
    per-object history is BFT-linearizable with the base bound b=1.
    """
    scheduler = Scheduler()
    network = SimNetwork(scheduler, profile=LOSSY, seed=seed)
    config_a, _ = build_group("a", network, seed=b"group-a")
    config_b, _ = build_group("b", network, seed=b"group-b")

    clients = {}
    for name in ("alpha", "beta", "gamma"):
        cid = f"client:{name}"
        for config in (config_a, config_b):
            config.registry.register(cid)
        clients[name] = {
            "a": MultiObjectClientNode(
                MultiObjectClient(f"{cid}", config_a),
                network,
                scheduler,
                record_history=True,
            ),
        }
    # A second network identity per client for group b (one node id per
    # network registration, so group-b traffic uses a ":b" suffix).
    for name in ("alpha", "beta", "gamma"):
        cid = f"client:{name}:b"
        config_a.registry.register(cid)
        config_b.registry.register(cid)
        clients[name]["b"] = MultiObjectClientNode(
            MultiObjectClient(cid, config_b),
            network,
            scheduler,
            record_history=True,
        )

    scripts = {
        "alpha": [
            ("hot", "write", ("client:alpha", 1, "a1")),
            ("hot", "read", None),
            ("cold", "write", ("client:alpha", 2, "a2")),
        ],
        "beta": [
            ("hot", "write", ("client:beta", 1, "b1")),
            ("cold", "read", None),
            ("hot", "read", None),
        ],
        "gamma": [
            ("solo", "write", ("client:gamma", 1, "g1")),
            ("solo", "read", None),
        ],
    }
    for name, steps in scripts.items():
        clients[name]["a"].run_script(list(steps))
        suffixed = [
            (obj, kind, None if value is None else (f"client:{name}:b",) + value[1:])
            for obj, kind, value in steps
        ]
        clients[name]["b"].run_script(suffixed)

    all_nodes = [node for pair in clients.values() for node in pair.values()]
    scheduler.run(until=120, stop_when=lambda: all(n.done for n in all_nodes))
    assert all(n.done for n in all_nodes), [
        n.node_id for n in all_nodes if not n.done
    ]
    assert network.stats.messages_dropped > 0, "drops never fired; vacuous"
    assert network.stats.messages_reordered > 0, "reorders never fired"

    # Per-object, per-group BFT-linearizability: merge each object's
    # history across the clients of that group and check with b=1.
    for group in ("a", "b"):
        merged: dict[str, list] = {}
        for pair in clients.values():
            for obj, history in pair[group].histories.items():
                merged.setdefault(obj, []).extend(history.events)
        for obj, events in merged.items():
            history = History(sorted(events, key=lambda e: e.time))
            result = check_bft_linearizable(history, max_b=1, obj=obj)
            assert result.ok, (group, obj, result.reason)


def test_crashed_replica_does_not_block_group():
    """With f=1, one crashed replica per group leaves both groups live."""
    scheduler = Scheduler()
    network = SimNetwork(scheduler, profile=LinkProfile.lossy(0.05), seed=3)
    config_a, nodes_a = build_group("a", network, seed=b"group-a")
    config_b, nodes_b = build_group("b", network, seed=b"group-b")
    network.crash("replica:an0")
    network.crash("replica:bn3")

    config_a.registry.register("client:w")
    config_b.registry.register("client:w:b")
    node_a = MultiObjectClientNode(
        MultiObjectClient("client:w", config_a), network, scheduler
    )
    node_b = MultiObjectClientNode(
        MultiObjectClient("client:w:b", config_b), network, scheduler
    )
    node_a.run_script(
        [("x", "write", ("client:w", 1, "v")), ("x", "read", None)]
    )
    node_b.run_script(
        [("y", "write", ("client:w:b", 1, "w")), ("y", "read", None)]
    )
    scheduler.run(until=120, stop_when=lambda: node_a.done and node_b.done)
    assert node_a.done and node_b.done
    assert node_a.results[-1][1] == ("client:w", 1, "v")
    assert node_b.results[-1][1] == ("client:w:b", 1, "w")
