"""DESIGN.md's experiment index stays consistent with the bench suite."""

from __future__ import annotations

import pathlib
import re

ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_every_indexed_bench_target_exists():
    design = (ROOT / "DESIGN.md").read_text(encoding="utf-8")
    targets = set(re.findall(r"benchmarks/(bench_\w+\.py)", design))
    assert targets, "DESIGN.md lists no bench targets"
    for target in targets:
        assert (ROOT / "benchmarks" / target).exists(), target


def test_every_bench_file_is_indexed_or_micro():
    design = (ROOT / "DESIGN.md").read_text(encoding="utf-8")
    experiments = (ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
    indexed = set(re.findall(r"bench_\w+\.py", design + experiments))
    on_disk = {p.name for p in (ROOT / "benchmarks").glob("bench_*.py")}
    unindexed = on_disk - indexed
    assert not unindexed, f"benches missing from DESIGN/EXPERIMENTS: {unindexed}"


def test_experiment_ids_documented_in_experiments_md():
    experiments = (ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
    for exp in ("E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10",
                "E11", "E12", "E13", "E14"):
        assert f"## {exp} " in experiments or f"## {exp}—" in experiments or \
            f"## {exp} —" in experiments, f"{exp} missing from EXPERIMENTS.md"
