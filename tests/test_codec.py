"""Tests for length-prefixed framing."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.encoding import FrameDecoder, decode_frame, encode_frame
from repro.encoding.codec import MAX_FRAME_SIZE
from repro.errors import EncodingError


class TestFrames:
    def test_round_trip(self):
        payload = b"hello world"
        frame = encode_frame(payload)
        decoded, rest = decode_frame(frame)
        assert decoded == payload
        assert rest == b""

    def test_empty_payload(self):
        decoded, rest = decode_frame(encode_frame(b""))
        assert decoded == b""
        assert rest == b""

    def test_remainder_preserved(self):
        frame = encode_frame(b"one") + encode_frame(b"two")
        first, rest = decode_frame(frame)
        assert first == b"one"
        second, rest = decode_frame(rest)
        assert second == b"two"
        assert rest == b""

    def test_incomplete_header(self):
        with pytest.raises(EncodingError):
            decode_frame(b"\xbf")

    def test_incomplete_payload(self):
        frame = encode_frame(b"abcdef")
        with pytest.raises(EncodingError):
            decode_frame(frame[:-1])

    def test_bad_magic(self):
        frame = bytearray(encode_frame(b"x"))
        frame[0] = 0x00
        with pytest.raises(EncodingError):
            decode_frame(bytes(frame))

    def test_oversized_payload_rejected_on_encode(self):
        with pytest.raises(EncodingError):
            encode_frame(b"\x00" * (MAX_FRAME_SIZE + 1))

    def test_oversized_length_rejected_on_decode(self):
        import struct

        header = struct.pack(">2sI", b"\xbf\xbc", MAX_FRAME_SIZE + 1)
        with pytest.raises(EncodingError):
            decode_frame(header)


class TestFrameDecoder:
    def test_single_frame_in_one_chunk(self):
        decoder = FrameDecoder()
        out = list(decoder.feed(encode_frame(b"abc")))
        assert out == [b"abc"]

    def test_byte_at_a_time(self):
        decoder = FrameDecoder()
        data = encode_frame(b"payload-1") + encode_frame(b"payload-2")
        out = []
        for i in range(len(data)):
            out.extend(decoder.feed(data[i : i + 1]))
        assert out == [b"payload-1", b"payload-2"]
        assert decoder.pending_bytes == 0

    def test_pending_bytes(self):
        decoder = FrameDecoder()
        frame = encode_frame(b"abcdef")
        list(decoder.feed(frame[:4]))
        assert decoder.pending_bytes == 4

    def test_bad_magic_raises(self):
        decoder = FrameDecoder()
        with pytest.raises(EncodingError):
            list(decoder.feed(b"XXXXXXXXXX"))

    @given(st.lists(st.binary(max_size=100), max_size=10), st.integers(1, 7))
    def test_arbitrary_chunking_property(self, payloads, chunk_size):
        stream = b"".join(encode_frame(p) for p in payloads)
        decoder = FrameDecoder()
        out = []
        for i in range(0, len(stream), chunk_size):
            out.extend(decoder.feed(stream[i : i + chunk_size]))
        assert out == payloads
