"""Unit tests for the consistent-hash ring (repro.shard.ring)."""

from __future__ import annotations

import pytest

from repro.shard import HashRing


OBJECTS = [f"obj-{i}" for i in range(400)]


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            HashRing([])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            HashRing(["shard:0", "shard:0"])

    def test_rejects_nonpositive_vnodes(self):
        with pytest.raises(ValueError):
            HashRing(["shard:0"], vnodes=0)


class TestPlacement:
    def test_deterministic(self):
        a = HashRing(["shard:0", "shard:1", "shard:2"])
        b = HashRing(["shard:0", "shard:1", "shard:2"])
        assert [a.shard_for(o) for o in OBJECTS] == [
            b.shard_for(o) for o in OBJECTS
        ]

    def test_order_independent(self):
        """Placement depends on the shard *set*, not the listing order."""
        a = HashRing(["shard:0", "shard:1", "shard:2"])
        b = HashRing(["shard:2", "shard:0", "shard:1"])
        assert [a.shard_for(o) for o in OBJECTS] == [
            b.shard_for(o) for o in OBJECTS
        ]

    def test_single_shard_owns_everything(self):
        ring = HashRing(["shard:0"])
        assert all(ring.shard_for(o) == "shard:0" for o in OBJECTS)

    def test_distribution_reasonably_even(self):
        ring = HashRing([f"shard:{i}" for i in range(4)], vnodes=64)
        counts = ring.distribution(OBJECTS)
        assert set(counts) == set(ring.shards)
        # Virtual nodes smooth the split: no shard starves or hogs.
        assert min(counts.values()) >= len(OBJECTS) // 16
        assert max(counts.values()) <= len(OBJECTS) // 2

    def test_distribution_lists_empty_shards(self):
        ring = HashRing(["shard:0", "shard:1"])
        counts = ring.distribution([])
        assert counts == {"shard:0": 0, "shard:1": 0}


class TestIncrementalScaleOut:
    def test_adding_a_shard_only_moves_keys_to_it(self):
        """The consistent-hashing property: growing the ring never moves a
        key between two *retained* shards, only onto the newcomer."""
        before = HashRing([f"shard:{i}" for i in range(3)], vnodes=64)
        after = HashRing([f"shard:{i}" for i in range(4)], vnodes=64)
        moved = 0
        for obj in OBJECTS:
            old, new = before.shard_for(obj), after.shard_for(obj)
            if old != new:
                moved += 1
                assert new == "shard:3", (obj, old, new)
        # Roughly 1/4 of the keys should move — never none, never most.
        assert 0 < moved < len(OBJECTS) // 2

    def test_removing_a_shard_only_moves_its_keys(self):
        before = HashRing([f"shard:{i}" for i in range(4)], vnodes=64)
        after = HashRing([f"shard:{i}" for i in range(3)], vnodes=64)
        for obj in OBJECTS:
            old, new = before.shard_for(obj), after.shard_for(obj)
            if old != "shard:3":
                assert new == old, (obj, old, new)
