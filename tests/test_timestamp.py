"""Tests for protocol timestamps (§3.2.1)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core import Timestamp, ZERO_TS, succ
from repro.errors import TimestampError

client_ids = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126), min_size=0, max_size=12
)
timestamps = st.builds(
    Timestamp, val=st.integers(min_value=0, max_value=10**12), client_id=client_ids
)


class TestBasics:
    def test_zero(self):
        assert ZERO_TS.val == 0 and ZERO_TS.client_id == ""

    def test_negative_rejected(self):
        with pytest.raises(TimestampError):
            Timestamp(val=-1, client_id="c")

    def test_succ(self):
        ts = succ(ZERO_TS, "client:a")
        assert ts == Timestamp(1, "client:a")
        assert succ(ts, "client:b") == Timestamp(2, "client:b")

    def test_ordering_by_value_first(self):
        assert Timestamp(1, "z") < Timestamp(2, "a")

    def test_ordering_ties_broken_by_client_id(self):
        assert Timestamp(1, "a") < Timestamp(1, "b")

    def test_equality(self):
        assert Timestamp(3, "c") == Timestamp(3, "c")
        assert Timestamp(3, "c") != Timestamp(3, "d")

    def test_str(self):
        assert "3" in str(Timestamp(3, "c"))

    def test_comparison_with_non_timestamp(self):
        with pytest.raises(TypeError):
            _ = Timestamp(1, "a") < 5


class TestWire:
    def test_round_trip(self):
        ts = Timestamp(42, "client:x")
        assert Timestamp.from_wire(ts.to_wire()) == ts

    def test_malformed(self):
        for bad in ((1,), ("a", "b"), (1, 2), (True, "c"), None, [1, "a"]):
            with pytest.raises(TimestampError):
                Timestamp.from_wire(bad)


class TestProperties:
    @given(timestamps, client_ids)
    def test_succ_is_strictly_greater(self, ts, cid):
        assert ts.succ(cid) > ts

    @given(timestamps, timestamps)
    def test_total_order(self, a, b):
        assert (a < b) + (b < a) + (a == b) == 1

    @given(timestamps, timestamps, timestamps)
    def test_transitivity(self, a, b, c):
        if a < b and b < c:
            assert a < c

    @given(timestamps)
    def test_wire_round_trip(self, ts):
        assert Timestamp.from_wire(ts.to_wire()) == ts

    @given(timestamps, st.text(max_size=8), st.text(max_size=8))
    def test_distinct_clients_never_collide(self, ts, c1, c2):
        """Different clients always produce different timestamps."""
        if c1 != c2:
            assert ts.succ(c1) != ts.succ(c2)
