"""The generated API reference stays in sync with the code."""

from __future__ import annotations

import pathlib
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_generator_runs_and_is_current(tmp_path):
    existing = (ROOT / "docs" / "API.md").read_text(encoding="utf-8")
    result = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "gen_api_docs.py")],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    regenerated = (ROOT / "docs" / "API.md").read_text(encoding="utf-8")
    assert regenerated == existing, (
        "docs/API.md is stale; run tools/gen_api_docs.py"
    )


def test_reference_covers_the_key_apis():
    text = (ROOT / "docs" / "API.md").read_text(encoding="utf-8")
    for needle in (
        "class `BftBcReplica`",
        "class `BftBcClient`",
        "class `PrepareCertificate`",
        "check_bft_linearizable",
        "check_lemma1",
        "class `ScheduleExplorer`",
        "class `SimNetwork`",
        "class `AsyncClient`",
    ):
        assert needle in text, needle
