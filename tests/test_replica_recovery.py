"""Direct-drive crash-recovery tests for every replica variant.

Each test runs real protocol traffic against replicas whose state is
journaled to a :class:`~repro.storage.FileLogStore`, destroys the replica
objects, rebuilds them from the surviving store, and asserts the recovered
Figure-2 state is byte-identical (via the canonical fingerprint) and still
serves the protocol.
"""

from __future__ import annotations

import pytest

from repro.core import make_system
from repro.core.messages import ReadTsPrepRequest
from repro.core.replica import BftBcReplica, OptimizedBftBcReplica
from repro.core.statements import read_ts_prep_request_statement
from repro.core.timestamp import ZERO_TS
from repro.crypto.hashing import hash_value
from repro.storage import FileLogStore

from tests.conftest import make_write_cert
from tests.helpers import ProtocolKit


def durable_replicas(config, tmp_path, cls=BftBcReplica, **store_kwargs):
    return [
        cls(rid, config, store=FileLogStore(tmp_path / rid, **store_kwargs))
        for rid in config.quorums.replica_ids
    ]


def recovered_copy(replica):
    """A fresh replica of the same class over the same store, recovered."""
    fresh = type(replica)(replica.node_id, replica.config, store=replica.store)
    fresh.recover()
    return fresh


class TestBaseRecovery:
    def test_recovery_reproduces_state_and_serves_reads(self, tmp_path):
        config = make_system(f=1, seed=b"recover-base")
        kit = ProtocolKit(config)
        replicas = durable_replicas(config, tmp_path)
        _, wcert1 = kit.full_write(replicas, ("v", 1))
        kit.full_write(replicas, ("v", 2), write_cert=wcert1)

        for replica in replicas:
            before = replica.state_fingerprint(include_signing_logs=True)
            fresh = recovered_copy(replica)
            assert (
                fresh.state_fingerprint(include_signing_logs=True) == before
            )
            assert kit.read_value(fresh) == ("v", 2)
            assert fresh.write_ts == replica.write_ts
            assert dict(fresh.plist.items()) == dict(replica.plist.items())

    def test_recovery_is_idempotent(self, tmp_path):
        config = make_system(f=1, seed=b"recover-idem")
        kit = ProtocolKit(config)
        replicas = durable_replicas(config, tmp_path)
        kit.full_write(replicas, ("v", 1))
        replica = replicas[0]
        fresh = recovered_copy(replica)
        once = fresh.state_fingerprint(include_signing_logs=True)
        fresh.recover()
        assert fresh.state_fingerprint(include_signing_logs=True) == once

    def test_recovery_after_simulated_power_cut(self, tmp_path):
        config = make_system(f=1, seed=b"recover-cut")
        kit = ProtocolKit(config)
        replicas = durable_replicas(config, tmp_path, fsync="always")
        kit.full_write(replicas, ("v", 1))
        replica = replicas[0]
        before = replica.state_fingerprint(include_signing_logs=True)
        replica.store.crash()  # fsync=always: nothing was volatile
        fresh = recovered_copy(replica)
        assert fresh.state_fingerprint(include_signing_logs=True) == before

    def test_recovery_spans_snapshot_compaction(self, tmp_path):
        config = make_system(f=1, seed=b"recover-snap")
        kit = ProtocolKit(config)
        replicas = durable_replicas(config, tmp_path, snapshot_interval=3)
        wcert = None
        for i in range(4):
            _, wcert = kit.full_write(replicas, ("v", i), write_cert=wcert)
        assert replicas[0].store.stats.snapshots > 0
        for replica in replicas:
            fresh = recovered_copy(replica)
            assert fresh.state_fingerprint(
                include_signing_logs=True
            ) == replica.state_fingerprint(include_signing_logs=True)
            assert kit.read_value(fresh) == ("v", 3)

    def test_recovered_replica_continues_protocol(self, tmp_path):
        config = make_system(f=1, seed=b"recover-continue")
        kit = ProtocolKit(config)
        replicas = durable_replicas(config, tmp_path)
        _, wcert = kit.full_write(replicas, ("v", 1))
        replicas = [recovered_copy(r) for r in replicas]
        kit.full_write(replicas, ("v", 2), write_cert=wcert)
        assert all(kit.read_value(r) == ("v", 2) for r in replicas)


class TestOptimizedRecovery:
    def opt_prepare(self, kit, replica, value, write_cert):
        """Drive the merged §6 phase-1/2 so the optlist gets an entry."""
        nonce = kit.nonce()
        vh = hash_value(value)
        statement = read_ts_prep_request_statement(
            vh, None if write_cert is None else write_cert.to_wire(), nonce
        )
        message = ReadTsPrepRequest(
            value_hash=vh,
            write_cert=write_cert,
            nonce=nonce,
            signature=kit.config.scheme.sign_statement(kit.client, statement),
        )
        reply = replica.handle(kit.client, message)
        assert reply is not None and reply.prepared_ts is not None

    def test_optlist_survives_recovery(self, tmp_path):
        config = make_system(f=1, seed=b"recover-opt")
        kit = ProtocolKit(config)
        replicas = durable_replicas(config, tmp_path, cls=OptimizedBftBcReplica)
        _, wcert = kit.full_write(replicas, ("v", 1))
        self.opt_prepare(kit, replicas[0], ("v", 2), wcert)
        assert len(replicas[0].optlist) == 1
        for replica in replicas:
            fresh = recovered_copy(replica)
            assert fresh.state_fingerprint(
                include_signing_logs=True
            ) == replica.state_fingerprint(include_signing_logs=True)
            assert dict(fresh.optlist.items()) == dict(replica.optlist.items())


class TestStrongRecovery:
    def test_recovery_reproduces_state(self, tmp_path):
        config = make_system(f=1, seed=b"recover-strong", strong=True)
        kit = ProtocolKit(config)
        replicas = durable_replicas(config, tmp_path)
        justify = make_write_cert(config, ZERO_TS)
        _, wcert = kit.full_write(replicas, ("v", 1), justify_cert=justify)
        kit.full_write(
            replicas, ("v", 2), write_cert=wcert, justify_cert=wcert
        )
        for replica in replicas:
            fresh = recovered_copy(replica)
            assert fresh.state_fingerprint(
                include_signing_logs=True
            ) == replica.state_fingerprint(include_signing_logs=True)
            assert kit.read_value(fresh) == ("v", 2)


def test_memory_store_crash_loses_state(tmp_path):
    """The volatile baseline: crash + recover forgets everything, which is
    exactly the contrast the durable engine exists to fix."""
    config = make_system(f=1, seed=b"recover-volatile")
    kit = ProtocolKit(config)
    replicas = [BftBcReplica(rid, config) for rid in config.quorums.replica_ids]
    kit.full_write(replicas, ("v", 1))
    replica = replicas[0]
    replica.store.crash()
    replica.recover()
    assert replica.write_ts == ZERO_TS
    assert len(replica.plist) == 0
