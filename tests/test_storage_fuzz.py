"""Fuzzing the durable-storage integrity layer.

Bit rot and hostile edits can change *any* byte of a recorded data
directory.  Whatever the damage, :meth:`FileLogStore.load` must (a) never
raise an unhandled exception, and (b) never silently return a state that
differs from the pristine recording — a divergent result is only
acceptable when a corruption counter (or the torn-tail counter, for
length-field flips that make the final frame look cut short) records that
detection happened and, for seal failures, the ``suspect`` flag demands a
repair.
"""

from __future__ import annotations

import pathlib
import shutil
import tempfile

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.encoding import canonical_encode
from repro.sim.nodes import ScriptStep
from repro.sim.runner import build_cluster
from repro.storage.filelog import FileLogStore

SCRIPT: list[ScriptStep] = [("write", ("v", i)) for i in range(8)] + [("read", None)]

#: The files a flip may target.  ``snapshot.prev.bin`` is included: damage
#: there must never surface unless the current generation also failed.
TARGETS = ("wal.bin", "snapshot.bin", "snapshot.prev.bin")


@pytest.fixture(scope="module")
def recorded_dir(tmp_path_factory) -> pathlib.Path:
    """A real replica data directory: snapshot generations plus a WAL tail."""
    root = tmp_path_factory.mktemp("recorded")
    cluster = build_cluster(
        f=1,
        seed=5,
        store_factory=lambda node_id: FileLogStore(
            root / node_id.replace(":", "_"), snapshot_interval=4
        ),
    )
    cluster.run_scripts({"alice": SCRIPT}, max_time=120)
    directory = root / "replica_0"
    assert (directory / "wal.bin").stat().st_size > 0
    assert (directory / "snapshot.bin").stat().st_size > 0
    return directory


def _load_canonical(directory: pathlib.Path) -> tuple[bytes, FileLogStore]:
    store = FileLogStore(directory, snapshot_interval=None)
    snapshot, records = store.load()
    return canonical_encode((snapshot, records)), store


flips = st.lists(
    st.tuples(
        st.integers(0, len(TARGETS) - 1),
        st.integers(0, 10**6),  # scaled into the file size
        st.integers(1, 255),  # XOR mask; 0 would be a no-op
    ),
    min_size=1,
    max_size=6,
)


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(flips=flips)
def test_flipped_bytes_never_crash_or_silently_diverge(recorded_dir, flips) -> None:
    reference, _ = _load_canonical(recorded_dir)
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="fuzz-store-"))
    try:
        target_dir = workdir / "data"
        shutil.copytree(recorded_dir, target_dir)
        applied = 0
        for which, position, mask in flips:
            path = target_dir / TARGETS[which]
            if not path.exists():
                continue
            size = path.stat().st_size
            if size == 0:
                continue
            offset = position % size
            with open(path, "r+b") as fh:
                fh.seek(offset)
                original = fh.read(1)
                fh.seek(offset)
                fh.write(bytes([original[0] ^ mask]))
            applied += 1
        # load() must not raise no matter what the flips hit.
        loaded, store = _load_canonical(target_dir)
        stats = store.stats
        detections = (
            stats.corrupt_records
            + stats.corrupt_snapshots
            + stats.torn_records_dropped
        )
        if loaded != reference:
            assert applied > 0
            assert detections > 0, "state diverged with no detection counter"
        if stats.corrupt_records or stats.corrupt_snapshots:
            assert store.suspect, "seal failure must demand a repair"
        # Recovery is idempotent: a second load of the (now truncated /
        # quarantined) directory reproduces the same verified state and
        # raises no further alarms about the already-quarantined bytes.
        reloaded, store2 = _load_canonical(target_dir)
        assert reloaded == loaded
        assert store2.stats.corrupt_records == 0
        assert store2.stats.corrupt_snapshots == 0
        assert not store2.suspect
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(
    position=st.integers(0, 10**6),
    mask=st.integers(1, 255),
)
def test_scrub_agrees_with_load_on_wal_damage(recorded_dir, position, mask) -> None:
    """The on-demand scrub finds exactly the damage a reload would find."""
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="fuzz-scrub-"))
    try:
        target_dir = workdir / "data"
        shutil.copytree(recorded_dir, target_dir)
        wal = target_dir / "wal.bin"
        size = wal.stat().st_size
        offset = position % size
        with open(wal, "r+b") as fh:
            fh.seek(offset)
            original = fh.read(1)
            fh.seek(offset)
            fh.write(bytes([original[0] ^ mask]))
        store = FileLogStore(target_dir, snapshot_interval=None)
        report = store.scrub()
        assert store.stats.scrub_passes == 1
        # A flipped byte inside a sealed frame is corruption; one inside a
        # length field may masquerade as a torn tail.  Either way the scrub
        # reports the store as dirty, without mutating anything.
        assert not report["clean"], (
            f"scrub missed a flipped byte at offset {offset}: {report}"
        )
        assert report["corrupt_records"] + report["torn_records"] > 0
        assert wal.stat().st_size == size, "scrub must be read-only"
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
