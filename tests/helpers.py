"""Direct-drive helpers: run protocol steps against replicas without a
network, giving tests precise control over each message."""

from __future__ import annotations

from typing import Any, Optional

from repro.core.certificates import PrepareCertificate, WriteCertificate
from repro.core.config import SystemConfig
from repro.core.messages import (
    PrepareReply,
    PrepareRequest,
    ReadRequest,
    ReadTsRequest,
    WriteReply,
    WriteRequest,
)
from repro.core.replica import BftBcReplica
from repro.core.statements import (
    prepare_request_statement,
    write_request_statement,
)
from repro.core.timestamp import Timestamp
from repro.crypto.hashing import hash_value


class ProtocolKit:
    """Crafts signed client requests and drives replicas directly."""

    def __init__(self, config: SystemConfig, client: str = "client:alice") -> None:
        self.config = config
        self.client = client
        config.registry.register(client)
        self._nonce_counter = 0

    def nonce(self) -> bytes:
        self._nonce_counter += 1
        return self._nonce_counter.to_bytes(16, "big")

    # -- request crafting ---------------------------------------------------

    def prepare_request(
        self,
        prev_cert: PrepareCertificate,
        ts: Timestamp,
        value: Any,
        write_cert: Optional[WriteCertificate] = None,
        justify_cert: Optional[WriteCertificate] = None,
        *,
        value_hash: Optional[bytes] = None,
    ) -> PrepareRequest:
        vh = value_hash if value_hash is not None else hash_value(value)
        statement = prepare_request_statement(
            prev_cert.to_wire(),
            ts,
            vh,
            None if write_cert is None else write_cert.to_wire(),
            None if justify_cert is None else justify_cert.to_wire(),
        )
        return PrepareRequest(
            prev_cert=prev_cert,
            ts=ts,
            value_hash=vh,
            write_cert=write_cert,
            justify_cert=justify_cert,
            signature=self.config.scheme.sign_statement(self.client, statement),
        )

    def write_request(self, value: Any, cert: PrepareCertificate) -> WriteRequest:
        statement = write_request_statement(value, cert.to_wire())
        return WriteRequest(
            value=value,
            prepare_cert=cert,
            signature=self.config.scheme.sign_statement(self.client, statement),
        )

    # -- direct protocol drives -----------------------------------------------

    def read_ts(self, replicas: list[BftBcReplica]) -> PrepareCertificate:
        """Phase 1 against every replica; returns Pmax."""
        certs = []
        for replica in replicas:
            reply = replica.handle(self.client, ReadTsRequest(nonce=self.nonce()))
            assert reply is not None
            certs.append(reply.cert)
        return max(certs, key=lambda c: c.ts)

    def collect_prepare(
        self, replicas: list[BftBcReplica], request: PrepareRequest
    ) -> Optional[PrepareCertificate]:
        """Phase 2 against the given replicas; None if no quorum approved."""
        sigs = []
        for replica in replicas:
            reply = replica.handle(self.client, request)
            if isinstance(reply, PrepareReply):
                sigs.append(reply.signature)
        if len(sigs) < self.config.quorum_size:
            return None
        return PrepareCertificate(
            ts=request.ts,
            value_hash=request.value_hash,
            signatures=tuple(sigs[: self.config.quorum_size]),
        )

    def collect_write(
        self, replicas: list[BftBcReplica], request: WriteRequest
    ) -> Optional[WriteCertificate]:
        """Phase 3 against the given replicas; None if no quorum replied."""
        sigs = []
        for replica in replicas:
            reply = replica.handle(self.client, request)
            if isinstance(reply, WriteReply):
                sigs.append(reply.signature)
        if len(sigs) < self.config.quorum_size:
            return None
        return WriteCertificate(
            ts=request.prepare_cert.ts,
            signatures=tuple(sigs[: self.config.quorum_size]),
        )

    def full_write(
        self,
        replicas: list[BftBcReplica],
        value: Any,
        write_cert: Optional[WriteCertificate] = None,
        justify_cert: Optional[WriteCertificate] = None,
    ) -> tuple[PrepareCertificate, WriteCertificate]:
        """A complete legitimate three-phase write via direct drive."""
        p_max = self.read_ts(replicas)
        ts = p_max.ts.succ(self.client)
        request = self.prepare_request(
            p_max, ts, value, write_cert=write_cert, justify_cert=justify_cert
        )
        prepare_cert = self.collect_prepare(replicas, request)
        assert prepare_cert is not None, "prepare phase failed"
        wcert = self.collect_write(replicas, self.write_request(value, prepare_cert))
        assert wcert is not None, "write phase failed"
        return prepare_cert, wcert

    def read_value(self, replica: BftBcReplica) -> Any:
        reply = replica.handle(self.client, ReadRequest(nonce=self.nonce()))
        assert reply is not None
        return reply.value


def make_replicas(config: SystemConfig, cls=BftBcReplica) -> list[BftBcReplica]:
    return [cls(rid, config) for rid in config.quorums.replica_ids]


class DirectDriver:
    """Synchronously routes a client's sends to replicas and replies back,
    with optional per-replica drop rules — a zero-latency network for unit
    tests of the operation state machines."""

    def __init__(self, client, replicas: list[BftBcReplica]) -> None:
        self.client = client
        self.replicas = {r.node_id: r for r in replicas}
        self.dropped: set[str] = set()
        self.sent: list = []

    def drop(self, *node_ids: str) -> None:
        """Silence the given replicas (requests to them vanish)."""
        self.dropped.update(node_ids)

    def restore(self, *node_ids: str) -> None:
        self.dropped.difference_update(node_ids)

    def pump(self, sends) -> None:
        """Deliver sends (and all cascading replies) until quiescent."""
        queue = list(sends)
        while queue:
            send = queue.pop(0)
            self.sent.append(send)
            if send.dest in self.dropped:
                continue
            replica = self.replicas.get(send.dest)
            if replica is None:
                continue
            reply = replica.handle(self.client.node_id, send.message)
            if reply is not None:
                queue.extend(self.client.deliver(send.dest, reply))

    def run_write(self, value):
        self.pump(self.client.begin_write(value))
        return self.client.op

    def run_read(self):
        self.pump(self.client.begin_read())
        return self.client.op

    def tick(self) -> None:
        """One retransmission tick."""
        self.pump(self.client.retransmit())
