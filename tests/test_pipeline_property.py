"""Pipelined writes (k logical clients in flight) keep register semantics.

The pipeline window is k *serial* logical clients sharing one mux'd
connection per replica, so concurrent writes may legitimately commit at
colliding ``val``s under different client ids — ``(v, pipe0)`` and
``(v, pipe3)`` are distinct, totally ordered timestamps.  The properties a
correct pipeline must keep:

* every write commits at a distinct timestamp (the total order exists);
* each logical client's own commits are strictly increasing in its
  submission order (clients are serial);
* a read after the burst returns the value of the *maximum* committed
  timestamp — the register's version order is the timestamp order;
* the concurrent history collapses to its **winning chain** — per ``val``,
  the maximum-timestamp commit.  Sequentially replaying exactly that chain
  (same logical client ids, same master seed) through the deterministic
  simulator commits the *identical timestamps*, and after a flush write
  clears the final round's losing prepare-list entries, both runs hold the
  same durable state per replica.  The one schedule-dependent freedom left
  is *which* q-of-n replica signatures each client happened to assemble
  into its certificates, so the cross-transport comparison reduces every
  certificate to its (ts, value-hash) core; within each deployment the
  replicas must agree on full fingerprints bit-for-bit.
"""

from __future__ import annotations

import time

import pytest

from repro.cluster import DeploymentSpec, deploy
from repro.core.timestamp import Timestamp
from repro.sim import build_cluster

WINDOW = 4
WRITES = 16
FLUSH_VALUE = "pv-flush"


def _script(count: int = WRITES):
    return [("write", f"pv{i}") for i in range(count)]


def _check_commit_properties(records, final_read):
    """The transport-independent ordering properties of a pipelined burst."""
    assert len(records) == WRITES
    by_ts = {}
    for record in records:
        assert isinstance(record.result, Timestamp), record
        assert record.result not in by_ts, "timestamp committed twice"
        by_ts[record.result] = record
    # Serial logical clients: per-client commits increase with submission.
    per_client: dict[str, list] = {}
    for record in sorted(records, key=lambda r: r.index):
        per_client.setdefault(record.client, []).append(record.result)
    assert len(per_client) <= WINDOW
    for client, stamps in per_client.items():
        assert stamps == sorted(stamps), f"{client} commits out of order"
    # vals form the contiguous chain 1..V (succ-only advancement).
    vals = sorted({ts.val for ts in by_ts})
    assert vals == list(range(1, len(vals) + 1))
    # The read sees the write with the maximum timestamp.
    winner = by_ts[max(by_ts)]
    assert final_read == winner.value
    return by_ts


def _winning_chain(by_ts):
    """Per ``val``, the maximum-timestamp commit, in val order."""
    best: dict[int, object] = {}
    for ts, record in by_ts.items():
        kept = best.get(ts.val)
        if kept is None or ts > kept.result:
            best[ts.val] = record
    return [best[val] for val in sorted(best)]


def _semantic_state(snapshot: dict) -> dict:
    """Durable state modulo certificate signer sets and signing logs.

    Certificates keep their (timestamp, value-hash) core; which 2f+1 of
    the 3f+1 replica signatures a client assembled is schedule freedom the
    protocol explicitly allows.
    """

    def cert_core(cert):
        return None if cert is None else tuple(cert[:2])

    reduced = {}
    for key, value in snapshot.items():
        if key in ("spr", "swr"):
            continue  # signing logs record the schedule, not the register
        if key.endswith("cert"):
            reduced[key] = cert_core(value)
        else:
            reduced[key] = value
    return reduced


def _settled_fingerprints(dep, timeout: float = 5.0):
    """Poll until every replica digests identically (late frames drain)."""
    deadline = time.monotonic() + timeout
    while True:
        prints = dep.fingerprints()
        if len(set(prints.values())) == 1 or time.monotonic() > deadline:
            return prints


class TestPipelinedSim:
    """The deterministic transport: same window, virtual time."""

    def test_commit_order_properties(self):
        spec = DeploymentSpec(transport="sim", pipeline=WINDOW, seed=31)
        with deploy(spec) as dep:
            records = dep.run_script(_script())
            final = dep.read()
            _check_commit_properties(records, final)
            prints = dep.fingerprints()
        assert len(set(prints.values())) == 1


class TestPipelinedTcp:
    """Real sockets: k in-flight over one mux'd connection per replica."""

    @pytest.fixture(scope="class")
    def run(self):
        spec = DeploymentSpec(transport="tcp", pipeline=WINDOW, seed=31)
        with deploy(spec) as dep:
            records = dep.run_script(_script())
            final = dep.read()
            # Flush twice, sequentially, through one client.  A PREPARE
            # piggybacks the *writer's own* previous certificate, so the
            # first flush commits above everything and the second carries
            # that now-maximal certificate to every replica — advancing
            # write_ts and clearing every losing prepare-list entry the
            # concurrent burst left behind.
            flush_ts = dep.write(FLUSH_VALUE)
            dep.write(FLUSH_VALUE + "2")
            prints = _settled_fingerprints(dep)
            states = {
                server.replica.node_id: server.replica.snapshot_wire()
                for server in dep.servers
            }
        return records, final, flush_ts, prints, states

    def test_commits_in_timestamp_order(self, run):
        records, final, flush_ts, prints, _ = run
        by_ts = _check_commit_properties(records, final)
        assert flush_ts == max(by_ts).succ("client:pipe0")
        assert len(set(prints.values())) == 1, "replicas diverged"

    def test_winning_chain_replays_to_identical_state(self, run):
        records, final, flush_ts, _, tcp_states = run
        chain = _winning_chain(_check_commit_properties(records, final))
        # Replay exactly the winning chain plus the flush, one op at a
        # time, in the sim: same master seed, same logical client ids,
        # strictly sequential.
        cluster = build_cluster(f=1, seed=31)
        flushes = [
            (FLUSH_VALUE, flush_ts),
            (FLUSH_VALUE + "2", flush_ts.succ("client:pipe0")),
        ]
        replay = [
            (r.client.removeprefix("client:"), r.value, r.result)
            for r in chain
        ] + [("pipe0", value, ts) for value, ts in flushes]
        for name, value, expected in replay:
            cluster.run_scripts({name: [("write", value)]})
            node = cluster.clients[f"client:{name}"]
            _, committed = node.results[-1]
            assert committed == expected, (
                "sequential replay committed a different timestamp"
            )
        cluster.settle()
        sim_states = {
            node_id: replica.snapshot_wire()
            for node_id, replica in cluster.replicas.items()
        }
        assert sim_states.keys() == tcp_states.keys()
        for node_id in sim_states:
            assert _semantic_state(sim_states[node_id]) == _semantic_state(
                tcp_states[node_id]
            ), f"{node_id} durable state diverged from sequential replay"
