"""Unit tests for the optimized replica (§6.2): merged phase 1/2, optlist,
and the equal-timestamp hash tie-break."""

from __future__ import annotations

import pytest

from repro.core import make_system
from repro.core.certificates import genesis_prepare_certificate
from repro.core.messages import (
    PrepareReply,
    ReadTsPrepReply,
    ReadTsPrepRequest,
    WriteReply,
)
from repro.core.replica import OptimizedBftBcReplica
from repro.core.statements import (
    prepare_reply_statement,
    read_ts_prep_request_statement,
)
from repro.core.timestamp import ZERO_TS
from repro.crypto.hashing import hash_value

from tests.helpers import ProtocolKit, make_replicas


@pytest.fixture
def config():
    cfg = make_system(f=1, seed=b"opt-test")
    return cfg


@pytest.fixture
def kit(config):
    return ProtocolKit(config)


@pytest.fixture
def replicas(config):
    return make_replicas(config, cls=OptimizedBftBcReplica)


@pytest.fixture
def replica(replicas):
    return replicas[0]


def make_rtsp(kit, value, write_cert=None):
    vh = hash_value(value)
    nonce = kit.nonce()
    statement = read_ts_prep_request_statement(
        vh, None if write_cert is None else write_cert.to_wire(), nonce
    )
    return ReadTsPrepRequest(
        value_hash=vh,
        write_cert=write_cert,
        nonce=nonce,
        signature=kit.config.scheme.sign_statement(kit.client, statement),
    )


class TestMergedPhase:
    def test_prepare_on_behalf(self, kit, replica, config):
        request = make_rtsp(kit, ("v", 1))
        reply = replica.handle(kit.client, request)
        assert isinstance(reply, ReadTsPrepReply)
        assert reply.prepared_ts == ZERO_TS.succ(kit.client)
        assert reply.prep_sig is not None
        inner = prepare_reply_statement(reply.prepared_ts, hash_value(("v", 1)))
        assert config.scheme.verify_statement(reply.prep_sig, inner)
        assert kit.client in replica.optlist
        assert kit.client not in replica.plist  # normal list untouched

    def test_idempotent_retransmission(self, kit, replica):
        request = make_rtsp(kit, ("v", 1))
        first = replica.handle(kit.client, request)
        second = replica.handle(kit.client, request)
        assert first.prepared_ts == second.prepared_ts
        assert len(replica.optlist) == 1

    def test_conflicting_hash_gets_plain_reply(self, kit, replica):
        """§6.2: no prepare when the client already has an entry for a
        different hash; the reply degrades to a normal phase-1 response."""
        assert replica.handle(kit.client, make_rtsp(kit, ("v", 1))).prepared_ts
        reply = replica.handle(kit.client, make_rtsp(kit, ("v", 2)))
        assert isinstance(reply, ReadTsPrepReply)
        assert reply.prepared_ts is None
        assert reply.prep_sig is None
        assert replica.optlist[kit.client].value_hash == hash_value(("v", 1))

    def test_conflict_with_normal_plist_blocks_opt_prepare(self, kit, replica):
        """An entry in the *normal* prepare list also blocks the fast path."""
        genesis = genesis_prepare_certificate()
        ts = ZERO_TS.succ(kit.client)
        prep = kit.prepare_request(genesis, ts, ("other", 9))
        assert isinstance(replica.handle(kit.client, prep), PrepareReply)
        reply = replica.handle(kit.client, make_rtsp(kit, ("v", 1)))
        assert reply.prepared_ts is None

    def test_same_pair_in_both_lists_allowed(self, kit, replica):
        """The same (t, h) may sit in both lists (the paper allows one entry
        per list; they may coincide)."""
        assert replica.handle(kit.client, make_rtsp(kit, ("v", 1))).prepared_ts
        genesis = genesis_prepare_certificate()
        ts = ZERO_TS.succ(kit.client)
        prep = kit.prepare_request(genesis, ts, ("v", 1))
        assert isinstance(replica.handle(kit.client, prep), PrepareReply)
        assert kit.client in replica.plist and kit.client in replica.optlist

    def test_bad_signature_discarded(self, kit, replica):
        request = make_rtsp(kit, ("v", 1))
        tampered = ReadTsPrepRequest(
            value_hash=b"\x00" * 32,
            write_cert=None,
            nonce=request.nonce,
            signature=request.signature,
        )
        assert replica.handle(kit.client, tampered) is None

    def test_write_cert_processed_and_lists_pruned(self, kit, replicas):
        replica = replicas[0]
        # Full write via the explicit path to populate state.
        prepare_cert, wcert = kit.full_write(replicas, ("v", 1))
        assert kit.client in replica.plist
        reply = replica.handle(kit.client, make_rtsp(kit, ("v", 2), write_cert=wcert))
        assert replica.write_ts == wcert.ts
        assert kit.client not in replica.plist  # pruned by the certificate
        assert reply.prepared_ts == prepare_cert.ts.succ(kit.client)


class TestHashTieBreak:
    def test_equal_ts_larger_hash_wins(self, kit, replicas, config):
        """§6.2 phase 3: on an equal timestamp keep the larger hash."""
        replica = replicas[0]
        # Obtain two prepare certificates for the same timestamp: one via the
        # optimistic list, one via the normal list (the §6.3 scenario).
        reply = replica.handle(kit.client, make_rtsp(kit, ("v", "A")))
        ts = reply.prepared_ts
        sigs_a = []
        for r in replicas:
            rep = r.handle(kit.client, make_rtsp(kit, ("v", "A")))
            if rep and rep.prep_sig:
                sigs_a.append(rep.prep_sig)
        from repro.core.certificates import PrepareCertificate

        cert_a = PrepareCertificate(
            ts=ts, value_hash=hash_value(("v", "A")), signatures=tuple(sigs_a[:3])
        )
        prep_b = kit.prepare_request(genesis_prepare_certificate(), ts, ("v", "B"))
        sigs_b = [
            r.handle(kit.client, prep_b).signature
            for r in replicas
            if isinstance(r.handle(kit.client, prep_b), PrepareReply)
        ]
        cert_b = PrepareCertificate(
            ts=ts, value_hash=hash_value(("v", "B")), signatures=tuple(sigs_b[:3])
        )
        # Install both writes at one replica, in both orders.
        low, high = sorted([("v", "A"), ("v", "B")], key=hash_value)
        cert_low = cert_a if hash_value(("v", "A")) == hash_value(low) else cert_b
        cert_high = cert_b if cert_low is cert_a else cert_a
        replica.handle(kit.client, kit.write_request(low, cert_low))
        assert replica.data == low
        replica.handle(kit.client, kit.write_request(high, cert_high))
        assert replica.data == high  # larger hash overwrote
        replica.handle(kit.client, kit.write_request(low, cert_low))
        assert replica.data == high  # smaller hash cannot regress

    def test_equal_ts_same_value_idempotent(self, kit, replicas):
        replica = replicas[0]
        prepare_cert, _ = kit.full_write(replicas, ("v", 1))
        installed = replica.stats.writes_installed
        replica.handle(kit.client, kit.write_request(("v", 1), prepare_cert))
        assert replica.stats.writes_installed == installed


class TestOptPrepareGuard:
    def test_no_opt_prepare_at_stale_timestamp(self, kit, replicas, config):
        """A replica that missed a write must not opt-prepare below writeTS."""
        lagging = replicas[0]
        others = replicas[1:]
        # Complete a write at the other three replicas only.
        p_max = kit.read_ts(others)
        ts = p_max.ts.succ(kit.client)
        request = kit.prepare_request(p_max, ts, ("v", 1))
        cert = kit.collect_prepare(others, request)
        wcert = kit.collect_write(others, kit.write_request(("v", 1), cert))
        assert wcert is not None
        # The lagging replica learns of the completed write via the wcert but
        # still has the genesis certificate; succ(genesis) <= writeTS.
        reply = lagging.handle(kit.client, make_rtsp(kit, ("v", 2), write_cert=wcert))
        assert reply.prepared_ts is None
