"""Tests for quorum-system configuration and intersection math."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core import QuorumSystem
from repro.core.quorum import client_id, replica_id
from repro.errors import QuorumConfigError


class TestBftBcShape:
    @pytest.mark.parametrize("f", [0, 1, 2, 3, 5, 10])
    def test_sizes(self, f):
        qs = QuorumSystem.bft_bc(f)
        assert qs.n == 3 * f + 1
        assert qs.quorum_size == 2 * f + 1

    @pytest.mark.parametrize("f", [1, 2, 3, 5])
    def test_intersection_contains_a_correct_replica(self, f):
        qs = QuorumSystem.bft_bc(f)
        assert qs.min_intersection == f + 1
        assert qs.min_correct_intersection == 1

    def test_replica_ids(self):
        qs = QuorumSystem.bft_bc(1)
        assert qs.replica_ids == (
            "replica:0",
            "replica:1",
            "replica:2",
            "replica:3",
        )


class TestPhalanxShape:
    @pytest.mark.parametrize("f", [1, 2, 3])
    def test_sizes(self, f):
        qs = QuorumSystem.phalanx(f)
        assert qs.n == 4 * f + 1
        assert qs.quorum_size == 3 * f + 1
        # masking intersection: 2q - n = 2f + 1 > 2f
        assert qs.min_intersection == 2 * f + 1
        assert qs.min_correct_intersection == f + 1


class TestValidation:
    def test_negative_f_rejected(self):
        with pytest.raises(QuorumConfigError):
            QuorumSystem(n=4, f=-1, quorum_size=3)

    def test_unreachable_quorum_rejected(self):
        # With f=1 silent out of 4, a quorum of 4 is unreachable.
        with pytest.raises(QuorumConfigError):
            QuorumSystem(n=4, f=1, quorum_size=4)

    def test_insufficient_intersection_rejected(self):
        # Quorums of 2 out of 4 may not intersect at all.
        with pytest.raises(QuorumConfigError):
            QuorumSystem(n=4, f=1, quorum_size=2)

    def test_zero_quorum_rejected(self):
        with pytest.raises(QuorumConfigError):
            QuorumSystem(n=4, f=0, quorum_size=0)


class TestMembership:
    def test_is_replica(self):
        qs = QuorumSystem.bft_bc(1)
        assert qs.is_replica("replica:0")
        assert qs.is_replica("replica:3")
        assert not qs.is_replica("replica:4")
        assert not qs.is_replica("replica:-1")
        assert not qs.is_replica("client:0")
        assert not qs.is_replica("replica:abc")

    def test_is_quorum(self):
        qs = QuorumSystem.bft_bc(1)
        assert qs.is_quorum({"replica:0", "replica:1", "replica:2"})
        assert not qs.is_quorum({"replica:0", "replica:1"})
        assert not qs.is_quorum({"replica:0", "replica:1", "client:x"})

    def test_node_id_helpers(self):
        assert replica_id(3) == "replica:3"
        assert client_id("alice") == "client:alice"
        assert client_id(7) == "client:7"

    def test_describe(self):
        text = QuorumSystem.bft_bc(2).describe()
        assert "n=7" in text and "f=2" in text


@given(st.integers(min_value=0, max_value=20))
def test_bft_bc_always_valid_property(f):
    qs = QuorumSystem.bft_bc(f)
    # any two quorums of size 2f+1 out of 3f+1 share >= f+1 replicas
    assert qs.min_intersection >= f + 1
    # and a quorum is reachable with f replicas silent
    assert qs.quorum_size <= qs.n - qs.f
