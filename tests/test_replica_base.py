"""Unit tests for the base-protocol replica (Figure 2)."""

from __future__ import annotations

import pytest

from repro.core import Timestamp, ZERO_TS
from repro.core.certificates import genesis_prepare_certificate
from repro.core.messages import (
    PrepareReply,
    ReadReply,
    ReadRequest,
    ReadTsReply,
    ReadTsRequest,
    WriteReply,
)
from repro.core.replica import BftBcReplica
from repro.crypto.hashing import hash_value
from repro.crypto.signatures import Signature

from tests.conftest import make_write_cert
from tests.helpers import ProtocolKit, make_replicas


@pytest.fixture
def kit(config):
    return ProtocolKit(config)


@pytest.fixture
def replicas(config):
    return make_replicas(config)


@pytest.fixture
def replica(replicas):
    return replicas[0]


class TestPhase1:
    def test_read_ts_returns_genesis_initially(self, kit, replica):
        reply = replica.handle(kit.client, ReadTsRequest(nonce=kit.nonce()))
        assert isinstance(reply, ReadTsReply)
        assert reply.cert.is_genesis
        assert reply.ts_vouch is None  # base protocol: no vouches

    def test_reply_signature_binds_nonce(self, kit, replica, config):
        from repro.core.statements import read_ts_reply_statement

        nonce = kit.nonce()
        reply = replica.handle(kit.client, ReadTsRequest(nonce=nonce))
        statement = read_ts_reply_statement(reply.cert.to_wire(), nonce)
        assert config.scheme.verify_statement(reply.signature, statement)

    def test_answers_unconditionally(self, kit, replica):
        """§5.1 liveness: phase-1 requests are answered unconditionally."""
        for _ in range(5):
            assert replica.handle("anyone", ReadTsRequest(nonce=kit.nonce()))


class TestPhase2:
    def test_valid_prepare_approved(self, kit, replica):
        genesis = genesis_prepare_certificate()
        ts = ZERO_TS.succ(kit.client)
        request = kit.prepare_request(genesis, ts, ("v", 1))
        reply = replica.handle(kit.client, request)
        assert isinstance(reply, PrepareReply)
        assert reply.ts == ts
        assert kit.client in replica.plist
        assert replica.plist[kit.client].ts == ts

    def test_non_successor_timestamp_discarded(self, kit, replica):
        """Figure 2 phase 2 step 1: t must equal succ(prepC.ts, c)."""
        genesis = genesis_prepare_certificate()
        huge = Timestamp(10**9, kit.client)
        request = kit.prepare_request(genesis, huge, ("v", 1))
        assert replica.handle(kit.client, request) is None
        assert replica.stats.discards["bad-ts"] == 1
        assert kit.client not in replica.plist

    def test_wrong_client_in_successor_discarded(self, kit, replica, config):
        """The timestamp's id must be the signer's (succ embeds c)."""
        genesis = genesis_prepare_certificate()
        ts = ZERO_TS.succ("client:bob")  # alice signs a bob-flavoured ts
        request = kit.prepare_request(genesis, ts, ("v", 1))
        assert replica.handle(kit.client, request) is None

    def test_bad_request_signature_discarded(self, kit, replica):
        genesis = genesis_prepare_certificate()
        ts = ZERO_TS.succ(kit.client)
        request = kit.prepare_request(genesis, ts, ("v", 1))
        tampered = type(request)(
            prev_cert=request.prev_cert,
            ts=request.ts,
            value_hash=b"\x00" * 32,  # hash no longer matches the signature
            write_cert=None,
            justify_cert=None,
            signature=request.signature,
        )
        assert replica.handle(kit.client, tampered) is None
        assert replica.stats.discards["bad-signature"] == 1

    def test_invalid_prev_certificate_discarded(self, kit, replica):
        from repro.core.certificates import PrepareCertificate

        fake_prev = PrepareCertificate(
            ts=Timestamp(5, "client:bob"),
            value_hash=b"\x01" * 32,
            signatures=tuple(
                Signature(signer=f"replica:{i}", value=b"\x00" * 32) for i in range(3)
            ),
        )
        request = kit.prepare_request(fake_prev, fake_prev.ts.succ(kit.client), ("v", 1))
        assert replica.handle(kit.client, request) is None
        assert replica.stats.discards["bad-prepare-cert"] == 1

    def test_unauthorized_client_discarded(self, kit, replica, config):
        config.authorized_writers = {"client:bob"}  # alice no longer allowed
        genesis = genesis_prepare_certificate()
        request = kit.prepare_request(genesis, ZERO_TS.succ(kit.client), ("v", 1))
        assert replica.handle(kit.client, request) is None
        assert replica.stats.discards["unauthorized"] == 1

    def test_one_outstanding_prepare_per_client(self, kit, replica):
        """Figure 2 phase 2 step 3: conflicting entry => discard."""
        genesis = genesis_prepare_certificate()
        ts = ZERO_TS.succ(kit.client)
        first = kit.prepare_request(genesis, ts, ("v", 1))
        assert replica.handle(kit.client, first) is not None
        second = kit.prepare_request(genesis, ts, ("v", 2))  # different hash
        assert replica.handle(kit.client, second) is None
        assert replica.stats.discards["plist-conflict"] == 1

    def test_identical_retransmission_reapproved(self, kit, replica):
        """Retransmitting the same prepare must succeed (liveness)."""
        genesis = genesis_prepare_certificate()
        ts = ZERO_TS.succ(kit.client)
        request = kit.prepare_request(genesis, ts, ("v", 1))
        assert replica.handle(kit.client, request) is not None
        assert replica.handle(kit.client, request) is not None
        assert len(replica.plist) == 1

    def test_write_certificate_clears_plist(self, kit, replicas, config):
        """Figure 2 phase 2 step 2: wcert advances write_ts and prunes."""
        replica = replicas[0]
        prepare_cert, wcert = kit.full_write(replicas, ("v", 1))
        assert kit.client in replica.plist
        # Next prepare presents the write certificate: entry is cleared, new
        # entry admitted.
        ts2 = prepare_cert.ts.succ(kit.client)
        request = kit.prepare_request(prepare_cert, ts2, ("v", 2), write_cert=wcert)
        reply = replica.handle(kit.client, request)
        assert isinstance(reply, PrepareReply)
        assert replica.write_ts == wcert.ts
        assert replica.plist[kit.client].ts == ts2

    def test_invalid_write_certificate_discarded(self, kit, replica, config):
        genesis = genesis_prepare_certificate()
        bad_wcert = make_write_cert(config, Timestamp(1, kit.client))
        forged = type(bad_wcert)(ts=Timestamp(2, kit.client), signatures=bad_wcert.signatures)
        request = kit.prepare_request(
            genesis, ZERO_TS.succ(kit.client), ("v", 1), write_cert=forged
        )
        assert replica.handle(kit.client, request) is None
        assert replica.stats.discards["bad-write-cert"] == 1

    def test_plist_not_pruned_when_gc_disabled(self, kit, config):
        config.gc_plist = False
        replicas = make_replicas(config)
        replica = replicas[0]
        prepare_cert, wcert = kit.full_write(replicas, ("v", 1))
        request = kit.prepare_request(
            prepare_cert, prepare_cert.ts.succ(kit.client), ("v", 2), write_cert=wcert
        )
        # With GC off the stale entry stays and conflicts: discard.
        assert replica.handle(kit.client, request) is None

    def test_stale_timestamp_not_added_to_plist(self, kit, replicas):
        """Phase 2 step 4: entries are only added when t > writeTS."""
        replica = replicas[0]
        prepare_cert, wcert = kit.full_write(replicas, ("v", 1))
        # A second client whose id sorts *below* alice's proposes from the
        # genesis certificate: its successor (1, "client:aaa") is <= writeTS
        # (1, "client:alice") once the write certificate is presented.
        kit2 = ProtocolKit(replica.config, client="client:aaa")
        request = kit2.prepare_request(
            genesis_prepare_certificate(),
            ZERO_TS.succ("client:aaa"),
            ("w", 1),
            write_cert=wcert,
        )
        reply = replica.handle("client:aaa", request)
        # Reply is still sent (paper: step 5 happens regardless) ...
        assert isinstance(reply, PrepareReply)
        # ... but the entry was not admitted: its ts <= writeTS.
        assert "client:aaa" not in replica.plist


class TestPhase3:
    def test_valid_write_installs(self, kit, replicas):
        replica = replicas[0]
        prepare_cert, _ = kit.full_write(replicas, ("v", 1))
        assert replica.data == ("v", 1)
        assert replica.pcert == prepare_cert
        assert replica.stats.writes_installed == 1

    def test_write_reply_even_when_stale(self, kit, replicas):
        """Replica replies WRITE-REPLY even if it does not install (older
        timestamp), so slow writers still complete."""
        replica = replicas[0]
        prepare_cert, _ = kit.full_write(replicas, ("v", 1))
        request = kit.write_request(("v", 1), prepare_cert)
        reply = replica.handle(kit.client, request)
        assert isinstance(reply, WriteReply)
        assert replica.stats.writes_installed == 1  # not installed twice

    def test_value_hash_mismatch_discarded(self, kit, replicas):
        replica = replicas[0]
        p_max = kit.read_ts(replicas)
        ts = p_max.ts.succ(kit.client)
        request = kit.prepare_request(p_max, ts, ("v", 1))
        cert = kit.collect_prepare(replicas, request)
        bad = kit.write_request(("not", "the-value"), cert)
        assert replica.handle(kit.client, bad) is None
        assert replica.stats.discards["bad-hash"] == 1
        assert replica.data is None

    def test_invalid_certificate_discarded(self, kit, replica):
        from repro.core.certificates import PrepareCertificate

        fake = PrepareCertificate(
            ts=Timestamp(1, kit.client),
            value_hash=hash_value(("v", 1)),
            signatures=tuple(
                Signature(signer=f"replica:{i}", value=b"\x00" * 32) for i in range(3)
            ),
        )
        request = kit.write_request(("v", 1), fake)
        assert replica.handle(kit.client, request) is None
        assert replica.stats.discards["bad-prepare-cert"] == 1

    def test_older_write_does_not_overwrite(self, kit, replicas):
        replica = replicas[0]
        cert1, wcert1 = kit.full_write(replicas, ("v", 1))
        cert2, _ = kit.full_write(replicas, ("v", 2), write_cert=wcert1)
        assert replica.data == ("v", 2)
        # Replay the older write: value must not regress.
        replica.handle(kit.client, kit.write_request(("v", 1), cert1))
        assert replica.data == ("v", 2)
        assert replica.pcert == cert2


class TestReads:
    def test_read_returns_data_and_cert(self, kit, replicas):
        replica = replicas[0]
        prepare_cert, _ = kit.full_write(replicas, ("v", 1))
        reply = replica.handle(kit.client, ReadRequest(nonce=kit.nonce()))
        assert isinstance(reply, ReadReply)
        assert reply.value == ("v", 1)
        assert reply.cert == prepare_cert

    def test_read_of_genesis(self, kit, replica):
        reply = replica.handle(kit.client, ReadRequest(nonce=kit.nonce()))
        assert reply.value is None
        assert reply.cert.is_genesis


class TestStrictStop:
    def test_revoked_client_rejected_in_strict_mode(self, config):
        config.strict_stop = True
        kit = ProtocolKit(config)
        replicas = make_replicas(config)
        prepare_cert, _ = kit.full_write(replicas, ("v", 1))
        request = kit.write_request(("v", 1), prepare_cert)
        config.registry.revoke(kit.client)
        assert replicas[0].handle(kit.client, request) is None
        assert replicas[0].stats.discards["revoked"] == 1

    def test_revoked_client_replay_allowed_by_default(self, config):
        kit = ProtocolKit(config)
        replicas = make_replicas(config)
        prepare_cert, _ = kit.full_write(replicas, ("v", 1))
        request = kit.write_request(("v", 1), prepare_cert)
        config.registry.revoke(kit.client)
        # Default stop semantics: the pre-signed message still works.
        assert isinstance(replicas[0].handle("colluder", request), WriteReply)


class TestBackgroundSigning:
    def test_presigned_write_reply_used(self, config):
        config.background_signing = True
        kit = ProtocolKit(config)
        replicas = make_replicas(config)
        replica = replicas[0]
        _, wcert = kit.full_write(replicas, ("v", 1))
        assert replica.stats.background_signs >= 1
        # The presigned reply is consumed: a second write still completes and
        # yields a verifiable write certificate.
        _, wcert2 = kit.full_write(replicas, ("v", 2), write_cert=wcert)
        assert wcert2.is_valid(config.scheme, config.quorums)


class TestUnknownMessages:
    def test_unknown_message_discarded(self, kit, replica):
        class Weird:
            KIND = "WEIRD"

        assert replica.handle(kit.client, Weird()) is None
        assert replica.stats.discards["unknown-kind"] == 1
