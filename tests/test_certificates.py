"""Tests for prepare and write certificates."""

from __future__ import annotations

import pytest

from repro.core import Timestamp, ZERO_TS
from repro.core.certificates import (
    GENESIS_VALUE,
    PrepareCertificate,
    WriteCertificate,
    genesis_prepare_certificate,
)
from repro.crypto.hashing import hash_value
from repro.crypto.signatures import Signature
from repro.errors import CertificateError

from tests.conftest import make_prepare_cert, make_write_cert

TS = Timestamp(1, "client:alice")
VHASH = hash_value(("client:alice", 1, None))


class TestGenesis:
    def test_genesis_is_valid(self, config):
        cert = genesis_prepare_certificate()
        cert.validate(config.scheme, config.quorums)
        assert cert.is_genesis
        assert cert.ts == ZERO_TS
        assert cert.value_hash == hash_value(GENESIS_VALUE)

    def test_genesis_with_wrong_hash_rejected(self, config):
        fake = PrepareCertificate(ts=ZERO_TS, value_hash=b"\x00" * 32, signatures=())
        with pytest.raises(CertificateError):
            fake.validate(config.scheme, config.quorums)

    def test_zero_ts_with_signatures_rejected(self, config):
        cert = make_prepare_cert(config, TS, VHASH)
        fake = PrepareCertificate(
            ts=ZERO_TS, value_hash=hash_value(None), signatures=cert.signatures
        )
        with pytest.raises(CertificateError):
            fake.validate(config.scheme, config.quorums)


class TestPrepareCertificate:
    def test_genuine_certificate_validates(self, config):
        cert = make_prepare_cert(config, TS, VHASH)
        cert.validate(config.scheme, config.quorums)
        assert cert.is_valid(config.scheme, config.quorums)
        assert cert.h == VHASH

    def test_too_few_signatures_rejected(self, config):
        cert = make_prepare_cert(config, TS, VHASH)
        small = PrepareCertificate(
            ts=TS, value_hash=VHASH, signatures=cert.signatures[:-1]
        )
        assert not small.is_valid(config.scheme, config.quorums)

    def test_duplicate_signer_rejected(self, config):
        cert = make_prepare_cert(config, TS, VHASH)
        dup = PrepareCertificate(
            ts=TS,
            value_hash=VHASH,
            signatures=cert.signatures[:-1] + (cert.signatures[0],),
        )
        assert not dup.is_valid(config.scheme, config.quorums)

    def test_non_replica_signer_rejected(self, config):
        cert = make_prepare_cert(config, TS, VHASH)
        bad_sig = Signature(signer="client:alice", value=cert.signatures[0].value)
        bad = PrepareCertificate(
            ts=TS, value_hash=VHASH, signatures=cert.signatures[:-1] + (bad_sig,)
        )
        assert not bad.is_valid(config.scheme, config.quorums)

    def test_signature_over_wrong_statement_rejected(self, config):
        other = make_prepare_cert(config, Timestamp(2, "client:alice"), VHASH)
        # Claim the signatures are for ts=1 when they signed ts=2.
        forged = PrepareCertificate(ts=TS, value_hash=VHASH, signatures=other.signatures)
        assert not forged.is_valid(config.scheme, config.quorums)

    def test_forged_signature_bytes_rejected(self, config):
        sigs = tuple(
            Signature(signer=f"replica:{i}", value=b"\xab" * 32) for i in range(3)
        )
        forged = PrepareCertificate(ts=TS, value_hash=VHASH, signatures=sigs)
        assert not forged.is_valid(config.scheme, config.quorums)

    def test_wire_round_trip(self, config):
        cert = make_prepare_cert(config, TS, VHASH)
        again = PrepareCertificate.from_wire(cert.to_wire())
        assert again == cert
        assert again.is_valid(config.scheme, config.quorums)

    def test_malformed_wire(self):
        with pytest.raises(CertificateError):
            PrepareCertificate.from_wire((1, 2))
        with pytest.raises(CertificateError):
            PrepareCertificate.from_wire(((1, "c"), "not-bytes", ()))

    def test_signers(self, config):
        cert = make_prepare_cert(config, TS, VHASH)
        assert cert.signers() == {"replica:0", "replica:1", "replica:2"}


class TestWriteCertificate:
    def test_genuine_certificate_validates(self, config):
        cert = make_write_cert(config, TS)
        cert.validate(config.scheme, config.quorums)

    def test_too_few_signatures_rejected(self, config):
        cert = make_write_cert(config, TS)
        small = WriteCertificate(ts=TS, signatures=cert.signatures[:-1])
        assert not small.is_valid(config.scheme, config.quorums)

    def test_wrong_timestamp_rejected(self, config):
        cert = make_write_cert(config, TS)
        forged = WriteCertificate(
            ts=Timestamp(9, "client:alice"), signatures=cert.signatures
        )
        assert not forged.is_valid(config.scheme, config.quorums)

    def test_duplicate_signer_rejected(self, config):
        cert = make_write_cert(config, TS)
        dup = WriteCertificate(
            ts=TS, signatures=cert.signatures[:-1] + (cert.signatures[0],)
        )
        assert not dup.is_valid(config.scheme, config.quorums)

    def test_wire_round_trip(self, config):
        cert = make_write_cert(config, TS)
        again = WriteCertificate.from_wire(cert.to_wire())
        assert again == cert

    def test_malformed_wire(self):
        with pytest.raises(CertificateError):
            WriteCertificate.from_wire("nope")


class TestCrossConfig:
    def test_cert_from_other_deployment_rejected(self, config):
        """Certificates signed under a different master seed don't verify."""
        from repro.core import make_system

        other = make_system(f=1, seed=b"other-seed")
        foreign = make_prepare_cert(other, TS, VHASH)
        assert not foreign.is_valid(config.scheme, config.quorums)

    def test_f2_needs_bigger_quorum(self, f2_config):
        cert = make_prepare_cert(f2_config, TS, VHASH)
        assert len(cert.signatures) == 5
        cert.validate(f2_config.scheme, f2_config.quorums)


class TestCertificateProperties:
    """Property-based hardening of certificate validation."""

    def test_no_subset_below_quorum_validates(self, config):
        from itertools import combinations

        cert = make_prepare_cert(config, TS, VHASH)
        for size in range(len(cert.signatures)):
            for subset in combinations(cert.signatures, size):
                partial = PrepareCertificate(
                    ts=TS, value_hash=VHASH, signatures=tuple(subset)
                )
                assert not partial.is_valid(config.scheme, config.quorums)

    def test_any_quorum_subset_of_full_group_validates(self, f2_config):
        """With signatures from all 3f+1 replicas, every 2f+1-subset is a
        valid certificate — quorums are ANY 2f+1 subset (§3.2)."""
        from itertools import combinations

        from repro.core.statements import prepare_reply_statement

        statement = prepare_reply_statement(TS, VHASH)
        all_sigs = tuple(
            f2_config.scheme.sign_statement(f"replica:{i}", statement)
            for i in range(f2_config.n)
        )
        quorum = f2_config.quorum_size
        checked = 0
        for subset in combinations(all_sigs, quorum):
            cert = PrepareCertificate(ts=TS, value_hash=VHASH, signatures=subset)
            assert cert.is_valid(f2_config.scheme, f2_config.quorums)
            checked += 1
            if checked >= 12:  # C(7,5)=21; a sample suffices
                break

    def test_hypothesis_tampered_signature_bytes(self, config):
        from hypothesis import given, settings, strategies as st

        cert = make_prepare_cert(config, TS, VHASH)

        @settings(max_examples=30, deadline=None)
        @given(
            index=st.integers(0, len(cert.signatures) - 1),
            position=st.integers(0, 31),
            bit=st.integers(0, 7),
        )
        def check(index, position, bit):
            sigs = list(cert.signatures)
            original = sigs[index]
            mutated = bytearray(original.value)
            mutated[position % len(mutated)] ^= 1 << bit
            sigs[index] = Signature(signer=original.signer, value=bytes(mutated))
            tampered = PrepareCertificate(
                ts=TS, value_hash=VHASH, signatures=tuple(sigs)
            )
            assert not tampered.is_valid(config.scheme, config.quorums)

        check()
