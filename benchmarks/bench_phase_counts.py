"""E1 — Phases per operation (Abstract, §3, §6).

Paper claims: writes take 3 phases (base) / mostly 2 (optimized; 3 under
contention); strong takes 3 normally.  Reads take 1 phase normally and never
more than 2, no matter what bad clients do.
"""

from __future__ import annotations

from repro import build_cluster
from repro.analysis import format_table
from repro.sim import read_script, write_script

from benchmarks.conftest import run_once


def _run_variant(variant: str, f: int, writers: int, seed: int):
    cluster = build_cluster(f=f, variant=variant, seed=seed)
    scripts = {
        f"w{i}": write_script(f"client:w{i}", 6) + read_script(3)
        for i in range(writers)
    }
    cluster.run_scripts(scripts, max_time=300)
    return cluster.metrics


def test_e1_phase_counts(benchmark):
    def experiment():
        rows = []
        results = {}
        for variant in ("base", "optimized", "strong"):
            for writers in (1, 3):
                metrics = _run_variant(variant, f=1, writers=writers, seed=100)
                wp = metrics.phases_summary("write")
                rp = metrics.phases_summary("read")
                results[(variant, writers)] = (wp, rp, metrics)
                rows.append(
                    [
                        variant,
                        writers,
                        wp.p50,
                        wp.maximum,
                        rp.p50,
                        rp.maximum,
                        f"{metrics.fast_path_rate():.0%}"
                        if variant == "optimized"
                        else "-",
                    ]
                )
        print()
        print(
            format_table(
                ["variant", "writers", "write p50", "write max",
                 "read p50", "read max", "fast-path"],
                rows,
                title="E1: phases per operation (paper: base=3, optimized≈2, read=1..2)",
            )
        )
        return results

    results = run_once(benchmark, experiment)

    # Paper-shape assertions.
    base_solo = results[("base", 1)]
    assert base_solo[0].p50 == 3 and base_solo[0].maximum == 3
    assert base_solo[1].p50 == 1

    opt_solo = results[("optimized", 1)]
    assert opt_solo[0].p50 == 2  # "mostly 2 phases"
    assert opt_solo[2].fast_path_rate() > 0.9

    strong_solo = results[("strong", 1)]
    assert strong_solo[0].p50 == 3

    # Reads never exceed 2 phases in any configuration.
    for (variant, writers), (wp, rp, metrics) in results.items():
        assert rp.maximum <= 2, (variant, writers)
