"""E2 — Message and byte complexity (§3.3.1).

Paper claims: an operation exchanges O(|Q|) messages, and the total message
size is O(|Q|^2) because certificate-bearing messages are O(|Q|) each.
We measure actual wire traffic per operation for f = 1..4 and fit power-law
exponents against |Q|; messages should fit ~|Q|^1 and bytes ~|Q|^2.
"""

from __future__ import annotations

from repro import build_cluster
from repro.analysis import CostModel, fit_power_law, format_table
from repro.core import QuorumSystem
from repro.sim import write_script, read_script

from benchmarks.conftest import run_once

OPS = 10


def _measure(f: int, seed: int = 200):
    cluster = build_cluster(f=f, seed=seed)
    node = cluster.add_client("w")
    node.run_script(write_script("client:w", OPS))
    cluster.run(max_time=300)
    cluster.settle()
    stats = cluster.network.stats
    write_msgs = stats.messages_sent / OPS
    write_bytes = stats.bytes_sent / OPS
    # Wire size of one prepare certificate (the §3.3.1 O(|Q|) factor).
    from repro.encoding import canonical_encode

    cert = cluster.replicas["replica:0"].pcert
    cert_msg_bytes = float(len(canonical_encode(cert.to_wire())))
    stats.reset()
    node.run_script(read_script(OPS))
    cluster.run(max_time=300)
    cluster.settle()
    read_msgs = stats.messages_sent / OPS
    read_bytes = stats.bytes_sent / OPS
    return write_msgs, write_bytes, read_msgs, read_bytes, cert_msg_bytes


def test_e2_message_complexity(benchmark):
    def experiment():
        rows = []
        qs, write_msgs, write_bytes, cert_sizes = [], [], [], []
        for f in (1, 2, 3, 4, 6):
            q = 2 * f + 1
            wm, wb, rm, rb, cb = _measure(f)
            model = CostModel(QuorumSystem.bft_bc(f))
            qs.append(float(q))
            write_msgs.append(wm)
            write_bytes.append(wb)
            cert_sizes.append(cb)
            rows.append([f, q, wm, model.write_messages(), wb, cb, rm, rb])
        k_msgs = fit_power_law(qs, write_msgs)
        k_bytes = fit_power_law(qs, write_bytes)
        k_cert = fit_power_law(qs, cert_sizes)
        print()
        print(
            format_table(
                ["f", "|Q|", "msgs/write", "model msgs", "bytes/write",
                 "cert bytes", "msgs/read", "bytes/read"],
                rows,
                title="E2: traffic per operation vs quorum size",
            )
        )
        print(
            f"\nfitted exponents: messages ~ |Q|^{k_msgs:.2f} (paper: 1); "
            f"certificate message ~ |Q|^{k_cert:.2f} (paper: 1); "
            f"total bytes ~ |Q|^{k_bytes:.2f} (paper: 2 asymptotically — "
            f"constant headers dilute small |Q|)"
        )
        return k_msgs, k_bytes, k_cert, rows

    k_msgs, k_bytes, k_cert, rows = run_once(benchmark, experiment)
    # §3.3.1 shape, checked compositionally: O(|Q|) messages per operation,
    # certificate-carrying messages of size O(|Q|) — their product is the
    # paper's O(|Q|^2) total.  The directly fitted byte exponent sits
    # between 1 and 2 because fixed headers dominate at small |Q|.
    assert 0.8 < k_msgs < 1.3, k_msgs
    assert 0.7 < k_cert < 1.3, k_cert
    assert k_bytes > 1.4, k_bytes
    # Measured messages should be close to the analytical model (2*3*n per
    # write; retransmission-free reliable network).
    for row in rows:
        measured, model = row[2], row[3]
        assert abs(measured - model) / model < 0.25, row
