"""E21 — Open-loop production load at a million-client identity scale.

Drives the :mod:`repro.load` harness through a throughput-vs-latency curve:
four offered-load points around the analytical single-server capacity
(:meth:`~repro.analysis.costs.CostModel.open_loop_capacity`), each point an
independent open-loop run over a 10^5-identity universe walked sequentially
so every point touches >= 10^5 *distinct* client identities.  The final
point offers more than capacity, so the measured saturation throughput can
be cross-checked against the closed form — the acceptance gate is agreement
within 25%.

Replicas are single-server queues (``service_delay`` per inbound frame);
the optimized two-phase variant at a 50/50 read/write mix serves
1.5 request frames per operation per replica, so with a 1 ms service time
the predicted capacity is ~667 ops/s.  The network is reliable and the
retransmission timer is parked far beyond the run, so queueing delay — not
retry traffic — is what the latency percentiles measure.

Results land in ``BENCH_throughput.json`` under ``e21_open_loop_curve``.

Marked ``slow``: ~half a million simulated operations, tens of minutes of
wall clock.  Excluded from tier-1 runs.
"""

from __future__ import annotations

import pathlib
import sys
import time

import pytest

from repro.analysis import format_table
from repro.load import LoadProfile, SimLoadOptions, SimLoadHarness

from benchmarks.conftest import run_once

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "tools"))
import bench_record  # noqa: E402

pytestmark = pytest.mark.slow

IDENTITIES = 100_000
ARRIVAL_TARGET = 105_000  # >= IDENTITIES so every point covers the universe
SERVICE_DELAY = 0.001
WRITE_FRACTION = 0.5
VARIANT = "optimized"
LOAD_POINTS = (0.3, 0.6, 0.9, 1.05)


def _run_point(fraction: float, seed: int) -> dict:
    """One open-loop run at ``fraction`` of the predicted capacity."""
    # Capacity for optimized at a 50/50 mix: 1 / (1.5 * service_delay).
    capacity = 1.0 / (
        (WRITE_FRACTION * 2 + (1 - WRITE_FRACTION) * 1) * SERVICE_DELAY
    )
    rate = fraction * capacity
    profile = LoadProfile(
        rate=rate,
        duration=ARRIVAL_TARGET / rate,
        identities=IDENTITIES,
        objects=64,
        write_fraction=WRITE_FRACTION,
        zipf_skew=1.1,
        seed=seed,
        identity_policy="sequential",
    )
    options = SimLoadOptions(
        variant=VARIANT,
        service_delay=SERVICE_DELAY,
        # Reliable network: retransmissions would only distort the queueing
        # measurement, so the timer is parked beyond any real latency.
        retransmit_interval=30.0,
        drain=60.0,
    )
    started = time.perf_counter()
    report = SimLoadHarness(profile, options).run()
    wall = time.perf_counter() - started
    return {
        "offered_fraction": fraction,
        "offered_rate": round(report.offered_rate, 1),
        "arrivals": report.arrivals,
        "completed": report.completed,
        "failed": report.failed,
        "distinct_identities": report.distinct_identities,
        "achieved_throughput": round(report.achieved_throughput, 1),
        "utilization": round(report.utilization, 3),
        "write_p50_ms": round(report.write_p50 * 1000, 2),
        "write_p95_ms": round(report.write_p95 * 1000, 2),
        "write_p99_ms": round(report.write_p99 * 1000, 2),
        "read_p95_ms": round(report.read_p95 * 1000, 2),
        "completion": round(report.completion_fraction, 4),
        "predicted_capacity": round(report.predicted_capacity, 1),
        "tracked_entries": report.identity["tracked_entries"],
        "registry_evictions": report.identity["registry_evictions"],
        "client_state_spills": report.identity["client_state_spills"],
        "wall_seconds": round(wall, 1),
    }


def test_e21_open_loop_curve(benchmark):
    def experiment() -> dict:
        points = [
            _run_point(fraction, seed=1600 + index)
            for index, fraction in enumerate(LOAD_POINTS)
        ]
        predicted = points[0]["predicted_capacity"]
        saturated = points[-1]
        measured = saturated["achieved_throughput"]
        error = abs(measured - predicted) / predicted
        return {
            "variant": VARIANT,
            "write_fraction": WRITE_FRACTION,
            "service_delay": SERVICE_DELAY,
            "identities": IDENTITIES,
            "points": points,
            "predicted_capacity": predicted,
            "measured_capacity": measured,
            "capacity_error": round(error, 4),
        }

    result = run_once(benchmark, experiment)
    bench_record.record("e21_open_loop_curve", result)

    print(
        format_table(
            ["offered/cap", "offered/s", "achieved/s", "write p95 ms",
             "write p99 ms", "completion", "distinct ids"],
            [
                [p["offered_fraction"], p["offered_rate"],
                 p["achieved_throughput"], p["write_p95_ms"],
                 p["write_p99_ms"], p["completion"],
                 p["distinct_identities"]]
                for p in result["points"]
            ],
            title=(
                f"E21 open-loop curve ({VARIANT}, predicted capacity "
                f"{result['predicted_capacity']}/s, measured "
                f"{result['measured_capacity']}/s)"
            ),
        )
    )

    for point in result["points"]:
        assert point["distinct_identities"] >= 100_000
    # Underloaded points keep up with the offered rate and finish everything.
    for point in result["points"][:-1]:
        assert point["completion"] == 1.0
    # The saturated point pins the closed form within the acceptance band.
    assert result["capacity_error"] <= 0.25
