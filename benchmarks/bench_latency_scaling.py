"""E11 (supplementary figure) — Operation latency and traffic vs f.

The paper's efficiency argument is phrased in phases and round-trips; this
bench renders it as the latency/scale series a systems evaluation would
plot: per-operation latency (in units of one network round-trip) and traffic
as the fault threshold grows, for all three variants.

Expected shape: latency is flat in f (phases × RTT, independent of group
size), while traffic grows linearly — the protocol pays for bigger groups in
bandwidth, not time.
"""

from __future__ import annotations

from repro import LinkProfile, build_cluster
from repro.analysis import fit_power_law, format_table
from repro.sim import read_script, write_script

from benchmarks.conftest import run_once

DELAY = 0.005
RTT = 2 * DELAY
OPS = 6


def _run(variant: str, f: int, seed: int = 1100):
    cluster = build_cluster(
        f=f,
        variant=variant,
        seed=seed,
        profile=LinkProfile(min_delay=DELAY, max_delay=DELAY),
    )
    node = cluster.add_client("w")
    node.run_script(write_script("client:w", OPS) + read_script(OPS))
    cluster.run(max_time=300)
    writes = cluster.metrics.latency_summary("write")
    reads = cluster.metrics.latency_summary("read")
    msgs = cluster.network.stats.messages_sent / (2 * OPS)
    return writes.p50 / RTT, reads.p50 / RTT, msgs


def test_e11_latency_and_traffic_vs_f(benchmark):
    def experiment():
        rows = []
        series: dict[str, list[tuple[int, float, float, float]]] = {}
        for variant in ("base", "optimized", "strong"):
            series[variant] = []
            for f in (1, 2, 3):
                w_rtt, r_rtt, msgs = _run(variant, f)
                series[variant].append((f, w_rtt, r_rtt, msgs))
                rows.append([variant, f, 3 * f + 1, w_rtt, r_rtt, msgs])
        print()
        print(
            format_table(
                ["variant", "f", "replicas", "write RTTs", "read RTTs", "msgs/op"],
                rows,
                title="E11: latency (round-trips) and traffic vs fault threshold",
            )
        )
        return series

    series = run_once(benchmark, experiment)
    for variant, points in series.items():
        write_rtts = [p[1] for p in points]
        # Latency is flat in f: same phase count regardless of group size.
        assert max(write_rtts) - min(write_rtts) < 0.5, (variant, write_rtts)
        # Traffic grows ~linearly with n.
        ns = [float(3 * p[0] + 1) for p in points]
        msgs = [p[3] for p in points]
        k = fit_power_law(ns, msgs)
        assert 0.8 < k < 1.2, (variant, k)
    # Variant ordering is preserved at every f: optimized < base <= strong.
    for i in range(3):
        assert series["optimized"][i][1] < series["base"][i][1]
        assert series["base"][i][1] <= series["strong"][i][1] + 0.01
