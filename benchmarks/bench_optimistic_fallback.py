"""E10 — Optimized fast-path success vs contention (§6.1).

Paper claims: the merged phase-1/2 "will work well in the normal case where
writes are received by all replicas in the same order", so writes normally
take two phases; under concurrent writers replicas may predict different
timestamps and the client falls back to the explicit phase 2 (3 phases).

We sweep the number of concurrent writers (with network jitter so that
writes genuinely interleave) and report the fast-path rate.
"""

from __future__ import annotations

from repro import LinkProfile, build_cluster
from repro.analysis import format_table
from repro.sim import write_script
from repro.spec import check_register_linearizable

from benchmarks.conftest import run_once

WRITES_EACH = 6
#: High jitter: delays spread over 10x so concurrent writes interleave
#: mid-protocol and replicas see them in different orders.
JITTERY = LinkProfile(min_delay=0.001, max_delay=0.02)


def _run(writers: int, seed: int):
    cluster = build_cluster(f=1, variant="optimized", seed=seed, profile=JITTERY)
    scripts = {
        f"w{i}": write_script(f"client:w{i}", WRITES_EACH) for i in range(writers)
    }
    cluster.run_scripts(scripts, max_time=300)
    ok = check_register_linearizable(cluster.history).ok
    return cluster.metrics, ok


def test_e10_fast_path_vs_contention(benchmark):
    def experiment():
        rows = []
        rates = {}
        for writers in (1, 2, 4, 8):
            fast_rates = []
            phases_p50 = []
            for seed in (1000, 1001, 1002):
                metrics, ok = _run(writers, seed)
                assert ok
                fast_rates.append(metrics.fast_path_rate())
                phases_p50.append(metrics.phases_summary("write").p50)
            rate = sum(fast_rates) / len(fast_rates)
            rates[writers] = rate
            rows.append(
                [writers, f"{rate:.0%}", sum(phases_p50) / len(phases_p50)]
            )
        print()
        print(
            format_table(
                ["concurrent writers", "fast-path rate", "write phases p50"],
                rows,
                title="E10: optimized fast path vs contention "
                "(paper: 2 phases normally, 3 under contention)",
            )
        )
        return rates

    rates = run_once(benchmark, experiment)
    # Uncontended: effectively always fast.
    assert rates[1] > 0.95
    # Contention erodes the fast path (the §6.1 failure mode is real) ...
    assert rates[8] < rates[1]
    # ... but the protocol always completes and stays atomic (asserted in
    # the inner loop), and the fallback costs exactly one extra phase.
