"""E14 (supplementary) — geo-replicated deployment and quorum choice.

The paper's quorums are "any subset with 2f+1 replicas" — which subset a
client uses is a deployment decision.  This bench places the 3f+1 replicas
in three sites with different client RTTs and compares:

* broadcast-to-all (waits for the 2f+1 fastest replies), vs
* a preferred *near* quorum (2f+1 lowest-latency replicas), vs
* a preferred *far* quorum (pessimal choice).

Expected shape: broadcast ≈ near-preferred (the fast replicas dominate
either way) while the far quorum pays the distant sites' RTT on every phase
— quorum placement, not protocol structure, governs wide-area latency.
"""

from __future__ import annotations

from repro import LinkProfile, build_cluster
from repro.analysis import format_table
from repro.sim import write_script

from benchmarks.conftest import run_once

OPS = 6

#: replica index -> one-way delay to the client ("site" placement):
#: replicas 0-1 are local (2 ms), 2 regional (15 ms), 3 remote (40 ms).
SITE_DELAY = {0: 0.002, 1: 0.002, 2: 0.015, 3: 0.040}


def _cluster(prefer: bool, reverse_sites: bool, seed: int = 1400):
    cluster = build_cluster(
        f=1,
        seed=seed,
        prefer_quorum=prefer,
        profile=LinkProfile(min_delay=0.002, max_delay=0.002),
    )
    for index, delay in SITE_DELAY.items():
        # With reverse_sites the *preferred* (lowest-index) replicas are the
        # distant ones: the pessimal quorum choice.
        effective = SITE_DELAY[3 - index] if reverse_sites else delay
        profile = LinkProfile(min_delay=effective, max_delay=effective)
        rid = f"replica:{index}"
        cluster.network.set_link_profile("client:w", rid, profile)
        cluster.network.set_link_profile(rid, "client:w", profile)
    return cluster


def _latency(prefer: bool, reverse_sites: bool) -> float:
    cluster = _cluster(prefer, reverse_sites)
    node = cluster.add_client("w")
    node.run_script(write_script("client:w", OPS))
    cluster.run(max_time=300)
    return cluster.metrics.latency_summary("write").p50 * 1000


def test_e14_geo_quorum_placement(benchmark):
    def experiment():
        broadcast = _latency(prefer=False, reverse_sites=False)
        near = _latency(prefer=True, reverse_sites=False)
        far = _latency(prefer=True, reverse_sites=True)
        rows = [
            ["broadcast all (fastest 2f+1 win)", broadcast],
            ["preferred quorum: 2 local + 1 regional", near],
            ["preferred quorum: remote-first (pessimal)", far],
        ]
        print()
        print(
            format_table(
                ["strategy", "write latency p50 (ms)"],
                rows,
                title="E14: geo-replicated sites (2/15/40 ms) — quorum "
                "placement governs WAN latency",
            )
        )
        return broadcast, near, far

    broadcast, near, far = run_once(benchmark, experiment)
    # The near quorum's slowest member is the 15 ms regional replica: each
    # phase costs ~30 ms RTT; broadcast is bounded by the same 2f+1-th reply.
    assert abs(broadcast - near) < 5, (broadcast, near)
    # The pessimal quorum is slower — but not by the full 40 ms-site RTT:
    # the retransmission tick (50 ms) widens each phase to the fast
    # replicas, capping the damage at ~one retransmit interval per phase.
    # Quorum placement matters; retransmit-widening bounds how much.
    assert far > near * 1.5, (far, near)
    assert far < near * 3.0, (far, near)
