"""E20 — signature-free fast path vs the signed protocols.

One closed-loop write workload, four arms: the base and optimized signed
protocols under the HMAC scheme, the optimized protocol under textbook RSA
(where per-write signing cost is real CPU), and the fastpath variant, whose
common-case writes carry commitments and MAC vectors instead of signatures.

The accounting is exact, not sampled: the signed arms must perform the
closed-form ``2 + 3n`` signature creations per write
(:meth:`~repro.analysis.costs.CostModel.write_signature_ops`), the fast arm
must perform **zero**, and the fast arm's MAC computations must match the
``2n(n + 2)`` closed form.  The headline ratio the issue targets — at least
a 5x reduction in per-write signature operations versus the signed
optimized protocol — is therefore 14 -> 0 at f=1, asserted as equality, and
the wall-clock comparison against the RSA arm shows what those signatures
cost when the scheme is not simulated.
"""

from __future__ import annotations

import pathlib
import sys
import time

from repro import LinkProfile, build_cluster
from repro.analysis import CostModel, format_table
from repro.sim import write_script

from benchmarks.conftest import run_once

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "tools"))
import bench_record  # noqa: E402

OPS_EACH = 10
CLIENTS = 4
DELAY = 0.005


def _arm(variant: str, scheme: str, seed: int = 2000) -> dict:
    """Run the fixed workload once; return exact counters and timings."""
    started = time.perf_counter()
    cluster = build_cluster(
        f=1,
        variant=variant,
        scheme=scheme,
        seed=seed,
        profile=LinkProfile(min_delay=DELAY, max_delay=DELAY),
    )
    scripts = {
        f"w{i}": write_script(f"client:w{i}", OPS_EACH) for i in range(CLIENTS)
    }
    cluster.run_scripts(scripts, max_time=600)
    elapsed = time.perf_counter() - started
    writes = cluster.metrics.operations
    vouch_signs = sum(
        r.stats.vouch_signs for r in cluster.replicas.values()
    )
    return {
        "variant": variant,
        "scheme": scheme,
        "writes": writes,
        "signs": cluster.config.scheme.stats.signs,
        "vouch_signs": vouch_signs,
        "macs_computed": cluster.config.authenticator.macs_computed,
        "macs_checked": cluster.config.authenticator.macs_checked,
        "fast_path_rate": cluster.metrics.fast_path_rate(),
        "fallback_rate": cluster.metrics.fallback_rate(),
        "wall_seconds": elapsed,
        "ops_per_wall_second": writes / elapsed,
        "virtual_ops_per_second": writes / cluster.scheduler.now,
        "model": CostModel(cluster.config.quorums),
    }


def test_e20_fastpath_signature_ops(benchmark):
    """Exact per-write signature accounting, all four arms."""

    def experiment():
        arms = {
            "base-hmac": _arm("base", "hmac"),
            "optimized-hmac": _arm("optimized", "hmac"),
            "optimized-rsa": _arm("optimized", "rsa"),
            "fastpath-hmac": _arm("fastpath", "hmac"),
        }
        rows = []
        for name, arm in arms.items():
            rows.append(
                [
                    name,
                    arm["writes"],
                    arm["signs"],
                    round(arm["signs"] / arm["writes"], 2),
                    arm["macs_computed"],
                    round(arm["wall_seconds"], 3),
                    round(arm["virtual_ops_per_second"], 1),
                ]
            )
        print()
        print(
            format_table(
                [
                    "arm",
                    "writes",
                    "signatures",
                    "sigs/write",
                    "MACs computed",
                    "wall seconds",
                    "writes/s (virtual)",
                ],
                rows,
                title="E20: signature-free fast path vs signed protocols",
            )
        )
        return arms

    arms = run_once(benchmark, experiment)
    fast = arms["fastpath-hmac"]
    model = fast["model"]
    writes = fast["writes"]

    # The tentpole number: zero signatures on the fast path, exactly.
    assert fast["signs"] == 0, fast
    assert fast["vouch_signs"] == 0, fast  # write-only workload: no vouches
    assert fast["fast_path_rate"] == 1.0 and fast["fallback_rate"] == 0.0, fast

    # Signed arms match the closed form 2 + 3n per write exactly.
    for name in ("base-hmac", "optimized-hmac", "optimized-rsa"):
        arm = arms[name]
        expected = arm["model"].write_signature_ops(arm["variant"])
        assert arm["signs"] == expected * arm["writes"], (name, arm)
        # >= 5x reduction required by the issue; 14 -> 0 is infinite, so
        # assert the signed arm's count alone clears the 5x bar vs zero.
        assert expected >= 5, (name, expected)

    # Fast-arm MAC computations match the closed form 2n(n + 2) per write.
    assert fast["macs_computed"] == model.fast_write_macs_computed() * writes, (
        fast["macs_computed"],
        model.fast_write_macs_computed(),
        writes,
    )

    # Honesty check the issue asks to document rather than hide: the fast
    # path computes MORE symmetric-crypto operations than the signed HMAC
    # arm (whose "signatures" are just one HMAC each); the win is that MACs
    # replace public-key signatures, shown by the RSA head-to-head.
    hmac_ops = arms["optimized-hmac"]["signs"]
    assert fast["macs_computed"] > hmac_ops, (fast["macs_computed"], hmac_ops)

    # Phase structure: the fast path keeps the optimized variant's 2-phase
    # virtual-time throughput advantage over 3-phase base.
    assert (
        fast["virtual_ops_per_second"]
        > arms["base-hmac"]["virtual_ops_per_second"]
    ), (fast, arms["base-hmac"])

    # Under a real signature scheme the signature savings dominate: the
    # fast arm completes the same workload in less wall time than the RSA
    # signed arm by a wide margin.
    assert fast["wall_seconds"] < arms["optimized-rsa"]["wall_seconds"], arms

    recorded = {
        name.replace("-", "_"): {k: v for k, v in arm.items() if k != "model"}
        for name, arm in arms.items()
    }
    recorded["signature_ops_per_write_signed"] = model.write_signature_ops(
        "optimized"
    )
    recorded["signature_ops_per_write_fast"] = model.write_signature_ops(
        "fastpath"
    )
    bench_record.record("e20_fastpath", recorded)
