"""Real-network microbenchmark: throughput over the asyncio TCP transport.

Not a paper experiment (the authors report no testbed numbers), but the
number a downstream user asks first: how many operations per second does the
implementation sustain on real sockets?  Runs the base and optimized
protocols on localhost with four replica servers.
"""

from __future__ import annotations

import asyncio

from repro.analysis import format_table
from repro.core import (
    BftBcClient,
    BftBcReplica,
    OptimizedBftBcClient,
    OptimizedBftBcReplica,
    make_system,
)
from repro.net.asyncio_transport import AsyncClient, ReplicaServer

from benchmarks.conftest import run_once

OPS = 25


async def _throughput(variant: str) -> tuple[float, float]:
    config = make_system(f=1, seed=b"tcp-bench-" + variant.encode())
    replica_cls = OptimizedBftBcReplica if variant == "optimized" else BftBcReplica
    client_cls = OptimizedBftBcClient if variant == "optimized" else BftBcClient
    servers, addrs = [], {}
    for rid in config.quorums.replica_ids:
        server = ReplicaServer(replica_cls(rid, config))
        host, port = await server.start()
        addrs[rid] = (host, port)
        servers.append(server)
    client = AsyncClient(client_cls("client:bench", config), addrs)
    await client.connect()
    loop = asyncio.get_running_loop()
    start = loop.time()
    for seq in range(OPS):
        await client.write(("client:bench", seq, None))
    write_elapsed = loop.time() - start
    start = loop.time()
    for _ in range(OPS):
        await client.read()
    read_elapsed = loop.time() - start
    await client.close()
    for server in servers:
        await server.stop()
    return OPS / write_elapsed, OPS / read_elapsed


def test_tcp_throughput(benchmark):
    def experiment():
        results = {}
        for variant in ("base", "optimized"):
            results[variant] = asyncio.run(_throughput(variant))
        rows = [
            [variant, w, r] for variant, (w, r) in results.items()
        ]
        print()
        print(
            format_table(
                ["variant", "writes/s", "reads/s"],
                rows,
                title=f"TCP localhost throughput (f=1, {OPS} sequential ops, "
                "one client)",
            )
        )
        return results

    results = run_once(benchmark, experiment)
    for variant, (writes_per_s, reads_per_s) in results.items():
        assert writes_per_s > 20, (variant, writes_per_s)
        assert reads_per_s > 40, (variant, reads_per_s)
    # Fewer phases => more writes per second.
    assert results["optimized"][0] > results["base"][0]
