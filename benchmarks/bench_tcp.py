"""Real-network microbenchmark: throughput over the asyncio TCP transport.

Not a paper experiment (the authors report no testbed numbers), but the
number a downstream user asks first: how many operations per second does the
implementation sustain on real sockets?  Runs the base and optimized
protocols on localhost through the unified ``deploy()`` handle (four
replica servers, one sequential client); ``bench_cluster.py`` (E22) covers
the pipelined multi-process configurations.
"""

from __future__ import annotations

import time

from repro.analysis import format_table
from repro.cluster import DeploymentSpec, deploy

from benchmarks.conftest import run_once

OPS = 25


def _throughput(variant: str) -> tuple[float, float]:
    spec = DeploymentSpec(transport="tcp", variant=variant, seed=77)
    with deploy(spec) as dep:
        start = time.perf_counter()
        records = dep.run_script([("write", f"bench{i}") for i in range(OPS)])
        write_elapsed = time.perf_counter() - start
        assert all(record.result is not None for record in records)
        start = time.perf_counter()
        records = dep.run_script([("read", None)] * OPS)
        read_elapsed = time.perf_counter() - start
        assert all(record.result == f"bench{OPS - 1}" for record in records)
    return OPS / write_elapsed, OPS / read_elapsed


def test_tcp_throughput(benchmark):
    def experiment():
        results = {}
        for variant in ("base", "optimized"):
            results[variant] = _throughput(variant)
        rows = [
            [variant, w, r] for variant, (w, r) in results.items()
        ]
        print()
        print(
            format_table(
                ["variant", "writes/s", "reads/s"],
                rows,
                title=f"TCP localhost throughput (f=1, {OPS} sequential ops, "
                "one client)",
            )
        )
        return results

    results = run_once(benchmark, experiment)
    for variant, (writes_per_s, reads_per_s) in results.items():
        assert writes_per_s > 20, (variant, writes_per_s)
        assert reads_per_s > 40, (variant, reads_per_s)
    # Fewer phases => more writes per second.
    assert results["optimized"][0] > results["base"][0]
