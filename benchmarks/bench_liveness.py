"""E6 — Liveness under attack (§5.1).

Paper claims: good clients always complete — reads in the time of two
client RPC round-trips to 2f+1 replicas, writes in three — regardless of
what Byzantine clients are doing, because phase-1/3 requests are answered
unconditionally and a good client's phase-2 request is never refused.

We run a good client's workload concurrently with each §3.2 attack (plus f
crashed replicas) and report completed operations and latency in units of
one network round-trip.
"""

from __future__ import annotations

from repro import LinkProfile, build_cluster
from repro.analysis import format_table
from repro.byzantine import (
    CrashedReplica,
    EquivocationAttack,
    LurkingWriteAttack,
    PartialWriteAttack,
    TimestampExhaustionAttack,
)
from repro.sim import read_script, write_script

from benchmarks.conftest import run_once

#: Fixed symmetric delay so one round-trip is exactly 2 * DELAY.
DELAY = 0.005
RTT = 2 * DELAY
OPS = 5

ATTACKS = {
    "none": None,
    "equivocation": EquivocationAttack,
    "partial-write": PartialWriteAttack,
    "ts-exhaustion": TimestampExhaustionAttack,
    "lurking-writes": LurkingWriteAttack,
}


def _run(attack_cls, *, crashed: bool, seed: int = 600):
    overrides = {3: CrashedReplica} if crashed else {}
    cluster = build_cluster(
        f=1,
        seed=seed,
        profile=LinkProfile(min_delay=DELAY, max_delay=DELAY),
        replica_overrides=overrides,
    )
    if attack_cls is not None:
        attack = attack_cls(cluster, "evil")
        attack.start()
    node = cluster.add_client("good")
    node.run_script(write_script("client:good", OPS) + read_script(OPS))
    cluster.run(max_time=300)
    writes = cluster.metrics.latency_summary("write")
    reads = cluster.metrics.latency_summary("read")
    return writes, reads


def test_e6_liveness_under_attack(benchmark):
    def experiment():
        rows = []
        results = {}
        for name, attack_cls in ATTACKS.items():
            writes, reads = _run(attack_cls, crashed=True)
            results[name] = (writes, reads)
            rows.append(
                [
                    name,
                    writes.count,
                    writes.p50 / RTT,
                    reads.count,
                    reads.p50 / RTT,
                    reads.maximum / RTT,
                ]
            )
        print()
        print(
            format_table(
                ["attack", "writes done", "write RTTs p50",
                 "reads done", "read RTTs p50", "read RTTs max"],
                rows,
                title="E6: good-client progress under each attack + 1 crashed "
                "replica (paper: writes 3 RTTs, reads <= 2 RTTs)",
            )
        )
        return results

    results = run_once(benchmark, experiment)
    for name, (writes, reads) in results.items():
        assert writes.count == OPS, name
        assert reads.count == OPS, name
        # Writes: three RPC round-trips (§5.1); allow a little slack for the
        # retransmit timer granularity.
        assert writes.p50 <= 3 * RTT * 1.5, (name, writes.p50)
        # Reads: at most two round-trips even under attack.
        assert reads.maximum <= 2 * RTT * 1.5, (name, reads.maximum)


def test_e6b_reads_constant_rounds_under_write_storm(benchmark):
    """§8: "reads terminate in a constant number of rounds, independently of
    the behavior of concurrent writers" (the Martin et al. comparison).
    A reader runs against four concurrent heavy writers; every read must
    finish in <= 2 phases."""

    def experiment():
        cluster = build_cluster(
            f=1,
            seed=601,
            profile=LinkProfile(min_delay=0.001, max_delay=0.02),
        )
        scripts = {
            f"w{i}": write_script(f"client:w{i}", 8) for i in range(4)
        }
        reader = cluster.add_client("reader")
        reader.run_script(read_script(10), think_time=0.005)
        cluster.run_scripts(scripts, max_time=300)
        reads = cluster.metrics.by_kind("read")
        phases = [s.phases for s in reads]
        from collections import Counter

        histogram = Counter(phases)
        print()
        print(
            format_table(
                ["read phases", "count"],
                sorted(histogram.items()),
                title="E6b: read rounds under a 4-writer storm "
                "(paper: constant, <= 2)",
            )
        )
        return phases

    phases = run_once(benchmark, experiment)
    assert len(phases) == 10
    assert max(phases) <= 2
