"""E18 — Chaos soak: oracle survival across a seed-derived fault sweep.

Not a paper experiment but a robustness soak over everything the paper
claims: a large simulated campaign (crashes, restarts from the WAL,
partitions, reordering links, Byzantine replicas and clients, concurrent
correct workloads) where every episode must satisfy the full invariant
oracle battery — Definition 1 BFT-linearizability, the Theorem 1/2
lurking-write bounds, Lemma 1 over the signing logs, recovery-fingerprint
and WAL idempotence — plus the TCP proxy campaign against the real
transport.  The headline numbers (episodes survived, fault volume
endured) go to ``BENCH_throughput.json`` as the resilience floor.

Marked ``slow`` and ``chaos``: hundreds of simulated episodes, excluded
from tier-1 runs (``tools/chaos_ci.py`` runs the nightly subset).
"""

from __future__ import annotations

import pathlib
import sys

import pytest

from repro.analysis import format_campaign
from repro.chaos import CampaignConfig, run_campaign
from repro.chaos.tcp import TcpChaosConfig, run_tcp_campaign

from benchmarks.conftest import run_once

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "tools"))
import bench_record  # noqa: E402

pytestmark = [pytest.mark.slow, pytest.mark.chaos]

SEED = 1800
EPISODES = 300


def test_e18_chaos_soak(benchmark):
    def experiment():
        campaign = run_campaign(CampaignConfig(seed=SEED, episodes=EPISODES))
        summary = campaign.summary()
        tcp = run_tcp_campaign(TcpChaosConfig(seed=SEED))
        print()
        print(format_campaign(summary))
        print()
        print(format_campaign(tcp))
        return summary, tcp

    summary, tcp = run_once(benchmark, experiment)
    bench_record.record(
        "e18_chaos_soak",
        {
            "seed": SEED,
            "episodes": summary["episodes"],
            "violations": summary["violations"],
            "operations": summary["totals"]["operations"],
            "messages_dropped": summary["totals"]["messages_dropped"],
            "messages_reordered": summary["totals"]["messages_reordered"],
            "replica_crashes": summary["totals"]["replica_crashes"],
            "tcp_ok": tcp["ok"],
        },
    )
    assert summary["violations"] == 0
    assert tcp["ok"]
