"""E7 — Atomicity for good clients despite Byzantine clients (§1, §3.2, §8).

Paper claims: BFT-BC gives atomic (linearizable) semantics to good clients
no matter what Byzantine clients do.  The BQS baseline does not: the same
equivocation attack that BFT-BC provably neutralises (Lemma 1(3)) splits a
BQS register and produces non-linearizable histories.

We run randomized good-client workloads concurrently with the equivocation
attack on both systems, many seeds, and count atomicity violations.
"""

from __future__ import annotations

from repro import build_cluster
from repro.analysis import format_table
from repro.baselines.runner import build_bqs_cluster
from repro.byzantine import BqsEquivocationAttack, EquivocationAttack
from repro.sim import read_script, write_script
from repro.spec import check_bft_linearizable, check_register_linearizable

from benchmarks.conftest import run_once

SEEDS = range(700, 708)


def _bftbc_trial(seed: int) -> bool:
    cluster = build_cluster(f=1, seed=seed)
    attack = EquivocationAttack(cluster, "evil")
    attack.start()
    r1 = cluster.add_client("r1")
    r2 = cluster.add_client("r2")
    w = cluster.add_client("w")
    w.run_script(write_script("client:w", 2), start_delay=0.3)
    r1.run_script(read_script(3), think_time=0.2)
    r2.run_script(read_script(3), start_delay=0.1, think_time=0.2)
    cluster.run(max_time=120)
    return check_bft_linearizable(
        cluster.history, max_b=1, bad_clients={"client:evil"}
    ).ok


def _bqs_trial(seed: int) -> bool:
    cluster = build_bqs_cluster(f=1, seed=seed)
    attack = BqsEquivocationAttack(cluster, "evil")
    attack.start()
    r1 = cluster.add_client("r1")
    r2 = cluster.add_client("r2")
    r1.run_script(read_script(3), start_delay=0.1, think_time=0.2)
    r2.run_script(read_script(3), start_delay=0.2, think_time=0.2)
    cluster.run(max_time=120)
    return check_register_linearizable(cluster.history).ok


def test_e7_atomicity_under_equivocation(benchmark):
    def experiment():
        bftbc_ok = sum(_bftbc_trial(seed) for seed in SEEDS)
        bqs_ok = sum(_bqs_trial(seed) for seed in SEEDS)
        trials = len(list(SEEDS))
        print()
        print(
            format_table(
                ["system", "trials", "atomic histories", "violations"],
                [
                    ["BFT-BC", trials, bftbc_ok, trials - bftbc_ok],
                    ["BQS (no Byz-client handling)", trials, bqs_ok, trials - bqs_ok],
                ],
                title="E7: equivocation attack vs atomicity "
                "(paper: BFT-BC always atomic; BQS breaks)",
            )
        )
        return bftbc_ok, bqs_ok, trials

    bftbc_ok, bqs_ok, trials = run_once(benchmark, experiment)
    assert bftbc_ok == trials  # BFT-BC: never a violation
    assert bqs_ok < trials  # BQS: the attack succeeds at least sometimes
