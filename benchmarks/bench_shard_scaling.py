"""E19 — Aggregate throughput vs shard count (`bench_shard_scaling.py`).

Sharding is the paper's answer to single-group capacity: each group runs
the full BFT-BC protocol for the objects it owns, so aggregate throughput
should grow with the shard count while per-operation latency stays flat.
This experiment fixes a workload (clients x ops over a shared object
population) and replays it on 1, 2, 4, and 8 shards with a per-frame
``service_delay`` — the simulator's capacity model: every received frame
occupies its replica for a fixed service time, so a single group is
CPU-bound and extra groups add real parallel capacity.

Throughput is measured in *virtual* time (deterministic, seed-stable),
aggregate ops/s across all routers.

Marked ``slow``: whole-cluster simulations, excluded from tier-1 runs.
"""

from __future__ import annotations

import pathlib
import sys
import zlib

import pytest

from repro.analysis import format_table
from repro.sim import build_shard_cluster

from benchmarks.conftest import run_once

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "tools"))
import bench_record  # noqa: E402

pytestmark = pytest.mark.slow

SHARD_COUNTS = (1, 2, 4, 8)
CLIENTS = 4
OPS_PER_CLIENT = 24
OBJECTS = 32
SERVICE_DELAY = 0.002


def _workload(client: str) -> list[tuple[str, str, object]]:
    """A fixed read/write mix over the shared object population."""
    steps: list[tuple[str, str, object]] = []
    for op in range(OPS_PER_CLIENT):
        obj = f"obj-{zlib.crc32(f'{client}/{op}'.encode()) % OBJECTS}"
        if op % 3 == 2:
            steps.append((obj, "read", None))
        else:
            steps.append((obj, "write", (f"client:{client}", op + 1, None)))
    return steps


def _arm(shards: int) -> dict:
    cluster = build_shard_cluster(
        shards=shards, seed=1900, service_delay=SERVICE_DELAY
    )
    scripts = {f"w{i}": _workload(f"w{i}") for i in range(CLIENTS)}
    cluster.run_scripts(scripts, max_time=600)
    ops = cluster.total_ops()
    elapsed = cluster.scheduler.now
    return {
        "shards": shards,
        "ops": ops,
        "virtual_seconds": elapsed,
        "ops_per_virtual_second": ops / elapsed,
    }


def test_e19_shard_scaling(benchmark):
    def experiment():
        arms = {f"shards_{count}": _arm(count) for count in SHARD_COUNTS}
        rows = [
            [
                arm["shards"],
                arm["ops"],
                round(arm["virtual_seconds"], 3),
                round(arm["ops_per_virtual_second"], 1),
            ]
            for arm in arms.values()
        ]
        print()
        print(
            format_table(
                ["shards", "ops", "virtual s", "ops/s"],
                rows,
                title="E19: aggregate throughput vs shard count",
            )
        )
        return arms

    arms = run_once(benchmark, experiment)

    # Same workload regardless of shard count.
    assert len({arm["ops"] for arm in arms.values()}) == 1
    assert arms["shards_1"]["ops"] == CLIENTS * OPS_PER_CLIENT

    # The point of the experiment: capacity grows with the shard count.
    rates = [
        arms[f"shards_{count}"]["ops_per_virtual_second"]
        for count in SHARD_COUNTS
    ]
    for slower, faster in zip(rates, rates[1:]):
        assert faster > slower, rates
    assert rates[-1] > 2.5 * rates[0], rates

    bench_record.record("e19_shard_scaling", arms)
