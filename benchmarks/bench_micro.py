"""Microbenchmarks: the primitive operations underlying the protocol.

These use pytest-benchmark's statistical timing directly (many rounds), in
contrast to the experiment benches which run whole simulations once.
"""

from __future__ import annotations

import pytest

from repro.core import Timestamp, make_system
from repro.core.certificates import PrepareCertificate
from repro.core.statements import prepare_reply_statement
from repro.crypto.hashing import hash_value
from repro.encoding import canonical_decode, canonical_encode
from repro.sim import Scheduler, write_script


@pytest.fixture(scope="module")
def config():
    cfg = make_system(f=1, seed=b"micro")
    cfg.registry.register("client:a")
    return cfg


@pytest.fixture(scope="module")
def rsa_config():
    cfg = make_system(f=1, seed=b"micro-rsa", scheme="rsa")
    cfg.registry.register("client:a")
    return cfg


@pytest.fixture(scope="module")
def prepare_cert(config):
    ts = Timestamp(1, "client:a")
    vh = hash_value(("v", 1))
    statement = prepare_reply_statement(ts, vh)
    sigs = tuple(
        config.scheme.sign_statement(f"replica:{i}", statement) for i in range(3)
    )
    return PrepareCertificate(ts=ts, value_hash=vh, signatures=sigs)


SAMPLE_MESSAGE = {
    "kind": "PREPARE",
    "ts": (42, "client:alice"),
    "hash": b"\x01" * 32,
    "nested": ((1, "a"), (2, "b"), {"x": b"y" * 64}),
}


def test_canonical_encode(benchmark):
    benchmark(canonical_encode, SAMPLE_MESSAGE)


def test_canonical_round_trip(benchmark):
    encoded = canonical_encode(SAMPLE_MESSAGE)
    benchmark(canonical_decode, encoded)


def test_hmac_sign(benchmark, config):
    statement = prepare_reply_statement(Timestamp(1, "client:a"), b"\x02" * 32)
    benchmark(config.scheme.sign_statement, "replica:0", statement)


def test_hmac_verify(benchmark, config):
    statement = prepare_reply_statement(Timestamp(1, "client:a"), b"\x02" * 32)
    sig = config.scheme.sign_statement("replica:0", statement)
    benchmark(config.scheme.verify_statement, sig, statement)


def test_rsa_sign(benchmark, rsa_config):
    statement = prepare_reply_statement(Timestamp(1, "client:a"), b"\x02" * 32)
    benchmark(rsa_config.scheme.sign_statement, "replica:0", statement)


def test_rsa_verify(benchmark, rsa_config):
    statement = prepare_reply_statement(Timestamp(1, "client:a"), b"\x02" * 32)
    sig = rsa_config.scheme.sign_statement("replica:0", statement)
    benchmark(rsa_config.scheme.verify_statement, sig, statement)


def test_prepare_certificate_validation(benchmark, config, prepare_cert):
    benchmark(prepare_cert.validate, config.scheme, config.quorums)


def test_certificate_wire_round_trip(benchmark, prepare_cert):
    wire = prepare_cert.to_wire()
    benchmark(PrepareCertificate.from_wire, wire)


def test_scheduler_event_throughput(benchmark):
    def churn():
        sched = Scheduler()
        count = 0
        def tick():
            nonlocal count
            count += 1
            if count < 1000:
                sched.call_later(0.001, tick)
        sched.call_later(0.001, tick)
        sched.run_until_idle()
        return count

    assert benchmark(churn) == 1000


def test_full_write_simulation(benchmark):
    """One complete simulated 3-phase write, end to end."""
    from repro import build_cluster

    def one_write():
        cluster = build_cluster(f=1, seed=0)
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 1))
        cluster.run(max_time=60)
        return cluster.metrics.operations

    assert benchmark(one_write) == 1
