"""E8 — Comparison against prior Byzantine-client protocols (§8).

Paper claims vs Phalanx [10]:
* BFT-BC needs 3f+1 replicas; Phalanx needs 4f+1.
* BFT-BC reads never return null and finish in a constant number of rounds
  regardless of concurrent writers; Phalanx masking reads can return null
  under incomplete/concurrent writes.
* Both take 3-phase writes (BFT-BC optimized: 2).

We run the same workload on BFT-BC (base + optimized), BQS, and Phalanx and
tabulate replicas used, phases, traffic, and null-read rates under a
Byzantine partial-writer.
"""

from __future__ import annotations

from repro import build_cluster
from repro.analysis import format_table
from repro.baselines.phalanx import NULL_READ
from repro.baselines.runner import build_bqs_cluster, build_phalanx_cluster
from repro.sim import read_script, write_script

from benchmarks.conftest import run_once

OPS = 8


def _honest_workload(cluster):
    node = cluster.add_client("w")
    node.run_script(write_script("client:w", OPS) + read_script(OPS))
    cluster.run(max_time=300)
    m = cluster.metrics
    stats = cluster.network.stats
    return {
        "replicas": cluster.config.n,
        "write_phases": m.phases_summary("write").p50,
        "read_phases": m.phases_summary("read").p50,
        "msgs_per_op": stats.messages_sent / (2 * OPS),
        "bytes_per_op": stats.bytes_sent / (2 * OPS),
    }


def test_e8_system_comparison(benchmark):
    def experiment():
        systems = {
            "BQS": build_bqs_cluster(f=1, seed=800),
            "Phalanx": build_phalanx_cluster(f=1, seed=800),
            "BFT-BC base": build_cluster(f=1, seed=800),
            "BFT-BC optimized": build_cluster(f=1, variant="optimized", seed=800),
        }
        rows = []
        results = {}
        for name, cluster in systems.items():
            r = _honest_workload(cluster)
            results[name] = r
            rows.append(
                [
                    name,
                    r["replicas"],
                    r["write_phases"],
                    r["read_phases"],
                    r["msgs_per_op"],
                    r["bytes_per_op"],
                ]
            )
        print()
        print(
            format_table(
                ["system", "replicas (f=1)", "write phases", "read phases",
                 "msgs/op", "bytes/op"],
                rows,
                title="E8: protocol comparison, honest single-writer workload",
            )
        )
        return results

    results = run_once(benchmark, experiment)
    # Replica counts: the paper's headline resource advantage.
    assert results["BFT-BC base"]["replicas"] == 4
    assert results["BFT-BC optimized"]["replicas"] == 4
    assert results["Phalanx"]["replicas"] == 5
    # Phase shape: BQS 2 (no Byz clients), Phalanx 3, BFT-BC 3 / optimized 2.
    assert results["BQS"]["write_phases"] == 2
    assert results["Phalanx"]["write_phases"] == 3
    assert results["BFT-BC base"]["write_phases"] == 3
    assert results["BFT-BC optimized"]["write_phases"] == 2
    # All reads are single-phase when there is no contention.
    for name in results:
        assert results[name]["read_phases"] == 1, name


def test_e8_null_reads_under_partial_writes(benchmark):
    """Reads under a Byzantine partial writer: Phalanx can return null,
    BFT-BC never does (§8's liveness comparison)."""

    def experiment():
        # Phalanx: fragment the replicas with distinct partial writes.
        from repro.baselines.messages import PhxWriteRequest
        from repro.baselines.statements import (
            phx_echo_statement,
            phx_write_request_statement,
        )
        from repro.core.timestamp import Timestamp
        from repro.crypto.hashing import hash_value

        phx = build_phalanx_cluster(f=1, seed=801)
        config = phx.config
        config.registry.register("client:evil")
        rids = config.quorums.replica_ids
        for index in range(4):
            ts = Timestamp(index + 1, "client:evil")
            value = ("client:evil", index, None)
            vh = hash_value(value)
            echo_sigs = tuple(
                config.scheme.sign_statement(rid, phx_echo_statement(ts, vh))
                for rid in rids[:4]
            )
            wsig = config.scheme.sign_statement(
                "client:evil", phx_write_request_statement(value, ts)
            )
            phx.replicas[rids[index]].handle(
                "client:evil",
                PhxWriteRequest(value=value, ts=ts, echo_sigs=echo_sigs, signature=wsig),
            )
        phx.network.crash(rids[4])
        reader = phx.add_client("r")
        reader.run_script(read_script(3), think_time=0.1)
        phx.run(max_time=120)
        phx_nulls = reader.client.null_reads

        # BFT-BC: the worst partial-write fragmentation it admits.
        from repro.byzantine import PartialWriteAttack

        bft = build_cluster(f=1, seed=801)
        attack = PartialWriteAttack(bft, "evil")
        attack.start()
        bft.run(max_time=120)
        bft.network.crash("replica:3")
        reader2 = bft.add_client("r")
        reader2.run_script(read_script(3), think_time=0.1)
        bft.run(max_time=120)
        bft_nulls = sum(
            1
            for rec in bft.history.operations()
            if rec.op == "read" and rec.result == NULL_READ
        )
        bft_reads_done = sum(
            1 for rec in bft.history.operations() if rec.op == "read" and rec.complete
        )
        print()
        print(
            format_table(
                ["system", "reads attempted", "null reads"],
                [
                    ["Phalanx", 3, phx_nulls],
                    ["BFT-BC", bft_reads_done, bft_nulls],
                ],
                title="E8b: reads under Byzantine partial writes "
                "(paper: BFT-BC reads never return null)",
            )
        )
        return phx_nulls, bft_nulls, bft_reads_done

    phx_nulls, bft_nulls, bft_reads_done = run_once(benchmark, experiment)
    assert phx_nulls > 0  # Phalanx's known weakness reproduced
    assert bft_nulls == 0
    assert bft_reads_done == 3
