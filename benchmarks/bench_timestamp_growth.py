"""E9 — Timestamp-space exhaustion (§3.2 issue 3).

Paper claims: BFT-BC prevents bad clients from exhausting the timestamp
space — a proposed timestamp must be the successor of a valid prepare
certificate's, so timestamps grow by exactly one per admitted write.
Against BQS the same attack succeeds on the first try.
"""

from __future__ import annotations

from repro import build_cluster
from repro.analysis import format_table
from repro.baselines.runner import build_bqs_cluster, build_phalanx_cluster
from repro.byzantine import (
    BqsTimestampExhaustionAttack,
    PhalanxTimestampExhaustionAttack,
    TimestampExhaustionAttack,
)
from repro.sim import write_script

from benchmarks.conftest import run_once

GOOD_WRITES = 6


def test_e9_timestamp_growth(benchmark):
    def experiment():
        # BFT-BC under attack.
        bft = build_cluster(f=1, seed=900)
        attack = TimestampExhaustionAttack(bft, "evil")
        attack.start()
        good = bft.add_client("good")
        good.run_script(write_script("client:good", GOOD_WRITES))
        bft.run(max_time=120)
        bft.settle()
        bft_max = max(r.pcert.ts.val for r in bft.replicas.values())

        # BQS under the same attack.
        bqs = build_bqs_cluster(f=1, seed=900)
        bqs_attack = BqsTimestampExhaustionAttack(bqs, "evil")
        bqs_attack.start()
        bqs_good = bqs.add_client("good")
        bqs_good.run_script(write_script("client:good", GOOD_WRITES))
        bqs.run(max_time=120)
        bqs.settle()
        bqs_max = max(r.ts.val for r in bqs.replicas.values())

        # Phalanx: echo certificates stop equivocation but not skipping —
        # the "non-skipping timestamps" gap (§8, refs [2] and [3]).
        phx = build_phalanx_cluster(f=1, seed=900)
        phx_attack = PhalanxTimestampExhaustionAttack(phx, "evil")
        phx_attack.start()
        phx.run(max_time=120)
        phx.settle()
        phx_max = max(r.ts.val for r in phx.replicas.values())

        print()
        print(
            format_table(
                ["system", "good writes", "attack succeeded",
                 "max timestamp value"],
                [
                    ["BFT-BC", GOOD_WRITES, "no", bft_max],
                    ["BQS", GOOD_WRITES, "yes" if bqs_attack.succeeded else "no", bqs_max],
                    ["Phalanx", 0, "yes" if phx_attack.succeeded else "no", phx_max],
                ],
                title="E9: timestamp growth under an exhaustion attack "
                f"(attack proposes ts = 10^15; paper: BFT-BC stays at "
                f"#writes = {GOOD_WRITES})",
            )
        )
        return bft_max, bqs_max, phx_max, attack.replies, bqs_attack.succeeded, phx_attack.succeeded

    (bft_max, bqs_max, phx_max, bft_replies,
     bqs_succeeded, phx_succeeded) = run_once(benchmark, experiment)
    # BFT-BC: the huge prepare is silently discarded everywhere, and the
    # committed timestamp equals exactly the number of completed writes.
    assert bft_replies == 0
    assert bft_max == GOOD_WRITES
    # BQS and Phalanx: one shot and the space is burned.
    assert bqs_succeeded and bqs_max >= 10**15
    assert phx_succeeded and phx_max >= 10**15
