"""E23 — Self-stabilization: checksum overhead and time-to-stabilize.

Two questions about the integrity layer added with the self-stabilizing
storage work (DESIGN.md §4.11):

* **What does sealing cost?**  Every WAL record and snapshot carries a
  32-byte SHA-256 integrity tag (:mod:`repro.storage.integrity`).  The
  first experiment times the same durable write workload with sealing on
  versus an ablation arm whose ``seal``/``unseal`` are identity functions,
  using E13b's discipline (warm-up, then five interleaved runs per arm,
  best of five).  The acceptance bound is **≤ 5 %** wall-clock overhead.

* **How fast does a corrupted replica heal?**  The second experiment
  perturbs one replica's live state and measures the *virtual* time from
  injection until the periodic self-audit has quarantined it and the
  quorum repair completed, across a sweep of audit intervals.  The curve
  must be monotone-ish in the interval: detection latency is one audit
  period, repair itself is a single round trip.

Both results land in ``BENCH_throughput.json`` under ``e23_stabilization``.

Marked ``slow``: real files and repeated whole-cluster runs.
"""

from __future__ import annotations

import math
import pathlib
import sys
import time

import pytest

import repro.storage.filelog as filelog_module
from repro.analysis import format_table
from repro.sim import ClusterOptions, build_cluster, write_script
from repro.storage import FileLogStore

from benchmarks.conftest import run_once

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "tools"))
import bench_record  # noqa: E402

pytestmark = pytest.mark.slow

WRITES = 30
CLIENTS = 6
AUDIT_INTERVALS = (0.1, 0.2, 0.4, 0.8)


def _sealing_arm(root: pathlib.Path, *, sealed: bool, seed: int = 2300) -> dict:
    """Time one durable workload with sealing on or ablated to identity.

    The integrity layer has no runtime toggle on purpose — production
    stores always seal — so the baseline arm patches the two names
    :mod:`repro.storage.filelog` binds at import time.  Each arm writes a
    fresh directory tree, so both arms are self-consistent on disk.
    """
    original = (filelog_module.seal, filelog_module.unseal)
    if not sealed:
        filelog_module.seal = lambda payload, domain: payload
        filelog_module.unseal = lambda payload, domain: payload
    try:
        started = time.perf_counter()
        cluster = build_cluster(
            ClusterOptions(
                seed=seed,
                store_factory=lambda rid: FileLogStore(
                    root / rid.replace(":", "_"), fsync="never"
                ),
            )
        )
        scripts = {
            f"w{i}": write_script(f"client:w{i}", WRITES) for i in range(CLIENTS)
        }
        cluster.run_scripts(scripts, max_time=600)
        elapsed = time.perf_counter() - started
        ops = cluster.metrics.operations
        for replica in cluster.replicas.values():
            replica.store.close()
        return {"ops": ops, "wall_seconds": elapsed}
    finally:
        filelog_module.seal, filelog_module.unseal = original


def test_e23_checksum_overhead(benchmark, tmp_path):
    """Sealing every WAL record and snapshot costs ≤ 5 % wall-clock.

    One SHA-256 over a small canonical record is cheap next to the
    signing and serialisation the workload already pays; the bound is the
    acceptance criterion from the self-stabilizing-storage work.
    """

    def experiment():
        counter = [0]

        def fresh(arm: str) -> pathlib.Path:
            counter[0] += 1
            return tmp_path / f"{arm}-{counter[0]}"

        _sealing_arm(fresh("warm-off"), sealed=False)  # warm imports/allocator
        _sealing_arm(fresh("warm-on"), sealed=True)
        runs = {False: [], True: []}
        for _ in range(5):
            for sealed in (False, True):
                arm = "sealed" if sealed else "plain"
                runs[sealed].append(_sealing_arm(fresh(arm), sealed=sealed))
        plain = min(runs[False], key=lambda r: r["wall_seconds"])
        sealed = min(runs[True], key=lambda r: r["wall_seconds"])
        overhead = sealed["wall_seconds"] / plain["wall_seconds"] - 1.0
        print()
        print(
            format_table(
                ["arm", "ops", "wall seconds"],
                [
                    ["seal/unseal ablated", plain["ops"],
                     round(plain["wall_seconds"], 3)],
                    ["sealed (production)", sealed["ops"],
                     round(sealed["wall_seconds"], 3)],
                ],
                title="E23: durable workload, integrity sealing off vs on",
            )
        )
        print(f"checksum overhead: {overhead * 100:+.2f}% wall-clock")
        return {
            "plain": plain,
            "sealed": sealed,
            "overhead_fraction": overhead,
        }

    results = run_once(benchmark, experiment)
    assert results["plain"]["ops"] == results["sealed"]["ops"]
    # The acceptance bound: ≤ 5 % wall-clock for per-record SHA-256 tags.
    assert results["overhead_fraction"] <= 0.05, results
    bench_record.record(
        "e23_stabilization_overhead",
        {
            "plain_wall_seconds": round(results["plain"]["wall_seconds"], 4),
            "sealed_wall_seconds": round(results["sealed"]["wall_seconds"], 4),
            "overhead_fraction": round(results["overhead_fraction"], 4),
            "ops": results["sealed"]["ops"],
        },
    )


def _time_to_stabilize(
    root: pathlib.Path, audit_interval: float, *, seed: int = 2301
) -> dict:
    """Virtual time from state perturbation to completed quorum repair.

    Mirrors the chaos engine's audit loop: every correct replica audits
    once per ``audit_interval`` of virtual time; the victim's first audit
    after the fault quarantines it and pushes the repair round onto the
    (reliable) network, which completes within the same tick's settle.
    """
    cluster = build_cluster(
        ClusterOptions(
            seed=seed,
            store_factory=lambda rid: FileLogStore(
                root / rid.replace(":", "_"), fsync="never"
            ),
        )
    )
    cluster.run_scripts({"w": write_script("client:w", 6)}, max_time=600)
    victim = cluster.replica_nodes["replica:1"]
    scheduler = cluster.scheduler

    # Audit ticks on an absolute grid (k * interval), like the chaos
    # engine's audit loop; the fault lands just *after* a grid point so the
    # detection delay is deterministically one full audit period.
    ticks = [0]

    def tick() -> None:
        ticks[0] += 1
        for node in cluster.replica_nodes.values():
            node.audit_and_repair()
        scheduler.call_at(scheduler.now + audit_interval, tick)

    grid = math.ceil(scheduler.now / audit_interval) * audit_interval
    scheduler.call_at(grid, tick)
    injected = grid + audit_interval / 100.0
    scheduler.call_at(
        injected, lambda: victim.perturb_state(target="data", seed=9)
    )

    def stabilized() -> bool:
        replica = victim.replica
        return replica.stats.repairs >= 1 and not replica.quarantined

    scheduler.run(
        until=injected + 50 * audit_interval,
        stop_when=lambda: scheduler.now > injected and stabilized(),
    )
    assert stabilized(), "no stabilization within 50 audit periods"
    elapsed = scheduler.now - injected
    for replica in cluster.replicas.values():
        replica.store.close()
    return {
        "audit_interval": audit_interval,
        "virtual_seconds": elapsed,
        "audit_ticks": ticks[0],
    }


def test_e23_time_to_stabilize(benchmark, tmp_path):
    """Time-to-stabilize is dominated by detection: one audit period.

    Repair itself is a single REPAIR-REQ/REPAIR-REPLY round trip on a
    reliable network, so halving the audit interval roughly halves the
    healing time — the curve recorded here is what EXPERIMENTS.md E23
    charts.
    """

    def experiment():
        curve = []
        for index, interval in enumerate(AUDIT_INTERVALS):
            curve.append(
                _time_to_stabilize(tmp_path / f"i{index}", interval)
            )
        print()
        print(
            format_table(
                ["audit interval (s)", "time to stabilize (s)", "audit ticks"],
                [
                    [point["audit_interval"],
                     round(point["virtual_seconds"], 3),
                     point["audit_ticks"]]
                    for point in curve
                ],
                title="E23: virtual time from corruption to completed repair",
            )
        )
        return curve

    curve = run_once(benchmark, experiment)
    for point in curve:
        # Detected and repaired within a couple of audit periods.
        assert point["virtual_seconds"] <= 3 * point["audit_interval"] + 0.5, (
            point
        )
    # The curve is monotone in the audit interval: slower audits, slower
    # healing (the repair round trip itself is interval-independent).
    times = [point["virtual_seconds"] for point in curve]
    assert times == sorted(times), times
    bench_record.record(
        "e23_stabilization_curve",
        {
            "audit_intervals": list(AUDIT_INTERVALS),
            "virtual_seconds": [round(t, 4) for t in times],
        },
    )
