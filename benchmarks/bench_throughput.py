"""E13 (supplementary figure) — closed-loop throughput vs client count.

Virtual-time throughput of the replicated register as the number of
closed-loop clients grows.  Since replicas in the simulator have no
processing bottleneck (only network RTTs), throughput should scale ~linearly
with clients for all variants, with the optimized protocol ~50% above base
(2 phases vs 3) — the phase structure is the entire cost.
"""

from __future__ import annotations

from repro import LinkProfile, build_cluster
from repro.analysis import format_table
from repro.sim import write_script

from benchmarks.conftest import run_once

OPS_EACH = 10
DELAY = 0.005


def _throughput(variant: str, clients: int, seed: int = 1300) -> float:
    cluster = build_cluster(
        f=1,
        variant=variant,
        seed=seed,
        profile=LinkProfile(min_delay=DELAY, max_delay=DELAY),
    )
    scripts = {
        f"w{i}": write_script(f"client:w{i}", OPS_EACH) for i in range(clients)
    }
    cluster.run_scripts(scripts, max_time=600)
    return cluster.metrics.operations / cluster.scheduler.now


def test_e13_throughput_scaling(benchmark):
    def experiment():
        rows = []
        series: dict[str, dict[int, float]] = {"base": {}, "optimized": {}}
        for variant in ("base", "optimized"):
            for clients in (1, 2, 4, 8):
                tput = _throughput(variant, clients)
                series[variant][clients] = tput
                rows.append([variant, clients, tput])
        print()
        print(
            format_table(
                ["variant", "closed-loop clients", "writes/s (virtual)"],
                rows,
                title="E13: throughput scaling "
                "(network-bound simulator: phases are the whole cost)",
            )
        )
        return series

    series = run_once(benchmark, experiment)
    for variant, points in series.items():
        # More clients, more throughput (no server bottleneck modelled).
        assert points[8] > points[1] * 4, (variant, points)
    # The 3->2 phase reduction shows as ~1.5x at every scale.
    for clients in (1, 2, 4, 8):
        ratio = series["optimized"][clients] / series["base"][clients]
        assert 1.2 < ratio < 1.8, (clients, ratio)
