"""E13 (supplementary figure) — closed-loop throughput vs client count.

Virtual-time throughput of the replicated register as the number of
closed-loop clients grows.  Since replicas in the simulator have no
processing bottleneck (only network RTTs), throughput should scale ~linearly
with clients for all variants, with the optimized protocol ~50% above base
(2 phases vs 3) — the phase structure is the entire cost.
"""

from __future__ import annotations

import pathlib
import sys
import time

from repro import LinkProfile, build_cluster
from repro.analysis import format_table
from repro.core.messages import set_wire_cache_enabled
from repro.encoding import reset_interning, set_interning_enabled
from repro.sim import write_script

from benchmarks.conftest import run_once

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "tools"))
import bench_record  # noqa: E402

OPS_EACH = 10
DELAY = 0.005


def _throughput(variant: str, clients: int, seed: int = 1300) -> float:
    cluster = build_cluster(
        f=1,
        variant=variant,
        seed=seed,
        profile=LinkProfile(min_delay=DELAY, max_delay=DELAY),
    )
    scripts = {
        f"w{i}": write_script(f"client:w{i}", OPS_EACH) for i in range(clients)
    }
    cluster.run_scripts(scripts, max_time=600)
    return cluster.metrics.operations / cluster.scheduler.now


def test_e13_throughput_scaling(benchmark):
    def experiment():
        rows = []
        series: dict[str, dict[int, float]] = {"base": {}, "optimized": {}}
        for variant in ("base", "optimized"):
            for clients in (1, 2, 4, 8):
                tput = _throughput(variant, clients)
                series[variant][clients] = tput
                rows.append([variant, clients, tput])
        print()
        print(
            format_table(
                ["variant", "closed-loop clients", "writes/s (virtual)"],
                rows,
                title="E13: throughput scaling "
                "(network-bound simulator: phases are the whole cost)",
            )
        )
        return series

    series = run_once(benchmark, experiment)
    for variant, points in series.items():
        # More clients, more throughput (no server bottleneck modelled).
        assert points[8] > points[1] * 4, (variant, points)
    # The 3->2 phase reduction shows as ~1.5x at every scale.
    for clients in (1, 2, 4, 8):
        ratio = series["optimized"][clients] / series["base"][clients]
        assert 1.2 < ratio < 1.8, (clients, ratio)


def _wall_clock_arm(*, fast_path: bool, clients: int = 8, seed: int = 1301) -> dict:
    """Time one fixed base-variant workload in *wall-clock* seconds.

    The simulator is CPU-bound on serialisation and signing, so the
    encode-once cache and statement interning show up directly as wall
    time; this is the whole-system complement of E15's call counts.
    """
    set_wire_cache_enabled(fast_path)
    set_interning_enabled(fast_path)
    reset_interning()
    try:
        started = time.perf_counter()
        cluster = build_cluster(
            f=1,
            variant="base",
            seed=seed,
            profile=LinkProfile(min_delay=DELAY, max_delay=DELAY),
        )
        scripts = {
            f"w{i}": write_script(f"client:w{i}", OPS_EACH) for i in range(clients)
        }
        cluster.run_scripts(scripts, max_time=600)
        elapsed = time.perf_counter() - started
        ops = cluster.metrics.operations
        return {
            "ops": ops,
            "wall_seconds": elapsed,
            "ops_per_wall_second": ops / elapsed,
        }
    finally:
        set_wire_cache_enabled(True)
        set_interning_enabled(True)


def test_e13b_wall_clock_throughput(benchmark):
    """Wall-clock mode: the same workload with the wire fast path off vs on.

    Wall time at this scale (~0.15 s per run) is noisy, so each arm is
    warmed up once and then timed interleaved, keeping the best of five —
    the standard discipline for micro-scale wall-clock comparisons.
    """

    def experiment():
        _wall_clock_arm(fast_path=False)  # warm imports and allocator
        _wall_clock_arm(fast_path=True)
        runs = {False: [], True: []}
        for _ in range(5):
            for fast_path in (False, True):
                runs[fast_path].append(_wall_clock_arm(fast_path=fast_path))
        slow = min(runs[False], key=lambda r: r["wall_seconds"])
        fast = min(runs[True], key=lambda r: r["wall_seconds"])
        speedup = fast["ops_per_wall_second"] / slow["ops_per_wall_second"]
        print()
        print(
            format_table(
                ["arm", "ops", "wall seconds", "ops / wall second"],
                [
                    ["fast path off", slow["ops"], round(slow["wall_seconds"], 3),
                     round(slow["ops_per_wall_second"], 1)],
                    ["fast path on", fast["ops"], round(fast["wall_seconds"], 3),
                     round(fast["ops_per_wall_second"], 1)],
                ],
                title="E13b: wall-clock throughput, wire fast path off vs on",
            )
        )
        return {"off": slow, "on": fast, "wall_clock_speedup": speedup}

    results = run_once(benchmark, experiment)
    assert results["off"]["ops"] == results["on"]["ops"]
    # The fast path must not make the run slower (wall-clock noise aside,
    # it is reliably faster; E15 pins the deterministic call counts).
    assert results["wall_clock_speedup"] > 0.9, results
    bench_record.record("e13b_wall_clock_throughput", results)
