"""E22: multi-process replica cluster — worker scaling and batched crypto.

The deployment API's headline numbers: wall-clock write throughput of the
``process`` transport as the 3f+1 replicas spread across {1, 2, 4} worker
processes with a pipelined client, against the single-process sequential
baseline (the pre-``deploy()`` status quo: one worker hosting every replica,
one operation in flight); and the amortized signature-verification passes
per write with batch prevalidation on versus off, measured over the ``tcp``
transport whose in-process servers share one counted verifier.

Worker scaling is hardware-bound: on a multi-core host the four-worker
fleet clears the 2.5x acceptance floor, while a single-core container can
only overlap fsync latency, so there the floor is reported but not
asserted (the batched-verification floor is deterministic and always
asserted).  Results are recorded under ``e22_cluster_scaling`` in
``BENCH_throughput.json``.
"""

from __future__ import annotations

import os
import pathlib
import sys
import time

import pytest

from repro.analysis import format_table
from repro.analysis.costs import CostModel
from repro.cluster import DeploymentSpec, deploy
from repro.core import make_system

from benchmarks.conftest import run_once

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "tools"))
import bench_record  # noqa: E402

pytestmark = pytest.mark.slow

OPS = 40
VERIFY_OPS = 10
SCALING_FLOOR = 2.5
VERIFY_FLOOR = 2.0


def _throughput(spec: DeploymentSpec, ops: int = OPS) -> float:
    """Committed writes per second through one deployment handle."""
    with deploy(spec) as dep:
        dep.write("warm")  # establish certificates outside the timed window
        start = time.perf_counter()
        records = dep.run_script([("write", f"bench{i}") for i in range(ops)])
        elapsed = time.perf_counter() - start
        assert all(record.result is not None for record in records)
    return ops / elapsed


def _verify_calls_per_write(batch_verify: bool, pipeline: int = 1) -> float:
    """Steady-state verification passes per write over the tcp transport."""
    spec = DeploymentSpec(
        transport="tcp",
        batch_verify=batch_verify,
        pipeline=pipeline,
        seed=13,
    )
    ops = VERIFY_OPS * pipeline
    with deploy(spec) as dep:
        dep.write("warm-1")
        dep.write("warm-2")
        stats = dep.verification_stats()
        assert stats is not None
        before = stats.verify_calls
        dep.run_script([("write", f"v{i}") for i in range(ops)])
        return (stats.verify_calls - before) / ops


def test_cluster_scaling(benchmark):
    def experiment():
        baseline = _throughput(
            DeploymentSpec(transport="process", workers=1, pipeline=1, seed=11)
        )
        scaling = {
            workers: _throughput(
                DeploymentSpec(
                    transport="process", workers=workers, pipeline=4, seed=11
                )
            )
            for workers in (1, 2, 4)
        }
        unbatched = _verify_calls_per_write(batch_verify=False)
        batched = _verify_calls_per_write(batch_verify=True)
        batched_deep = _verify_calls_per_write(batch_verify=True, pipeline=4)

        cpus = os.cpu_count() or 1
        print()
        print(
            format_table(
                ["configuration", "writes/s", "vs sequential"],
                [["1 worker, sequential", baseline, 1.0]]
                + [
                    [f"{workers} worker(s), pipeline=4", rate, rate / baseline]
                    for workers, rate in sorted(scaling.items())
                ],
                title=f"E22 process-cluster write throughput "
                f"(f=1, {OPS} ops, {cpus} CPU(s))",
            )
        )
        print(
            format_table(
                ["mode", "verify calls/write"],
                [
                    ["individual", unbatched],
                    ["batched, sequential", batched],
                    ["batched, pipeline=4", batched_deep],
                ],
                title="E22 amortized verification passes (tcp, f=1)",
            )
        )
        return {
            "cpus": cpus,
            "baseline_writes_per_s": baseline,
            "scaling": {str(w): rate for w, rate in scaling.items()},
            "speedup_4_workers": scaling[4] / baseline,
            "verify_calls_unbatched": unbatched,
            "verify_calls_batched": batched,
            "verify_calls_batched_pipeline4": batched_deep,
            "verify_reduction": unbatched / batched,
        }

    results = run_once(benchmark, experiment)
    bench_record.record("e22_cluster_scaling", results)

    # Batched prevalidation: measured passes match the CostModel closed
    # forms and clear the acceptance floor regardless of hardware.
    model = CostModel(make_system(1, seed=b"bench").quorums)
    assert results["verify_calls_unbatched"] == (
        model.write_verify_calls_unbatched()
    )
    assert results["verify_calls_batched"] == model.write_verify_calls_batched()
    assert results["verify_reduction"] >= VERIFY_FLOOR
    assert results["verify_calls_batched_pipeline4"] < results[
        "verify_calls_batched"
    ]
    # Worker scaling needs actual cores; a single-CPU container can only
    # overlap fsync latency, so the floor is recorded but not asserted.
    assert results["speedup_4_workers"] > 1.0
    if results["cpus"] >= 4:
        assert results["speedup_4_workers"] >= SCALING_FLOOR
