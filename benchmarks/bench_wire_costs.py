"""E15 — the wire fast path: encode-once caching and cross-object batching.

Two measurements, each checked against the closed-form model in
:mod:`repro.analysis.costs`:

* **Encode calls per write** (base variant, f=1, fan-out n=4): with the
  encode-once cache and statement interning off, every frame and every
  signature re-serialises its payload; with them on, a request fanned out
  to n replicas is encoded once and statements are encoded once across
  sign/verify/hash.  The acceptance bar is a >= 2x reduction.

* **Wire frames for an 8-object mixed workload**: with cross-object
  batching, concurrent same-round sends to a replica coalesce into one
  :class:`~repro.core.batching.BatchEnvelope` frame (and replies coalesce
  symmetrically).  The bar is >= 1.5x fewer frames.

Headline numbers land in ``BENCH_throughput.json`` via
:mod:`tools.bench_record`.
"""

from __future__ import annotations

import pathlib
import sys

from repro import build_cluster
from repro.analysis import format_table
from repro.analysis.costs import CostModel
from repro.core import make_system
from repro.core.batching import BatchCoalescer, BatchStats
from repro.core.messages import (
    reset_wire_cache_stats,
    set_wire_cache_enabled,
    wire_cache_stats,
)
from repro.core.multiobject import MultiObjectClient, MultiObjectReplica
from repro.encoding import encode_stats, reset_interning, set_interning_enabled
from repro.net.simnet import SimNetwork
from repro.sim import MultiObjectClientNode, MultiObjectReplicaNode, Scheduler

from benchmarks.conftest import run_once

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "tools"))
import bench_record  # noqa: E402

WRITES = 10
OBJECTS = 8
#: All objects operate concurrently — the regime batching is for; at lower
#: in-flight caps completion staggering de-synchronises the rounds and the
#: reduction decays toward 1x (1.42x at in_flight=4 on this workload).
IN_FLIGHT = 8


def _reset_counters() -> None:
    encode_stats().reset()
    reset_wire_cache_stats()
    reset_interning()


def _encode_calls_per_write(*, fast_path: bool) -> float:
    """Canonical-encode calls per completed write, one arm of the ablation."""
    set_wire_cache_enabled(fast_path)
    set_interning_enabled(fast_path)
    _reset_counters()
    try:
        cluster = build_cluster(f=1, variant="base", seed=1400)
        cluster.run_scripts(
            {"w": [("write", f"value-{i}") for i in range(WRITES)]}
        )
        return encode_stats().calls / cluster.metrics.operations
    finally:
        set_wire_cache_enabled(True)
        set_interning_enabled(True)


def _multi_object_run(*, batching: bool) -> tuple[int, BatchStats, int]:
    """Run the 8-object mixed workload; return (frames, batch stats, ops)."""
    config = make_system(f=1, seed=b"bench-wire-batching")
    scheduler = Scheduler()
    network = SimNetwork(scheduler, seed=1401)
    for rid in config.quorums.replica_ids:
        MultiObjectReplicaNode(MultiObjectReplica(rid, config), network)
    client = MultiObjectClient("client:bench", config)
    stats = BatchStats()
    node = MultiObjectClientNode(
        client,
        network,
        scheduler,
        max_in_flight=IN_FLIGHT,
        coalescer=BatchCoalescer(stats) if batching else None,
    )
    script = []
    for round_no in range(3):
        for obj_no in range(OBJECTS):
            obj = f"obj-{obj_no}"
            if (round_no + obj_no) % 3 == 2:
                script.append((obj, "read", None))
            else:
                script.append((obj, "write", f"v{round_no}-{obj_no}"))
    node.run_script(script)
    scheduler.run(until=60.0, stop_when=lambda: node.done)
    assert node.done, "workload did not complete"
    return network.stats.messages_sent, stats, len(node.results)


def test_e15_wire_fast_path(benchmark):
    def experiment():
        model = CostModel(make_system(f=1, seed=b"bench-wire-model").quorums)

        uncached = _encode_calls_per_write(fast_path=False)
        cached = _encode_calls_per_write(fast_path=True)
        hit_rate = wire_cache_stats().hit_rate
        speedup = uncached / cached

        unbatched_frames, _, ops_a = _multi_object_run(batching=False)
        batched_frames, batch_stats, ops_b = _multi_object_run(batching=True)
        assert ops_a == ops_b
        frame_reduction = unbatched_frames / batched_frames

        print()
        print(
            format_table(
                ["metric", "off", "on", "ratio", "model"],
                [
                    [
                        "encode calls / write",
                        round(uncached, 1),
                        round(cached, 1),
                        round(speedup, 2),
                        round(model.encode_speedup(), 2),
                    ],
                    [
                        f"wire frames ({OBJECTS}-object mixed)",
                        unbatched_frames,
                        batched_frames,
                        round(frame_reduction, 2),
                        round(
                            model.batching_frame_reduction(OBJECTS, IN_FLIGHT), 2
                        ),
                    ],
                ],
                title="E15: encode-once cache and cross-object batching",
            )
        )
        return {
            "encode_calls_per_write_uncached": uncached,
            "encode_calls_per_write_cached": cached,
            "encode_speedup": speedup,
            "wire_cache_hit_rate": hit_rate,
            "frames_unbatched": unbatched_frames,
            "frames_batched": batched_frames,
            "frame_reduction": frame_reduction,
            "mean_batch_size": batch_stats.mean_batch_size,
        }

    results = run_once(benchmark, experiment)
    # Acceptance bars: >= 2x fewer encodes per write, >= 1.5x fewer frames.
    assert results["encode_speedup"] >= 2.0, results
    assert results["frame_reduction"] >= 1.5, results
    assert results["wire_cache_hit_rate"] > 0.0, results
    assert results["mean_batch_size"] > 1.0, results
    bench_record.record("e15_wire_fast_path", results)
