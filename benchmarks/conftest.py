"""Benchmark-suite configuration.

Each ``bench_*`` / ``test_*`` function regenerates one experiment from
DESIGN.md §3 (the paper's analytical evaluation) and prints the paper-style
table; run with ``pytest benchmarks/ --benchmark-only -s`` to see them.
"""

from __future__ import annotations

import pathlib
import sys

try:
    import repro  # noqa: F401
except ModuleNotFoundError:  # pragma: no cover
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import pytest


def run_once(benchmark, fn):
    """Run a whole experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
