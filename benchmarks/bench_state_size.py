"""E3 — Replica state size (§3.3.1).

Paper claims: the only non-constant state is the prepare list, O(|C|)
entries (one per writer), kept small by garbage collection via piggybacked
write certificates, plus the stored prepare certificate of size O(|Q|).
We measure prepare-list high-water marks as the writer population grows,
with GC on and off (the ablation DESIGN.md calls out).
"""

from __future__ import annotations

from repro import build_cluster
from repro.analysis import format_table
from repro.sim import write_script

from benchmarks.conftest import run_once

WRITES_EACH = 4


def _run(writers: int, gc: bool, seed: int = 300):
    cluster = build_cluster(f=1, seed=seed, gc_plist=gc)
    high_water = {rid: 0 for rid in cluster.replicas}

    def watch():
        for rid, replica in cluster.replicas.items():
            high_water[rid] = max(high_water[rid], len(replica.plist))
        cluster.scheduler.call_later(0.01, watch)

    cluster.scheduler.call_later(0.01, watch)
    scripts = {
        f"w{i}": write_script(f"client:w{i}", WRITES_EACH) for i in range(writers)
    }
    try:
        cluster.run_scripts(scripts, max_time=120)
    finally:
        pass
    cluster.settle(0.1)
    final = max(len(r.plist) for r in cluster.replicas.values())
    peak = max(high_water.values())
    return peak, final


def test_e3_prepare_list_size(benchmark):
    def experiment():
        rows = []
        peaks_gc = {}
        for writers in (1, 2, 4, 8):
            peak_gc, final_gc = _run(writers, gc=True)
            peaks_gc[writers] = peak_gc
            rows.append([writers, peak_gc, final_gc])
        print()
        print(
            format_table(
                ["writers |C|", "plist peak (GC on)", "plist final"],
                rows,
                title="E3: prepare-list size vs writer population (paper: O(|C|))",
            )
        )
        return peaks_gc

    peaks = run_once(benchmark, experiment)
    # O(|C|): the peak never exceeds the number of writers ...
    for writers, peak in peaks.items():
        assert peak <= writers, (writers, peak)
    # ... and grows with it.
    assert peaks[8] > peaks[1]


def test_e3_gc_ablation(benchmark):
    """Without certificate-based GC, completed writes lodge permanently in
    the prepare list (the list only shrinks via phase-2 pruning)."""

    def experiment():
        peak_gc, final_gc = _run(6, gc=True, seed=301)
        peak_nogc, final_nogc = _run_nogc_single_writes(seed=301)
        print()
        print(
            format_table(
                ["mode", "peak", "after workload"],
                [["gc on", peak_gc, final_gc], ["gc off", peak_nogc, final_nogc]],
                title="E3 ablation: prepare-list GC via write certificates",
            )
        )
        return final_gc, final_nogc

    final_gc, final_nogc = run_once(benchmark, experiment)
    assert final_nogc >= final_gc


def _run_nogc_single_writes(seed: int):
    """One write per client (repeat writes would dead-lock with GC off,
    which is itself the point of the mechanism)."""
    cluster = build_cluster(f=1, seed=seed, gc_plist=False)
    scripts = {f"w{i}": write_script(f"client:w{i}", 1) for i in range(6)}
    cluster.run_scripts(scripts, max_time=120)
    cluster.settle(0.1)
    final = max(len(r.plist) for r in cluster.replicas.values())
    return final, final


def test_e3_piggyback_ablation(benchmark):
    """§3.3.1's further suggestion: piggybacking write certificates on read
    requests drains the prepare lists without extra phase-2 traffic."""
    from repro.sim import read_script

    def residual(piggyback: bool) -> int:
        cluster = build_cluster(
            f=1, seed=302, piggyback_write_certs=piggyback
        )
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", 1) + read_script(1))
        cluster.run(max_time=120)
        cluster.settle(0.1)
        return sum(len(r.plist) for r in cluster.replicas.values())

    def experiment():
        without = residual(False)
        with_pgb = residual(True)
        print()
        print(
            format_table(
                ["mode", "plist entries after write+read"],
                [["no piggyback", without], ["piggyback on reads", with_pgb]],
                title="E3b: §3.3.1 read-request certificate piggyback",
            )
        )
        return without, with_pgb

    without, with_pgb = run_once(benchmark, experiment)
    assert with_pgb == 0
    assert without > 0
