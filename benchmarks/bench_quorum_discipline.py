"""E12 (ablation) — broadcast-to-all vs preferred-quorum messaging.

§3.3.1 counts "three RPCs to a quorum of replicas" — O(|Q|) messages.  The
robust default broadcasts each phase to all 3f+1 replicas instead.  This
ablation quantifies the tradeoff:

* preferred quorum: fewer messages (exactly the paper's 2·phases·|Q|), but
  a crashed preferred replica costs a retransmission-timeout stall;
* broadcast: ~n/|Q| more messages, latency immune to any f crashes.
"""

from __future__ import annotations

from repro import build_cluster
from repro.analysis import format_table
from repro.sim import write_script

from benchmarks.conftest import run_once

OPS = 8


def _run(prefer: bool, crashed: bool, seed: int = 1200):
    cluster = build_cluster(f=1, seed=seed, prefer_quorum=prefer)
    if crashed:
        cluster.network.crash("replica:0")  # inside the preferred quorum
    node = cluster.add_client("w")
    node.run_script(write_script("client:w", OPS))
    cluster.run(max_time=120)
    cluster.settle()
    return (
        cluster.network.stats.messages_sent / OPS,
        cluster.metrics.latency_summary("write").p50 * 1000,
    )


def test_e12_quorum_discipline(benchmark):
    def experiment():
        rows = []
        results = {}
        for prefer in (False, True):
            for crashed in (False, True):
                msgs, latency = _run(prefer, crashed)
                results[(prefer, crashed)] = (msgs, latency)
                rows.append(
                    [
                        "preferred quorum" if prefer else "broadcast all",
                        "1 crashed" if crashed else "all up",
                        msgs,
                        latency,
                    ]
                )
        print()
        print(
            format_table(
                ["discipline", "replicas", "msgs/write", "latency p50 (ms)"],
                rows,
                title="E12: §3.3.1's O(|Q|) message discipline vs robustness",
            )
        )
        return results

    results = run_once(benchmark, experiment)
    # Paper's message count achieved exactly: 2 RPCs x 3 phases x |Q|.
    assert results[(True, False)][0] == 18.0
    assert results[(False, False)][0] == 24.0
    # Fault-free latency: the quorum discipline waits for the *slowest* of
    # exactly |Q| replies instead of the |Q|-th fastest of n, so it is
    # slightly slower on a jittery network — but in the same ballpark.
    assert results[(True, False)][1] <= results[(False, False)][1] * 1.5
    # With a crashed preferred replica it pays the retransmission stall.
    assert results[(True, True)][1] > results[(False, True)][1] * 1.5
