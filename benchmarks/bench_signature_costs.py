"""E4 — Authentication costs (§3.3.2).

Paper claims: only the phase-2 and phase-3 replies need public-key
signatures (they are shown to third parties as certificate entries); other
messages could use MACs.  Moreover the phase-3 (WRITE-REPLY) signature can
be produced in the background at prepare time, leaving only ONE foreground
public-key signature on a write's critical path.

We count signing operations per write under both policies, and measure the
RSA backend's verify-heavy profile for comparison.  E4d measures the
memoizing verification pipeline: backend verifications per operation and
cache hit rates, cached vs uncached, under a retransmission-heavy network.
"""

from __future__ import annotations

from repro import build_cluster
from repro.analysis import format_table
from repro.net.simnet import LinkProfile
from repro.sim import write_script

from benchmarks.conftest import run_once

OPS = 10


def _run(background: bool, seed: int = 400):
    cluster = build_cluster(f=1, seed=seed, background_signing=background)
    node = cluster.add_client("w")
    node.run_script(write_script("client:w", OPS))
    cluster.run(max_time=120)
    cluster.settle(0.1)
    foreground = sum(r.stats.foreground_signs for r in cluster.replicas.values())
    background_count = sum(
        r.stats.background_signs for r in cluster.replicas.values()
    )
    return foreground / (OPS * 4), background_count / (OPS * 4)


def test_e4_background_signing(benchmark):
    def experiment():
        fg_off, bg_off = _run(background=False)
        fg_on, bg_on = _run(background=True)
        rows = [
            ["foreground only (default)", fg_off, bg_off],
            ["background phase-3 signing", fg_on, bg_on],
        ]
        print()
        print(
            format_table(
                ["policy", "foreground signs/replica/write",
                 "background signs/replica/write"],
                rows,
                title="E4: replica signatures per write (paper: phase-3 sign can "
                "move off the critical path)",
            )
        )
        return fg_off, fg_on, bg_on

    fg_off, fg_on, bg_on = run_once(benchmark, experiment)
    # Default: phase-1 reply, phase-2 reply, phase-3 reply => 3 foreground.
    assert abs(fg_off - 3.0) < 0.2, fg_off
    # Background signing moves the WRITE-REPLY signature off the write path.
    assert abs(fg_on - 2.0) < 0.2, fg_on
    assert bg_on >= 0.9
    # Exactly the §3.3.2 accounting: of the remaining two foreground
    # signatures, only the PREPARE-REPLY one *needs* public-key crypto (the
    # phase-1 envelope could be a MAC).


def test_e4_rsa_vs_hmac_backend(benchmark):
    """The signature backends are interchangeable; RSA exercises genuine
    public-key verification and is orders of magnitude slower — which is
    why §3.3.2's accounting of *which* messages need signatures matters."""

    def experiment():
        import time

        results = {}
        for scheme in ("hmac", "rsa"):
            start = time.perf_counter()
            cluster = build_cluster(f=1, seed=401, scheme=scheme)
            node = cluster.add_client("w")
            node.run_script(write_script("client:w", 5))
            cluster.run(max_time=300)
            elapsed = time.perf_counter() - start
            stats = cluster.config.scheme.stats
            results[scheme] = (elapsed, stats.signs, stats.verifies)
        rows = [
            [scheme, f"{elapsed:.3f}s", signs, verifies]
            for scheme, (elapsed, signs, verifies) in results.items()
        ]
        print()
        print(
            format_table(
                ["backend", "wall time (5 writes)", "signs", "verifies"],
                rows,
                title="E4b: signature backend comparison",
            )
        )
        return results

    results = run_once(benchmark, experiment)
    # Both backends perform identical numbers of operations.
    assert results["hmac"][1] == results["rsa"][1]
    assert results["hmac"][2] == results["rsa"][2]


def test_e4c_background_signing_latency(benchmark):
    """§3.3.2's point, rendered as latency: with signing cost modelled in
    virtual time, moving the phase-3 signature into the background shortens
    the write path by one signature delay per phase-3 RPC."""

    SIGN_DELAY = 0.010  # one public-key signature = 10 virtual ms

    def p50(background: bool) -> float:
        cluster = build_cluster(
            f=1, seed=402, background_signing=background, sign_delay=SIGN_DELAY
        )
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", OPS))
        cluster.run(max_time=300)
        return cluster.metrics.latency_summary("write").p50 * 1000

    def experiment():
        fg = p50(background=False)
        bg = p50(background=True)
        print()
        print(
            format_table(
                ["policy", "write latency p50 (ms, sign=10ms)"],
                [
                    ["foreground phase-3 signing", fg],
                    ["background phase-3 signing", bg],
                ],
                title="E4c: §3.3.2 background signing as a latency effect",
            )
        )
        return fg, bg

    fg, bg = run_once(benchmark, experiment)
    # One 10ms signature leaves the critical path.
    assert 5 <= fg - bg <= 15, (fg, bg)


def test_e4d_verification_cache(benchmark):
    """The memoizing verification pipeline under a retransmission-heavy
    network: every retransmitted request/reply re-presents the same
    signatures and certificates, so the cached deployment re-verifies them
    from the memo while the uncached one pays the backend every time."""

    #: Drops and duplicates force plenty of retransmission traffic.
    PROFILE = LinkProfile(drop_rate=0.15, duplicate_rate=0.2, max_delay=0.02)

    def run(cached: bool):
        cluster = build_cluster(
            f=1,
            seed=403,
            profile=PROFILE,
            verification_cache=cached,
        )
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", OPS))
        cluster.run(max_time=300)
        cluster.settle(0.1)
        backend_verifies = cluster.config.scheme.stats.verifies
        stats = cluster.config.verifier.stats
        return {
            "backend_per_op": backend_verifies / OPS,
            "cert_checks": stats.certificate_checks,
            "sig_hit_rate": stats.signature_hit_rate,
            "cert_hit_rate": stats.certificate_hit_rate,
            "metrics_per_op": cluster.metrics.verified_signatures_per_op(),
            "metrics_hit_rate": cluster.metrics.verification_hit_rate(),
        }

    def experiment():
        uncached = run(cached=False)
        cached = run(cached=True)
        rows = [
            [
                "uncached backend",
                f"{uncached['backend_per_op']:.1f}",
                f"{uncached['sig_hit_rate']:.0%}",
                f"{uncached['cert_hit_rate']:.0%}",
            ],
            [
                "memoizing verifier",
                f"{cached['backend_per_op']:.1f}",
                f"{cached['sig_hit_rate']:.0%}",
                f"{cached['cert_hit_rate']:.0%}",
            ],
        ]
        print()
        print(
            format_table(
                [
                    "pipeline",
                    "backend verifies/write",
                    "sig-memo hit rate",
                    "cert-memo hit rate",
                ],
                rows,
                title="E4d: verification caching under 15% drop / 20% dup "
                "(10 writes)",
            )
        )
        return uncached, cached

    uncached, cached = run_once(benchmark, experiment)
    # Identical workload and network schedule on both arms (certificate
    # validations are requested identically; only backend work differs).
    assert uncached["cert_checks"] == cached["cert_checks"]
    # Acceptance: >= 2x fewer backend verifications per write when cached.
    assert uncached["backend_per_op"] >= 2 * cached["backend_per_op"], (
        uncached["backend_per_op"],
        cached["backend_per_op"],
    )
    assert cached["sig_hit_rate"] > 0.5
    # The metrics surface reports the same counters.
    assert cached["metrics_hit_rate"] == cached["sig_hit_rate"]
    assert cached["metrics_per_op"] > 0
