"""E5 — Lurking-write bounds (§5 Theorem 1, §6.3, §7).

Paper claims:
* base protocol: a stopped Byzantine client leaves at most **1** lurking
  write, even with maximal hoarding attempts;
* optimized protocol: at most **2** (one per prepare list);
* strong (§7) protocol: lurking writes are *masked* after 2 consecutive
  good-client overwrites (BFT-linearizable+ with k = 2).
"""

from __future__ import annotations

from repro import build_cluster, count_lurking_writes
from repro.analysis import format_table
from repro.byzantine import (
    Colluder,
    LurkingWriteAttack,
    OptimizedLurkingWriteAttack,
)
from repro.sim import read_script, write_script
from repro.spec import check_bft_linearizable, check_bft_linearizable_plus

from benchmarks.conftest import run_once


def _base_attack(seed: int):
    cluster = build_cluster(f=1, seed=seed)
    attack = LurkingWriteAttack(cluster, "evil", warmup=1, extra_attempts=3)
    attack.start()
    cluster.run(max_time=120)
    attack.stop()
    colluder = Colluder(cluster, "colluder", attack.hoard)
    colluder.start()
    reader = cluster.add_client("reader")
    reader.run_script(read_script(3), start_delay=0.5, think_time=0.1)
    cluster.run(max_time=120)
    lurking = count_lurking_writes(cluster.history, "client:evil")
    ok = check_bft_linearizable(
        cluster.history, max_b=1, bad_clients={"client:evil"}
    ).ok
    return len(attack.hoard), attack.failed_attempts, lurking, ok


def _optimized_attack(seed: int):
    cluster = build_cluster(f=1, variant="optimized", seed=seed)
    attack = OptimizedLurkingWriteAttack(cluster, "evil")
    attack.start()
    cluster.run(max_time=120)
    attack.stop()
    colluder = Colluder(cluster, "colluder", attack.hoard)
    colluder.start()
    reader = cluster.add_client("reader")
    reader.run_script(read_script(3), start_delay=0.6, think_time=0.1)
    cluster.run(max_time=120)
    lurking = count_lurking_writes(cluster.history, "client:evil")
    ok = check_bft_linearizable(
        cluster.history, max_b=2, bad_clients={"client:evil"}
    ).ok
    return len(attack.hoard), 0, lurking, ok


def test_e5_lurking_write_bounds(benchmark):
    def experiment():
        rows = []
        results = {}
        for name, runner, bound in (
            ("base", _base_attack, 1),
            ("optimized", _optimized_attack, 2),
        ):
            hoard, failed, lurking, ok = runner(seed=500)
            results[name] = (hoard, lurking, ok)
            rows.append([name, bound, hoard, lurking, "yes" if ok else "NO"])
        print()
        print(
            format_table(
                ["protocol", "paper bound", "hoard achieved",
                 "lurking writes seen", "BFT-linearizable"],
                rows,
                title="E5: lurking writes after the Byzantine client stops",
            )
        )
        return results

    results = run_once(benchmark, experiment)
    base_hoard, base_lurking, base_ok = results["base"]
    assert base_hoard == 1  # Lemma 1(2): hoarding a second prepare fails
    assert base_lurking <= 1  # Theorem 1
    assert base_ok
    opt_hoard, opt_lurking, opt_ok = results["optimized"]
    assert opt_hoard == 2  # §6.3: the two-list exploit works ...
    assert opt_lurking <= 2  # ... but Theorem 2's bound holds
    assert opt_ok


def test_e5_strong_masking(benchmark):
    """§7: after two good-client overwrites, the lurking write is invisible
    forever (BFT-linearizable+ with k=2)."""

    def experiment():
        cluster = build_cluster(f=1, variant="strong", seed=501)
        # In strong mode the bad client must justify its prepare, but it can
        # still hoard the final WRITE.  Reuse the base attack machinery with
        # strong-protocol operations.
        from repro.byzantine.clients import ByzantineActor, CapturedWrite
        from repro.core.strong_operations import StrongWriteOperation

        class StrongHoarder(ByzantineActor):
            def __init__(self, cluster, name):
                super().__init__(cluster, name)
                self.hoard = []

            def start(self):
                class CaptureOp(StrongWriteOperation):
                    def _begin_write(op_self, cert):  # noqa: N805
                        op_self.captured = cert
                        return op_self._finish(None)

                op = CaptureOp(
                    self.node_id, self.config,
                    (self.node_id, 1, "lurking"), self.nonces.next(), None,
                )
                def after(done_op):
                    cert = done_op.captured
                    self.hoard.append(
                        CapturedWrite(
                            done_op.value,
                            self.make_write_request(done_op.value, cert),
                        )
                    )
                    self._finish()
                self._run_op(op, after)

        attack = StrongHoarder(cluster, "evil")
        attack.start()
        cluster.run(max_time=120)
        assert attack.hoard
        attack.stop()

        # Good client overwrites twice BEFORE the colluder replays.
        writer = cluster.add_client("good")
        writer.run_script(write_script("client:good", 2))
        cluster.run(max_time=120)
        colluder = Colluder(cluster, "colluder", attack.hoard)
        colluder.start()
        reader = cluster.add_client("reader")
        reader.run_script(read_script(3), start_delay=0.5, think_time=0.1)
        cluster.run(max_time=120)

        plus = check_bft_linearizable_plus(
            cluster.history, k=2, bad_clients={"client:evil"}
        )
        reads = [
            r.result
            for r in cluster.history.operations()
            if r.op == "read" and r.complete
        ]
        print()
        print(
            format_table(
                ["check", "result"],
                [
                    ["hoard size", len(attack.hoard)],
                    ["reads after 2 overwrites", repr(sorted(set(map(repr, reads))))],
                    ["BFT-linearizable+ (k=2)", "yes" if plus.ok else "NO"],
                ],
                title="E5b: §7 strong protocol masks lurking writes after k=2 overwrites",
            )
        )
        return plus.ok, reads

    ok, reads = run_once(benchmark, experiment)
    assert ok
    # The lurking write's timestamp succeeds a pre-stop completed write, so
    # two fresh good writes dominate it: readers only see the good value.
    assert all(r == ("client:good", 1, None) for r in reads)


def test_e5c_collusion_chain_masking_depth(benchmark):
    """§7.2's motivation, measured: a colluding group of |C| clients chains
    |C| lurking writes with successive timestamps against the base protocol,
    and an adaptive colluder can keep trumping good writes ~|C|/2 times.
    The strong protocol caps the chain at one link, masked within two good
    writes (BFT-linearizable+ with k = 2)."""

    from repro.byzantine import CollusionChainAttack

    GROUP = ["m1", "m2", "m3", "m4", "m5", "m6"]

    def masking_depth(variant: str) -> tuple[int, int]:
        cluster = build_cluster(f=1, variant=variant, seed=502)
        attack = CollusionChainAttack(cluster, "leader", GROUP)
        attack.start()
        cluster.run(max_time=120)
        attack.stop_all()
        hoard = sorted(attack.hoard, key=lambda c: c.ts)
        good = cluster.add_client("good")
        reader = cluster.add_client("reader")
        rounds_visible = 0
        seq = 0
        for _ in range(len(GROUP) + 3):
            # One good overwrite ...
            seq += 1
            good.run_script([("write", ("client:good", seq, None))])
            cluster.run(max_time=60)
            # ... then the adaptive colluder releases the smallest hoarded
            # write that still trumps the register (unreleased links keep
            # their higher timestamps fresh for later rounds).
            current = max(r.pcert.ts for r in cluster.replicas.values())
            release = next((c for c in hoard if c.ts > current), None)
            if release is not None:
                colluder = Colluder(cluster, f"colluder-{seq}", [release])
                colluder.start()
                hoard.remove(release)
                cluster.run(max_time=60)
            reader.run_script([("read", None)])
            cluster.run(max_time=60)
            value = reader.client.last_result
            writer = value[0] if isinstance(value, tuple) else None
            if writer != "client:good":
                rounds_visible += 1
            elif not hoard:
                break
        return len(attack.hoard), rounds_visible

    def experiment():
        base_hoard, base_depth = masking_depth("base")
        strong_hoard, strong_depth = masking_depth("strong")
        print()
        print(
            format_table(
                ["protocol", "colluding clients", "chained lurking writes",
                 "good writes trumped"],
                [
                    ["base", len(GROUP), base_hoard, base_depth],
                    ["strong (§7)", len(GROUP), strong_hoard, strong_depth],
                ],
                title="E5c: collusion chain — why §7 exists "
                "(base: masking depth grows with |C|; strong: <= 2)",
            )
        )
        return base_hoard, base_depth, strong_hoard, strong_depth

    base_hoard, base_depth, strong_hoard, strong_depth = run_once(
        benchmark, experiment
    )
    assert base_hoard == len(GROUP)   # the chain fully succeeds on base
    assert strong_hoard == 1          # and dies at one link on strong
    assert base_depth >= 2            # adaptive releases trump repeatedly
    assert strong_depth <= 2          # §7's k=2 masking bound
    assert base_depth > strong_depth
