"""E16 — Durability cost of the write-ahead log (`bench_persistence.py`).

The pluggable storage engine lets the same protocol run on a volatile
:class:`~repro.storage.MemoryStore` or a journaling
:class:`~repro.storage.FileLogStore`.  This experiment measures what the
journal costs: wall-clock time for a fixed write workload on each backend
(fsync="always" vs fsync="never" vs memory), plus the deterministic storage
counters (log appends, fsyncs, bytes) the metrics collector aggregates.

The analytical model in :mod:`repro.analysis.costs` predicts the per-write
log-record count; the measured appends-per-operation must match it.

Marked ``slow``: real fsyncs on real files, excluded from tier-1 runs.
"""

from __future__ import annotations

import pathlib
import sys
import time

import pytest

from repro.analysis import format_table
from repro.analysis.costs import CostModel
from repro.core.quorum import QuorumSystem
from repro.sim import ClusterOptions, build_cluster, write_script
from repro.storage import FileLogStore

from benchmarks.conftest import run_once

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "tools"))
import bench_record  # noqa: E402

pytestmark = pytest.mark.slow

WRITES = 20


def _arm(name: str, tmp_path, *, fsync: str | None, seed: int = 1600) -> dict:
    """Run the fixed workload on one storage backend; return its numbers."""
    if fsync is None:
        options = ClusterOptions(seed=seed)
    else:
        root = tmp_path / name
        options = ClusterOptions(
            seed=seed,
            store_factory=lambda rid: FileLogStore(root / rid, fsync=fsync),
        )
    started = time.perf_counter()
    cluster = build_cluster(options)
    cluster.run_scripts({"w": write_script("client:w", WRITES)}, max_time=600)
    elapsed = time.perf_counter() - started
    totals = cluster.metrics.storage_totals()
    ops = cluster.metrics.operations
    for replica in cluster.replicas.values():
        replica.store.close()
    return {
        "ops": ops,
        "wall_seconds": elapsed,
        "ops_per_wall_second": ops / elapsed,
        "log_appends": totals.appends,
        "fsyncs": totals.fsyncs,
        "bytes_written": totals.appended_bytes,
        "appends_per_op": cluster.metrics.log_appends_per_op(),
        "fsyncs_per_op": cluster.metrics.fsyncs_per_op(),
    }


def test_e16_durability_cost(benchmark, tmp_path):
    def experiment():
        arms = {
            "memory": _arm("memory", tmp_path, fsync=None),
            "wal_fsync": _arm("wal-fsync", tmp_path, fsync="always"),
            "wal_only": _arm("wal-nofsync", tmp_path, fsync="never"),
        }
        rows = [
            [
                name,
                arm["ops"],
                round(arm["wall_seconds"], 3),
                arm["log_appends"],
                arm["fsyncs"],
                arm["bytes_written"],
            ]
            for name, arm in arms.items()
        ]
        print()
        print(
            format_table(
                ["backend", "ops", "wall s", "appends", "fsyncs", "bytes"],
                rows,
                title="E16: durability cost, volatile vs write-ahead log",
            )
        )
        return arms

    arms = run_once(benchmark, experiment)

    # Same workload on every backend.
    assert len({arm["ops"] for arm in arms.values()}) == 1

    # The journaling discipline is backend-independent: every backend sees
    # the same logical append stream.  Only the volatile default writes no
    # actual bytes and never syncs.
    assert (
        arms["memory"]["log_appends"]
        == arms["wal_fsync"]["log_appends"]
        == arms["wal_only"]["log_appends"]
    )
    assert arms["memory"]["bytes_written"] == 0
    assert arms["memory"]["fsyncs"] == 0
    assert arms["wal_fsync"]["bytes_written"] > 0
    assert arms["wal_only"]["fsyncs"] == 0
    assert arms["wal_fsync"]["fsyncs"] > 0

    # Measured appends per write match the §3.3 analytical model.  Each
    # replica journals every write, so the cluster-wide rate is n times the
    # per-replica model (the denominator counts client operations).
    model = CostModel(quorums=QuorumSystem.bft_bc(f=1))
    predicted = model.write_log_records("base") * model.quorums.n
    assert arms["wal_fsync"]["appends_per_op"] == pytest.approx(
        predicted, rel=0.15
    ), (arms["wal_fsync"]["appends_per_op"], predicted)
    assert arms["wal_fsync"]["fsyncs_per_op"] == pytest.approx(
        model.fsyncs_per_write(fsync="always") * model.quorums.n, rel=0.15
    )

    payload = {
        name: {k: v for k, v in arm.items()}
        for name, arm in arms.items()
    }
    payload["fsync_slowdown"] = (
        arms["memory"]["ops_per_wall_second"]
        / arms["wal_fsync"]["ops_per_wall_second"]
    )
    bench_record.record("e16_durability_cost", payload)
