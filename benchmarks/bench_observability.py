"""E17 — observability overhead and span completeness across transports.

Two claims about the unified instrumentation layer (``repro.obs``):

1. **Cheap when on, free when off.**  Running the E13b wall-clock workload
   with full instrumentation (spans + histograms + verify sub-timings)
   costs under ~5% throughput versus the disabled null path; the disabled
   path itself is the default on every cluster, so uninstrumented runs pay
   one ``enabled`` check per hook and nothing else.
2. **Complete traces on both transports.**  One strong write produces
   spans for all three protocol phases (READ-TS, PREPARE, WRITE) under
   both the virtual-time simulator and the asyncio TCP transport; the
   JSON-lines dumps are written to ``traces/`` as reviewable artifacts.
"""

from __future__ import annotations

import asyncio
import gc
import json
import pathlib
import sys
import time

from repro import (
    AsyncClient,
    BftBcReplica,
    Instrumentation,
    LinkProfile,
    ReplicaServer,
    StrongBftBcClient,
    build_cluster,
    make_system,
    write_script,
)
from repro.analysis import format_table
from repro.obs import spans_to_jsonl

from benchmarks.conftest import run_once

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "tools"))
import bench_record  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
TRACE_DIR = REPO_ROOT / "traces"
WRITE_PHASES = ("READ-TS", "PREPARE", "WRITE")

OPS_EACH = 10
CLIENTS = 8
DELAY = 0.005


def _wall_clock_arm(*, instrumented: bool, seed: int = 1700) -> dict:
    """Time the E13b workload with observability on or off (wall clock).

    The GC is parked during the timed region: span recording allocates,
    and collector pauses otherwise dominate the ~0.15 s runs we compare.
    """
    instr = Instrumentation() if instrumented else None
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        cluster = build_cluster(
            f=1,
            variant="base",
            seed=seed,
            profile=LinkProfile(min_delay=DELAY, max_delay=DELAY),
            instrumentation=instr,
        )
        scripts = {
            f"w{i}": write_script(f"client:w{i}", OPS_EACH)
            for i in range(CLIENTS)
        }
        cluster.run_scripts(scripts, max_time=600)
        elapsed = time.perf_counter() - started
    finally:
        gc.enable()
    ops = cluster.metrics.operations
    result = {
        "ops": ops,
        "wall_seconds": elapsed,
        "ops_per_wall_second": ops / elapsed,
    }
    if instrumented:
        result["spans"] = len(instr.spans())
        result["series"] = len(instr.histograms)
    return result


def test_e17_observability_overhead(benchmark):
    """Instrumentation on vs off: best-of-seven interleaved wall timings."""

    def experiment():
        _wall_clock_arm(instrumented=False)  # warm imports and allocator
        _wall_clock_arm(instrumented=True)
        runs = {False: [], True: []}
        for _ in range(7):
            for instrumented in (False, True):
                runs[instrumented].append(
                    _wall_clock_arm(instrumented=instrumented)
                )
        off = min(runs[False], key=lambda r: r["wall_seconds"])
        on = min(runs[True], key=lambda r: r["wall_seconds"])
        overhead = on["wall_seconds"] / off["wall_seconds"] - 1
        print()
        print(
            format_table(
                ["arm", "ops", "wall seconds", "ops / wall second"],
                [
                    ["observability off", off["ops"],
                     round(off["wall_seconds"], 3),
                     round(off["ops_per_wall_second"], 1)],
                    ["observability on", on["ops"],
                     round(on["wall_seconds"], 3),
                     round(on["ops_per_wall_second"], 1)],
                ],
                title=f"E17: observability overhead "
                f"({on['spans']} spans, {on['series']} series recorded; "
                f"overhead {overhead:+.1%})",
            )
        )
        return {"off": off, "on": on, "overhead_fraction": overhead}

    results = run_once(benchmark, experiment)
    assert results["off"]["ops"] == results["on"]["ops"]
    # Full span + histogram recording must stay in the low single digits;
    # the bound is looser than the headline claim to absorb CI noise.
    assert results["overhead_fraction"] < 0.10, results
    bench_record.record("e17_observability_overhead", results)


def _phase_counts(spans) -> dict[str, int]:
    counts: dict[str, int] = {}
    for span in spans:
        if span.kind == "phase":
            counts[span.name] = counts.get(span.name, 0) + 1
    return counts


def _sim_strong_write_trace() -> Instrumentation:
    instr = Instrumentation()
    cluster = build_cluster(f=1, variant="strong", seed=1701,
                            instrumentation=instr)
    node = cluster.add_client("w")
    node.run_script(write_script("client:w", 1))
    cluster.run(max_time=60)
    return instr


def _tcp_strong_write_trace() -> Instrumentation:
    instr = Instrumentation()

    async def main():
        config = make_system(f=1, seed=b"e17-trace", strong=True)
        servers, addrs = [], {}
        for rid in config.quorums.replica_ids:
            replica = BftBcReplica(rid, config, instrumentation=instr)
            server = ReplicaServer(replica)
            host, port = await server.start()
            addrs[rid] = (host, port)
            servers.append(server)
        client = AsyncClient(
            StrongBftBcClient("client:w", config, instrumentation=instr), addrs
        )
        await client.connect()
        await client.write(("client:w", 0, "traced-payload"))
        await client.close()
        for server in servers:
            await server.stop()

    asyncio.run(main())
    return instr


def test_e17_strong_write_trace_on_both_transports(benchmark):
    """One strong write yields all three phase spans on sim and TCP alike."""

    def experiment():
        TRACE_DIR.mkdir(exist_ok=True)
        summary = {}
        for transport, instr in (
            ("sim", _sim_strong_write_trace()),
            ("tcp", _tcp_strong_write_trace()),
        ):
            spans = instr.spans()
            dump = spans_to_jsonl(spans)
            path = TRACE_DIR / f"strong_write_{transport}.jsonl"
            path.write_text(dump, encoding="utf-8")
            summary[transport] = {
                "spans": len(spans),
                "phase_counts": _phase_counts(spans),
                "trace_file": str(path.relative_to(REPO_ROOT)),
            }
            print(f"{transport}: {len(spans)} spans -> {path}")
        return summary

    summary = run_once(benchmark, experiment)
    for transport in ("sim", "tcp"):
        counts = summary[transport]["phase_counts"]
        assert counts == {kind: 1 for kind in WRITE_PHASES}, (transport, counts)
        trace = (REPO_ROOT / summary[transport]["trace_file"]).read_text()
        names = {json.loads(line)["name"] for line in trace.splitlines()}
        assert set(WRITE_PHASES) <= names
    bench_record.record("e17_strong_write_traces", summary)
