#!/usr/bin/env python3
"""End-to-end smoke of the process cluster: load, kill -9, recover, agree.

Stands up a 3-worker process cluster (4 replicas for f=1, so one worker
hosts two), drives a pipelined workload of 200 operations through the
deployment handle, SIGKILLs one worker mid-run (the supervisor restarts it
on its data directory and original ports; its replicas recover Figure-2
state from snapshot + WAL), finishes the workload, and asserts:

* every operation committed (the kill cost retransmissions, not failures);
* the final read returns the last flush write;
* after teardown, every replica's *offline-recovered* durable state
  fingerprint is identical — the crashed worker's journal converged with
  the survivors'.

Run:  python tools/cluster_smoke.py [--ops 200] [--data-dir DIR]
Exits 0 on success, 1 on any violated assertion.  The slow-marked tier-1
test ``tests/test_cluster.py::TestClusterSmoke`` runs this in-process.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cluster import DeploymentSpec, ProcessDeployment  # noqa: E402


def run_smoke(
    *,
    ops: int = 200,
    workers: int = 3,
    pipeline: int = 4,
    data_dir: str | None = None,
    kill_node: str = "replica:1",
    verbose: bool = True,
) -> dict:
    """Run the campaign; returns a result dict (raises AssertionError on bugs)."""

    def say(message: str) -> None:
        if verbose:
            print(message, flush=True)

    spec = DeploymentSpec(
        transport="process",
        workers=workers,
        pipeline=pipeline,
        data_dir=data_dir,
        seed=7,
    )
    half = [("write", f"smoke{i}") for i in range(ops // 2)]
    rest = [("write", f"smoke{i}") for i in range(ops // 2, ops - 2)]
    started = time.monotonic()
    with ProcessDeployment(spec, auto_restart=True) as dep:
        say(f"cluster up: {len(dep.addrs)} replicas on {workers} workers")
        first = dep.run_script(half)
        assert all(record.result is not None for record in first)
        victim = dep.cluster.worker_for(kill_node)
        say(f"kill -9 worker {victim.index} (hosts {list(victim.node_ids)})")
        dep.cluster.kill(kill_node)
        second = dep.run_script(rest)
        assert all(record.result is not None for record in second)
        # The workload outruns the supervisor: 98 local writes finish in
        # milliseconds while crash detection + respawn takes ~1s.  Wait for
        # the victim to come back so the flush certificates below actually
        # reach its recovered replica.
        deadline = time.monotonic() + 30
        while not (victim.restarts >= 1 and victim.alive):
            assert time.monotonic() < deadline, "victim never restarted"
            time.sleep(0.05)
        # Two sequential flush writes converge write_ts and clear every
        # losing prepare-list entry (see tests/test_pipeline_property.py).
        # The first also GCs the stale prepare-list entries the victim
        # journalled before dying.
        dep.write("smoke-flush-1")
        final = "smoke-flush-2"
        flush_ts = dep.write(final)
        read = dep.read()
        assert read == final, f"read {read!r} != last write {final!r}"
        restarts = sum(worker.restarts for worker in dep.cluster.workers)
        assert restarts >= 1, "the supervisor never restarted the victim"
        say(
            f"{ops} ops committed through the kill; "
            f"{restarts} restart(s); final ts {flush_ts}"
        )
        # The flush completed with 2f+1 replies; give the straggler's last
        # WRITE frame a beat to land before tearing the fleet down.
        time.sleep(0.5)
        prints = dep.fingerprints()  # stops the fleet, recovers offline
    distinct = len(set(prints.values()))
    assert distinct == 1, f"fingerprints diverged across {distinct} states"
    elapsed = time.monotonic() - started
    say(f"all {len(prints)} replicas agree after recovery ({elapsed:.1f}s)")
    return {
        "ops": ops,
        "restarts": restarts,
        "final_ts": flush_ts,
        "fingerprint": next(iter(prints.values())).hex(),
        "elapsed": elapsed,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ops", type=int, default=200)
    parser.add_argument("--workers", type=int, default=3)
    parser.add_argument("--pipeline", type=int, default=4)
    parser.add_argument("--data-dir", default=None)
    args = parser.parse_args(argv)
    try:
        run_smoke(
            ops=args.ops,
            workers=args.workers,
            pipeline=args.pipeline,
            data_dir=args.data_dir,
        )
    except AssertionError as exc:
        print(f"SMOKE FAILED: {exc}", file=sys.stderr)
        return 1
    print("cluster smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
