#!/usr/bin/env python3
"""End-to-end smoke of the process cluster: load, kill -9, recover, agree.

Stands up a 3-worker process cluster (4 replicas for f=1, so one worker
hosts two), drives a pipelined workload of 200 operations through the
deployment handle, SIGKILLs one worker mid-run (the supervisor restarts it
on its data directory and original ports; its replicas recover Figure-2
state from snapshot + WAL), finishes the workload, and asserts:

* every operation committed (the kill cost retransmissions, not failures);
* the final read returns the last flush write;
* after teardown, every replica's *offline-recovered* durable state
  fingerprint is identical — the crashed worker's journal converged with
  the survivors'.

A second stage then corrupts a different replica's WAL on disk (one byte
flipped inside a sealed record payload) and SIGKILLs its worker: the
restarted worker detects the bad seal during recovery, quarantines the
WAL tail, and its stabilization loop rebuilds the state from the peers
named in ``cluster.json`` — evidenced by the quarantine artifact plus the
repair-written snapshot, and by the same bit-identical offline
fingerprints at teardown.

Run:  python tools/cluster_smoke.py [--ops 200] [--data-dir DIR]
Exits 0 on success, 1 on any violated assertion.  The slow-marked tier-1
test ``tests/test_cluster.py::TestClusterSmoke`` runs this in-process.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cluster import DeploymentSpec, ProcessDeployment  # noqa: E402


def run_smoke(
    *,
    ops: int = 200,
    workers: int = 3,
    pipeline: int = 4,
    data_dir: str | None = None,
    kill_node: str = "replica:1",
    corrupt_node: str = "replica:2",
    stabilize_timeout: float = 30.0,
    verbose: bool = True,
) -> dict:
    """Run the campaign; returns a result dict (raises AssertionError on bugs)."""

    def say(message: str) -> None:
        if verbose:
            print(message, flush=True)

    spec = DeploymentSpec(
        transport="process",
        workers=workers,
        pipeline=pipeline,
        data_dir=data_dir,
        seed=7,
    )
    half = [("write", f"smoke{i}") for i in range(ops // 2)]
    rest = [("write", f"smoke{i}") for i in range(ops // 2, ops - 2)]
    started = time.monotonic()
    with ProcessDeployment(spec, auto_restart=True) as dep:
        say(f"cluster up: {len(dep.addrs)} replicas on {workers} workers")
        first = dep.run_script(half)
        assert all(record.result is not None for record in first)
        victim = dep.cluster.worker_for(kill_node)
        say(f"kill -9 worker {victim.index} (hosts {list(victim.node_ids)})")
        dep.cluster.kill(kill_node)
        second = dep.run_script(rest)
        assert all(record.result is not None for record in second)
        # The workload outruns the supervisor: 98 local writes finish in
        # milliseconds while crash detection + respawn takes ~1s.  Wait for
        # the victim to come back so the flush certificates below actually
        # reach its recovered replica.
        deadline = time.monotonic() + 30
        while not (victim.restarts >= 1 and victim.alive):
            assert time.monotonic() < deadline, "victim never restarted"
            time.sleep(0.05)
        # Two sequential flush writes converge write_ts and clear every
        # losing prepare-list entry (see tests/test_pipeline_property.py).
        # The first also GCs the stale prepare-list entries the victim
        # journalled before dying.
        dep.write("smoke-flush-1")
        final = "smoke-flush-2"
        flush_ts = dep.write(final)
        read = dep.read()
        assert read == final, f"read {read!r} != last write {final!r}"
        restarts = sum(worker.restarts for worker in dep.cluster.workers)
        assert restarts >= 1, "the supervisor never restarted the victim"
        say(
            f"{ops} ops committed through the kill; "
            f"{restarts} restart(s); final ts {flush_ts}"
        )

        # -- stage 2: state corruption, quarantine, rebuild from quorum --
        from repro.cluster.process import replica_data_dir
        from repro.encoding import decode_frame

        cvictim = dep.cluster.worker_for(corrupt_node)
        cdir = Path(
            replica_data_dir(cvictim.data_dir, cvictim.node_ids, corrupt_node)
        )
        wal = cdir / "wal.bin"
        raw = wal.read_bytes()
        assert raw, f"{corrupt_node} journalled nothing to corrupt"
        # Flip one byte in the middle of the first record's *sealed
        # payload* — guaranteed to fail the integrity tag (a flip in a
        # frame header could masquerade as a torn tail instead).
        sealed, rest = decode_frame(raw)
        header = len(raw) - len(rest) - len(sealed)
        offset = header + len(sealed) // 2
        with open(wal, "r+b") as fh:
            fh.seek(offset)
            original = fh.read(1)
            fh.seek(offset)
            fh.write(bytes([original[0] ^ 0x80]))
        say(
            f"flipped WAL byte {offset} of {corrupt_node} "
            f"({cdir}); kill -9 worker {cvictim.index}"
        )
        crestarts = cvictim.restarts
        dep.cluster.kill(corrupt_node)
        deadline = time.monotonic() + stabilize_timeout
        while not (cvictim.restarts > crestarts and cvictim.alive):
            assert time.monotonic() < deadline, "corrupt victim never restarted"
            time.sleep(0.05)
        # Recovery quarantines the sealed-but-mangled record and everything
        # after it; the worker's stabilization loop then pulls replacement
        # state from the peers in cluster.json.  Both steps leave durable
        # evidence: the quarantine artifact and the repair-written snapshot.
        while True:
            quarantined = list(cdir.glob("wal.quarantine.*.bin"))
            repaired = (cdir / "snapshot.bin").exists()
            if quarantined and repaired:
                break
            assert time.monotonic() < deadline, (
                f"stabilization incomplete: quarantine={bool(quarantined)} "
                f"repaired={repaired}"
            )
            time.sleep(0.2)
        say(
            f"{corrupt_node} quarantined its WAL tail and rebuilt from "
            f"peers ({quarantined[0].name})"
        )
        # Converge once more so the repaired replica also holds the final
        # writes, then check agreement offline.
        dep.write("smoke-flush-3")
        final = "smoke-flush-4"
        flush_ts = dep.write(final)
        read = dep.read()
        assert read == final, f"read {read!r} != last write {final!r}"
        restarts = sum(worker.restarts for worker in dep.cluster.workers)

        # The flush completed with 2f+1 replies; give the straggler's last
        # WRITE frame a beat to land before tearing the fleet down.
        time.sleep(0.5)
        prints = dep.fingerprints()  # stops the fleet, recovers offline
    distinct = len(set(prints.values()))
    assert distinct == 1, f"fingerprints diverged across {distinct} states"
    elapsed = time.monotonic() - started
    say(f"all {len(prints)} replicas agree after recovery ({elapsed:.1f}s)")
    return {
        "ops": ops,
        "restarts": restarts,
        "final_ts": flush_ts,
        "fingerprint": next(iter(prints.values())).hex(),
        "elapsed": elapsed,
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ops", type=int, default=200)
    parser.add_argument("--workers", type=int, default=3)
    parser.add_argument("--pipeline", type=int, default=4)
    parser.add_argument("--data-dir", default=None)
    args = parser.parse_args(argv)
    try:
        run_smoke(
            ops=args.ops,
            workers=args.workers,
            pipeline=args.pipeline,
            data_dir=args.data_dir,
        )
    except AssertionError as exc:
        print(f"SMOKE FAILED: {exc}", file=sys.stderr)
        return 1
    print("cluster smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
