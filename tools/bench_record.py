#!/usr/bin/env python3
"""Record benchmark results as a merged JSON document.

Benchmarks call :func:`record` to persist their headline numbers to
``BENCH_throughput.json`` at the repo root (or any path the caller picks).
The file is a single JSON object mapping benchmark name to its latest
result payload plus bookkeeping (``recorded_at`` wall-clock stamp and the
recording host's Python version), merged on every write so independent
benchmarks can share one file without clobbering each other.

Run standalone to pretty-print the current file:

    python tools/bench_record.py [path]
"""

from __future__ import annotations

import datetime
import json
import pathlib
import platform
import sys
from typing import Any, Optional

__all__ = ["DEFAULT_PATH", "record", "load"]

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_PATH = REPO_ROOT / "BENCH_throughput.json"


def load(path: Optional[pathlib.Path] = None) -> dict[str, Any]:
    """The current results document (empty dict when absent or corrupt).

    A corrupt file is treated as absent rather than fatal so one bad write
    never bricks the whole benchmark suite's recording.
    """
    target = pathlib.Path(path) if path is not None else DEFAULT_PATH
    try:
        loaded = json.loads(target.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    return loaded if isinstance(loaded, dict) else {}


def _check_keys(name: str, payload: dict[str, Any]) -> None:
    """Reject keys that are not valid Python identifiers.

    Dashboard queries address results as ``doc[name][key]`` paths in tools
    that treat keys as identifiers (jq field access, pandas attribute
    lookup), so ``"wal only"`` or ``"wal+fsync"`` style keys break them.
    """
    bad = [key for key in [name, *payload] if not str(key).isidentifier()]
    if bad:
        raise ValueError(
            "benchmark keys must be valid Python identifiers "
            f"(use underscores, e.g. 'wal_fsync'): {bad!r}"
        )


def record(
    name: str,
    payload: dict[str, Any],
    path: Optional[pathlib.Path] = None,
) -> dict[str, Any]:
    """Merge ``payload`` under ``name`` into the results file; return the doc.

    The payload must be JSON-serialisable, and ``name`` plus every top-level
    payload key must be a valid Python identifier (enforced by
    :func:`_check_keys`).  Existing entries for other benchmarks are
    preserved; re-recording the same name overwrites it.
    """
    _check_keys(name, payload)
    target = pathlib.Path(path) if path is not None else DEFAULT_PATH
    document = load(target)
    document[name] = {
        **payload,
        "recorded_at": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "python": platform.python_version(),
    }
    target.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return document


def main(argv: list[str]) -> int:
    target = pathlib.Path(argv[1]) if len(argv) > 1 else DEFAULT_PATH
    document = load(target)
    if not document:
        print(f"no results recorded at {target}")
        return 1
    print(json.dumps(document, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
