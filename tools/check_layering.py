#!/usr/bin/env python3
"""Assert the package layering that the verification refactor established.

The intended layering, lowest first (a module may import from its own layer
or below, never above):

    0  repro.errors, repro.encoding
    1  repro.crypto, repro.storage
    2  repro.core.verification
    3  repro.core (everything else in core)
    4  repro.spec, repro.analysis, repro.shard
    5  repro.baselines, repro.byzantine, repro.net, repro.sim, repro.load,
       repro.cluster, repro (root)

The crucial edges this pins down: ``crypto`` never imports ``core``;
``core.verification`` sits between ``crypto`` and the rest of ``core`` and
imports nothing from ``core.*``; protocol logic (``core``) never reaches up
into transports or the simulator.  ``repro.storage`` sits *below*
``repro.core``: stores traffic only in canonical wire values (encoding,
layer 0) and never see protocol types — the translation lives in
``repro.core.persistence`` (layer 3), which is what lets the same store
back every replica variant.  The wire fast path keeps the same shape:
``encoding.interning`` lives at layer 0 so ``crypto`` and ``core`` can share
interned statement bytes, and ``core.batching`` is ordinary ``core`` (layer
3) — it may use messages and encoding but never the transports that carry
its envelopes.  ``repro.shard`` (placement, directory, reconfiguration)
composes ``core`` protocol machines but stays transport-agnostic: the
simulator, asyncio transport, and chaos engine (layer 5) host shard roles,
never the reverse.  Imports are discovered by parsing every
source file under ``src/repro`` with :mod:`ast` — including imports inside
``TYPE_CHECKING`` blocks and function bodies, so lazy imports cannot hide a
cycle-in-waiting.

Run:  python tools/check_layering.py   (exits 1 and lists violations)
The tier-1 test ``tests/test_layering.py`` runs this on every suite run.
"""

from __future__ import annotations

import ast
import pathlib
import sys

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"

#: Longest-prefix match decides a module's layer.
LAYERS: dict[str, int] = {
    "repro.errors": 0,
    "repro.encoding": 0,
    "repro.encoding.interning": 0,
    "repro.crypto": 1,
    "repro.obs": 1,
    "repro.storage": 1,
    "repro.storage.integrity": 1,
    "repro.core.verification": 2,
    "repro.core.batching": 3,
    "repro.core.repair": 3,
    "repro.core": 3,
    "repro.spec": 4,
    "repro.analysis": 4,
    "repro.shard": 4,
    "repro.baselines": 5,
    "repro.byzantine": 5,
    "repro.net": 5,
    "repro.sim": 5,
    "repro.chaos": 5,
    "repro.load": 5,
    "repro.cluster": 5,
    "repro": 5,
}


def layer_of(module: str) -> int | None:
    """The layer of ``module``, by longest matching prefix; None if foreign."""
    parts = module.split(".")
    for length in range(len(parts), 0, -1):
        prefix = ".".join(parts[:length])
        if prefix in LAYERS:
            return LAYERS[prefix]
    return None


def module_name_for(path: pathlib.Path, root: pathlib.Path) -> str:
    relative = path.relative_to(root).with_suffix("")
    parts = list(relative.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def imports_of(path: pathlib.Path, importer: str) -> set[str]:
    """Every absolute ``repro.*`` module imported anywhere in ``path``."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    found: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro"):
                    found.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                # Relative import: resolve against the importing package.
                base = importer.split(".")
                if path.name != "__init__.py":
                    base = base[:-1]
                base = base[: len(base) - (node.level - 1)]
                module = ".".join(base + ([node.module] if node.module else []))
            else:
                module = node.module or ""
            if module.startswith("repro"):
                found.add(module)
    return found


def find_violations(src: pathlib.Path = SRC) -> list[tuple[str, str, int, int]]:
    """Scan the tree; return (importer, imported, importer_layer, imported_layer)."""
    violations: list[tuple[str, str, int, int]] = []
    for path in sorted(src.rglob("*.py")):
        importer = module_name_for(path, src)
        importer_layer = layer_of(importer)
        if importer_layer is None:
            continue
        for imported in sorted(imports_of(path, importer)):
            imported_layer = layer_of(imported)
            if imported_layer is None:
                continue
            if imported_layer > importer_layer:
                violations.append(
                    (importer, imported, importer_layer, imported_layer)
                )
    return violations


def main() -> int:
    violations = find_violations()
    if violations:
        print("layering violations (importer -> imported, layers):")
        for importer, imported, il, tl in violations:
            print(f"  {importer} (L{il}) -> {imported} (L{tl})")
        return 1
    print("layering ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
