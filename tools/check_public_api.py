#!/usr/bin/env python3
"""Enforce the public-API boundary introduced by the ``repro`` facade.

Three checks, all driven by the same sources of truth:

1. **Examples use the facade only.**  Every ``examples/*.py`` file may
   import ``repro`` itself and nothing deeper — the examples are the
   public-API showcase, so a deep import there is a documentation bug.
2. **Tests and benchmarks stay on documented modules.**  ``tests/*.py``
   and ``benchmarks/*.py`` may import only modules documented by
   ``tools/gen_api_docs.py`` (its ``MODULES`` list), their ancestor
   packages, or ``repro.__main__`` (the CLI under test).
3. **``repro.__all__`` matches docs/API.md.**  The names exported from
   the facade must be exactly the names documented in the ``## `repro```
   section — if the facade grows or shrinks, the docs must be
   regenerated in the same change.

Run:  python tools/check_public_api.py
Exit status 0 when clean, 1 with a per-violation listing otherwise.
"""

from __future__ import annotations

import ast
import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT / "tools"))

from gen_api_docs import MODULES  # noqa: E402


def repro_imports(path: pathlib.Path) -> list[tuple[int, str]]:
    """Return ``(lineno, module_path)`` for every repro import in ``path``."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    found: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    found.append((node.lineno, alias.name))
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level == 0 and (
                module == "repro" or module.startswith("repro.")
            ):
                found.append((node.lineno, module))
    return found


def allowed_modules() -> set[str]:
    """Documented modules, their ancestor packages, and the CLI module."""
    allowed = {"repro.__main__"}
    for module in MODULES:
        parts = module.split(".")
        for stop in range(1, len(parts) + 1):
            allowed.add(".".join(parts[:stop]))
    return allowed


def documented_facade_names() -> set[str]:
    """Names under the ``## `repro``` section of docs/API.md."""
    text = (ROOT / "docs" / "API.md").read_text(encoding="utf-8")
    match = re.search(
        r"^## `repro`\n(.*?)(?=^## `|\Z)", text, re.MULTILINE | re.DOTALL
    )
    if match is None:
        return set()
    names = set()
    for heading in re.finditer(
        r"^### (?:class )?`([A-Za-z_]\w*)", match.group(1), re.MULTILINE
    ):
        names.add(heading.group(1))
    return names


def main() -> int:
    problems: list[str] = []

    for path in sorted((ROOT / "examples").glob("*.py")):
        for lineno, module in repro_imports(path):
            if module != "repro":
                problems.append(
                    f"{path.relative_to(ROOT)}:{lineno}: examples must import "
                    f"from the `repro` facade only, not {module!r}"
                )

    allowed = allowed_modules()
    for directory in ("tests", "benchmarks"):
        for path in sorted((ROOT / directory).glob("*.py")):
            for lineno, module in repro_imports(path):
                if module not in allowed:
                    problems.append(
                        f"{path.relative_to(ROOT)}:{lineno}: {module!r} is not "
                        "a documented public module (tools/gen_api_docs.py)"
                    )

    import repro

    exported = set(repro.__all__)
    documented = documented_facade_names()
    for name in sorted(exported - documented):
        problems.append(
            f"repro.__all__ exports {name!r} but docs/API.md does not "
            "document it; run tools/gen_api_docs.py"
        )
    for name in sorted(documented - exported):
        problems.append(
            f"docs/API.md documents {name!r} under `repro` but it is not in "
            "repro.__all__; run tools/gen_api_docs.py"
        )

    if problems:
        print("\n".join(problems))
        print(f"\n{len(problems)} public-API violation(s)")
        return 1
    print(
        f"public API clean: {len(exported)} facade names, "
        f"{len(allowed)} documented modules"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
