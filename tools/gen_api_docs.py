#!/usr/bin/env python3
"""Generate docs/API.md from the public API's signatures and docstrings.

Walks the ``repro`` packages, collects every name exported via ``__all__``,
and emits a markdown reference: one section per module, one entry per class
(with public methods) or function, using the first paragraph of each
docstring.

Run:  python tools/gen_api_docs.py
"""

from __future__ import annotations

import importlib
import inspect
import pathlib
import sys

MODULES = [
    "repro",
    "repro.errors",
    "repro.core.timestamp",
    "repro.core.quorum",
    "repro.core.certificates",
    "repro.core.messages",
    "repro.core.batching",
    "repro.core.config",
    "repro.core.statements",
    "repro.core.persistence",
    "repro.core.verification",
    "repro.core.phases",
    "repro.core.replica",
    "repro.core.operations",
    "repro.core.optimized_operations",
    "repro.core.strong_operations",
    "repro.core.fast_operations",
    "repro.core.fast_replica",
    "repro.core.repair",
    "repro.core.client",
    "repro.core.multiobject",
    "repro.baselines.statements",
    "repro.baselines.messages",
    "repro.baselines.bqs",
    "repro.baselines.phalanx",
    "repro.baselines.runner",
    "repro.byzantine.clients",
    "repro.byzantine.replicas",
    "repro.byzantine.bqs_attacks",
    "repro.spec.histories",
    "repro.spec.linearizability",
    "repro.spec.bft_linearizability",
    "repro.spec.invariants",
    "repro.sim.scheduler",
    "repro.sim.nodes",
    "repro.sim.multi_node",
    "repro.sim.runner",
    "repro.sim.workload",
    "repro.sim.faults",
    "repro.sim.metrics",
    "repro.sim.recorder",
    "repro.sim.tracing",
    "repro.sim.explorer",
    "repro.sim.shard_cluster",
    "repro.shard.ring",
    "repro.shard.directory",
    "repro.shard.messages",
    "repro.shard.replica",
    "repro.shard.router",
    "repro.shard.reconfig",
    "repro.storage.base",
    "repro.storage.integrity",
    "repro.storage.filelog",
    "repro.net.simnet",
    "repro.net.asyncio_transport",
    "repro.net.mux",
    "repro.net.chaos_proxy",
    "repro.net.shard_transport",
    "repro.chaos.plan",
    "repro.chaos.oracles",
    "repro.chaos.engine",
    "repro.chaos.minimize",
    "repro.chaos.artifact",
    "repro.chaos.shard",
    "repro.chaos.tcp",
    "repro.load.profile",
    "repro.load.generator",
    "repro.load.harness",
    "repro.load.tcp",
    "repro.cluster.spec",
    "repro.cluster.process",
    "repro.cluster.deploy",
    "repro.crypto.signatures",
    "repro.crypto.rsa",
    "repro.crypto.keys",
    "repro.crypto.hashing",
    "repro.crypto.nonces",
    "repro.crypto.authenticators",
    "repro.crypto.commitments",
    "repro.encoding.canonical",
    "repro.encoding.interning",
    "repro.encoding.codec",
    "repro.analysis.costs",
    "repro.analysis.report",
    "repro.obs.spans",
    "repro.obs.histograms",
    "repro.obs.instrumentation",
    "repro.obs.export",
]


def first_paragraph(obj) -> str:
    doc = inspect.getdoc(obj) or ""
    paragraph = doc.split("\n\n", 1)[0].replace("\n", " ").strip()
    return paragraph


def signature_of(obj) -> str:
    import re

    try:
        text = str(inspect.signature(obj))
    except (TypeError, ValueError):
        return "(...)"
    # Function/object default reprs embed memory addresses; keep the name.
    return re.sub(r"<function (\w+) at 0x[0-9a-f]+>", r"\1", text)


def document_class(cls) -> list[str]:
    lines = [f"### class `{cls.__name__}`", "", first_paragraph(cls), ""]
    methods = []
    for name, member in inspect.getmembers(cls):
        if name.startswith("_"):
            continue
        if inspect.isfunction(member) or inspect.ismethod(member):
            if member.__qualname__.split(".")[0] != cls.__name__:
                continue  # inherited
            methods.append((name, member))
    if methods:
        for name, member in methods:
            summary = first_paragraph(member)
            lines.append(f"- `{name}{signature_of(member)}`"
                         + (f" — {summary}" if summary else ""))
        lines.append("")
    return lines


def document_module(module_name: str) -> list[str]:
    module = importlib.import_module(module_name)
    exported = getattr(module, "__all__", None)
    if not exported:
        return []
    lines = [f"## `{module_name}`", "", first_paragraph(module), ""]
    for name in exported:
        obj = getattr(module, name, None)
        if obj is None:
            continue
        if inspect.isclass(obj):
            lines.extend(document_class(obj))
        elif inspect.isfunction(obj):
            summary = first_paragraph(obj)
            lines.append(f"### `{name}{signature_of(obj)}`")
            lines.append("")
            if summary:
                lines.append(summary)
                lines.append("")
        else:
            lines.append(f"### `{name}`")
            lines.append("")
            if isinstance(obj, (set, frozenset)):
                # Set reprs follow per-process hash order; sort for a
                # deterministic document.
                body = ", ".join(repr(item) for item in sorted(obj, key=repr))
                rendered = f"{type(obj).__name__}({{{body}}})"
            else:
                rendered = repr(obj)
            lines.append(f"Constant: `{rendered}`"[:120])
            lines.append("")
    return lines


def main() -> int:
    out = pathlib.Path(__file__).resolve().parent.parent / "docs" / "API.md"
    out.parent.mkdir(exist_ok=True)
    lines = [
        "# API reference",
        "",
        "Generated by `tools/gen_api_docs.py` — do not edit by hand.",
        "Every entry links back to the module's docstring; see PROTOCOL.md",
        "for the guided walkthrough and DESIGN.md for the system inventory.",
        "",
    ]
    for module_name in MODULES:
        lines.extend(document_module(module_name))
    out.write_text("\n".join(lines), encoding="utf-8")
    print(f"wrote {out} ({len(lines)} lines)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
