#!/usr/bin/env python3
"""Nightly chaos smoke campaign with a fixed seed.

Runs a moderate simulated campaign, a sharded reconfiguration episode
(replica replacement mid-rebalance under a lossy network, judged by the
shard oracle battery including epoch agreement), plus the TCP proxy
campaign; fails loudly on any oracle violation, and records the headline
counters to ``BENCH_throughput.json`` (via :mod:`tools.bench_record`) so
the nightly dashboard can chart chaos coverage next to the throughput
numbers.

The seed is fixed so a red nightly is immediately reproducible:

    python -m repro chaos run --seed 20060625 --episodes 60
    python -m repro shard rebalance --seed 20060625

Usage:

    python tools/chaos_ci.py [--seed N] [--episodes K] [--skip-tcp]
                             [--skip-shard]
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import bench_record  # noqa: E402

#: ICDCS 2006's opening day — arbitrary, stable, and greppable.
DEFAULT_SEED = 20060625


def _run_shard_smoke(seed: int):
    """One sharded reconfiguration episode: crash-replace mid-traffic."""
    from repro.chaos import ShardEpisodePlan, run_shard_episode

    plan = ShardEpisodePlan(
        seed=seed,
        shards=2,
        clients=2,
        ops_per_client=40,
        objects=8,
        handoff=0.2,
        profile={
            "min_delay": 0.001,
            "max_delay": 0.02,
            "drop_rate": 0.03,
            "reorder_rate": 0.05,
        },
        reconfigurations=[
            {
                "time": 0.1,
                "shard": "shard:0",
                "remove": "replica:s0n1",
                "add": "replica:s0nX",
                "crash_old": True,
            }
        ],
    )
    return run_shard_episode(plan)


def _run_corruption_smoke(seed: int) -> dict:
    """Deterministic state-corruption episodes across every fault op.

    One episode per (corruption op, store) pairing, each with the periodic
    self-audit armed: the stabilization oracle requires every correct
    replica to exit quarantine (or prove it silently healed) before the
    episode passes.
    """
    from repro.chaos import CampaignConfig, generate_plan, run_episode

    specs = [
        (
            "filelog",
            {"op": "wal_bitflip", "time": 0.5, "node": "replica:1",
             "position": 0.5, "flip": 0x80},
        ),
        (
            "filelog",
            {"op": "snapshot_truncate", "time": 0.6, "node": "replica:2",
             "keep": 0.2},
        ),
        (
            "memory",
            {"op": "state_perturb", "time": 0.5, "node": "replica:3",
             "target": "data", "seed": 11},
        ),
        (
            "filelog",
            {"op": "state_perturb", "time": 0.4, "node": "replica:0",
             "target": "write_ts", "seed": 3},
        ),
    ]
    episodes = 0
    violations = []
    quarantines = repairs = corrupt_records = 0
    for index, (store, spec) in enumerate(specs):
        base = generate_plan(
            CampaignConfig(
                seed=seed + index,
                episodes=1,
                byzantine=False,
                attacks=False,
                corruption=False,
                stores=(store,),
            ),
            0,
        )
        result = run_episode(
            base.replace(faults=[spec], audit_interval=0.2)
        )
        episodes += 1
        quarantines += result.quarantines
        repairs += result.repairs
        corrupt_records += result.corrupt_records
        violations.extend(
            f"{spec['op']}/{name}"
            for name, verdict in result.verdicts.items()
            if not verdict.ok
        )
    return {
        "episodes": episodes,
        "violations": violations,
        "quarantines": quarantines,
        "repairs": repairs,
        "corrupt_records": corrupt_records,
    }


def main(argv: list[str] | None = None) -> int:
    from repro.analysis import format_campaign
    from repro.chaos import CampaignConfig, run_campaign
    from repro.chaos.tcp import TcpChaosConfig, run_tcp_campaign

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument("--episodes", type=int, default=60)
    parser.add_argument("--skip-tcp", action="store_true")
    parser.add_argument("--skip-shard", action="store_true")
    args = parser.parse_args(argv)

    started = time.time()
    campaign = run_campaign(
        CampaignConfig(seed=args.seed, episodes=args.episodes)
    )
    summary = campaign.summary()
    print(format_campaign(summary))
    sim_seconds = time.time() - started

    shard_ok = None
    shard_seconds = 0.0
    if not args.skip_shard:
        started = time.time()
        shard_result = _run_shard_smoke(args.seed)
        shard_ok = all(v.ok for v in shard_result.verdicts.values())
        shard_seconds = time.time() - started
        bad = [n for n, v in shard_result.verdicts.items() if not v.ok]
        print()
        print(
            "shard rebalance smoke: "
            + ("ok" if shard_ok else f"VIOLATIONS {bad}")
            + f" ({shard_result.stats.get('ops')} ops, "
            + f"{shard_result.stats.get('epoch_changes')} epoch changes)"
        )

    started = time.time()
    corruption = _run_corruption_smoke(args.seed)
    corruption_seconds = time.time() - started
    print()
    print(
        "corruption smoke: "
        + ("ok" if not corruption["violations"]
           else f"VIOLATIONS {corruption['violations']}")
        + f" ({corruption['episodes']} episodes, "
        + f"{corruption['quarantines']} quarantines, "
        + f"{corruption['repairs']} repairs)"
    )
    bench_record.record(
        "chaos_corruption_smoke",
        {
            "seed": args.seed,
            "episodes": corruption["episodes"],
            "violations": len(corruption["violations"]),
            "quarantines": corruption["quarantines"],
            "repairs": corruption["repairs"],
            "corrupt_records": corruption["corrupt_records"],
            "seconds": round(corruption_seconds, 3),
        },
    )

    tcp_summary = None
    if not args.skip_tcp:
        started = time.time()
        tcp_summary = run_tcp_campaign(TcpChaosConfig(seed=args.seed))
        print()
        print(format_campaign(tcp_summary))
        tcp_seconds = time.time() - started
    else:
        tcp_seconds = 0.0

    bench_record.record(
        "chaos_smoke",
        {
            "seed": args.seed,
            "episodes": summary["episodes"],
            "violations": summary["violations"],
            "operations": summary["totals"]["operations"],
            "messages_sent": summary["totals"]["messages_sent"],
            "messages_dropped": summary["totals"]["messages_dropped"],
            "messages_reordered": summary["totals"]["messages_reordered"],
            "replica_crashes": summary["totals"]["replica_crashes"],
            "sim_seconds": round(sim_seconds, 3),
            "shard_ok": shard_ok,
            "shard_seconds": round(shard_seconds, 3),
            "tcp_ok": None if tcp_summary is None else tcp_summary["ok"],
            "tcp_seconds": round(tcp_seconds, 3),
        },
    )

    failed = (
        summary["violations"] > 0
        or shard_ok is False
        or bool(corruption["violations"])
        or (tcp_summary is not None and not tcp_summary["ok"])
    )
    if failed:
        print("\nCHAOS SMOKE FAILED", file=sys.stderr)
        return 1
    print("\nchaos smoke clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
