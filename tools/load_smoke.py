#!/usr/bin/env python3
"""CI smoke for the open-loop load harness (E21's little sibling).

One sim-only open-loop run, sized to finish in well under ten seconds of
wall clock while still exercising every identity-scale mechanism at once:
a ~10^4-identity universe admitted through a registry namespace, lazy
secret derivation into a deliberately small LRU, per-client protocol state
under a tight :class:`~repro.core.persistence.ClientStateBudget` (so spill
and rehydrate actually fire), and SLO judgment over the obs histograms.

Fails loudly if any SLO is violated, any operation fails, or the spill
machinery never engaged; records the headline counters to
``BENCH_throughput.json`` under ``load_smoke`` so the nightly dashboard can
chart load coverage next to the throughput numbers.

Usage:

    python tools/load_smoke.py [--seed N]
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import bench_record  # noqa: E402

DEFAULT_SEED = 20060625


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    args = parser.parse_args(argv)

    from repro.core.persistence import ClientStateBudget
    from repro.load import LoadProfile, SimLoadOptions, SimLoadHarness

    profile = LoadProfile(
        rate=1250.0,
        duration=4.0,
        identities=10_000,
        objects=32,
        write_fraction=0.2,
        zipf_skew=1.1,
        seed=args.seed,
        identity_policy="sequential",
    )
    options = SimLoadOptions(
        variant="optimized",
        service_delay=0.0005,
        budget=ClientStateBudget(hot_entries=8),
        secret_cache=2048,
    )
    harness = SimLoadHarness(profile, options)
    started = time.perf_counter()
    report = harness.run()
    wall = time.perf_counter() - started

    failures = []
    if not report.slo_ok:
        failures.append(
            "SLO violations: "
            + ", ".join(v.metric for v in report.slos if not v.ok)
        )
    if report.failed:
        failures.append(f"{report.failed} operations failed to complete")
    if report.identity["client_state_spills"] == 0:
        failures.append("client-state budget never spilled (smoke too small?)")
    if report.identity["registry_evictions"] == 0:
        failures.append("secret cache never evicted (smoke too small?)")

    bench_record.record(
        "load_smoke",
        {
            "seed": args.seed,
            "wall_seconds": round(wall, 2),
            "arrivals": report.arrivals,
            "completed": report.completed,
            "failed": report.failed,
            "distinct_identities": report.distinct_identities,
            "identity_universe": profile.identities,
            "offered_rate": round(report.offered_rate, 1),
            "predicted_capacity": round(report.predicted_capacity, 1),
            "utilization": round(report.utilization, 3),
            "write_p95_ms": round(report.write_p95 * 1000, 2),
            "read_p95_ms": round(report.read_p95 * 1000, 2),
            "tracked_entries": report.identity["tracked_entries"],
            "client_state_spills": report.identity["client_state_spills"],
            "client_state_rehydrations": report.identity[
                "client_state_rehydrations"
            ],
            "registry_evictions": report.identity["registry_evictions"],
            "slo_ok": report.slo_ok,
            "ok": not failures,
        },
    )

    print(
        f"load smoke: {report.arrivals} arrivals, "
        f"{report.distinct_identities} distinct identities, "
        f"util {report.utilization:.0%}, "
        f"write p95 {report.write_p95 * 1000:.1f} ms, "
        f"spills {report.identity['client_state_spills']}, "
        f"{wall:.1f}s wall"
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("load smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
