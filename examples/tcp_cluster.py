#!/usr/bin/env python3
"""Deploy BFT-BC on real sockets and real processes with ``deploy()``.

One declarative :class:`DeploymentSpec` stands up the whole system; the
handle is the same whether the replicas live in the deterministic
simulator, behind in-process asyncio TCP servers, or in separate OS
processes.  This example runs two acts:

1. ``transport="tcp"`` — four loopback replica servers, a pipelined
   client keeping two operations in flight over one shared connection
   per replica.
2. ``transport="process"`` — one worker process per replica, one of them
   SIGKILLed mid-run; the supervisor restarts it on its original ports,
   its replica recovers from the write-ahead log, and every replica's
   offline-recovered state fingerprint agrees at the end.

Run:  python examples/tcp_cluster.py
"""

import time

from repro import DeploymentSpec, deploy


def act_one_tcp() -> None:
    spec = DeploymentSpec(transport="tcp", pipeline=2, seed=42)
    print(f"act 1: {spec.n} asyncio TCP replicas on localhost, "
          f"{spec.pipeline} ops in flight\n")
    with deploy(spec) as dep:
        for node_id, (host, port) in sorted(dep.addrs.items()):
            print(f"  {node_id} listening on {host}:{port}")
        start = time.perf_counter()
        records = dep.run_script([("write", f"payload-{i}") for i in range(12)])
        elapsed = time.perf_counter() - start
        for record in records:
            print(f"  [{record.client}] wrote {record.value!r} "
                  f"at ts={record.result}")
        print(f"  read back: {dep.read()!r}")
        print(f"  {len(records)} writes in {elapsed:.2f}s "
              f"({len(records) / elapsed:.0f} ops/s)\n")


def act_two_process() -> None:
    spec = DeploymentSpec(transport="process", workers=4, pipeline=2, seed=42)
    print(f"act 2: {spec.n} replicas, one OS process each, "
          "kill -9 mid-run\n")
    with deploy(spec, auto_restart=True) as dep:
        dep.run_script([("write", f"before-{i}") for i in range(10)])
        victim = dep.cluster.worker_for("replica:3")
        dep.cluster.kill("replica:3")
        print(f"  !! SIGKILLed worker {victim.index} (replica:3); "
              "the quorum rides through")
        dep.run_script([("write", f"after-{i}") for i in range(10)])
        deadline = time.monotonic() + 30
        while not (victim.restarts >= 1 and victim.alive):
            assert time.monotonic() < deadline, "supervisor never restarted it"
            time.sleep(0.05)
        print(f"  supervisor restarted it on its original port "
              f"{victim.addrs['replica:3'][1]}; replica recovered from WAL")
        # Two sequential flushes through one client converge write_ts and
        # clear every straggling prepare-list entry cluster-wide.
        dep.write("final-1")
        dep.write("final-2")
        print(f"  read back: {dep.read()!r}")
        time.sleep(0.5)
        prints = dep.fingerprints()  # stops the fleet, recovers offline
    assert len(set(prints.values())) == 1
    print(f"  all {len(prints)} offline-recovered replica fingerprints "
          "agree\n")


def main() -> None:
    act_one_tcp()
    act_two_process()
    print("done: one spec, one handle, three transports (see DESIGN.md §4.10)")


if __name__ == "__main__":
    main()
