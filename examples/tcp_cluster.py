#!/usr/bin/env python3
"""Run BFT-BC over real TCP sockets with asyncio.

The same sans-I/O replica and client state machines that power the
deterministic simulator are deployed here behind actual network listeners:
four replica servers on localhost, two concurrent clients doing writes and
reads, one replica killed mid-run to show the quorum protocol riding
through it.

Run:  python examples/tcp_cluster.py
"""

import asyncio
import time

from repro import AsyncClient, BftBcClient, BftBcReplica, ReplicaServer, make_system


async def client_workload(name: str, config, addrs, rounds: int) -> list:
    client = AsyncClient(
        BftBcClient(f"client:{name}", config), addrs, retransmit_interval=0.1
    )
    await client.connect()
    results = []
    for seq in range(rounds):
        ts = await client.write((f"client:{name}", seq, f"payload-{seq}"))
        value = await client.read()
        results.append((ts, value))
        print(f"  [{name}] wrote seq={seq} at ts={ts}, read back {value}")
    await client.close()
    return results


async def main() -> None:
    config = make_system(f=1, seed=b"tcp-example")
    print(f"deployment: {config.quorums.describe()} over TCP on localhost\n")

    servers = {}
    addrs = {}
    for rid in config.quorums.replica_ids:
        server = ReplicaServer(BftBcReplica(rid, config))
        host, port = await server.start()
        servers[rid] = server
        addrs[rid] = (host, port)
        print(f"  {rid} listening on {host}:{port}")

    print("\nrunning two concurrent clients ...")
    start = time.perf_counter()

    async def kill_one_replica():
        await asyncio.sleep(0.05)
        await servers["replica:3"].stop()
        print("  !! replica:3 killed mid-run (within the f=1 budget)")

    results = await asyncio.gather(
        client_workload("alpha", config, addrs, rounds=3),
        client_workload("beta", config, addrs, rounds=3),
        kill_one_replica(),
    )
    elapsed = time.perf_counter() - start

    total_ops = sum(len(r) * 2 for r in results[:2])
    print(f"\n{total_ops} operations completed in {elapsed:.2f}s "
          f"({total_ops / elapsed:.0f} ops/s) despite the crashed replica")

    for server in servers.values():
        await server.stop()


if __name__ == "__main__":
    asyncio.run(main())
