#!/usr/bin/env python3
"""Scenario: a Byzantine-fault-tolerant key-value store.

The paper presents one object for clarity but notes the system "can deal
with multiple objects; each object would have a distinct identifier" (§3.2).
This example builds exactly that: each key is an independent BFT-BC object,
hosted by the same 3f+1 replicas, with per-key signature scoping so that
certificates earned on one key can never be replayed against another.

Operations on different keys proceed concurrently; operations on the same
key are sequential and atomic.

Run:  python examples/kv_store.py
"""

from repro import (
    LinkProfile,
    MultiObjectClient,
    MultiObjectClientNode,
    MultiObjectReplica,
    OptimizedBftBcClient,
    OptimizedBftBcReplica,
    Scheduler,
    SimNetwork,
    make_system,
)


def build_kv_cluster(f: int = 1, seed: int = 11):
    config = make_system(f, seed=b"kv-example")
    scheduler = Scheduler()
    network = SimNetwork(
        scheduler, profile=LinkProfile(drop_rate=0.05, max_delay=0.01), seed=seed
    )
    replicas = {}
    for rid in config.quorums.replica_ids:
        replica = MultiObjectReplica(rid, config, replica_cls=OptimizedBftBcReplica)
        replicas[rid] = replica

        def handler(src, msg, r=replica):
            reply = r.handle(src, msg)
            if reply is not None:
                network.send(r.node_id, src, reply)

        network.register(rid, handler)
    return config, scheduler, network, replicas


def main() -> None:
    config, scheduler, network, replicas = build_kv_cluster()
    print(f"kv store: {config.quorums.describe()}, optimized protocol, "
          "5% message loss\n")

    service = MultiObjectClient(
        "client:frontend", config, client_cls=OptimizedBftBcClient
    )
    node = MultiObjectClientNode(service, network, scheduler, max_in_flight=8)

    me = "client:frontend"
    script = [
        ("users/alice", "write", (me, 1, {"name": "Alice", "plan": "pro"})),
        ("users/bob", "write", (me, 2, {"name": "Bob", "plan": "free"})),
        ("counters/signups", "write", (me, 3, 2)),
        ("users/alice", "write", (me, 4, {"name": "Alice", "plan": "enterprise"})),
        ("users/alice", "read", None),
        ("users/bob", "read", None),
        ("counters/signups", "read", None),
        ("users/carol", "read", None),  # never written: initial state
    ]
    node.run_script(script)
    scheduler.run(until=60, stop_when=lambda: node.done)
    assert node.done, "workload did not complete"

    print("results (concurrent across keys, sequential per key):")
    for (key, kind, _), result in node.results:
        if kind == "read":
            shown = result[2] if isinstance(result, tuple) else result
            print(f"  GET {key:18s} -> {shown!r}")
        else:
            print(f"  PUT {key:18s} at ts={result}")

    replica = replicas["replica:0"]
    print(f"\nobjects hosted per replica : {sorted(replica.objects)}")
    print(f"messages on the wire       : {network.stats.messages_sent} "
          f"({network.stats.messages_dropped} dropped, retransmission recovered)")
    per_key_ts = {
        obj: str(replica.object_state(obj).pcert.ts)
        for obj in sorted(replica.objects)
    }
    print(f"per-key timestamps (independent counters): {per_key_ts}")


if __name__ == "__main__":
    main()
