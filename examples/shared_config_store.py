#!/usr/bin/env python3
"""Scenario: a fault-tolerant shared configuration store.

A small fleet of operators concurrently updates a replicated configuration
record while monitoring agents read it — over a lossy, reordering network,
with a replica crashing and recovering mid-run.  This is the classic
deployment the quorum-register abstraction targets: the object must stay
available and atomic even though up to f replicas (and any client!) may be
Byzantine.

Run:  python examples/shared_config_store.py
"""

from repro import (
    FaultSchedule,
    LinkProfile,
    build_cluster,
    check_register_linearizable,
    value_for,
)


def config_value(operator: str, version: int) -> tuple:
    """A config snapshot, tagged so the checker can attribute writers."""
    payload = f"max_conns={100 + version};timeout={30 + version}s"
    return value_for(operator, version, payload)


def main() -> None:
    cluster = build_cluster(
        f=1,
        variant="optimized",  # 2-phase writes in the common case
        seed=7,
        profile=LinkProfile(drop_rate=0.08, max_delay=0.015, duplicate_rate=0.02),
    )
    print(f"deployment: {cluster.config.quorums.describe()}")
    print("network   : 8% loss, duplication, reordering")

    # replica:2 crashes mid-run and recovers later — within the f budget.
    cluster.install_faults(
        FaultSchedule().crash(0.4, "replica:2").recover(1.2, "replica:2")
    )

    scripts = {}
    for index, operator in enumerate(("ops-anna", "ops-ben")):
        writer = f"client:{operator}"
        scripts[operator] = [
            ("write", config_value(writer, version)) for version in range(5)
        ]
    for monitor in ("mon-1", "mon-2"):
        scripts[monitor] = [("read", None)] * 6

    cluster.run_scripts(scripts, think_time=0.05, stagger=0.02, max_time=300)

    print(f"\noperations completed: {cluster.metrics.operations}")
    print(f"write latency p50/p95: "
          f"{cluster.metrics.latency_summary('write').p50 * 1000:.1f} / "
          f"{cluster.metrics.latency_summary('write').p95 * 1000:.1f} ms (virtual)")
    print(f"read latency p50/p95 : "
          f"{cluster.metrics.latency_summary('read').p50 * 1000:.1f} / "
          f"{cluster.metrics.latency_summary('read').p95 * 1000:.1f} ms (virtual)")
    print(f"fast-path writes     : {cluster.metrics.fast_path_rate():.0%}")
    print(f"messages dropped     : {cluster.network.stats.messages_dropped} of "
          f"{cluster.network.stats.messages_sent} (retransmission recovered)")

    reads = [
        record.result
        for record in cluster.history.operations()
        if record.op == "read" and record.complete
    ]
    print("\nwhat the monitors saw, in order:")
    for value in reads:
        if value is None:
            print("  (initial state — no config written yet)")
        else:
            writer, version, payload = value
            print(f"  v{version} by {writer}: {payload}")

    report = check_register_linearizable(cluster.history)
    print(f"\nhistory linearizable: {report.ok}")
    assert report.ok, report.violation


if __name__ == "__main__":
    main()
