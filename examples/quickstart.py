#!/usr/bin/env python3
"""Quickstart: a BFT-BC replicated register in one minute.

Builds a simulated deployment (3f+1 = 4 replicas tolerating f = 1 Byzantine
failure), performs writes and reads through the paper's three-phase protocol,
and verifies the resulting history is linearizable.

Run:  python examples/quickstart.py
"""

from repro import build_cluster, check_register_linearizable, write_script


def main() -> None:
    # A cluster bundles the quorum system, the simulated PKI, 4 replicas,
    # a deterministic network, and metrics/history recording.
    cluster = build_cluster(f=1, variant="base", seed=42)
    print(f"cluster: {cluster.config.quorums.describe()}")

    # Clients execute scripts of operations; values are (writer, seq, payload).
    alice = cluster.add_client("alice")
    alice.run_script(
        write_script("client:alice", 3) + [("read", None)],
    )
    cluster.run()

    print(f"alice's read returned: {alice.client.last_result}")
    print(f"operations completed : {cluster.metrics.operations}")
    print(f"write phases (p50)   : {cluster.metrics.phases_summary('write').p50}"
          " (the paper's 3-phase write)")
    print(f"read phases (p50)    : {cluster.metrics.phases_summary('read').p50}")
    print(f"messages on the wire : {cluster.network.stats.messages_sent}")

    report = check_register_linearizable(cluster.history)
    print(f"history linearizable : {report.ok}")

    # The optimized §6 protocol does the same work in 2 phases.
    fast = build_cluster(f=1, variant="optimized", seed=42)
    bob = fast.add_client("bob")
    bob.run_script(write_script("client:bob", 3))
    fast.run()
    print(f"\noptimized variant: write phases p50 = "
          f"{fast.metrics.phases_summary('write').p50}, "
          f"fast-path rate = {fast.metrics.fast_path_rate():.0%}")


if __name__ == "__main__":
    main()
