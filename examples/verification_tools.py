#!/usr/bin/env python3
"""Tour of the verification tooling: traces, checkers, and executable proofs.

Runs a lurking-write attack while three verification instruments watch:

1. :class:`~repro.sim.MessageTrace` — every message on the wire, timestamped;
2. :func:`~repro.spec.check_lemma1` — §5's Lemma 1 as an executable
   invariant over the replicas' signing logs;
3. :func:`~repro.spec.check_bft_linearizable` — Definition 1 against the
   recorded client history, lurking-write bound included.

Run:  python examples/verification_tools.py
"""

from repro import (
    Colluder,
    LurkingWriteAttack,
    MessageTrace,
    build_cluster,
    check_bft_linearizable,
    check_lemma1,
    count_lurking_writes,
    read_script,
    write_script,
)


def main() -> None:
    cluster = build_cluster(f=1, seed=99)
    trace = MessageTrace.attach(cluster)

    # A good client works first; the Byzantine client then hoards a
    # prepared write *on top of* the good client's state, so the hoarded
    # timestamp stays the freshest in the system.
    good = cluster.add_client("good")
    good.run_script(write_script("client:good", 2))
    cluster.run(max_time=60)
    attack = LurkingWriteAttack(cluster, "evil", warmup=1, extra_attempts=2)
    attack.start()
    cluster.run(max_time=60)

    print("=== 1. the wire, as it happened (first 12 events) " + "=" * 14)
    print(trace.render(limit=12))
    print()
    print(trace.summary())

    print("\n=== 2. Lemma 1, checked against replica signing logs " + "=" * 10)
    report = check_lemma1(
        cluster.replicas.values(), f=1, suspects=["client:evil"]
    )
    print(f"tsmax (f+1-st highest stored timestamp): {report.tsmax}")
    print(f"certifiable prepares above tsmax: "
          f"{ {c: list(map(str, t)) for c, t in report.certifiable_prepares.items()} }")
    print(f"Lemma 1 holds: {report.ok}"
          + (f" — violations: {report.violations}" if not report.ok else ""))
    print(f"(the attacker's {attack.failed_attempts} extra hoarding attempts "
          "were refused: at most one certifiable prepare above tsmax)")

    print("\n=== 3. Definition 1, checked against the client history " + "=" * 7)
    attack.stop()
    Colluder(cluster, "colluder", attack.hoard).start()
    reader = cluster.add_client("reader")
    reader.run_script(read_script(2), start_delay=0.4, think_time=0.1)
    cluster.run(max_time=60)

    lurking = count_lurking_writes(cluster.history, "client:evil")
    result = check_bft_linearizable(
        cluster.history, max_b=1, bad_clients={"client:evil"}
    )
    print(f"lurking writes first seen after the stop event: {lurking}")
    print(f"BFT-linearizable with max-b = 1: {result.ok}")
    assert result.ok and report.ok


if __name__ == "__main__":
    main()
