#!/usr/bin/env python3
"""Demonstration: every §3.2 Byzantine-client attack, against both BFT-BC
and the unprotected BQS baseline.

This is the paper's core motivation made executable:

1. equivocation       — same timestamp, two values.
2. partial writes     — install the value at a single replica.
3. timestamp exhaustion — propose ts = 10^15.
4. lurking writes     — hoard a prepared write, hand it to a colluder,
                        get removed, have the colluder replay it.

Run:  python examples/byzantine_tolerance_demo.py
"""

from repro import (
    BqsEquivocationAttack,
    BqsTimestampExhaustionAttack,
    Colluder,
    EquivocationAttack,
    LurkingWriteAttack,
    PartialWriteAttack,
    TimestampExhaustionAttack,
    build_bqs_cluster,
    build_cluster,
    check_bft_linearizable,
    check_register_linearizable,
    count_lurking_writes,
    read_script,
)


def banner(text: str) -> None:
    print(f"\n=== {text} " + "=" * max(0, 60 - len(text)))


def demo_equivocation() -> None:
    banner("Attack 1: equivocation (two values, one timestamp)")

    bqs = build_bqs_cluster(f=1, seed=1)
    attack = BqsEquivocationAttack(bqs, "evil")
    attack.start()
    bqs.run(max_time=30)
    r1, r2 = bqs.add_client("r1"), bqs.add_client("r2")
    r1.run_script(read_script(1))
    r2.run_script(read_script(1), start_delay=0.2)
    bqs.run(max_time=30)
    print(f"BQS   : reader-1 saw {r1.client.last_result!r}, "
          f"reader-2 saw {r2.client.last_result!r}")
    print(f"BQS   : linearizable? "
          f"{check_register_linearizable(bqs.history).ok}  <-- broken")

    bft = build_cluster(f=1, seed=1)
    attack2 = EquivocationAttack(bft, "evil")
    attack2.start()
    bft.run(max_time=30)
    print(f"BFT-BC: prepare certificates the attacker could assemble: "
          f"{attack2.quorums_reached} (needs a quorum per value; "
          f"got {len(attack2.signatures['A'])} + {len(attack2.signatures['B'])} "
          f"signatures for the two values)")


def demo_partial_write() -> None:
    banner("Attack 2: partial write (one replica only)")
    bft = build_cluster(f=1, seed=2)
    attack = PartialWriteAttack(bft, "evil")
    attack.start()
    bft.run(max_time=30)
    holders = [rid for rid, r in bft.replicas.items() if r.data is not None]
    print(f"BFT-BC: value installed at {holders} only")
    bft.network.crash("replica:3")  # force the holder into read quorums
    reader = bft.add_client("reader")
    reader.run_script(read_script(1))
    bft.run(max_time=30)
    print(f"BFT-BC: reader still completed, got {reader.client.last_result!r}; "
          "its write-back repaired the stragglers")
    holders = [rid for rid, r in bft.replicas.items() if r.data is not None]
    print(f"BFT-BC: value now at {holders}")


def demo_timestamp_exhaustion() -> None:
    banner("Attack 3: timestamp exhaustion (ts = 10^15)")
    bqs = build_bqs_cluster(f=1, seed=3)
    attack = BqsTimestampExhaustionAttack(bqs, "evil")
    attack.start()
    bqs.run(max_time=30)
    print(f"BQS   : attack acknowledged by {len(attack.acks)} replicas — "
          f"max stored ts is now {max(r.ts.val for r in bqs.replicas.values()):,}")

    bft = build_cluster(f=1, seed=3)
    attack2 = TimestampExhaustionAttack(bft, "evil")
    attack2.start()
    bft.run(max_time=30)
    print(f"BFT-BC: prepare replies for the huge timestamp: {attack2.replies} "
          "(the request is not the successor of any certificate => "
          "silently discarded)")


def demo_lurking_writes() -> None:
    banner("Attack 4: lurking writes via a colluder")
    bft = build_cluster(f=1, seed=4)
    attack = LurkingWriteAttack(bft, "evil", warmup=1, extra_attempts=3)
    attack.start()
    bft.run(max_time=60)
    print(f"BFT-BC: attacker hoarded {len(attack.hoard)} prepared write(s); "
          f"{attack.failed_attempts} further hoarding attempts were refused "
          "(one outstanding prepare per client)")

    attack.stop()  # administrator revokes the key: the §4.1.1 stop event
    print("BFT-BC: attacker's key revoked (stop event recorded)")

    colluder = Colluder(bft, "colluder", attack.hoard)
    colluder.start()
    reader = bft.add_client("reader")
    reader.run_script(read_script(2), start_delay=0.5, think_time=0.1)
    bft.run(max_time=60)

    lurking = count_lurking_writes(bft.history, "client:evil")
    result = check_bft_linearizable(bft.history, max_b=1,
                                    bad_clients={"client:evil"})
    print(f"BFT-BC: lurking writes seen after the stop: {lurking} "
          "(Theorem 1 bound: 1)")
    print(f"BFT-BC: history BFT-linearizable with max-b=1? {result.ok}")


def main() -> None:
    demo_equivocation()
    demo_partial_write()
    demo_timestamp_exhaustion()
    demo_lurking_writes()
    print("\nAll four attacks behave exactly as §3.2/§5 predict.")


if __name__ == "__main__":
    main()
