"""Setup shim (metadata lives in setup.cfg).

The legacy setup.py/setup.cfg layout is deliberate: it keeps
``pip install -e .`` working on offline environments whose pip/setuptools
lack PEP 660 editable-wheel support (which needs the ``wheel`` package).
"""

from setuptools import setup

setup()
