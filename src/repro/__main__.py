"""Command-line entry point: ``python -m repro <command>``.

Commands:

* ``demo``      — write/read workload on each protocol variant, with metrics.
* ``attacks``   — run the §3.2 Byzantine-client attack catalogue.
* ``compare``   — BFT-BC vs BQS vs Phalanx on one workload (E8-style table).
* ``simulate``  — a configurable workload (clients, ops, loss, f, variant).
* ``metrics``   — run an instrumented workload; print the per-phase latency
  table or Prometheus-style text exposition.
* ``trace``     — run an instrumented workload; dump its spans as JSON lines.
* ``serve``     — host one or more durable replicas over TCP, journaling to
  a data directory and recovering from it on startup; ``--announce`` prints
  a JSON line per bound port for orchestrators.
* ``cluster``   — ``up`` spawns one ``serve`` worker process per replica
  (recording the fleet in ``cluster.json``), ``status`` shows liveness,
  ``down`` terminates the fleet.
* ``chaos``     — seed-deterministic fault campaigns with invariant oracles:
  ``chaos run`` sweeps simulated episodes (auto-minimizing any violation to
  a replayable artifact), ``chaos replay`` re-executes an artifact, and
  ``chaos tcp`` runs the byte-mangling proxy campaign against the real
  transport.
* ``load``      — open-loop production load (Poisson arrivals, zipfian
  popularity, huge cold identity universe) judged against SLO targets, on
  the virtual-time simulator or over real TCP (``--tcp``).
"""

from __future__ import annotations

import argparse
import sys

from repro import Instrumentation, LinkProfile, Variant, build_cluster
from repro.analysis import format_phase_breakdown, format_table
from repro.sim import make_scripts, read_script, write_script
from repro.spec import check_register_linearizable

VARIANT_CHOICES = tuple(v.value for v in Variant)


def cmd_demo(args: argparse.Namespace) -> int:
    rows = []
    for variant in Variant:
        cluster = build_cluster(f=args.f, variant=variant, seed=args.seed)
        node = cluster.add_client("demo")
        node.run_script(write_script("client:demo", 5) + read_script(3))
        cluster.run()
        rows.append(
            [
                variant,
                cluster.metrics.phases_summary("write").p50,
                cluster.metrics.phases_summary("read").p50,
                cluster.network.stats.messages_sent,
                "yes" if check_register_linearizable(cluster.history).ok else "NO",
            ]
        )
    print(
        format_table(
            ["variant", "write phases", "read phases", "messages", "atomic"],
            rows,
            title=f"BFT-BC demo (f={args.f}, 5 writes + 3 reads)",
        )
    )
    return 0


def cmd_attacks(args: argparse.Namespace) -> int:
    from repro.byzantine import (
        Colluder,
        EquivocationAttack,
        LurkingWriteAttack,
        TimestampExhaustionAttack,
    )
    from repro import count_lurking_writes

    rows = []

    cluster = build_cluster(f=args.f, seed=args.seed)
    eq = EquivocationAttack(cluster, "evil")
    eq.start()
    cluster.run(max_time=60)
    rows.append(["equivocation", f"{eq.quorums_reached} certificates", "blocked"])

    cluster = build_cluster(f=args.f, seed=args.seed)
    tx = TimestampExhaustionAttack(cluster, "evil")
    tx.start()
    cluster.run(max_time=60)
    rows.append(["ts-exhaustion", f"{tx.replies} prepare replies", "blocked"])

    cluster = build_cluster(f=args.f, seed=args.seed)
    lw = LurkingWriteAttack(cluster, "evil", warmup=1, extra_attempts=2)
    lw.start()
    cluster.run(max_time=60)
    lw.stop()
    Colluder(cluster, "colluder", lw.hoard).start()
    reader = cluster.add_client("reader")
    reader.run_script(read_script(2), start_delay=0.5, think_time=0.1)
    cluster.run(max_time=60)
    lurking = count_lurking_writes(cluster.history, "client:evil")
    rows.append(
        ["lurking-writes", f"hoard {len(lw.hoard)}, seen {lurking}", "bounded at 1"]
    )

    print(
        format_table(
            ["attack", "attacker achieved", "verdict"],
            rows,
            title=f"§3.2 attack catalogue vs BFT-BC (f={args.f})",
        )
    )
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.baselines.runner import build_bqs_cluster, build_phalanx_cluster

    ops = 6
    rows = []
    systems = {
        "BQS": build_bqs_cluster(f=args.f, seed=args.seed),
        "Phalanx": build_phalanx_cluster(f=args.f, seed=args.seed),
        "BFT-BC": build_cluster(f=args.f, seed=args.seed),
        "BFT-BC opt": build_cluster(f=args.f, variant="optimized", seed=args.seed),
    }
    for name, cluster in systems.items():
        node = cluster.add_client("w")
        node.run_script(write_script("client:w", ops) + read_script(ops))
        cluster.run()
        rows.append(
            [
                name,
                cluster.config.n,
                cluster.metrics.phases_summary("write").p50,
                cluster.network.stats.messages_sent / (2 * ops),
                cluster.network.stats.bytes_sent // (2 * ops),
            ]
        )
    print(
        format_table(
            ["system", "replicas", "write phases", "msgs/op", "bytes/op"],
            rows,
            title=f"protocol comparison (f={args.f})",
        )
    )
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    profile = LinkProfile(
        drop_rate=args.loss, max_delay=args.max_delay, duplicate_rate=args.dup
    )
    cluster = build_cluster(
        f=args.f, variant=args.variant, seed=args.seed, profile=profile
    )
    names = [f"client:w{i}" for i in range(args.clients)]
    scripts = make_scripts(
        names, args.ops, write_fraction=args.write_fraction, seed=args.seed
    )
    cluster.run_scripts(
        {name.split(":")[1]: s for name, s in scripts.items()},
        max_time=600,
    )
    report = check_register_linearizable(cluster.history)
    print(f"completed {cluster.metrics.operations} operations "
          f"in {cluster.scheduler.now:.2f}s virtual time")
    print(f"write latency p50/p95: "
          f"{cluster.metrics.latency_summary('write').p50 * 1000:.1f} / "
          f"{cluster.metrics.latency_summary('write').p95 * 1000:.1f} ms")
    print(f"messages: {cluster.network.stats.messages_sent} "
          f"({cluster.network.stats.messages_dropped} dropped)")
    if args.variant == "optimized":
        print(f"fast-path rate: {cluster.metrics.fast_path_rate():.0%}")
    print(f"linearizable: {report.ok}")
    return 0 if report.ok else 1


def _run_instrumented(args: argparse.Namespace) -> Instrumentation:
    """Run the shared metrics/trace workload under a fresh instrumentation."""
    instr = Instrumentation()
    cluster = build_cluster(
        f=args.f, variant=args.variant, seed=args.seed, instrumentation=instr
    )
    names = [f"client:w{i}" for i in range(args.clients)]
    scripts = make_scripts(
        names, args.ops, write_fraction=args.write_fraction, seed=args.seed
    )
    cluster.run_scripts(
        {name.split(":")[1]: s for name, s in scripts.items()}, max_time=600
    )
    return instr


def cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs import render_prometheus

    instr = _run_instrumented(args)
    if args.format == "prometheus":
        print(render_prometheus(instr.histograms, sources=instr.sources), end="")
    else:
        print(format_phase_breakdown(instr))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import spans_to_jsonl

    instr = _run_instrumented(args)
    dump = spans_to_jsonl(instr.spans())
    if args.output:
        with open(args.output, "w", encoding="utf-8") as stream:
            stream.write(dump)
        print(f"wrote {len(instr.spans())} spans to {args.output}")
    else:
        print(dump, end="")
    return 0


def _serve_config(args: argparse.Namespace):
    """The shared ``serve``/``cluster`` system configuration.

    Every worker process derives identical key material from the
    deterministic ``cluster-seed-<seed>`` master seed, and opens the
    requested client namespaces so signatures from clients it has never
    met still verify (see ``KeyRegistry.open_namespace``).
    """
    from repro.core.config import make_system

    config = make_system(
        args.f,
        scheme=args.scheme,
        seed=b"cluster-seed-%d" % args.seed,
        strong=(args.variant == "strong"),
    )
    for prefix in args.open_namespace or ["client:"]:
        config.registry.open_namespace(prefix)
    return config


def _serve_replica_cls(variant: str):
    from repro.core.fast_replica import FastBftBcReplica
    from repro.core.replica import BftBcReplica, OptimizedBftBcReplica

    if variant == "optimized":
        return OptimizedBftBcReplica
    if variant == "fastpath":
        return FastBftBcReplica
    return BftBcReplica


def _parse_ports(port: str, count: int) -> list[int]:
    """``--port`` accepts one value or a comma list matching the node ids.

    A single ``0`` fans out to every hosted replica (all ephemeral); a
    single non-zero port only works for a single replica.
    """
    values = [int(part) for part in str(port).split(",")]
    if len(values) == 1 and count > 1:
        if values[0] != 0:
            raise ValueError(
                "a fixed --port cannot be shared by several replicas; "
                "pass a comma-separated list"
            )
        values = values * count
    if len(values) != count:
        raise ValueError(
            f"--port lists {len(values)} ports for {count} node ids"
        )
    return values


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import json

    from repro.cluster.process import replica_data_dir
    from repro.net.asyncio_transport import ReplicaServer

    config = _serve_config(args)
    unknown = [
        node_id
        for node_id in args.node_ids
        if node_id not in config.quorums.replica_ids
    ]
    if unknown:
        print(
            f"unknown node id(s) {unknown}; "
            f"expected among {list(config.quorums.replica_ids)}",
            file=sys.stderr,
        )
        return 1
    try:
        ports = _parse_ports(args.port, len(args.node_ids))
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    replica_cls = _serve_replica_cls(args.variant)

    def peer_addrs() -> "dict[str, tuple[str, int]]":
        """The cluster address book, re-read from the orchestrator's state
        file on every audit tick (it may not exist yet at startup)."""
        import pathlib

        if not args.peers_file:
            return {}
        try:
            state = json.loads(pathlib.Path(args.peers_file).read_text())
        except (OSError, ValueError):
            return {}
        book: dict[str, tuple[str, int]] = {}
        for worker in state.get("workers", []):
            for node_id, addr in worker.get("addrs", {}).items():
                if node_id not in args.node_ids and len(addr) == 2:
                    book[node_id] = (addr[0], int(addr[1]))
        return book

    async def run() -> None:
        servers = []
        tasks = []
        for node_id, port in zip(args.node_ids, ports):
            server = ReplicaServer.durable(
                node_id,
                config,
                replica_data_dir(args.data_dir, args.node_ids, node_id),
                host=args.host,
                port=port,
                replica_cls=replica_cls,
                fsync=args.fsync,
                batch_verify=not args.no_batch_verify,
            )
            host, bound_port = await server.start()
            servers.append(server)
            # The announcement contract: one flushed line per replica, so
            # an orchestrator (or a human with --port 0) learns the
            # ephemeral addresses without polling or races.
            if args.announce:
                print(
                    json.dumps(
                        {
                            "event": "listening",
                            "node_id": node_id,
                            "host": host,
                            "port": bound_port,
                        },
                        sort_keys=True,
                    ),
                    flush=True,
                )
            else:
                print(
                    f"replica {node_id} serving on {host}:{bound_port} "
                    f"(data dir {args.data_dir}, fsync={args.fsync})",
                    flush=True,
                )
        if args.audit_interval > 0:
            tasks = [
                asyncio.ensure_future(
                    server.stabilization_loop(
                        peer_addrs, interval=args.audit_interval
                    )
                )
                for server in servers
            ]
        try:
            await asyncio.Event().wait()
        finally:
            for task in tasks:
                task.cancel()
            for server in servers:
                await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def cmd_cluster(args: argparse.Namespace) -> int:
    import json
    import os
    import signal as signal_module

    from repro.cluster.process import ProcessCluster

    if args.cluster_command == "up":
        cluster = ProcessCluster(
            f=args.f,
            seed=args.seed,
            variant=args.variant,
            scheme=args.scheme,
            data_dir=args.data_dir,
            host=args.host,
            fsync=args.fsync,
            workers=args.workers,
        )
        addrs = cluster.start()
        # Detached by design: the workers outlive this command, the state
        # file records them, and `cluster down` reaps them later.
        for node_id, (host, port) in sorted(addrs.items()):
            print(f"{node_id} listening on {host}:{port}")
        print(f"state recorded in {os.path.join(args.data_dir, 'cluster.json')}")
        return 0

    state = ProcessCluster.read_state(args.data_dir)
    if state is None:
        print(f"no cluster state under {args.data_dir}", file=sys.stderr)
        return 1

    def _pid_alive(pid: int) -> bool:
        try:
            os.kill(pid, 0)
        except (ProcessLookupError, PermissionError):
            return False
        return True

    if args.cluster_command == "status":
        rows = []
        for worker in state["workers"]:
            pid = worker.get("pid")
            alive = pid is not None and _pid_alive(pid)
            for node_id in worker["node_ids"]:
                host, port = worker["addrs"].get(node_id, ("?", 0))
                rows.append(
                    [node_id, worker["index"], pid, host, port,
                     "up" if alive else "DOWN"]
                )
        if args.json:
            print(json.dumps(state, indent=2, sort_keys=True))
        else:
            print(
                format_table(
                    ["replica", "worker", "pid", "host", "port", "state"],
                    rows,
                    title=f"cluster under {args.data_dir} "
                          f"(f={state['f']}, variant={state['variant']})",
                )
            )
        return 0

    # down
    reaped = 0
    for worker in state["workers"]:
        pid = worker.get("pid")
        if pid is None or not _pid_alive(pid):
            continue
        try:
            os.kill(pid, signal_module.SIGTERM)
            reaped += 1
        except (ProcessLookupError, PermissionError):
            continue
    try:
        os.unlink(os.path.join(args.data_dir, "cluster.json"))
    except FileNotFoundError:
        pass
    print(f"terminated {reaped} worker(s)")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    import json

    from repro.analysis import format_campaign
    from repro.chaos import CampaignConfig, replay_artifact, run_campaign
    from repro.chaos.tcp import TcpChaosConfig, run_tcp_campaign

    if args.chaos_command == "run":
        config = CampaignConfig(
            seed=args.seed,
            episodes=args.episodes,
            f=args.f,
            variants=tuple(args.variants.split(",")),
        )
        campaign = run_campaign(
            config,
            minimize=not args.no_minimize,
            artifact_dir=args.artifact_dir,
        )
        summary = campaign.summary()
        if args.json:
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(format_campaign(summary))
        return 0 if not summary["violations"] else 1

    if args.chaos_command == "replay":
        # Shard artifacts replay through their own engine; dispatch on the
        # format tag so either kind works from this entry point.
        from repro.chaos.shard import SHARD_ARTIFACT_FORMAT, replay_shard_artifact

        with open(args.artifact, encoding="utf-8") as handle:
            artifact_format = json.load(handle).get("format")
        if artifact_format == SHARD_ARTIFACT_FORMAT:
            outcome = replay_shard_artifact(args.artifact)
        else:
            outcome = replay_artifact(args.artifact)
        actual = outcome.actual
        if args.json:
            print(
                json.dumps(
                    {
                        "note": outcome.note,
                        "expected": dict(sorted(outcome.expected.items())),
                        "actual": dict(sorted(actual.items())),
                        "matches": outcome.matches,
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
        else:
            if outcome.note:
                print(f"note: {outcome.note}")
            for name in sorted(outcome.expected):
                expected, got = outcome.expected[name], actual.get(name)
                marker = "ok" if got == expected else "MISMATCH"
                print(f"{name}: expected {expected}, got {got} [{marker}]")
            print("replay matches" if outcome.matches else "replay DIVERGED")
        return 0 if outcome.matches else 1

    summary = run_tcp_campaign(TcpChaosConfig(seed=args.seed, f=args.f))
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(format_campaign(summary))
    return 0 if summary["ok"] else 1


def cmd_storage(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from repro.storage.filelog import FileLogStore

    root = pathlib.Path(args.data_dir)
    if not root.exists():
        print(f"no such data directory: {root}", file=sys.stderr)
        return 2
    # A directory holding wal.bin is one store; otherwise scrub every
    # immediate subdirectory that holds one (a cluster root).
    if (root / "wal.bin").exists():
        targets = [root]
    else:
        targets = sorted(
            child for child in root.iterdir()
            if child.is_dir() and (child / "wal.bin").exists()
        )
    if not targets:
        print(f"no replica stores under {root}", file=sys.stderr)
        return 2
    reports = {}
    clean = True
    for directory in targets:
        store = FileLogStore(directory, snapshot_interval=None)
        report = store.scrub()
        reports[str(directory)] = report
        clean = clean and report["clean"]
    if args.json:
        print(json.dumps(reports, indent=2, sort_keys=True))
        return 0 if clean else 1
    for directory, report in reports.items():
        verdict = "clean" if report["clean"] else "CORRUPT"
        print(f"{directory}: {verdict}")
        print(f"  records verified {report['records_verified']}, "
              f"torn {report['torn_records']}, "
              f"corrupt {report['corrupt_records']}, "
              f"corrupt snapshots {report['corrupt_snapshots']}")
    print("scrub clean" if clean else "scrub found damage — "
          "quarantine the replica and repair from peers")
    return 0 if clean else 1


def cmd_shard(args: argparse.Namespace) -> int:
    import json

    from repro.chaos.shard import (
        ShardEpisodePlan,
        replay_shard_artifact,
        run_shard_episode,
    )
    from repro.sim.shard_cluster import build_shard_cluster, member_id

    if args.shard_command == "demo":
        cluster = build_shard_cluster(
            shards=args.shards, f=args.f, seed=args.seed,
            service_delay=args.service_delay,
        )
        scripts = {
            f"w{c}": [
                (f"obj:{c}-{i % args.objects}", "write", f"w{c}-{i}")
                for i in range(args.ops)
            ]
            for c in range(args.clients)
        }
        cluster.run_scripts(scripts)
        elapsed = cluster.scheduler.now
        counts = cluster.ring.distribution(
            obj for script in scripts.values() for obj, _, _ in script
        )
        print(f"{args.shards} shard(s), {args.clients} client(s), "
              f"{cluster.total_ops()} ops in {elapsed:.3f}s virtual "
              f"({cluster.total_ops() / elapsed:.0f} ops/s)")
        for shard in cluster.shard_ids:
            print(f"  {shard}: epoch {cluster.directory.epoch(shard)}, "
                  f"{counts.get(shard, 0)} ops routed")
        return 0

    if args.shard_command == "rebalance":
        shard = "shard:0"
        plan = ShardEpisodePlan(
            seed=args.seed,
            shards=args.shards,
            f=args.f,
            clients=args.clients,
            ops_per_client=args.ops,
            objects=args.objects,
            handoff=0.15,
            profile={"min_delay": 0.001, "max_delay": 0.02,
                     "drop_rate": 0.05, "reorder_rate": 0.1},
            reconfigurations=[
                {"time": 0.3, "shard": shard,
                 "remove": member_id(0, 1), "add": "replica:s0nX",
                 "crash_old": True},
            ],
        )
        result = run_shard_episode(plan)
        payload = {
            "ok": result.ok,
            "violated": list(result.violated),
            "stats": result.stats,
            "verdicts": {
                name: verdict.ok
                for name, verdict in result.verdicts.items()
            },
        }
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(f"replaced {member_id(0, 1)} with replica:s0nX in {shard} "
                  f"under live traffic")
            for name, verdict in result.verdicts.items():
                mark = "ok" if verdict.ok else "VIOLATED"
                detail = f" — {verdict.detail}" if verdict.detail else ""
                print(f"  {name}: {mark}{detail}")
            print(f"stats: {result.stats}")
        return 0 if result.ok else 1

    outcome = replay_shard_artifact(args.artifact)
    actual = outcome.actual
    if args.json:
        print(json.dumps(
            {
                "note": outcome.note,
                "expected": dict(sorted(outcome.expected.items())),
                "actual": dict(sorted(actual.items())),
                "matches": outcome.matches,
            },
            indent=2, sort_keys=True,
        ))
    else:
        if outcome.note:
            print(f"note: {outcome.note}")
        for name in sorted(outcome.expected):
            expected, got = outcome.expected[name], actual.get(name)
            marker = "ok" if got == expected else "MISMATCH"
            print(f"{name}: expected {expected}, got {got} [{marker}]")
        print("replay matches" if outcome.matches else "replay DIVERGED")
    return 0 if outcome.matches else 1


def cmd_load(args: argparse.Namespace) -> int:
    import json

    from repro.core.persistence import ClientStateBudget
    from repro.load import LoadProfile, run_open_loop, run_tcp_load

    profile_kwargs = dict(
        identities=args.identities,
        objects=args.objects,
        write_fraction=args.write_fraction,
        zipf_skew=args.zipf_skew,
        seed=args.seed,
        identity_policy=args.identity_policy,
    )
    if args.burst > 1.0:
        profile = LoadProfile.bursty(
            args.rate, args.duration,
            burst_multiplier=args.burst, **profile_kwargs,
        )
    else:
        profile = LoadProfile.sustained(
            args.rate, args.duration, **profile_kwargs
        )
    budget = (
        ClientStateBudget(hot_entries=args.budget) if args.budget else None
    )
    if args.tcp:
        report = run_tcp_load(
            profile, f=args.f, variant=args.variant, budget=budget
        )
    else:
        report = run_open_loop(
            profile,
            f=args.f,
            variant=args.variant,
            service_delay=args.service_delay,
            budget=budget,
            secret_cache=args.secret_cache,
        )
    if args.json:
        print(json.dumps(report.to_wire(), indent=2, sort_keys=True))
        return 0 if report.slo_ok else 1
    mode = "tcp (wall clock)" if args.tcp else "sim (virtual time)"
    print(f"open-loop load on {mode}: variant={args.variant}, f={args.f}")
    print(f"  arrivals {report.arrivals} (offered {report.offered_rate:.0f}/s), "
          f"completed {report.completed}, failed {report.failed}")
    print(f"  distinct identities {report.distinct_identities} "
          f"of a {profile.identities}-identity universe")
    if report.predicted_capacity != float("inf"):
        print(f"  predicted capacity {report.predicted_capacity:.0f}/s "
              f"(utilization {report.utilization:.0%})")
    print(f"  write p50/p95/p99: {report.write_p50 * 1000:.1f} / "
          f"{report.write_p95 * 1000:.1f} / {report.write_p99 * 1000:.1f} ms")
    print(f"  read  p50/p95/p99: {report.read_p50 * 1000:.1f} / "
          f"{report.read_p95 * 1000:.1f} / {report.read_p99 * 1000:.1f} ms")
    for key, value in sorted(report.identity.items()):
        print(f"  identity.{key}: {value}")
    for verdict in report.slos:
        mark = "ok" if verdict.ok else "VIOLATED"
        bound = ">=" if verdict.metric == "completion" else "<="
        print(f"  slo {verdict.metric} {bound} {verdict.limit}: "
              f"observed {verdict.observed:.4f} [{mark}]")
    print("SLOs met" if report.slo_ok else "SLOs VIOLATED")
    return 0 if report.slo_ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="BFT-BC (Liskov & Rodrigues, ICDCS 2006) demonstrations",
    )
    parser.add_argument("--f", type=int, default=1, help="fault threshold")
    parser.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="workload on each protocol variant")
    sub.add_parser("attacks", help="the §3.2 attack catalogue")
    sub.add_parser("compare", help="BFT-BC vs BQS vs Phalanx")

    sim = sub.add_parser("simulate", help="configurable workload")
    sim.add_argument("--variant", choices=VARIANT_CHOICES, default="base")
    sim.add_argument("--clients", type=int, default=3)
    sim.add_argument("--ops", type=int, default=10)
    sim.add_argument("--write-fraction", type=float, default=0.5)
    sim.add_argument("--loss", type=float, default=0.05)
    sim.add_argument("--dup", type=float, default=0.0)
    sim.add_argument("--max-delay", type=float, default=0.01)

    metrics = sub.add_parser(
        "metrics", help="instrumented workload; latency histograms"
    )
    trace = sub.add_parser(
        "trace", help="instrumented workload; span dump as JSON lines"
    )
    for obs_parser in (metrics, trace):
        obs_parser.add_argument(
            "--variant", choices=VARIANT_CHOICES, default="strong"
        )
        obs_parser.add_argument("--clients", type=int, default=2)
        obs_parser.add_argument("--ops", type=int, default=6)
        obs_parser.add_argument("--write-fraction", type=float, default=0.5)
    metrics.add_argument(
        "--format", choices=("table", "prometheus"), default="table"
    )
    trace.add_argument("--output", help="write the JSON lines here (default stdout)")

    serve = sub.add_parser(
        "serve", help="host one or more durable replicas over TCP"
    )
    serve.add_argument("node_ids", nargs="+", metavar="node_id",
                       help="replica id(s), e.g. replica:0")
    serve.add_argument("--data-dir", required=True,
                       help="directory for the WAL and snapshot (per-replica "
                            "subdirectories when hosting several)")
    serve.add_argument("--variant", choices=VARIANT_CHOICES, default="base")
    serve.add_argument("--scheme", choices=("hmac", "rsa"), default="hmac")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", default="0",
                       help="listen port, or a comma list matching the node "
                            "ids; 0 picks an ephemeral port")
    serve.add_argument("--fsync", choices=("always", "never"), default="always")
    serve.add_argument("--announce", action="store_true",
                       help="print one JSON line per replica once it is "
                            "listening (orchestrator port discovery)")
    serve.add_argument("--open-namespace", action="append", default=None,
                       metavar="PREFIX",
                       help="client-id namespace(s) whose signatures verify "
                            "without explicit registration (default: client:)")
    serve.add_argument("--no-batch-verify", action="store_true",
                       help="disable per-chunk amortized signature batches")
    serve.add_argument("--peers-file", default=None,
                       help="orchestrator state file (cluster.json) naming "
                            "peer addresses; enables quarantine repair")
    serve.add_argument("--audit-interval", type=float, default=0.0,
                       help="seconds between periodic self-audits "
                            "(0 disables the stabilization loop)")

    cluster = sub.add_parser(
        "cluster", help="manage a multi-process replica cluster"
    )
    cluster_sub = cluster.add_subparsers(dest="cluster_command", required=True)
    cluster_up = cluster_sub.add_parser(
        "up", help="spawn one serve worker per replica and record the fleet"
    )
    cluster_up.add_argument("--data-dir", required=True,
                            help="root directory for worker data dirs and "
                                 "the cluster state file")
    cluster_up.add_argument("--variant", choices=VARIANT_CHOICES,
                            default="base")
    cluster_up.add_argument("--scheme", choices=("hmac", "rsa"),
                            default="hmac")
    cluster_up.add_argument("--host", default="127.0.0.1")
    cluster_up.add_argument("--fsync", choices=("always", "never"),
                            default="always")
    cluster_up.add_argument("--workers", type=int, default=None,
                            help="worker processes to spread the 3f+1 "
                                 "replicas across (default: one each)")
    cluster_status = cluster_sub.add_parser(
        "status", help="show the recorded fleet and its liveness"
    )
    cluster_status.add_argument("--data-dir", required=True)
    cluster_status.add_argument("--json", action="store_true")
    cluster_down = cluster_sub.add_parser(
        "down", help="terminate the recorded fleet"
    )
    cluster_down.add_argument("--data-dir", required=True)

    chaos = sub.add_parser(
        "chaos", help="fault campaigns with invariant oracles"
    )
    chaos_sub = chaos.add_subparsers(dest="chaos_command", required=True)
    chaos_run = chaos_sub.add_parser(
        "run", help="sweep simulated episodes derived from one seed"
    )
    chaos_run.add_argument("--seed", type=int, default=0)
    chaos_run.add_argument("--episodes", type=int, default=25)
    chaos_run.add_argument(
        "--variants",
        default="base,optimized,strong",
        help="comma-separated protocol variants to round-robin",
    )
    chaos_run.add_argument(
        "--artifact-dir", help="write minimized repro artifacts here"
    )
    chaos_run.add_argument(
        "--no-minimize", action="store_true",
        help="skip delta-debugging of violations",
    )
    chaos_run.add_argument("--json", action="store_true")
    chaos_replay = chaos_sub.add_parser(
        "replay", help="re-execute a chaos artifact and compare verdicts"
    )
    chaos_replay.add_argument("artifact", help="path to a chaos artifact JSON")
    chaos_replay.add_argument("--json", action="store_true")
    chaos_tcp = chaos_sub.add_parser(
        "tcp", help="proxy campaign against the real TCP transport"
    )
    chaos_tcp.add_argument("--seed", type=int, default=0)
    chaos_tcp.add_argument("--json", action="store_true")

    shard = sub.add_parser(
        "shard", help="sharded deployments with online reconfiguration"
    )
    shard_sub = shard.add_subparsers(dest="shard_command", required=True)
    shard_demo = shard_sub.add_parser(
        "demo", help="route a workload across shards; show the placement"
    )
    shard_demo.add_argument("--shards", type=int, default=2)
    shard_demo.add_argument("--clients", type=int, default=3)
    shard_demo.add_argument("--ops", type=int, default=12)
    shard_demo.add_argument("--objects", type=int, default=8)
    # SUPPRESS: absent here, the pre-subcommand global --seed survives.
    shard_demo.add_argument("--seed", type=int, default=argparse.SUPPRESS)
    shard_demo.add_argument(
        "--service-delay", type=float, default=0.002,
        help="per-frame replica service time (models per-shard capacity)",
    )
    shard_rebalance = shard_sub.add_parser(
        "rebalance",
        help="replace a crashed member under live traffic; judge by oracles",
    )
    shard_rebalance.add_argument("--shards", type=int, default=2)
    shard_rebalance.add_argument("--clients", type=int, default=3)
    shard_rebalance.add_argument("--ops", type=int, default=24)
    shard_rebalance.add_argument("--objects", type=int, default=8)
    shard_rebalance.add_argument("--seed", type=int, default=argparse.SUPPRESS)
    shard_rebalance.add_argument("--json", action="store_true")
    shard_replay = shard_sub.add_parser(
        "replay", help="re-execute a shard chaos artifact and compare"
    )
    shard_replay.add_argument("artifact", help="path to a shard artifact JSON")
    shard_replay.add_argument("--json", action="store_true")

    storage = sub.add_parser(
        "storage", help="offline durable-store maintenance"
    )
    storage_sub = storage.add_subparsers(dest="storage_command", required=True)
    storage_scrub = storage_sub.add_parser(
        "scrub",
        help="re-verify every WAL record and snapshot seal, read-only",
    )
    storage_scrub.add_argument(
        "data_dir",
        help="one replica's data directory, or a cluster root whose "
             "subdirectories each hold one",
    )
    storage_scrub.add_argument("--json", action="store_true")

    load = sub.add_parser(
        "load", help="open-loop production load judged against SLOs"
    )
    load.add_argument("--rate", type=float, default=400.0,
                      help="base arrival rate, operations per second")
    load.add_argument("--duration", type=float, default=5.0,
                      help="arrival window, seconds")
    load.add_argument("--identities", type=int, default=10_000,
                      help="size of the client identity universe")
    load.add_argument("--objects", type=int, default=32)
    load.add_argument("--write-fraction", type=float, default=0.5)
    load.add_argument("--zipf-skew", type=float, default=1.1)
    load.add_argument("--identity-policy",
                      choices=("sequential", "uniform"), default="sequential")
    load.add_argument("--burst", type=float, default=1.0,
                      help="burst rate multiplier (>1 adds a centred spike)")
    load.add_argument("--variant", choices=VARIANT_CHOICES, default="optimized")
    load.add_argument("--service-delay", type=float, default=0.0005,
                      help="per-frame replica service time (sim only)")
    load.add_argument("--budget", type=int, default=0,
                      help="per-map hot-entry budget for client state "
                           "(0 = unbounded)")
    load.add_argument("--secret-cache", type=int, default=None,
                      help="registry derived-secret LRU capacity (sim only)")
    load.add_argument("--tcp", action="store_true",
                      help="run over real loopback TCP instead of the simulator")
    load.add_argument("--json", action="store_true")

    args = parser.parse_args(argv)
    handlers = {
        "demo": cmd_demo,
        "attacks": cmd_attacks,
        "compare": cmd_compare,
        "simulate": cmd_simulate,
        "metrics": cmd_metrics,
        "trace": cmd_trace,
        "serve": cmd_serve,
        "cluster": cmd_cluster,
        "chaos": cmd_chaos,
        "shard": cmd_shard,
        "storage": cmd_storage,
        "load": cmd_load,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
