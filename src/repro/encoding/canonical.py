"""Canonical, deterministic, round-trippable value encoding.

Signatures in BFT-BC cover protocol statements such as
``("PREPARE-REPLY", ts, h)``.  For a signature produced at replica *r* to be
verifiable at any other node, both nodes must derive exactly the same bytes
from the same logical statement.  This module defines that byte format.

The format is a superset of bencoding, extended with the extra types the
protocol needs.  Every value is self-delimiting, so encodings compose and
concatenations parse unambiguously:

========  =======================================  ==========================
tag       type                                     encoding
========  =======================================  ==========================
``n``     None                                     ``n``
``t``     True                                     ``t``
``f``     False                                    ``f``
``i``     int                                      ``i<decimal>;``
``u``     str (UTF-8)                              ``u<len>:<bytes>``
``b``     bytes                                    ``b<len>:<bytes>``
``l``     list / tuple                             ``l<items>e``
``d``     dict (str keys, sorted)                  ``d<k1><v1>...e``
``F``     float                                    ``F<len>:<repr bytes>``
========  =======================================  ==========================

Dictionaries are encoded with keys sorted by their UTF-8 bytes, which is what
makes the format canonical.  Lists and tuples encode identically (decoding
always yields tuples, keeping decoded values hashable).

Floats are included for completeness (metrics snapshots); protocol statements
themselves never contain floats.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import EncodingError

__all__ = ["canonical_encode", "canonical_decode", "EncodeStats", "encode_stats"]

# A conservative bound that protects decoders from hostile length prefixes.
_MAX_LENGTH = 1 << 30


@dataclass
class EncodeStats:
    """Process-wide ``canonical_encode`` counters.

    The wire-cost benchmarks (E15) read these to count how many times the
    system actually serialises anything; every cache layer above (wire cache,
    statement interning) shows up here as calls that never happen.
    """

    calls: int = 0
    bytes_out: int = 0

    def reset(self) -> None:
        self.calls = 0
        self.bytes_out = 0


_STATS = EncodeStats()


def encode_stats() -> EncodeStats:
    """The process-wide encode counters (reset between benchmark arms)."""
    return _STATS


def canonical_encode(value: Any) -> bytes:
    """Encode ``value`` to its unique canonical byte representation.

    Raises:
        EncodingError: if ``value`` (or anything nested inside it) is not one
            of the supported types, or a dict has non-string keys.
    """
    parts: list[bytes] = []
    _encode_into(value, parts)
    encoded = b"".join(parts)
    _STATS.calls += 1
    _STATS.bytes_out += len(encoded)
    return encoded


def _encode_into(value: Any, parts: list[bytes]) -> None:
    if value is None:
        parts.append(b"n")
    elif value is True:
        parts.append(b"t")
    elif value is False:
        parts.append(b"f")
    elif isinstance(value, int):
        parts.append(b"i%d;" % value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        parts.append(b"u%d:" % len(raw))
        parts.append(raw)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        parts.append(b"b%d:" % len(raw))
        parts.append(raw)
    elif isinstance(value, (list, tuple)):
        parts.append(b"l")
        for item in value:
            _encode_into(item, parts)
        parts.append(b"e")
    elif isinstance(value, dict):
        parts.append(b"d")
        try:
            keys = sorted(value.keys(), key=lambda k: k.encode("utf-8"))
        except AttributeError as exc:
            raise EncodingError(
                f"dict keys must be str, got {sorted(type(k).__name__ for k in value)}"
            ) from exc
        for key in keys:
            _encode_into(key, parts)
            _encode_into(value[key], parts)
        parts.append(b"e")
    elif isinstance(value, float):
        raw = repr(value).encode("ascii")
        parts.append(b"F%d:" % len(raw))
        parts.append(raw)
    else:
        raise EncodingError(f"cannot canonically encode {type(value).__name__!r}")


def canonical_decode(data: bytes) -> Any:
    """Decode bytes produced by :func:`canonical_encode`.

    Lists and tuples both decode to tuples.  The entire input must be
    consumed; trailing bytes are an error.

    Raises:
        EncodingError: if ``data`` is not a valid canonical encoding.
    """
    value, offset = _decode_at(data, 0)
    if offset != len(data):
        raise EncodingError(f"trailing bytes after canonical value at offset {offset}")
    return value


def _decode_at(data: bytes, offset: int) -> tuple[Any, int]:
    if offset >= len(data):
        raise EncodingError("truncated canonical encoding")
    tag = data[offset : offset + 1]
    if tag == b"n":
        return None, offset + 1
    if tag == b"t":
        return True, offset + 1
    if tag == b"f":
        return False, offset + 1
    if tag == b"i":
        end = data.find(b";", offset + 1)
        if end < 0:
            raise EncodingError("unterminated int")
        body = data[offset + 1 : end]
        _check_int_body(body)
        return int(body), end + 1
    if tag == b"u":
        raw, end = _decode_sized(data, offset + 1)
        try:
            return raw.decode("utf-8"), end
        except UnicodeDecodeError as exc:
            raise EncodingError("invalid UTF-8 in string") from exc
    if tag == b"b":
        raw, end = _decode_sized(data, offset + 1)
        return raw, end
    if tag == b"F":
        raw, end = _decode_sized(data, offset + 1)
        try:
            return float(raw.decode("ascii")), end
        except (UnicodeDecodeError, ValueError) as exc:
            raise EncodingError("invalid float body") from exc
    if tag == b"l":
        items: list[Any] = []
        offset += 1
        while True:
            if offset >= len(data):
                raise EncodingError("unterminated list")
            if data[offset : offset + 1] == b"e":
                return tuple(items), offset + 1
            item, offset = _decode_at(data, offset)
            items.append(item)
    if tag == b"d":
        result: dict[str, Any] = {}
        offset += 1
        previous_key: bytes | None = None
        while True:
            if offset >= len(data):
                raise EncodingError("unterminated dict")
            if data[offset : offset + 1] == b"e":
                return result, offset + 1
            key, offset = _decode_at(data, offset)
            if not isinstance(key, str):
                raise EncodingError("dict key is not a string")
            raw_key = key.encode("utf-8")
            if previous_key is not None and raw_key <= previous_key:
                raise EncodingError("dict keys not in canonical order")
            previous_key = raw_key
            value, offset = _decode_at(data, offset)
            result[key] = value
    raise EncodingError(f"unknown canonical tag {tag!r} at offset {offset}")


def _decode_sized(data: bytes, offset: int) -> tuple[bytes, int]:
    end = data.find(b":", offset)
    if end < 0:
        raise EncodingError("missing length separator")
    body = data[offset:end]
    _check_length_body(body)
    length = int(body)
    if length > _MAX_LENGTH:
        raise EncodingError(f"declared length {length} exceeds limit")
    start = end + 1
    stop = start + length
    if stop > len(data):
        raise EncodingError("truncated sized value")
    return data[start:stop], stop


def _check_int_body(body: bytes) -> None:
    digits = body[1:] if body[:1] == b"-" else body
    if not digits or not digits.isdigit():
        raise EncodingError(f"invalid int body {body!r}")
    if digits != b"0" and digits[:1] == b"0":
        raise EncodingError(f"non-canonical int body {body!r}")
    if body == b"-0":
        raise EncodingError("non-canonical int body b'-0'")


def _check_length_body(body: bytes) -> None:
    if not body.isdigit():
        raise EncodingError(f"invalid length {body!r}")
    if body != b"0" and body[:1] == b"0":
        raise EncodingError(f"non-canonical length {body!r}")
