"""Interned canonical encodings for repeatedly-encoded values.

The protocol encodes the same logical value many times: a ``PREPARE-REPLY``
statement is encoded once per signing replica, once per verifying role, and
once per signature inside every certificate validation; a value is hashed at
the client and again at every replica.  :func:`intern_encode` memoizes
``canonical_encode`` behind a bounded LRU so each distinct value is encoded
once per process, no matter how many roles touch it.

Correctness of the memo requires its key to distinguish every pair of values
with *different* canonical encodings.  Python equality is coarser than
canonical equality — ``True == 1 == 1.0`` all hash alike yet encode to
``t``, ``i1;`` and ``F3:1.0`` — so keys are built by :func:`_freeze`, which
tags exactly the types whose equality crosses encoding boundaries (bools and
floats) and recurses through containers.  Unhashable leaves (there are none
in protocol statements, but application values are arbitrary) fall back to a
fresh encode.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro.encoding.canonical import canonical_encode

__all__ = ["InternStats", "intern_encode", "intern_stats", "reset_interning", "set_interning_enabled"]


@dataclass
class InternStats:
    """Hit/miss counters for the statement-interning cache."""

    hits: int = 0
    misses: int = 0
    uncacheable: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of interned lookups served from the memo (0 when idle)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.uncacheable = 0


_STATS = InternStats()
_MEMO: "OrderedDict[Any, bytes]" = OrderedDict()
_CAPACITY = 8192
_ENABLED = True


def _freeze(value: Any) -> Any:
    """A hashable key that separates values with distinct canonical forms.

    Bools and floats are tagged because they compare equal to ints with
    different encodings; containers recurse so nested occurrences are caught.
    Tag tuples cannot collide with frozen user tuples: every frozen tuple is
    tagged ``"l"`` (and dicts ``"d"``), so the key space is prefix-disjoint.
    """
    # Exact-type dispatch first: statements are tuples of str/bytes/int, and
    # this is the encode hot path, so the common leaves must not pay an
    # isinstance chain.  ``type(True) is int`` is False, so plain ints are
    # safe to pass through here.
    kind = value.__class__
    if kind is str or kind is bytes or kind is int:
        return value
    if kind is tuple or kind is list:
        return ("l",) + tuple(_freeze(item) for item in value)
    if kind is bool:
        return ("b", value)
    if kind is float:
        return ("f", value)
    if kind is dict:
        return ("d",) + tuple(
            (key, _freeze(item)) for key, item in sorted(value.items())
        )
    # Rare leaves and subclasses of the above take the conservative path.
    if isinstance(value, bool):
        return ("b", bool(value))
    if isinstance(value, float):
        return ("f", float(value))
    if isinstance(value, (list, tuple)):
        return ("l",) + tuple(_freeze(item) for item in value)
    if isinstance(value, dict):
        return ("d",) + tuple(
            (key, _freeze(item)) for key, item in sorted(value.items())
        )
    if isinstance(value, (bytearray, memoryview)):
        return ("y", bytes(value))
    return value  # None, int, str, bytes: mutually unequal across these types


def intern_encode(value: Any) -> bytes:
    """``canonical_encode`` behind a bounded, type-exact memo."""
    if not _ENABLED:
        return canonical_encode(value)
    try:
        key = _freeze(value)
        cached = _MEMO.get(key)
    except TypeError:
        _STATS.uncacheable += 1
        return canonical_encode(value)
    if cached is not None:
        _MEMO.move_to_end(key)
        _STATS.hits += 1
        return cached
    _STATS.misses += 1
    encoded = canonical_encode(value)
    _MEMO[key] = encoded
    while len(_MEMO) > _CAPACITY:
        _MEMO.popitem(last=False)
    return encoded


def intern_stats() -> InternStats:
    """The process-wide interning counters."""
    return _STATS


def reset_interning() -> None:
    """Drop the memo and zero the counters (benchmark isolation)."""
    _MEMO.clear()
    _STATS.reset()


def set_interning_enabled(enabled: bool) -> None:
    """Toggle the memo (the ablation arm of the wire-cost benchmark)."""
    global _ENABLED
    _ENABLED = enabled
