"""Deterministic canonical encoding and wire framing.

The protocol signs *statements* (e.g. ``PREPARE-REPLY`` bodies) and those
signatures must verify at nodes other than the one that produced them, so the
byte representation of a statement has to be canonical: the same logical
value always encodes to the same bytes, on every node.

:mod:`repro.encoding.canonical` provides that canonical encoding (a
bencoding-style, self-delimiting, fully round-trippable format), and
:mod:`repro.encoding.codec` provides length-prefixed framing for stream
transports.
"""

from repro.encoding.canonical import canonical_decode, canonical_encode
from repro.encoding.codec import FrameDecoder, decode_frame, encode_frame

__all__ = [
    "canonical_encode",
    "canonical_decode",
    "encode_frame",
    "decode_frame",
    "FrameDecoder",
]
