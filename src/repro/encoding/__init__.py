"""Deterministic canonical encoding and wire framing.

The protocol signs *statements* (e.g. ``PREPARE-REPLY`` bodies) and those
signatures must verify at nodes other than the one that produced them, so the
byte representation of a statement has to be canonical: the same logical
value always encodes to the same bytes, on every node.

:mod:`repro.encoding.canonical` provides that canonical encoding (a
bencoding-style, self-delimiting, fully round-trippable format),
:mod:`repro.encoding.codec` provides length-prefixed framing for stream
transports, and :mod:`repro.encoding.interning` memoizes the encodings of
repeatedly-encoded values (protocol statements, hashed values) so sign,
verify, and hash all share one serialisation per distinct value.
"""

from repro.encoding.canonical import (
    EncodeStats,
    canonical_decode,
    canonical_encode,
    encode_stats,
)
from repro.encoding.codec import FrameDecoder, decode_frame, encode_frame
from repro.encoding.interning import (
    InternStats,
    intern_encode,
    intern_stats,
    reset_interning,
    set_interning_enabled,
)

__all__ = [
    "canonical_encode",
    "canonical_decode",
    "EncodeStats",
    "encode_stats",
    "encode_frame",
    "decode_frame",
    "FrameDecoder",
    "InternStats",
    "intern_encode",
    "intern_stats",
    "reset_interning",
    "set_interning_enabled",
]
