"""Length-prefixed framing for stream transports.

The asyncio TCP transport carries canonical-encoded protocol messages over a
byte stream, so messages need framing.  A frame is::

    MAGIC (2 bytes) | length (4 bytes, big-endian) | payload (length bytes)

The magic bytes catch stream desynchronisation early, and the length bound
protects against hostile or corrupted prefixes.
"""

from __future__ import annotations

import struct
from typing import Iterator

from repro.errors import EncodingError, IncompleteFrameError

__all__ = ["encode_frame", "decode_frame", "FrameDecoder", "MAX_FRAME_SIZE"]

_MAGIC = b"\xbf\xbc"  # "BFT-BC"
_HEADER = struct.Struct(">2sI")

#: Upper bound on a single frame's payload.  Certificates are O(|Q|) and
#: values are application-bounded, so 16 MiB is generous.
MAX_FRAME_SIZE = 16 * 1024 * 1024


def encode_frame(payload: bytes) -> bytes:
    """Wrap ``payload`` in a frame header."""
    if len(payload) > MAX_FRAME_SIZE:
        raise EncodingError(f"payload of {len(payload)} bytes exceeds frame limit")
    return _HEADER.pack(_MAGIC, len(payload)) + payload


def decode_frame(data: bytes) -> tuple[bytes, bytes]:
    """Decode one frame from ``data``; return ``(payload, remainder)``.

    Raises:
        IncompleteFrameError: if ``data`` ends before the declared frame
            does (a stream needing more bytes, or a torn log tail).
        EncodingError: if the header itself is malformed (bad magic or an
            impossible length) — the bytes can never become a valid frame.
    """
    if len(data) < _HEADER.size:
        raise IncompleteFrameError("incomplete frame header")
    magic, length = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise EncodingError(f"bad frame magic {magic!r}")
    if length > MAX_FRAME_SIZE:
        raise EncodingError(f"frame length {length} exceeds limit")
    end = _HEADER.size + length
    if len(data) < end:
        raise IncompleteFrameError("incomplete frame payload")
    return data[_HEADER.size : end], data[end:]


class FrameDecoder:
    """Incremental frame decoder for streaming input.

    Feed arbitrary chunks with :meth:`feed`; complete payloads come back in
    order.  This is what the asyncio transport uses on its read path.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, chunk: bytes) -> Iterator[bytes]:
        """Add ``chunk`` to the buffer and yield every completed payload."""
        self._buffer.extend(chunk)
        while True:
            if len(self._buffer) < _HEADER.size:
                return
            magic, length = _HEADER.unpack_from(self._buffer)
            if magic != _MAGIC:
                raise EncodingError(f"bad frame magic {bytes(magic)!r}")
            if length > MAX_FRAME_SIZE:
                raise EncodingError(f"frame length {length} exceeds limit")
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return
            payload = bytes(self._buffer[_HEADER.size : end])
            del self._buffer[:end]
            yield payload

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)
