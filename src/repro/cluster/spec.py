"""The declarative deployment specification.

One frozen dataclass names everything the previous four construction paths
took as ad-hoc keyword soup: protocol shape (``f``, ``variant``,
``scheme``), transport (``sim`` | ``tcp`` | ``process``), durability
(``store``, ``data_dir``, ``fsync``), batching knobs, and the pipeline
width.  :func:`repro.cluster.deploy.deploy` turns a spec into a running
deployment; every transport derives its key material from the same
deterministic seed, which is what lets separate worker processes (and the
offline fingerprint recovery pass) agree on signatures.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.core.config import Variant
from repro.errors import QuorumConfigError

__all__ = ["DeploymentSpec"]

TRANSPORTS = ("sim", "tcp", "process")
STORES = ("memory", "file")


@dataclass(frozen=True)
class DeploymentSpec:
    """Everything needed to stand up one replica group, declaratively.

    Attributes:
        f: fault threshold; the group has ``n = 3f + 1`` replicas.
        variant: protocol variant (``base`` | ``optimized`` | ``strong`` |
            ``fastpath``), validated through :class:`Variant`.
        scheme: signature backend, ``hmac`` or ``rsa``.
        seed: master-seed discriminator; all transports derive keys from
            ``cluster-seed-<seed>`` so cross-process verification works.
        transport: ``sim`` (virtual time), ``tcp`` (in-process asyncio
            servers over loopback), or ``process`` (one OS process per
            worker, spawned via ``python -m repro serve``).
        store: ``memory`` or ``file`` (durable WAL + snapshots).  The
            process transport always journals to files.
        data_dir: directory for file stores / worker directories; when
            ``None`` the deployment creates (and owns) a temporary one.
        fsync: ``always`` or ``never``, passed to the file store.
        batching: client-side cross-object frame coalescing (sim only).
        batch_verify: amortize replicas' signature checks over each
            arriving frame batch (``Verifier.verify_batch``).
        instrumentation: attach an :class:`~repro.obs.Instrumentation`
            handle timing handlers, stores, and verification counters.
        pipeline: in-flight operations per deployment handle — the number
            of logical clients multiplexed over the shared connections
            (``repro.net.mux``).
        workers: process transport only — number of worker processes the
            ``n`` replicas are partitioned across (default: one each).
        host: listen address for the real transports.
    """

    f: int = 1
    variant: str = "base"
    scheme: str = "hmac"
    seed: int = 0
    transport: str = "sim"
    store: str = "memory"
    data_dir: Optional[str] = None
    fsync: str = "always"
    batching: bool = False
    batch_verify: bool = True
    instrumentation: bool = False
    pipeline: int = 1
    workers: Optional[int] = None
    host: str = "127.0.0.1"
    #: Extra keyword overrides forwarded to the sim ``ClusterOptions``
    #: (escape hatch for knobs the spec does not name).
    sim_options: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        Variant.coerce(self.variant)
        if self.transport not in TRANSPORTS:
            raise QuorumConfigError(
                f"unknown transport {self.transport!r}; expected one of {TRANSPORTS}"
            )
        if self.store not in STORES:
            raise QuorumConfigError(
                f"unknown store {self.store!r}; expected one of {STORES}"
            )
        if self.scheme not in ("hmac", "rsa"):
            raise QuorumConfigError(f"unknown signature scheme {self.scheme!r}")
        if self.fsync not in ("always", "never"):
            raise QuorumConfigError(f"unknown fsync mode {self.fsync!r}")
        if self.f < 1:
            raise QuorumConfigError("f must be at least 1")
        if self.pipeline < 1:
            raise QuorumConfigError("pipeline width must be at least 1")
        if self.workers is not None and not 1 <= self.workers <= self.n:
            raise QuorumConfigError(
                f"workers must be between 1 and n={self.n}"
            )

    @property
    def n(self) -> int:
        return 3 * self.f + 1

    @property
    def master_seed(self) -> bytes:
        """The deterministic key-derivation seed every transport shares."""
        return b"cluster-seed-%d" % self.seed

    def with_(self, **overrides: Any) -> "DeploymentSpec":
        """A copy with the given fields replaced (sweep ergonomics)."""
        return replace(self, **overrides)

    def to_wire(self) -> dict[str, Any]:
        """JSON-safe form, recorded in the process cluster's state file."""
        return {
            "f": self.f,
            "variant": str(self.variant),
            "scheme": self.scheme,
            "seed": self.seed,
            "transport": self.transport,
            "store": self.store,
            "data_dir": self.data_dir,
            "fsync": self.fsync,
            "batching": self.batching,
            "batch_verify": self.batch_verify,
            "instrumentation": self.instrumentation,
            "pipeline": self.pipeline,
            "workers": self.workers,
            "host": self.host,
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "DeploymentSpec":
        known = {k: wire[k] for k in cls.__dataclass_fields__ if k in wire}
        known.pop("sim_options", None)
        return cls(**known)
