"""One OS process per replica group: spawn, discover, monitor, tear down.

:class:`ProcessCluster` launches ``python -m repro serve`` workers (each
hosting one or more durable replicas), reads the JSON announcement lines
they print to discover ephemeral ports without races, and keeps a monitor
thread watching liveness.  A crashed worker can be restarted on its data
directory — the replica recovers its Figure-2 state from snapshot + WAL —
and, because restarts re-request the originally announced ports, the
other processes' address books stay valid.

The cluster records itself in ``<data_dir>/cluster.json`` so a separate
invocation (``python -m repro cluster status|down``) can find and manage
the fleet.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import IO, Optional

from repro.core.quorum import QuorumSystem
from repro.errors import NetworkError

__all__ = ["ProcessCluster", "WorkerHandle", "STATE_FILE", "replica_data_dir"]

STATE_FILE = "cluster.json"


def _worker_env() -> dict[str, str]:
    """The child environment: ensure ``repro`` is importable as installed.

    The package may be running from a source tree (``src`` layout) that is
    on ``sys.path`` but not in the inherited ``PYTHONPATH``; prepending the
    package's parent directory makes ``python -m repro`` work in the child
    regardless of how this process found it.
    """
    import repro

    package_root = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    parts = [package_root] + ([existing] if existing else [])
    env["PYTHONPATH"] = os.pathsep.join(parts)
    return env


def _slug(node_id: str) -> str:
    return node_id.replace(":", "_").replace("/", "_")


def replica_data_dir(
    worker_dir: str, node_ids: "tuple[str, ...] | list[str]", node_id: str
) -> str:
    """Where a replica journals inside its worker's directory.

    A worker hosting a single replica journals directly in its directory
    (the historical ``serve`` layout); a worker hosting several gives each
    replica its own subdirectory.  ``serve``, the orchestrator, and the
    offline fingerprint recovery all share this rule.
    """
    if len(node_ids) == 1:
        return str(worker_dir)
    return str(Path(worker_dir) / _slug(node_id))


@dataclass
class WorkerHandle:
    """One spawned ``serve`` process and the replicas it hosts."""

    index: int
    node_ids: tuple[str, ...]
    data_dir: str
    process: Optional[subprocess.Popen] = None
    #: node id -> (host, port), filled in from announcement lines.
    addrs: dict[str, tuple[str, int]] = field(default_factory=dict)
    restarts: int = 0
    log_path: Optional[str] = None

    @property
    def pid(self) -> Optional[int]:
        return None if self.process is None else self.process.pid

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None


class ProcessCluster:
    """Launches and supervises one ``serve`` worker per replica group."""

    def __init__(
        self,
        *,
        f: int = 1,
        seed: int = 0,
        variant: str = "base",
        scheme: str = "hmac",
        data_dir: str,
        host: str = "127.0.0.1",
        fsync: str = "always",
        workers: Optional[int] = None,
        auto_restart: bool = False,
        monitor_interval: float = 0.25,
        start_timeout: float = 30.0,
        python: str = sys.executable,
        open_namespaces: tuple[str, ...] = ("client:",),
        audit_interval: float = 1.0,
    ) -> None:
        self.f = f
        self.seed = seed
        self.variant = variant
        self.scheme = scheme
        self.data_dir = str(data_dir)
        self.host = host
        self.fsync = fsync
        self.auto_restart = auto_restart
        self.monitor_interval = monitor_interval
        self.start_timeout = start_timeout
        self.python = python
        #: Client-id namespaces each worker admits wholesale (the load
        #: harness needs its ``load:`` identities verifiable cluster-side).
        self.open_namespaces = tuple(open_namespaces)
        #: Seconds between each worker's periodic self-audits; a worker
        #: that recovers onto a corrupted data directory quarantines and
        #: repairs from the peers named in ``cluster.json`` (0 disables).
        self.audit_interval = audit_interval
        node_ids = QuorumSystem.bft_bc(f).replica_ids
        count = len(node_ids) if workers is None else workers
        # Partition the n replicas across the workers round-robin; with the
        # default one-worker-per-replica layout each group is a singleton.
        groups: list[list[str]] = [[] for _ in range(count)]
        for position, node_id in enumerate(node_ids):
            groups[position % count].append(node_id)
        self.workers: list[WorkerHandle] = [
            WorkerHandle(
                index=index,
                node_ids=tuple(group),
                data_dir=str(Path(self.data_dir) / f"worker-{index}"),
            )
            for index, group in enumerate(groups)
        ]
        self._lock = threading.Lock()
        self._monitor: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        #: Worker crashes observed by the monitor (before any restart).
        self.crashes = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> dict[str, tuple[str, int]]:
        """Spawn every worker; block until all replicas have announced.

        Returns the full ``node_id -> (host, port)`` address book.
        """
        Path(self.data_dir).mkdir(parents=True, exist_ok=True)
        for worker in self.workers:
            self._spawn(worker)
        deadline = time.monotonic() + self.start_timeout
        for worker in self.workers:
            self._await_announcements(worker, deadline)
        self._write_state()
        if self.auto_restart:
            self._stopping.clear()
            self._monitor = threading.Thread(
                target=self._monitor_loop, name="cluster-monitor", daemon=True
            )
            self._monitor.start()
        return self.addrs

    def _spawn(self, worker: WorkerHandle, *, pin_ports: bool = False) -> None:
        Path(worker.data_dir).mkdir(parents=True, exist_ok=True)
        if pin_ports:
            ports = ",".join(
                str(worker.addrs.get(node_id, ("", 0))[1])
                for node_id in worker.node_ids
            )
        else:
            ports = "0"
        cmd = [
            self.python,
            "-m",
            "repro",
            "--f",
            str(self.f),
            "--seed",
            str(self.seed),
            "serve",
            *worker.node_ids,
            "--data-dir",
            worker.data_dir,
            "--variant",
            str(self.variant),
            "--scheme",
            self.scheme,
            "--host",
            self.host,
            "--port",
            ports,
            "--fsync",
            self.fsync,
            "--announce",
        ]
        for namespace in self.open_namespaces:
            cmd.extend(["--open-namespace", namespace])
        if self.audit_interval > 0:
            cmd.extend([
                "--peers-file", str(self._state_path()),
                "--audit-interval", str(self.audit_interval),
            ])
        worker.log_path = str(Path(worker.data_dir) / "worker.log")
        log = open(worker.log_path, "ab")
        try:
            worker.process = subprocess.Popen(
                cmd,
                stdout=subprocess.PIPE,
                stderr=log,
                env=_worker_env(),
            )
        finally:
            log.close()
        worker.addrs = {} if not pin_ports else dict(worker.addrs)

    def _await_announcements(self, worker: WorkerHandle, deadline: float) -> None:
        """Read the worker's stdout until every hosted replica announced."""
        process = worker.process
        assert process is not None and process.stdout is not None
        pending = set(worker.node_ids)
        stdout: IO[bytes] = process.stdout
        while pending:
            if time.monotonic() > deadline:
                raise NetworkError(
                    f"worker {worker.index} did not announce {sorted(pending)} "
                    f"within {self.start_timeout}s (log: {worker.log_path})"
                )
            line = stdout.readline()
            if not line:
                raise NetworkError(
                    f"worker {worker.index} exited during startup "
                    f"(code {process.poll()}, log: {worker.log_path})"
                )
            try:
                event = json.loads(line)
            except ValueError:
                continue  # human-readable chatter is fine to skip
            if event.get("event") != "listening":
                continue
            node_id = event["node_id"]
            worker.addrs[node_id] = (event["host"], int(event["port"]))
            pending.discard(node_id)
        # Startup is done; keep draining stdout in the background so the
        # child never blocks on a full pipe.
        threading.Thread(
            target=_drain, args=(stdout,), daemon=True
        ).start()

    @property
    def addrs(self) -> dict[str, tuple[str, int]]:
        book: dict[str, tuple[str, int]] = {}
        for worker in self.workers:
            book.update(worker.addrs)
        return book

    # -- supervision ---------------------------------------------------------

    def _monitor_loop(self) -> None:
        while not self._stopping.wait(self.monitor_interval):
            for worker in self.workers:
                with self._lock:
                    if self._stopping.is_set() or worker.alive:
                        continue
                    self.crashes += 1
                    self.restart(worker)

    def restart(self, worker: WorkerHandle) -> None:
        """Respawn a dead worker on its data directory and original ports.

        The replicas recover from their WALs; reusing the announced ports
        keeps every other process's address book valid, so clients simply
        re-dial on their retransmission timers.
        """
        self._spawn(worker, pin_ports=True)
        deadline = time.monotonic() + self.start_timeout
        self._await_announcements(worker, deadline)
        # Incremented only once the worker has re-announced: observers
        # polling ``restarts`` may rely on the replicas listening again.
        worker.restarts += 1
        self._write_state()

    def worker_for(self, node_id: str) -> WorkerHandle:
        for worker in self.workers:
            if node_id in worker.node_ids:
                return worker
        raise KeyError(node_id)

    def kill(self, node_id: str, *, sig: int = signal.SIGKILL) -> WorkerHandle:
        """Send ``sig`` (default ``SIGKILL``) to the worker hosting a replica."""
        worker = self.worker_for(node_id)
        if worker.process is not None and worker.alive:
            worker.process.send_signal(sig)
            worker.process.wait(timeout=10)
        return worker

    def status(self) -> list[dict[str, object]]:
        return [
            {
                "worker": worker.index,
                "pid": worker.pid,
                "alive": worker.alive,
                "restarts": worker.restarts,
                "replicas": {
                    node_id: list(worker.addrs.get(node_id, ("", 0)))
                    for node_id in worker.node_ids
                },
            }
            for worker in self.workers
        ]

    def stop(self, *, grace: float = 5.0) -> None:
        """Terminate every worker (SIGTERM, then SIGKILL after ``grace``)."""
        self._stopping.set()
        if self._monitor is not None:
            self._monitor.join(timeout=grace)
            self._monitor = None
        with self._lock:
            for worker in self.workers:
                process = worker.process
                if process is None or process.poll() is not None:
                    continue
                process.terminate()
            for worker in self.workers:
                process = worker.process
                if process is None:
                    continue
                try:
                    process.wait(timeout=grace)
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait(timeout=grace)
        self._clear_state()

    # -- state file (CLI handoff) -------------------------------------------

    def _state_path(self) -> Path:
        return Path(self.data_dir) / STATE_FILE

    def _write_state(self) -> None:
        state = {
            "f": self.f,
            "seed": self.seed,
            "variant": str(self.variant),
            "scheme": self.scheme,
            "host": self.host,
            "fsync": self.fsync,
            "data_dir": self.data_dir,
            "workers": [
                {
                    "index": worker.index,
                    "node_ids": list(worker.node_ids),
                    "data_dir": worker.data_dir,
                    "pid": worker.pid,
                    "addrs": {
                        node_id: list(addr)
                        for node_id, addr in worker.addrs.items()
                    },
                    "restarts": worker.restarts,
                }
                for worker in self.workers
            ],
        }
        path = self._state_path()
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(state, indent=2, sort_keys=True))
        tmp.replace(path)

    def _clear_state(self) -> None:
        try:
            self._state_path().unlink()
        except FileNotFoundError:
            pass

    @staticmethod
    def read_state(data_dir: str) -> Optional[dict]:
        """The recorded state of a cluster previously started here."""
        path = Path(data_dir) / STATE_FILE
        try:
            return json.loads(path.read_text())
        except (FileNotFoundError, ValueError):
            return None

    def __enter__(self) -> "ProcessCluster":
        self.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()


def _drain(stream: IO[bytes]) -> None:
    try:
        while stream.read(65536):
            pass
    except (OSError, ValueError):
        pass
