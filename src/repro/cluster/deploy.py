"""``deploy()``: one declarative spec, one uniform handle, three transports.

Before this module the repo had four divergent ways to stand up a system —
sim ``ClusterOptions``, hand-wired ``ReplicaServer`` + ``AsyncClient``,
``shard_cluster``, and the load harness.  ``deploy(DeploymentSpec(...))``
covers the common single-group case uniformly:

* ``transport="sim"``      — the deterministic virtual-time simulator.
* ``transport="tcp"``      — in-process asyncio servers over loopback.
* ``transport="process"``  — one OS process per worker via
  :class:`~repro.cluster.process.ProcessCluster`.

Every handle offers the same surface: ``run_script`` (a FIFO of operations
executed ``spec.pipeline`` at a time), ``write``/``read`` convenience
wrappers, ``fingerprints`` (per-replica durable-state digests, the
cross-transport equivalence oracle), ``verification_stats``, and ``close``.
The real transports drive their asyncio machinery on a private background
loop thread, so the handle itself is synchronous everywhere.
"""

from __future__ import annotations

import asyncio
import shutil
import tempfile
import threading
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.cluster.process import ProcessCluster, replica_data_dir
from repro.cluster.spec import DeploymentSpec
from repro.core.client import (
    BftBcClient,
    FastBftBcClient,
    OptimizedBftBcClient,
    StrongBftBcClient,
)
from repro.core.config import SystemConfig, make_system
from repro.core.fast_replica import FastBftBcReplica
from repro.core.replica import BftBcReplica, OptimizedBftBcReplica
from repro.core.verification import VerificationStats
from repro.errors import QuorumConfigError
from repro.net.mux import OpRecord, PipelinedClient
from repro.obs.instrumentation import Instrumentation

__all__ = [
    "Deployment",
    "SimDeployment",
    "TcpDeployment",
    "ProcessDeployment",
    "deploy",
    "variant_replica_cls",
    "variant_client_cls",
]


def variant_replica_cls(variant: str) -> type[BftBcReplica]:
    """The replica class a protocol variant runs (shared by sim/serve/deploy)."""
    if variant == "optimized":
        return OptimizedBftBcReplica
    if variant == "fastpath":
        return FastBftBcReplica
    return BftBcReplica


def variant_client_cls(variant: str) -> type[BftBcClient]:
    """The client class a protocol variant runs."""
    if variant == "optimized":
        return OptimizedBftBcClient
    if variant == "fastpath":
        return FastBftBcClient
    if variant == "strong":
        return StrongBftBcClient
    return BftBcClient


class Deployment:
    """The uniform handle; concrete transports fill in the private hooks."""

    def __init__(self, spec: DeploymentSpec) -> None:
        self.spec = spec

    # -- uniform surface -----------------------------------------------------

    def run_script(
        self, script: Sequence[tuple[str, Any]]
    ) -> list[OpRecord]:
        """Run ``[(kind, value), ...]`` with up to ``spec.pipeline`` in flight.

        Returns one record per operation, in submission order.
        """
        raise NotImplementedError

    def write(self, value: Any) -> Any:
        """One write; returns the committed timestamp."""
        return self.run_script([("write", value)])[0].result

    def read(self) -> Any:
        """One read; returns the value."""
        return self.run_script([("read", None)])[0].result

    def fingerprints(self) -> dict[str, str]:
        """Per-replica durable-state digests (the equivalence oracle)."""
        raise NotImplementedError

    def verification_stats(self) -> Optional[VerificationStats]:
        """The shared verification counters, when observable in-process."""
        return None

    def close(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "Deployment":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class SimDeployment(Deployment):
    """The virtual-time simulator behind the uniform surface."""

    def __init__(self, spec: DeploymentSpec, **cluster_kwargs: Any) -> None:
        super().__init__(spec)
        from repro.sim.runner import build_cluster
        from repro.storage import FileLogStore

        options: dict[str, Any] = dict(
            f=spec.f,
            variant=str(spec.variant),
            scheme=spec.scheme,
            seed=spec.seed,
            batching=spec.batching,
        )
        if spec.instrumentation:
            options["instrumentation"] = Instrumentation()
        self._owns_dir = False
        if spec.store == "file":
            data_dir = spec.data_dir
            if data_dir is None:
                data_dir = tempfile.mkdtemp(prefix="repro-sim-")
                self._owns_dir = True
            self._data_dir = data_dir
            options["store_factory"] = lambda node_id: FileLogStore(
                Path(data_dir) / node_id.replace(":", "_"), fsync=spec.fsync
            )
        options.update(spec.sim_options)
        options.update(cluster_kwargs)
        self.cluster = build_cluster(**options)
        self._client_ops: dict[str, int] = {}

    def run_script(
        self, script: Sequence[tuple[str, Any]]
    ) -> list[OpRecord]:
        window = min(self.spec.pipeline, len(script)) or 1
        names = [f"pipe{i}" for i in range(window)]
        # Static round-robin deal: op i runs on logical client i % window.
        scripts: dict[str, list[tuple[str, Any]]] = {name: [] for name in names}
        for index, step in enumerate(script):
            scripts[names[index % window]].append(tuple(step))
        offsets = {
            name: len(self._results_of(name)) for name in names
        }
        self.cluster.run_scripts(
            {name: steps for name, steps in scripts.items() if steps}
        )
        records = []
        for index, (kind, value) in enumerate(script):
            name = names[index % window]
            position = offsets[name] + index // window
            _, result = self._results_of(name)[position]
            records.append(
                OpRecord(
                    index=index,
                    kind=kind,
                    value=value,
                    client=f"client:{name}",
                    result=result,
                )
            )
        return records

    def _results_of(self, name: str) -> list[tuple[str, Any]]:
        node = self.cluster.clients.get(f"client:{name}")
        return [] if node is None else node.results

    def fingerprints(self) -> dict[str, str]:
        return {
            node_id: replica.state_fingerprint()
            for node_id, replica in self.cluster.replicas.items()
        }

    def verification_stats(self) -> Optional[VerificationStats]:
        verifier = self.cluster.config.verifier
        return None if verifier is None else verifier.stats

    def close(self) -> None:
        if self._owns_dir:
            shutil.rmtree(self._data_dir, ignore_errors=True)


class _LoopThread:
    """A private asyncio loop on a daemon thread; the sync/async bridge."""

    def __init__(self) -> None:
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self.loop.run_forever, name="deploy-loop", daemon=True
        )
        self.thread.start()

    def run(self, coro: Any, timeout: Optional[float] = None) -> Any:
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result(timeout)

    def stop(self) -> None:
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.loop.close()


def _pipeline_clients(
    spec: DeploymentSpec, config: SystemConfig
) -> list[BftBcClient]:
    client_cls = variant_client_cls(str(spec.variant))
    clients = []
    for i in range(spec.pipeline):
        node_id = f"client:pipe{i}"
        config.registry.register(node_id)
        clients.append(client_cls(node_id, config))
    return clients


class TcpDeployment(Deployment):
    """In-process asyncio servers over loopback, one per replica."""

    def __init__(self, spec: DeploymentSpec) -> None:
        super().__init__(spec)
        from repro.net.asyncio_transport import ReplicaServer

        self.config = make_system(
            spec.f,
            scheme=spec.scheme,
            seed=spec.master_seed,
            strong=(str(spec.variant) == "strong"),
        )
        self.config.registry.open_namespace("client:")
        self.instrumentation = (
            Instrumentation() if spec.instrumentation else None
        )
        if self.instrumentation is not None:
            assert self.config.verifier is not None
            self.instrumentation.attach_verification(self.config.verifier.stats)
        replica_cls = variant_replica_cls(str(spec.variant))
        self._owns_dir = False
        data_dir = spec.data_dir
        if spec.store == "file" and data_dir is None:
            data_dir = tempfile.mkdtemp(prefix="repro-tcp-")
            self._owns_dir = True
        self._data_dir = data_dir
        self._loop = _LoopThread()
        self.servers: list[ReplicaServer] = []
        self.addrs: dict[str, tuple[str, int]] = {}

        async def start() -> None:
            for node_id in self.config.quorums.replica_ids:
                if spec.store == "file":
                    assert data_dir is not None
                    server = ReplicaServer.durable(
                        node_id,
                        self.config,
                        Path(data_dir) / node_id.replace(":", "_"),
                        host=spec.host,
                        replica_cls=replica_cls,
                        fsync=spec.fsync,
                        instrumentation=self.instrumentation,
                        batch_verify=spec.batch_verify,
                    )
                else:
                    server = ReplicaServer(
                        replica_cls(
                            node_id,
                            self.config,
                            instrumentation=self.instrumentation,
                        ),
                        host=spec.host,
                        batch_verify=spec.batch_verify,
                    )
                host, port = await server.start()
                self.servers.append(server)
                self.addrs[node_id] = (host, port)

        self._loop.run(start())
        self._pipe = PipelinedClient(
            _pipeline_clients(spec, self.config),
            self.addrs,
            verifier=self.config.verifier if spec.batch_verify else None,
        )
        self._loop.run(self._pipe.connect())

    def run_script(
        self, script: Sequence[tuple[str, Any]]
    ) -> list[OpRecord]:
        records = self._loop.run(self._pipe.run_script(list(script)))
        return sorted(records, key=lambda record: record.index)

    def fingerprints(self) -> dict[str, str]:
        return {
            server.replica.node_id: server.replica.state_fingerprint()
            for server in self.servers
        }

    def verification_stats(self) -> Optional[VerificationStats]:
        verifier = self.config.verifier
        return None if verifier is None else verifier.stats

    def close(self) -> None:
        async def teardown() -> None:
            await self._pipe.close()
            for server in self.servers:
                await server.stop()

        self._loop.run(teardown())
        self._loop.stop()
        if self._owns_dir and self._data_dir is not None:
            shutil.rmtree(self._data_dir, ignore_errors=True)


class ProcessDeployment(Deployment):
    """One OS process per worker: the real multi-core cluster."""

    def __init__(
        self, spec: DeploymentSpec, *, auto_restart: bool = False
    ) -> None:
        super().__init__(spec)
        self._owns_dir = False
        data_dir = spec.data_dir
        if data_dir is None:
            data_dir = tempfile.mkdtemp(prefix="repro-cluster-")
            self._owns_dir = True
        self._data_dir = data_dir
        self.cluster = ProcessCluster(
            f=spec.f,
            seed=spec.seed,
            variant=str(spec.variant),
            scheme=spec.scheme,
            data_dir=data_dir,
            host=spec.host,
            fsync=spec.fsync,
            workers=spec.workers,
            auto_restart=auto_restart,
        )
        self.addrs = self.cluster.start()
        # The client side mirrors the workers' configuration exactly —
        # deterministic key derivation from the shared master seed is what
        # makes signatures verify across process boundaries.
        self.config = make_system(
            spec.f,
            scheme=spec.scheme,
            seed=spec.master_seed,
            strong=(str(spec.variant) == "strong"),
        )
        self._loop = _LoopThread()
        self._pipe = PipelinedClient(
            _pipeline_clients(spec, self.config),
            self.addrs,
            verifier=self.config.verifier if spec.batch_verify else None,
        )
        self._loop.run(self._pipe.connect())
        self._stopped = False

    def run_script(
        self, script: Sequence[tuple[str, Any]]
    ) -> list[OpRecord]:
        records = self._loop.run(self._pipe.run_script(list(script)))
        return sorted(records, key=lambda record: record.index)

    def stop_workers(self) -> None:
        """Terminate the worker fleet (idempotent); connections drop."""
        if not self._stopped:
            self.cluster.stop()
            self._stopped = True

    def fingerprints(self) -> dict[str, str]:
        """Recover each worker's journal offline and digest its state.

        Stops the fleet first: a fingerprint of a live, mid-operation
        replica is not meaningful.  The recovery pass builds the exact
        configuration the worker ran and replays snapshot + WAL, so the
        digest reflects precisely what durably survived.
        """
        self.stop_workers()
        from repro.storage import FileLogStore

        replica_cls = variant_replica_cls(str(self.spec.variant))
        digests: dict[str, str] = {}
        for worker in self.cluster.workers:
            for node_id in worker.node_ids:
                config = make_system(
                    self.spec.f,
                    scheme=self.spec.scheme,
                    seed=self.spec.master_seed,
                    strong=(str(self.spec.variant) == "strong"),
                )
                config.registry.open_namespace("client:")
                store = FileLogStore(
                    replica_data_dir(
                        worker.data_dir, worker.node_ids, node_id
                    ),
                    fsync="never",
                )
                replica = replica_cls(node_id, config, store=store)
                replica.recover()
                digests[node_id] = replica.state_fingerprint()
        return digests

    def close(self) -> None:
        async def teardown() -> None:
            await self._pipe.close()

        self._loop.run(teardown())
        self._loop.stop()
        self.stop_workers()
        if self._owns_dir:
            shutil.rmtree(self._data_dir, ignore_errors=True)


def deploy(spec: DeploymentSpec, **kwargs: Any) -> Deployment:
    """Stand up the deployment a spec describes; returns its handle.

    Extra keyword arguments pass through to the transport's constructor
    (e.g. ``auto_restart=True`` for the process transport).
    """
    if spec.transport == "sim":
        return SimDeployment(spec, **kwargs)
    if spec.transport == "tcp":
        return TcpDeployment(spec, **kwargs)
    if spec.transport == "process":
        return ProcessDeployment(spec, **kwargs)
    raise QuorumConfigError(f"unknown transport {spec.transport!r}")
