"""Process-cluster orchestration and the unified deployment API.

Two layers:

* :mod:`repro.cluster.process` — :class:`ProcessCluster` launches one
  ``python -m repro serve`` worker per replica group, discovers the
  ephemeral ports they announce, monitors liveness (optionally restarting
  crashed workers), and tears the fleet down cleanly.
* :mod:`repro.cluster.deploy` — :func:`deploy` turns a declarative
  :class:`DeploymentSpec` into a uniform :class:`Deployment` handle over
  any of the three transports (``sim`` | ``tcp`` | ``process``), replacing
  the four divergent construction paths (sim ``ClusterOptions``, ad-hoc
  ``ReplicaServer`` wiring, ``shard_cluster``, the load harness) for the
  common single-group case.
"""

from repro.cluster.deploy import (
    Deployment,
    ProcessDeployment,
    SimDeployment,
    TcpDeployment,
    deploy,
)
from repro.cluster.process import ProcessCluster, WorkerHandle
from repro.cluster.spec import DeploymentSpec

__all__ = [
    "DeploymentSpec",
    "Deployment",
    "SimDeployment",
    "TcpDeployment",
    "ProcessDeployment",
    "deploy",
    "ProcessCluster",
    "WorkerHandle",
]
