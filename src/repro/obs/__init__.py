"""`repro.obs` — the unified observability layer.

One :class:`Instrumentation` handle threads through
``ClusterOptions``, the client/replica constructors, and
:class:`~repro.net.asyncio_transport.ReplicaServer`; it produces
op/phase/handler :class:`Span` trees, bounded mergeable
:class:`LatencyHistogram` series, and feeds the exporters
(:func:`spans_to_jsonl`, :func:`render_prometheus`) behind the
``python -m repro metrics`` / ``trace`` CLI.  Layer 1: depends only on
:mod:`repro.errors`.
"""

from repro.obs.histograms import (
    DEFAULT_BUCKETS,
    DEFAULT_GROWTH,
    DEFAULT_MIN_BOUND,
    LatencyHistogram,
)
from repro.obs.instrumentation import (
    NULL_INSTRUMENTATION,
    Instrumentation,
    ObservabilityError,
)
from repro.obs.export import (
    render_phase_table,
    render_prometheus,
    spans_to_jsonl,
    write_spans_jsonl,
)
from repro.obs.spans import (
    NULL_SPAN,
    InMemorySpanRecorder,
    NullSpanRecorder,
    Span,
    SpanHandle,
    SpanRecorder,
)

__all__ = [
    "Instrumentation",
    "NULL_INSTRUMENTATION",
    "ObservabilityError",
    "Span",
    "SpanHandle",
    "NULL_SPAN",
    "SpanRecorder",
    "NullSpanRecorder",
    "InMemorySpanRecorder",
    "LatencyHistogram",
    "DEFAULT_MIN_BOUND",
    "DEFAULT_GROWTH",
    "DEFAULT_BUCKETS",
    "spans_to_jsonl",
    "write_spans_jsonl",
    "render_prometheus",
    "render_phase_table",
]
