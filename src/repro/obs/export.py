"""Exporters: JSON-lines span dumps and Prometheus-style text rendering.

Both exporters read from an :class:`~repro.obs.Instrumentation` handle (or
raw span lists / histogram dicts) and produce plain text, so they work
identically for simulator runs (virtual-time spans) and asyncio
deployments (wall-clock spans).  The ``python -m repro trace`` and
``python -m repro metrics`` CLI commands are thin wrappers over these
functions.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Mapping, Optional

from repro.obs.histograms import LatencyHistogram
from repro.obs.spans import Span

__all__ = [
    "spans_to_jsonl",
    "write_spans_jsonl",
    "render_prometheus",
    "render_phase_table",
]


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """One JSON object per line, one line per finished span."""
    return "".join(
        json.dumps(span.to_dict(), sort_keys=True) + "\n" for span in spans
    )


def write_spans_jsonl(spans: Iterable[Span], stream: IO[str]) -> int:
    """Write spans to ``stream`` as JSON lines; returns the span count."""
    count = 0
    for span in spans:
        stream.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
        count += 1
    return count


def _metric_name(series: str) -> str:
    # "phase.READ-TS" -> "repro_phase_read_ts_seconds"
    slug = "".join(c if c.isalnum() else "_" for c in series).strip("_").lower()
    return f"repro_{slug}_seconds"


def render_prometheus(
    histograms: Mapping[str, LatencyHistogram],
    *,
    sources: Optional[Mapping[str, object]] = None,
) -> str:
    """Prometheus text exposition of every histogram (and source counters).

    Histograms render as the standard cumulative-``le`` triple
    (``_bucket``/``_sum``/``_count``); attached stats sources render their
    public integer/float attributes as gauges.
    """
    lines: list[str] = []
    for series in sorted(histograms):
        hist = histograms[series]
        name = _metric_name(series)
        lines.append(f"# HELP {name} Latency histogram for {series}")
        lines.append(f"# TYPE {name} histogram")
        for bound, cumulative in hist.cumulative_buckets():
            lines.append(f'{name}_bucket{{le="{bound:.9g}"}} {cumulative}')
        lines.append(f'{name}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{name}_sum {hist.total:.9g}")
        lines.append(f"{name}_count {hist.count}")
    for source_name, stats in sorted((sources or {}).items()):
        if isinstance(stats, Mapping):
            # Per-replica stats (storage): flatten to labelled gauges.
            for node_id, node_stats in sorted(stats.items()):
                lines.extend(
                    _render_gauges(source_name, node_stats, node=str(node_id))
                )
        else:
            lines.extend(_render_gauges(source_name, stats))
    return "\n".join(lines) + "\n" if lines else ""


def _render_gauges(source_name: str, stats: object, node: str = "") -> list[str]:
    lines: list[str] = []
    for attr in sorted(vars(type(stats)).get("__annotations__", ()) or _numeric_attrs(stats)):
        value = getattr(stats, attr, None)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        name = _metric_name(f"{source_name}.{attr}").removesuffix("_seconds")
        label = f'{{node="{node}"}}' if node else ""
        lines.append(f"{name}{label} {value}")
    return lines


def _numeric_attrs(stats: object) -> list[str]:
    return [
        attr
        for attr in dir(stats)
        if not attr.startswith("_")
        and isinstance(getattr(stats, attr, None), (int, float))
        and not isinstance(getattr(stats, attr, None), bool)
    ]


def render_phase_table(histograms: Mapping[str, LatencyHistogram]) -> str:
    """A human-readable per-series latency table (mean/p50/p95/max).

    Used by ``python -m repro metrics`` and the analysis report's phase
    breakdown; series are the ``kind.name`` histogram keys, so protocol
    phases appear as ``phase.READ-TS`` etc.
    """
    rows = [("series", "count", "mean", "p50", "p95", "max")]
    for series in sorted(histograms):
        hist = histograms[series]
        maximum = hist.maximum if hist.maximum is not None else 0.0
        rows.append(
            (
                series,
                str(hist.count),
                f"{hist.mean:.6f}",
                f"{hist.quantile(0.5):.6f}",
                f"{hist.quantile(0.95):.6f}",
                f"{maximum:.6f}",
            )
        )
    widths = [max(len(row[col]) for row in rows) for col in range(len(rows[0]))]
    out = []
    for index, row in enumerate(rows):
        out.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        )
        if index == 0:
            out.append("  ".join("-" * width for width in widths))
    return "\n".join(out)
