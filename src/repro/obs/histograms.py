"""Bounded, mergeable latency histograms with log-spaced buckets.

A :class:`LatencyHistogram` holds a *fixed* set of bucket upper bounds that
grow geometrically from ``min_bound``: recording is O(log buckets) and the
memory footprint is constant no matter how many samples arrive — the shape
required to instrument a hot path.  Two histograms with the same bucket
layout merge by adding counts, so per-client or per-replica histograms
aggregate into cluster totals without ever touching raw samples.

Quantiles are estimated from the bucket counts.  The estimate returned for
``quantile(q)`` is the upper bound of the bucket containing the q-th
sample, so it never *under*-reports a latency by more than one bucket's
width — with the default ``growth`` of 2 the estimate is within 2x of the
true order statistic, which is the right fidelity for "where does a write
spend its time" questions (the exact-sample summaries in
:mod:`repro.sim.metrics` remain available when exactness matters).
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, Optional

from repro.errors import ReproError

__all__ = ["LatencyHistogram", "DEFAULT_MIN_BOUND", "DEFAULT_GROWTH", "DEFAULT_BUCKETS"]

#: Default smallest bucket bound: 1 microsecond (in seconds).
DEFAULT_MIN_BOUND = 1e-6
#: Default geometric growth factor between consecutive bucket bounds.
DEFAULT_GROWTH = 2.0
#: Default bucket count; 2^40 microseconds ≈ 12.7 days of headroom.
DEFAULT_BUCKETS = 40


class LatencyHistogram:
    """Fixed log-spaced-bucket histogram of non-negative durations."""

    __slots__ = ("bounds", "counts", "count", "total", "minimum", "maximum",
                 "overflow")

    def __init__(
        self,
        *,
        min_bound: float = DEFAULT_MIN_BOUND,
        growth: float = DEFAULT_GROWTH,
        buckets: int = DEFAULT_BUCKETS,
    ) -> None:
        if min_bound <= 0 or growth <= 1 or buckets < 1:
            raise ReproError(
                f"invalid histogram layout (min_bound={min_bound}, "
                f"growth={growth}, buckets={buckets})"
            )
        #: Bucket upper bounds: bounds[i] = min_bound * growth**i.  A value
        #: lands in the first bucket whose bound is >= the value; values
        #: beyond the last bound are counted in :attr:`overflow`.
        self.bounds: tuple[float, ...] = tuple(
            min_bound * growth**i for i in range(buckets)
        )
        self.counts: list[int] = [0] * buckets
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self.overflow = 0

    # -- recording ---------------------------------------------------------

    def record(self, value: float) -> None:
        """Record one duration (negative values clamp to zero)."""
        if value < 0:
            value = 0.0
        bounds = self.bounds
        index = bisect.bisect_left(bounds, value)
        if index >= len(bounds):
            self.overflow += 1
        else:
            self.counts[index] += 1
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def record_many(self, values: Iterable[float]) -> None:
        """Record every duration in ``values``."""
        for value in values:
            self.record(value)

    # -- aggregation -------------------------------------------------------

    def same_layout(self, other: "LatencyHistogram") -> bool:
        """True when ``other`` uses identical bucket bounds."""
        return self.bounds == other.bounds

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Add ``other``'s counts into this histogram (layouts must match)."""
        if not self.same_layout(other):
            raise ReproError("cannot merge histograms with different bucket layouts")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.count += other.count
        self.total += other.total
        self.overflow += other.overflow
        if other.minimum is not None:
            if self.minimum is None or other.minimum < self.minimum:
                self.minimum = other.minimum
        if other.maximum is not None:
            if self.maximum is None or other.maximum > self.maximum:
                self.maximum = other.maximum
        return self

    def copy(self) -> "LatencyHistogram":
        """An independent histogram with the same layout and counts."""
        clone = LatencyHistogram.__new__(LatencyHistogram)
        clone.bounds = self.bounds
        clone.counts = list(self.counts)
        clone.count = self.count
        clone.total = self.total
        clone.minimum = self.minimum
        clone.maximum = self.maximum
        clone.overflow = self.overflow
        return clone

    # -- statistics --------------------------------------------------------

    @property
    def mean(self) -> float:
        """Exact arithmetic mean of every recorded value (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the q-th sample (0 when empty).

        ``q`` is clamped to [0, 1].  Samples past the last bucket report the
        recorded maximum (the histogram cannot bound them any tighter).
        """
        if self.count == 0:
            return 0.0
        q = min(1.0, max(0.0, q))
        rank = max(1, math.ceil(q * self.count))
        cumulative = 0
        for index, count in enumerate(self.counts):
            cumulative += count
            if cumulative >= rank:
                return self.bounds[index]
        return self.maximum if self.maximum is not None else self.bounds[-1]

    def nonzero_buckets(self) -> list[tuple[float, int]]:
        """(upper bound, count) for every occupied bucket, in order."""
        return [
            (self.bounds[i], c) for i, c in enumerate(self.counts) if c
        ]

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Prometheus-shaped cumulative (le, count) rows over all buckets."""
        rows: list[tuple[float, int]] = []
        running = 0
        for index, count in enumerate(self.counts):
            running += count
            rows.append((self.bounds[index], running))
        return rows

    def to_dict(self) -> dict:
        """A JSON-serialisable snapshot (layout, counts, summary stats)."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "overflow": self.overflow,
            "buckets": [
                {"le": bound, "count": count}
                for bound, count in self.nonzero_buckets()
            ],
        }

    def __repr__(self) -> str:
        return (
            f"LatencyHistogram(count={self.count}, mean={self.mean:.6g}, "
            f"p50={self.quantile(0.5):.6g}, p95={self.quantile(0.95):.6g})"
        )
