"""Spans: timed, attributed intervals forming per-operation trees.

A *span* records one interval of work — a whole client operation, one
protocol phase inside it, or one replica handler invocation — with a start
and end time from the owning :class:`~repro.obs.Instrumentation`'s clock
(virtual time under the simulator, wall clock on the asyncio transport).
Spans carry an *op id* (``trace_id``): every phase span points at its
operation span via ``parent_id`` and shares its ``trace_id``, so a dump of
one run reassembles into per-operation trees — the paper's per-phase cost
model (§3.3) made observable.

Two recorders exist: :class:`InMemorySpanRecorder` keeps finished spans in
a bounded list for exporters and tests, and :class:`NullSpanRecorder` drops
everything — the disabled fast path.  Open spans are represented by
:class:`SpanHandle`, a small mutable object; :data:`NULL_SPAN` is the
do-nothing handle that instrumentation-free code paths share, so the hot
path pays one attribute check and nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

__all__ = [
    "Span",
    "SpanHandle",
    "NULL_SPAN",
    "SpanRecorder",
    "NullSpanRecorder",
    "InMemorySpanRecorder",
]


@dataclass(frozen=True)
class Span:
    """One finished interval of work.

    ``kind`` classifies the span (``"op"``, ``"phase"``, ``"handler"``),
    ``name`` names the work (operation name or message kind), ``trace_id``
    is the op id shared by an operation and its phases, and ``parent_id``
    links a phase to its operation span (``None`` for roots).
    """

    name: str
    kind: str
    trace_id: str
    span_id: int
    parent_id: Optional[int]
    start: float
    end: float
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Elapsed clock units between start and end."""
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        """A JSON-serialisable view (the JSON-lines exporter's row)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attrs": self.attrs,
        }


class SpanHandle:
    """A span that is still open: set attributes, then :meth:`end` it.

    Usable as a context manager; ending twice is a no-op so transitions
    that may fire from several paths (e.g. an operation finishing during a
    retransmission tick) need no guards.
    """

    __slots__ = ("name", "kind", "trace_id", "span_id", "parent_id",
                 "_start", "_attrs", "_finish", "_open")

    def __init__(
        self,
        name: str,
        kind: str,
        trace_id: str,
        span_id: int,
        parent_id: Optional[int],
        start: float,
        finish: Callable[["SpanHandle", float], None],
    ) -> None:
        self.name = name
        self.kind = kind
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self._start = start
        self._attrs: dict[str, Any] = {}
        self._finish = finish
        self._open = True

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute to the span."""
        if self._open:
            self._attrs[key] = value

    def incr(self, key: str, amount: int = 1) -> None:
        """Increment a counter attribute (e.g. ``retransmits``)."""
        if self._open:
            self._attrs[key] = self._attrs.get(key, 0) + amount

    def end(self) -> None:
        """Close the span; idempotent."""
        if self._open:
            self._open = False
            self._finish(self, self._start)

    @property
    def closed(self) -> bool:
        return not self._open

    def snapshot(self, start: float, end: float) -> Span:
        """The immutable record of this handle (used by the finisher)."""
        return Span(
            name=self.name,
            kind=self.kind,
            trace_id=self.trace_id,
            span_id=self.span_id,
            parent_id=self.parent_id,
            start=start,
            end=end,
            attrs=dict(self._attrs),
        )

    def __enter__(self) -> "SpanHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.end()


class _NullSpanHandle(SpanHandle):
    """The shared do-nothing handle; every method returns immediately."""

    def __init__(self) -> None:
        super().__init__("", "null", "", 0, None, 0.0, lambda _h, _s: None)
        self._open = False

    def set(self, key: str, value: Any) -> None:  # noqa: D102 (inherited)
        pass

    def incr(self, key: str, amount: int = 1) -> None:  # noqa: D102
        pass

    def end(self) -> None:  # noqa: D102
        pass

    def __repr__(self) -> str:
        return "NULL_SPAN"


#: The handle used wherever no instrumentation is bound — all no-ops.
NULL_SPAN: SpanHandle = _NullSpanHandle()


class SpanRecorder:
    """Where finished spans go; subclasses override :meth:`record`."""

    def record(self, span: Span) -> None:
        """Accept one finished span."""
        raise NotImplementedError

    def record_raw(self, handle: SpanHandle, start: float, end: float) -> None:
        """Accept a finished handle before materialisation.

        The default materialises immediately; bounded in-memory recording
        overrides this to defer :meth:`SpanHandle.snapshot` off the hot
        path (a closed handle's attributes can no longer change).
        """
        self.record(handle.snapshot(start, end))

    def drain(self) -> list[Span]:
        """Return and clear the recorded spans (empty for null recorders)."""
        return []


class NullSpanRecorder(SpanRecorder):
    """Drops every span — the disabled fast path."""

    def record(self, span: Span) -> None:
        """Discard the span."""

    def record_raw(self, handle: SpanHandle, start: float, end: float) -> None:
        """Discard the handle."""


class InMemorySpanRecorder(SpanRecorder):
    """Keeps finished spans in a bounded list.

    When ``max_spans`` is reached new spans are dropped (and counted in
    :attr:`dropped`) rather than growing without bound — observability must
    never be the component that runs the process out of memory.  Raw
    handles are buffered as ``(handle, start, end)`` and only turned into
    :class:`Span` records when read, keeping the recording path to one
    list append.
    """

    def __init__(self, max_spans: int = 200_000) -> None:
        self.max_spans = max_spans
        self._finished: list[Span] = []
        self._raw: list[tuple[SpanHandle, float, float]] = []
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._finished) + len(self._raw)

    def record(self, span: Span) -> None:
        """Store the span, or count it as dropped past the cap."""
        if len(self) >= self.max_spans:
            self.dropped += 1
            return
        self._finished.append(span)

    def record_raw(self, handle: SpanHandle, start: float, end: float) -> None:
        """Buffer the closed handle, or count it as dropped past the cap."""
        raw = self._raw
        if len(self._finished) + len(raw) >= self.max_spans:
            self.dropped += 1
            return
        raw.append((handle, start, end))

    def _materialize(self) -> None:
        if self._raw:
            self._finished.extend(
                handle.snapshot(start, end) for handle, start, end in self._raw
            )
            self._raw.clear()

    @property
    def spans(self) -> list[Span]:
        """Every retained span, oldest first (materialised on demand)."""
        self._materialize()
        return self._finished

    def drain(self) -> list[Span]:
        """Return and clear the recorded spans."""
        out = self.spans
        self._finished = []
        return out
