"""The single-entry instrumentation API.

One :class:`Instrumentation` handle is the only object a deployment threads
through its components (``ClusterOptions.instrumentation``, the client and
replica constructors, :class:`~repro.net.asyncio_transport.ReplicaServer`).
It owns four things:

* **spans** — op/phase/handler intervals recorded through a
  :class:`~repro.obs.spans.SpanRecorder`;
* **latency histograms** — one bounded log-spaced
  :class:`~repro.obs.histograms.LatencyHistogram` per span name plus any
  sub-timing series (``verify.statement``, ``store.append``, …);
* **a clock** — virtual time under the simulator, wall clock on asyncio;
  the cluster binds it, callers never care which;
* **stats sources** — the counter blocks that used to be attached through
  ``MetricsCollector.attach_*`` (verification, wire cache, batching,
  per-replica storage), now registered here exactly once; double attachment
  raises instead of silently overwriting.

The disabled handle (:func:`Instrumentation.off`, shared singleton
:data:`NULL_INSTRUMENTATION`) short-circuits every span call to the shared
:data:`~repro.obs.spans.NULL_SPAN`, so uninstrumented deployments pay one
``enabled`` check per call site and nothing else — benchmark E17 pins the
enabled overhead below 5% and the disabled overhead at ~0.
"""

from __future__ import annotations

import itertools
import time
from typing import Any, Callable, Optional

from repro.errors import ReproError
from repro.obs.histograms import LatencyHistogram
from repro.obs.spans import (
    NULL_SPAN,
    InMemorySpanRecorder,
    NullSpanRecorder,
    Span,
    SpanHandle,
    SpanRecorder,
)

__all__ = [
    "Instrumentation",
    "NULL_INSTRUMENTATION",
    "ObservabilityError",
]


class ObservabilityError(ReproError):
    """The instrumentation API was misused (e.g. a double attach)."""


class Instrumentation:
    """One handle for spans, histograms, clock, and stats sources.

    Args:
        enabled: when False, span and timing calls are no-ops (the null
            fast path); sources may still be attached so legacy metrics
            accessors keep working on uninstrumented deployments.
        recorder: where finished spans go; defaults to an in-memory
            recorder when enabled, a null recorder otherwise.
        clock: returns the current time; defaults to wall clock
            (:func:`time.perf_counter`).  The simulator rebinds it to
            virtual time via :meth:`bind_clock`.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        recorder: Optional[SpanRecorder] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.enabled = enabled
        if recorder is None:
            recorder = InMemorySpanRecorder() if enabled else NullSpanRecorder()
        self.recorder = recorder
        self._clock_bound = clock is not None
        self.clock: Callable[[], float] = clock or time.perf_counter
        self.histograms: dict[str, LatencyHistogram] = {}
        #: Attached stats sources by name ("verification", "wire_cache",
        #: "batching"); "storage" maps replica id -> StorageStats.
        self.sources: dict[str, Any] = {}
        self._span_ids = itertools.count(1)
        self._op_ids = itertools.count(1)

    def __repr__(self) -> str:
        return (
            f"Instrumentation(enabled={self.enabled}, "
            f"series={len(self.histograms)})"
        )

    @classmethod
    def off(cls) -> "Instrumentation":
        """A disabled handle (fresh instance: sources are not shared)."""
        return cls(enabled=False, recorder=NullSpanRecorder())

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Adopt ``clock`` unless the caller already chose one explicitly.

        The cluster harness calls this with virtual time; a user who passed
        ``clock=`` to the constructor keeps their choice.
        """
        if not self._clock_bound:
            self.clock = clock

    # -- spans -------------------------------------------------------------

    def _finish_span(self, handle: SpanHandle, start: float) -> None:
        # Hot path: one clock read, one histogram update, one raw append.
        # Span materialisation is deferred to the recorder's read side.
        end = self.clock()
        key = handle.kind + "." + handle.name
        hist = self.histograms.get(key)
        if hist is None:
            hist = self.histograms[key] = LatencyHistogram()
        hist.record(end - start)
        self.recorder.record_raw(handle, start, end)

    def _span(
        self, name: str, kind: str, trace_id: str, parent_id: Optional[int]
    ) -> SpanHandle:
        return SpanHandle(
            name,
            kind,
            trace_id,
            next(self._span_ids),
            parent_id,
            self.clock(),
            self._finish_span,
        )

    def op_span(self, name: str, *, client: str) -> SpanHandle:
        """Open the root span of one client operation (a fresh op id)."""
        if not self.enabled:
            return NULL_SPAN
        trace_id = f"{client}/{name}/{next(self._op_ids)}"
        return self._span(name, "op", trace_id, None)

    def phase_span(self, name: str, *, parent: SpanHandle) -> SpanHandle:
        """Open one protocol-phase span under an operation span."""
        if not self.enabled:
            return NULL_SPAN
        if parent is NULL_SPAN:
            return self._span(name, "phase", f"-/{name}/{next(self._op_ids)}", None)
        return self._span(name, "phase", parent.trace_id, parent.span_id)

    def handler_span(self, name: str, *, node: str) -> SpanHandle:
        """Open one replica-handler span (grouped per node, no parent)."""
        if not self.enabled:
            return NULL_SPAN
        return self._span(name, "handler", node, None)

    def event(self, name: str, **attrs: Any) -> None:
        """Record an instantaneous annotation as a zero-duration span.

        The chaos engine uses this to mark fault injections ("chaos.crash
        replica:0", …) on the same timeline as the op/phase spans, so a
        trace dump shows exactly which operations straddled a fault.
        """
        if not self.enabled:
            return
        handle = self._span(name, "event", name, None)
        for key, value in attrs.items():
            handle.set(key, value)
        handle.end()

    def spans(self) -> list[Span]:
        """Every finished span the recorder retained (oldest first)."""
        return list(getattr(self.recorder, "spans", []))

    # -- histograms --------------------------------------------------------

    def histogram(self, name: str) -> LatencyHistogram:
        """The named histogram, created on first use."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = LatencyHistogram()
        return hist

    def observe(self, name: str, duration: float) -> None:
        """Record one duration into the named histogram (no-op if disabled)."""
        if not self.enabled:
            return
        self.histogram(name).record(duration)

    # -- sub-timing proxies ------------------------------------------------

    def wrap_verifier(self, verifier: Any) -> Any:
        """Time a verifier's checks into ``verify.*`` histograms.

        Returns ``verifier`` untouched when disabled, so the uninstrumented
        hot path keeps its direct calls.
        """
        if not self.enabled or verifier is None:
            return verifier
        if isinstance(verifier, _TimedVerifier):
            return verifier
        return _TimedVerifier(verifier, self)

    def wrap_store(self, store: Any) -> Any:
        """Time a replica store's appends/snapshots into ``store.*`` series.

        ``None`` (no store chosen: the caller's default applies) and the
        disabled case pass straight through; re-wrapping is idempotent.
        """
        if not self.enabled or store is None:
            return store
        if isinstance(store, _TimedStore):
            return store
        return _TimedStore(store, self)

    # -- stats sources -----------------------------------------------------

    def attach(self, name: str, stats: Any) -> None:
        """Register a stats source under ``name``; double attach raises."""
        if name in self.sources:
            raise ObservabilityError(
                f"stats source {name!r} is already attached; "
                "attaching twice would silently discard the first counters"
            )
        self.sources[name] = stats

    def source(self, name: str) -> Any:
        """The attached source, or None."""
        return self.sources.get(name)

    def attach_verification(self, stats: Any) -> None:
        """Expose the deployment's verification-pipeline counters (E4d)."""
        self.attach("verification", stats)

    def attach_wire_cache(self, stats: Any) -> None:
        """Expose the encode-once wire-cache counters (E15)."""
        self.attach("wire_cache", stats)

    def attach_batching(self, stats: Any) -> None:
        """Expose the cross-object batching counters (E15)."""
        self.attach("batching", stats)

    def attach_storage(self, stats_by_replica: dict[str, Any]) -> None:
        """Expose per-replica storage counters (E16); per-id double attach raises."""
        storage = self.sources.setdefault("storage", {})
        for node_id, stats in stats_by_replica.items():
            if node_id in storage:
                raise ObservabilityError(
                    f"storage stats for {node_id!r} are already attached"
                )
            storage[node_id] = stats

    def attach_stabilization(self, stats_by_replica: dict[str, Any]) -> None:
        """Expose per-replica self-stabilization counters (E23): quarantine
        transitions, completed repairs, and self-audit ticks; per-id double
        attach raises.  The full :class:`~repro.core.replica.ReplicaStats`
        is narrowed to just those counters so the exporter does not
        re-publish every protocol counter under this source's name."""
        table = self.sources.setdefault("stabilization", {})
        for node_id, stats in stats_by_replica.items():
            if node_id in table:
                raise ObservabilityError(
                    f"stabilization stats for {node_id!r} are already attached"
                )
            table[node_id] = _StabilizationView(stats)

    def attach_keys(self, stats: Any) -> None:
        """Expose the key registry's lazy-derivation cache counters (E21)."""
        self.attach("keys", stats)

    def attach_sessions(self, stats: Any) -> None:
        """Expose the MAC authenticator's session-key cache counters (E21)."""
        self.attach("sessions", stats)

    def attach_client_state(self, stats_by_replica: dict[str, Any]) -> None:
        """Expose per-replica client-state spill/rehydrate counters (E21)."""
        table = self.sources.setdefault("client_state", {})
        for node_id, stats in stats_by_replica.items():
            if node_id in table:
                raise ObservabilityError(
                    f"client-state stats for {node_id!r} are already attached"
                )
            table[node_id] = stats


class _StabilizationView:
    """Live read-only view of one replica's self-stabilization counters."""

    __slots__ = ("_stats",)

    def __init__(self, stats: Any) -> None:
        self._stats = stats

    @property
    def quarantines(self) -> int:
        return self._stats.quarantines

    @property
    def repairs(self) -> int:
        return self._stats.repairs

    @property
    def self_audits(self) -> int:
        return self._stats.self_audits


class _TimedVerifier:
    """Duck-typed verifier proxy timing each check into histograms.

    The two histograms are resolved once at wrap time — they are stable
    objects inside the instrumentation's registry — so each verify pays
    two clock reads and one bucket update, nothing else.
    """

    __slots__ = ("_inner", "_instr", "_statement_hist", "_certificate_hist")

    def __init__(self, inner: Any, instr: Instrumentation) -> None:
        self._inner = inner
        self._instr = instr
        self._statement_hist = instr.histogram("verify.statement")
        self._certificate_hist = instr.histogram("verify.certificate")

    def verify_statement(self, signature: Any, statement: Any) -> bool:
        clock = self._instr.clock
        started = clock()
        ok = self._inner.verify_statement(signature, statement)
        self._statement_hist.record(clock() - started)
        return ok

    def certificate_valid(self, cert: Any) -> bool:
        clock = self._instr.clock
        started = clock()
        ok = self._inner.certificate_valid(cert)
        self._certificate_hist.record(clock() - started)
        return ok

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)


class _TimedStore:
    """Duck-typed replica-store proxy timing the durability calls."""

    __slots__ = ("_inner", "_instr", "_append_hist", "_load_hist",
                 "_snapshot_hist", "_sync_hist")

    def __init__(self, inner: Any, instr: Instrumentation) -> None:
        self._inner = inner
        self._instr = instr
        self._append_hist = instr.histogram("store.append")
        self._load_hist = instr.histogram("store.load")
        self._snapshot_hist = instr.histogram("store.snapshot")
        self._sync_hist = instr.histogram("store.sync")

    def append(self, record: Any) -> None:
        clock = self._instr.clock
        started = clock()
        self._inner.append(record)
        self._append_hist.record(clock() - started)

    def load(self) -> Any:
        clock = self._instr.clock
        started = clock()
        result = self._inner.load()
        self._load_hist.record(clock() - started)
        return result

    def write_snapshot(self, state: Any) -> None:
        clock = self._instr.clock
        started = clock()
        self._inner.write_snapshot(state)
        self._snapshot_hist.record(clock() - started)

    def sync(self) -> None:
        clock = self._instr.clock
        started = clock()
        self._inner.sync()
        self._sync_hist.record(clock() - started)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    def __setattr__(self, name: str, value: Any) -> None:
        # The state layer writes store attributes through the proxy
        # (``snapshot_source``, ``suspect``); forward anything that is not
        # one of our own slots so the proxy stays transparent both ways.
        if name in _TimedStore.__slots__:
            object.__setattr__(self, name, value)
        else:
            setattr(self._inner, name, value)


#: Shared disabled handle used as the default by clients, replicas, and
#: operations constructed without instrumentation.  Never attach sources to
#: it — deployments that need sources build their own handle (the cluster
#: harness always does).
NULL_INSTRUMENTATION = Instrumentation.off()
