"""The chaos campaign against the real asyncio transport.

The simulator campaign (:mod:`repro.chaos.engine`) is the volume play —
thousands of deterministic episodes.  This module is the ground-truth
play: a *smaller* campaign against actual :class:`~repro.net.asyncio_transport.ReplicaServer`
processes with durable :class:`~repro.storage.FileLogStore` state, real
sockets, and a :class:`~repro.net.chaos_proxy.ChaosProxy` per replica
mangling the byte stream (delays, dropped-and-reset chunks, mid-frame
truncations, garbage frames).  Mid-episode, one replica suffers a
``crash_restart``: its server is stopped, its store closed, and a fresh
server recovers from the same data directory on the same port — the
moral equivalent of ``kill -9`` plus supervised restart.

Each episode records a §4.1 verifiable history at the client boundary
(wall-clock timestamps) and is judged by the same oracle battery as the
simulator campaign via a duck-typed cluster adapter — so one definition
of "correct" covers both worlds.  TCP scheduling is not deterministic,
which is exactly the point: the oracles must hold on *every* schedule,
and this campaign samples schedules the simulator cannot produce.
"""

from __future__ import annotations

import asyncio
import random
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from repro.chaos.oracles import OracleVerdict, run_oracle_battery
from repro.chaos.plan import EpisodePlan
from repro.core.client import (
    BftBcClient,
    FastBftBcClient,
    OptimizedBftBcClient,
    StrongBftBcClient,
)
from repro.core.config import SystemConfig, make_system
from repro.core.fast_replica import FastBftBcReplica
from repro.core.replica import BftBcReplica, OptimizedBftBcReplica
from repro.errors import OperationFailedError
from repro.net.asyncio_transport import AsyncClient, ReplicaServer
from repro.net.chaos_proxy import ChaosProxy, ProxyProfile
from repro.spec.histories import History, Invocation, Response

__all__ = [
    "TcpChaosConfig",
    "TcpEpisodeResult",
    "run_tcp_episode",
    "run_tcp_campaign",
]

_REPLICA_CLS = {
    "base": BftBcReplica,
    "optimized": OptimizedBftBcReplica,
    "strong": BftBcReplica,
    "fastpath": FastBftBcReplica,
}
_CLIENT_CLS = {
    "base": BftBcClient,
    "optimized": OptimizedBftBcClient,
    "strong": StrongBftBcClient,
    "fastpath": FastBftBcClient,
}


@dataclass
class TcpChaosConfig:
    """One TCP chaos episode's knobs (an episode per variant is typical)."""

    seed: int = 0
    f: int = 1
    variants: tuple[str, ...] = ("base", "optimized", "strong", "fastpath")
    clients: int = 2
    ops_per_client: int = 3
    write_fraction: float = 0.6
    #: Stop one replica mid-episode and recover a fresh server from its
    #: data directory on the same port.
    crash_restart: bool = True
    down_for: float = 0.25
    #: Flip one byte of a live replica's on-disk WAL mid-episode and drive
    #: the self-audit / quarantine / rebuild-from-quorum loop over the real
    #: sockets until the victim stabilizes.  The victim is always distinct
    #: from the crash_restart victim and the faults are sequenced, so at
    #: most one replica is faulty at any instant (f = 1 budget).
    corruption: bool = True
    #: Wall-clock seconds between self-audit ticks while corruption chaos
    #: is active.
    audit_interval: float = 0.05
    #: Wall-clock budget for the corruption victim to stabilize.
    stabilize_timeout: float = 15.0
    #: Byte-level fault rates applied by every replica's proxy.
    proxy: ProxyProfile = field(
        default_factory=lambda: ProxyProfile(
            delay_rate=0.2,
            max_delay=0.005,
            drop_rate=0.04,
            truncate_rate=0.03,
            garbage_rate=0.05,
            reset_rate=0.03,
        )
    )
    retransmit_interval: float = 0.08
    op_timeout: float = 30.0
    fsync: str = "always"


@dataclass
class TcpEpisodeResult:
    """One TCP episode: verdicts plus transport-level effect counters."""

    variant: str
    verdicts: dict[str, OracleVerdict]
    operations: int
    reconnects: int
    proxy_stats: dict[str, dict[str, int]]
    #: Self-stabilization counters summed over the replicas.
    quarantines: int = 0
    repairs: int = 0
    corrupt_records: int = 0
    error: str = ""

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.verdicts.values())

    @property
    def violations(self) -> tuple[str, ...]:
        return tuple(
            name for name, v in sorted(self.verdicts.items()) if not v.ok
        )

    def to_summary(self) -> dict[str, Any]:
        return {
            "variant": self.variant,
            "ok": self.ok,
            "violations": list(self.violations),
            "operations": self.operations,
            "reconnects": self.reconnects,
            "quarantines": self.quarantines,
            "repairs": self.repairs,
            "corrupt_records": self.corrupt_records,
            "proxy": {
                node: dict(sorted(stats.items()))
                for node, stats in sorted(self.proxy_stats.items())
            },
            "error": self.error,
        }


class _WallRecorder:
    """Appends §4.1 events with wall-clock (event-loop) timestamps."""

    def __init__(self, obj: str = "x") -> None:
        self.history = History()
        self.obj = obj

    def _now(self) -> float:
        return asyncio.get_running_loop().time()

    def invocation(self, client: str, op: str, arg: Any = None) -> None:
        self.history.append(
            Invocation(client=client, obj=self.obj, op=op, arg=arg, time=self._now())
        )

    def response(self, client: str, value: Any = None) -> None:
        self.history.append(
            Response(client=client, obj=self.obj, value=value, time=self._now())
        )


class _TcpCluster:
    """Duck-typed stand-in for :class:`repro.sim.runner.Cluster`, exposing
    exactly what :func:`~repro.chaos.oracles.run_oracle_battery` reads."""

    def __init__(
        self, history: History, replicas: dict[str, BftBcReplica]
    ) -> None:
        self.history = history
        self.replicas = replicas


async def _client_workload(
    name: str,
    client: AsyncClient,
    recorder: _WallRecorder,
    rng: random.Random,
    config: TcpChaosConfig,
) -> int:
    """Run one client's mixed script, recording invocations/responses."""
    operations = 0
    for seq in range(config.ops_per_client):
        if seq == 0 or rng.random() < config.write_fraction:
            value = (name, seq, "tcp")
            recorder.invocation(name, "write", value)
            await client.write(value)
            recorder.response(name, None)
        else:
            recorder.invocation(name, "read", None)
            value = await client.read()
            recorder.response(name, value)
        operations += 1
    return operations


async def _crash_restart(
    servers: dict[str, ReplicaServer],
    victim: str,
    system: SystemConfig,
    data_dir: Path,
    config: TcpChaosConfig,
    replica_cls: type[BftBcReplica],
) -> None:
    """Kill ``victim``'s server process-style, then recover it in place."""
    await asyncio.sleep(0.15)
    server = servers[victim]
    host, port = server.host, server.port
    await server.stop()
    server.replica.store.close()
    await asyncio.sleep(config.down_for)
    reborn = ReplicaServer.durable(
        victim,
        system,
        data_dir / victim.replace(":", "_"),
        host=host,
        port=port,
        replica_cls=replica_cls,
        fsync=config.fsync,
    )
    await reborn.start()
    servers[victim] = reborn


def _flip_wal_byte(replica: BftBcReplica, rng: random.Random) -> bool:
    """XOR one byte of the replica's on-disk WAL; False when there is no
    WAL byte to damage yet."""
    path = getattr(replica.store, "wal_path", None)
    if path is None or not path.exists():
        return False
    size = path.stat().st_size
    if size == 0:
        return False
    offset = rng.randrange(size)
    with open(path, "r+b") as fh:
        fh.seek(offset)
        original = fh.read(1)
        fh.seek(offset)
        fh.write(bytes([original[0] ^ 0x80]))
    return True


async def _corruption_chaos(
    servers: dict[str, ReplicaServer],
    victim: str,
    addrs: dict[str, tuple[str, int]],
    config: TcpChaosConfig,
    rng: random.Random,
    injected: list[dict[str, Any]],
    crash_task: Optional[asyncio.Task],
) -> None:
    """Inject WAL bit rot at ``victim`` and run the self-stabilization loop.

    Waits for the crash_restart fault (if any) to finish first so the two
    faults are sequenced within the f = 1 budget, flips a WAL byte once
    the victim has journalled something, then ticks every live replica's
    ``self_audit`` — pushing the victim's repair pulls over TCP — until
    the victim is clean again or the stabilize budget runs out (which the
    stabilization oracle then reports).
    """
    if crash_task is not None:
        try:
            await asyncio.shield(crash_task)
        except Exception:  # noqa: BLE001 — the episode body re-raises it
            pass
    loop = asyncio.get_running_loop()
    deadline = loop.time() + config.stabilize_timeout
    while loop.time() < deadline:
        if _flip_wal_byte(servers[victim].replica, rng):
            injected.append({"op": "wal_bitflip", "time": 0.0, "node": victim})
            break
        await asyncio.sleep(config.audit_interval)
    else:
        return
    while loop.time() < deadline:
        await asyncio.sleep(config.audit_interval)
        stable = True
        for rid, server in servers.items():
            if server._server is None:  # stopped (crash window)
                continue
            replica = server.replica
            if not replica.quarantined:
                if not replica.self_audit():
                    stable = False
            if replica.quarantined:
                stable = False
                sends = (
                    replica.repair_retransmit()
                    if replica.repair.active
                    else replica.begin_repair()
                )
                await server.repair_pull(sends, addrs)
        if stable:
            return


async def _run_episode(
    config: TcpChaosConfig, variant: str, data_dir: Path
) -> TcpEpisodeResult:
    rng = random.Random(f"chaos-tcp/{config.seed}/{variant}")
    system = make_system(
        config.f,
        seed=b"tcp-chaos-%d" % config.seed,
        strong=(variant == "strong"),
    )
    replica_cls = _REPLICA_CLS[variant]
    client_cls = _CLIENT_CLS[variant]

    servers: dict[str, ReplicaServer] = {}
    proxies: dict[str, ChaosProxy] = {}
    addrs: dict[str, tuple[str, int]] = {}
    clients: list[AsyncClient] = []
    recorder = _WallRecorder()
    error_kind: Optional[str] = None
    error = ""
    operations = 0
    chaos_task: Optional[asyncio.Task] = None
    corruption_task: Optional[asyncio.Task] = None
    try:
        for index, rid in enumerate(system.quorums.replica_ids):
            server = ReplicaServer.durable(
                rid,
                system,
                data_dir / rid.replace(":", "_"),
                replica_cls=replica_cls,
                fsync=config.fsync,
            )
            host, port = await server.start()
            proxy = ChaosProxy(
                host,
                port,
                profile=config.proxy,
                seed=config.seed * 1000 + index,
            )
            addrs[rid] = await proxy.start()
            servers[rid] = server
            proxies[rid] = proxy

        names = [f"client:t{i}" for i in range(config.clients)]
        for name in names:
            client = AsyncClient(
                client_cls(name, system),
                addrs,
                retransmit_interval=config.retransmit_interval,
                op_timeout=config.op_timeout,
            )
            await client.connect()
            clients.append(client)

        crash_victim: Optional[str] = None
        if config.crash_restart:
            crash_victim = rng.choice(list(servers))
            chaos_task = asyncio.create_task(
                _crash_restart(
                    servers, crash_victim, system, data_dir, config, replica_cls
                )
            )

        injected: list[dict[str, Any]] = []
        if config.corruption:
            candidates = [rid for rid in servers if rid != crash_victim]
            corruption_task = asyncio.create_task(
                _corruption_chaos(
                    servers,
                    rng.choice(candidates),
                    addrs,
                    config,
                    rng,
                    injected,
                    chaos_task,
                )
            )

        try:
            counts = await asyncio.gather(
                *(
                    _client_workload(
                        name,
                        client,
                        recorder,
                        random.Random(f"chaos-tcp/{config.seed}/{variant}/{name}"),
                        config,
                    )
                    for name, client in zip(names, clients)
                )
            )
            operations = sum(counts)
        except OperationFailedError as exc:
            error_kind, error = "liveness", str(exc)
        except Exception as exc:  # the no-exception oracle's evidence
            error_kind, error = "exception", f"{type(exc).__name__}: {exc}"

        if chaos_task is not None:
            await chaos_task
            chaos_task = None
        if corruption_task is not None:
            await corruption_task
            corruption_task = None

        plan = EpisodePlan(
            episode=0,
            seed=config.seed,
            variant=variant,
            f=config.f,
            store="filelog",
            faults=list(injected),
            clients=config.clients,
            ops_per_client=config.ops_per_client,
        )
        battery_cluster = _TcpCluster(
            recorder.history,
            {rid: server.replica for rid, server in servers.items()},
        )
        verdicts = run_oracle_battery(
            battery_cluster, plan, error_kind=error_kind, error=error
        )
        return TcpEpisodeResult(
            variant=variant,
            verdicts=verdicts,
            operations=operations,
            reconnects=sum(client.reconnects for client in clients),
            proxy_stats={
                rid: proxy.stats.as_dict() for rid, proxy in proxies.items()
            },
            quarantines=sum(
                s.replica.stats.quarantines for s in servers.values()
            ),
            repairs=sum(s.replica.stats.repairs for s in servers.values()),
            corrupt_records=sum(
                s.replica.store.stats.corrupt_records for s in servers.values()
            ),
            error=error,
        )
    finally:
        for task in (chaos_task, corruption_task):
            if task is not None:
                task.cancel()
                try:
                    await task
                except (asyncio.CancelledError, Exception):
                    pass
        for client in clients:
            await client.close()
        for proxy in proxies.values():
            await proxy.stop()
        for server in servers.values():
            await server.stop()
            server.replica.store.close()


def run_tcp_episode(
    config: TcpChaosConfig,
    variant: str,
    data_dir: Optional[Path] = None,
) -> TcpEpisodeResult:
    """Run one TCP chaos episode for ``variant`` and judge it."""
    if data_dir is not None:
        return asyncio.run(_run_episode(config, variant, Path(data_dir)))
    with tempfile.TemporaryDirectory(prefix="repro-chaos-tcp-") as tmp:
        return asyncio.run(_run_episode(config, variant, Path(tmp)))


def run_tcp_campaign(
    config: Optional[TcpChaosConfig] = None,
    data_dir: Optional[Path] = None,
) -> dict[str, Any]:
    """One episode per configured variant; returns a summary dict.

    The summary's shape matches what :mod:`tools.chaos_ci` records: a
    per-variant verdict map plus aggregate transport-effect counters.
    """
    config = config or TcpChaosConfig()
    episodes: list[TcpEpisodeResult] = []
    for variant in config.variants:
        base = None if data_dir is None else Path(data_dir) / variant
        if base is not None:
            base.mkdir(parents=True, exist_ok=True)
        episodes.append(run_tcp_episode(config, variant, base))
    return {
        "format": "repro-chaos-tcp/1",
        "seed": config.seed,
        "ok": all(ep.ok for ep in episodes),
        "episodes": [ep.to_summary() for ep in episodes],
    }
