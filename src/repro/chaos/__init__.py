"""repro.chaos — seed-deterministic fault campaigns with invariant oracles.

The chaos engine closes the loop from "random adversary" to "minimal
checked-in repro":

1. :func:`~repro.chaos.plan.generate_plan` derives declarative episode
   plans (faults, link profiles with reordering, Byzantine replica and
   client substitutions, multi-client workloads) from one integer seed;
2. :func:`~repro.chaos.engine.run_episode` executes a plan under the
   simulator and judges it with the oracle battery
   (:mod:`repro.chaos.oracles`);
3. on violation, :func:`~repro.chaos.minimize.minimize_episode`
   delta-debugs the plan to a minimal failing schedule and
   :mod:`repro.chaos.artifact` pins it as a replayable JSON file;
4. :mod:`repro.chaos.tcp` runs a smaller campaign against the real
   asyncio transport through a byte-mangling
   :class:`~repro.net.chaos_proxy.ChaosProxy`.

``python -m repro chaos run --seed N --episodes K`` drives campaigns from
the command line; ``chaos replay art.json`` re-runs an artifact.
"""

from repro.chaos.artifact import (
    ARTIFACT_FORMAT,
    ReplayOutcome,
    load_artifact,
    replay_artifact,
    save_artifact,
)
from repro.chaos.engine import (
    CampaignResult,
    EpisodeResult,
    run_campaign,
    run_episode,
)
from repro.chaos.minimize import MinimizationResult, minimize_episode
from repro.chaos.oracles import (
    ORACLES,
    SHARD_ORACLES,
    OracleVerdict,
    check_epoch_agreement,
    run_oracle_battery,
)
from repro.chaos.plan import (
    CampaignConfig,
    EpisodePlan,
    build_schedule,
    generate_plan,
)
from repro.chaos.shard import (
    ShardEpisodePlan,
    ShardEpisodeResult,
    replay_shard_artifact,
    run_shard_episode,
    save_shard_artifact,
)

__all__ = [
    "ARTIFACT_FORMAT",
    "ORACLES",
    "SHARD_ORACLES",
    "CampaignConfig",
    "CampaignResult",
    "EpisodePlan",
    "EpisodeResult",
    "MinimizationResult",
    "OracleVerdict",
    "ReplayOutcome",
    "ShardEpisodePlan",
    "ShardEpisodeResult",
    "build_schedule",
    "check_epoch_agreement",
    "generate_plan",
    "load_artifact",
    "minimize_episode",
    "replay_artifact",
    "replay_shard_artifact",
    "run_campaign",
    "run_episode",
    "run_oracle_battery",
    "run_shard_episode",
    "save_artifact",
    "save_shard_artifact",
]
