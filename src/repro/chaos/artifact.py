"""Replayable chaos artifacts: a minimal plan plus its expected verdicts.

An artifact is a small, human-readable JSON file — the closed end of the
chaos loop: campaign finds a violation, minimizer shrinks it, the artifact
pins it.  ``python -m repro chaos replay art.json`` re-executes the plan
(episodes are deterministic, so the re-run is exact) and compares the fresh
oracle verdicts against the recorded ones.  The committed corpus under
``traces/chaos/`` uses the same format for the opposite purpose: deep
*non-violating* episodes whose green replay is a regression floor for the
protocol's resilience.

Artifacts deliberately contain no wall-clock timestamps and no filesystem
paths, so a file is byte-stable across machines and replays.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional

from repro.chaos.plan import EpisodePlan
from repro.errors import SimulationError

__all__ = [
    "ARTIFACT_FORMAT",
    "ReplayOutcome",
    "save_artifact",
    "load_artifact",
    "replay_artifact",
]

#: Format tag of artifact files.
ARTIFACT_FORMAT = "repro-chaos-artifact/1"


@dataclass
class ReplayOutcome:
    """A replayed artifact: the fresh result vs the recorded expectation."""

    plan: EpisodePlan
    result: Any  # repro.chaos.engine.EpisodeResult
    expected: dict[str, bool]
    note: str = ""

    @property
    def actual(self) -> dict[str, bool]:
        return {
            name: verdict.ok for name, verdict in self.result.verdicts.items()
        }

    @property
    def matches(self) -> bool:
        """True when every recorded verdict is reproduced exactly."""
        actual = self.actual
        return all(
            actual.get(name) == expected
            for name, expected in self.expected.items()
        )


def save_artifact(
    path: str | Path,
    plan: EpisodePlan,
    verdicts: dict[str, bool],
    *,
    note: str = "",
) -> dict[str, Any]:
    """Write a replayable artifact; returns the payload that was written."""
    payload = {
        "format": ARTIFACT_FORMAT,
        "note": note,
        "plan": plan.to_json(),
        "verdicts": dict(sorted(verdicts.items())),
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return payload


def load_artifact(path: str | Path) -> tuple[EpisodePlan, dict[str, bool], str]:
    """Read ``(plan, expected_verdicts, note)`` from an artifact file."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if data.get("format") != ARTIFACT_FORMAT:
        raise SimulationError(
            f"{path}: not a chaos artifact (format {data.get('format')!r})"
        )
    plan = EpisodePlan.from_json(data["plan"])
    verdicts = {str(k): bool(v) for k, v in data.get("verdicts", {}).items()}
    return plan, verdicts, str(data.get("note", ""))


def replay_artifact(path: str | Path, **runner_kwargs: Any) -> ReplayOutcome:
    """Re-execute an artifact's plan and compare verdicts.

    Determinism makes this an exact re-run: the same seed drives the same
    network draws, fault firings, and workload interleaving.
    """
    from repro.chaos.engine import run_episode

    plan, expected, note = load_artifact(path)
    result = run_episode(plan, **runner_kwargs)
    return ReplayOutcome(plan=plan, result=result, expected=expected, note=note)
