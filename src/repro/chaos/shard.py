"""Chaos episodes for sharded deployments with online reconfiguration.

A :class:`ShardEpisodePlan` is the sharded sibling of
:class:`~repro.chaos.plan.EpisodePlan`: a declarative, JSON-serialisable
description of one adversarial run over a multi-group cluster — shard
count, link profile, network faults, client workload, and (the point of
the exercise) timed **reconfigurations** that replace a member of a live
shard mid-traffic.  The joining replica bootstraps by state transfer, the
epoch installs under whatever operations are in flight, and the episode is
judged by the full oracle battery per object plus the
``epoch-agreement`` oracle (:data:`~repro.chaos.oracles.SHARD_ORACLES`).

Artifacts use a distinct format tag (``repro-chaos-shard/1``) so the
single-group replay path never mistakes one for an
:class:`~repro.chaos.plan.EpisodePlan`; the committed corpus under
``traces/chaos/`` mixes both kinds.
"""

from __future__ import annotations

import dataclasses
import json
import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

from repro.chaos.oracles import (
    SHARD_ORACLES,
    OracleVerdict,
    check_epoch_agreement,
)
from repro.chaos.plan import MAX_B, build_schedule
from repro.errors import OperationFailedError, SimulationError
from repro.net.simnet import LinkProfile
from repro.sim.shard_cluster import ShardCluster, ShardClusterOptions
from repro.spec.bft_linearizability import check_bft_linearizable
from repro.spec.invariants import check_lemma1

__all__ = [
    "SHARD_PLAN_FORMAT",
    "SHARD_ARTIFACT_FORMAT",
    "ShardEpisodePlan",
    "ShardEpisodeResult",
    "ShardReplayOutcome",
    "run_shard_episode",
    "save_shard_artifact",
    "load_shard_artifact",
    "replay_shard_artifact",
]

SHARD_PLAN_FORMAT = "repro-chaos-shard/1"
SHARD_ARTIFACT_FORMAT = "repro-chaos-shard-artifact/1"


@dataclass
class ShardEpisodePlan:
    """One declarative sharded chaos episode."""

    seed: int
    shards: int = 2
    f: int = 1
    variant: str = "base"
    #: :class:`~repro.net.simnet.LinkProfile` keyword arguments.
    profile: dict[str, float] = field(default_factory=dict)
    #: Timed member replacements, each
    #: ``{"time": t, "shard": s, "remove": id, "add": id, "crash_old": bool}``.
    reconfigurations: list[dict[str, Any]] = field(default_factory=list)
    #: Network fault specs in :func:`~repro.chaos.plan.build_schedule` shape.
    faults: list[dict[str, Any]] = field(default_factory=list)
    clients: int = 2
    ops_per_client: int = 12
    objects: int = 8
    write_fraction: float = 0.6
    handoff: float = 0.5
    max_time: float = 300.0
    #: Virtual time to keep running after the workload completes, so
    #: handoff windows close and stragglers retire.  Must exceed handoff.
    settle: float = 2.0

    def link_profile(self) -> LinkProfile:
        return LinkProfile(**self.profile)

    @property
    def max_b(self) -> int:
        return MAX_B[str(self.variant)]

    def to_json(self) -> dict[str, Any]:
        data = dataclasses.asdict(self)
        data["format"] = SHARD_PLAN_FORMAT
        return data

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "ShardEpisodePlan":
        payload = dict(data)
        fmt = payload.pop("format", SHARD_PLAN_FORMAT)
        if fmt != SHARD_PLAN_FORMAT:
            raise SimulationError(f"unsupported shard plan format {fmt!r}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise SimulationError(f"unknown shard plan fields {sorted(unknown)}")
        return cls(**payload)


@dataclass
class ShardEpisodeResult:
    """One executed shard episode with its oracle verdicts."""

    plan: ShardEpisodePlan
    verdicts: dict[str, OracleVerdict]
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.verdicts.values())

    @property
    def violated(self) -> tuple[str, ...]:
        return tuple(
            name for name in SHARD_ORACLES if not self.verdicts[name].ok
        )


def _scripts(plan: ShardEpisodePlan) -> dict[str, list[tuple[str, str, Any]]]:
    """The deterministic per-client workload derived from the plan seed."""
    scripts: dict[str, list[tuple[str, str, Any]]] = {}
    for index in range(plan.clients):
        rng = random.Random(f"shard-chaos/{plan.seed}/{index}")
        name = f"w{index}"
        steps: list[tuple[str, str, Any]] = []
        for op in range(plan.ops_per_client):
            obj = f"obj:{rng.randrange(plan.objects)}"
            if rng.random() < plan.write_fraction:
                steps.append((obj, "write", f"{name}-{op}"))
            else:
                steps.append((obj, "read", None))
        scripts[name] = steps
    return scripts


def run_shard_episode(plan: ShardEpisodePlan) -> ShardEpisodeResult:
    """Execute one shard episode and judge it against every oracle."""
    cluster = ShardCluster(
        ShardClusterOptions(
            shards=plan.shards,
            f=plan.f,
            variant=plan.variant,
            seed=plan.seed,
            profile=plan.link_profile(),
            handoff=plan.handoff,
        )
    )
    schedule = build_schedule(plan.faults)
    for spec in plan.reconfigurations:
        schedule.reconfigure(
            spec["time"],
            spec["shard"],
            remove=spec["remove"],
            add=spec["add"],
            crash_old=bool(spec.get("crash_old", False)),
        )
    cluster.install_faults(schedule)

    error_kind: Optional[str] = None
    error = ""
    try:
        cluster.run_scripts(_scripts(plan), max_time=plan.max_time)
        cluster.settle(max(plan.settle, plan.handoff * 2))
    except OperationFailedError as exc:
        error_kind, error = "liveness", str(exc)
    except Exception as exc:  # noqa: BLE001 - the oracle wants *any* raise
        error_kind, error = "exception", f"{type(exc).__name__}: {exc}"

    verdicts = _run_shard_oracle_battery(
        cluster, plan, error_kind=error_kind, error=error
    )
    stats = {
        "ops": cluster.total_ops(),
        "epochs": {s: cluster.directory.epoch(s) for s in cluster.shard_ids},
        "epoch_changes": sum(
            n.epoch_changes for n in cluster.routers.values()
        ),
        "refreshes": sum(
            n.router.refreshes for n in cluster.routers.values()
        ),
        "stale_replies": sum(
            n.router.stale_replies for n in cluster.routers.values()
        ),
    }
    return ShardEpisodeResult(plan=plan, verdicts=verdicts, stats=stats)


def _run_shard_oracle_battery(
    cluster: ShardCluster,
    plan: ShardEpisodePlan,
    *,
    error_kind: Optional[str],
    error: str,
) -> dict[str, OracleVerdict]:
    """The seven single-group oracles applied per object, plus
    ``epoch-agreement``.

    Shard episodes schedule no Byzantine clients (the adversary here is
    the reconfiguration itself racing faults and traffic), so the
    ``lurking-bound`` oracle passes vacuously and ``bft-linearizable``
    runs with an empty bad-client set.
    """
    verdicts: dict[str, OracleVerdict] = {}
    verdicts["no-exception"] = OracleVerdict(
        "no-exception",
        error_kind != "exception",
        error if error_kind == "exception" else "",
    )
    verdicts["liveness"] = OracleVerdict(
        "liveness",
        error_kind != "liveness",
        error if error_kind == "liveness" else "",
    )

    bad_objs = []
    histories = cluster.merged_histories()
    for obj, history in sorted(histories.items()):
        result = check_bft_linearizable(history, max_b=plan.max_b, obj=obj)
        if not result.ok:
            bad_objs.append(f"{obj}: {result.violation}")
    verdicts["bft-linearizable"] = OracleVerdict(
        "bft-linearizable", not bad_objs, "; ".join(bad_objs)
    )
    verdicts["lurking-bound"] = OracleVerdict(
        "lurking-bound", True, "no Byzantine clients in shard episodes"
    )

    lemma_violations: list[str] = []
    fingerprint_bad: list[str] = []
    wal_bad: list[str] = []
    max_prepared = 2 if str(plan.variant) == "optimized" else 1
    for shard in cluster.shard_ids:
        members = [r for r in cluster.live_members(shard) if r.ready]
        objs = set()
        for member in members:
            objs |= member.inner.objects
        for obj in sorted(objs):
            states = [
                m.inner.object_state(obj)
                for m in members
                if obj in m.inner.objects
            ]
            if states:
                report = check_lemma1(
                    states, f=plan.f, max_prepared_per_client=max_prepared
                )
                lemma_violations.extend(
                    f"{shard}/{obj}: {v}" for v in report.violations
                )
            for state in states:
                twin = type(state)(
                    state.node_id, state.config, store=state.store
                )
                twin.recover()
                if twin.state_fingerprint() != state.state_fingerprint():
                    fingerprint_bad.append(f"{shard}/{obj}/{state.node_id}")
                if state.store.load() != state.store.load():
                    wal_bad.append(f"{shard}/{obj}/{state.node_id}")
    verdicts["lemma1"] = OracleVerdict(
        "lemma1", not lemma_violations, "; ".join(lemma_violations)
    )
    verdicts["recovery-fingerprint"] = OracleVerdict(
        "recovery-fingerprint",
        not fingerprint_bad,
        "" if not fingerprint_bad else (
            "recovered twin diverges at " + ", ".join(fingerprint_bad)
        ),
    )
    verdicts["wal-integrity"] = OracleVerdict(
        "wal-integrity",
        not wal_bad,
        "" if not wal_bad else ("non-idempotent load at " + ", ".join(wal_bad)),
    )
    # Shard plans schedule no state-corruption faults (the adversary here
    # is reconfiguration), so stabilization reduces to "nobody quarantined".
    quarantined = [
        f"{shard}/{obj}/{state.node_id}"
        for shard in cluster.shard_ids
        for member in cluster.live_members(shard)
        if member.ready
        for obj in sorted(member.inner.objects)
        for state in (member.inner.object_state(obj),)
        if getattr(state, "quarantined", False)
    ]
    verdicts["stabilization"] = OracleVerdict(
        "stabilization",
        not quarantined,
        "; ".join(quarantined) if quarantined else (
            "no corruption faults in shard episodes"
        ),
    )
    verdicts["epoch-agreement"] = check_epoch_agreement(cluster)
    return verdicts


# -- artifacts --------------------------------------------------------------


@dataclass
class ShardReplayOutcome:
    """A replayed shard artifact: fresh verdicts vs the recorded ones."""

    plan: ShardEpisodePlan
    result: ShardEpisodeResult
    expected: dict[str, bool]
    note: str = ""

    @property
    def actual(self) -> dict[str, bool]:
        return {
            name: verdict.ok for name, verdict in self.result.verdicts.items()
        }

    @property
    def matches(self) -> bool:
        actual = self.actual
        return all(
            actual.get(name) == expected
            for name, expected in self.expected.items()
        )


def save_shard_artifact(
    path: str | Path,
    plan: ShardEpisodePlan,
    verdicts: dict[str, bool],
    *,
    note: str = "",
) -> dict[str, Any]:
    """Write a replayable shard artifact; returns the payload written."""
    payload = {
        "format": SHARD_ARTIFACT_FORMAT,
        "note": note,
        "plan": plan.to_json(),
        "verdicts": dict(sorted(verdicts.items())),
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return payload


def load_shard_artifact(
    path: str | Path,
) -> tuple[ShardEpisodePlan, dict[str, bool], str]:
    """Read ``(plan, expected_verdicts, note)`` from a shard artifact."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if data.get("format") != SHARD_ARTIFACT_FORMAT:
        raise SimulationError(
            f"{path}: not a shard chaos artifact "
            f"(format {data.get('format')!r})"
        )
    plan = ShardEpisodePlan.from_json(data["plan"])
    verdicts = {str(k): bool(v) for k, v in data.get("verdicts", {}).items()}
    return plan, verdicts, str(data.get("note", ""))


def replay_shard_artifact(path: str | Path) -> ShardReplayOutcome:
    """Re-execute a shard artifact's plan and compare verdicts exactly."""
    plan, expected, note = load_shard_artifact(path)
    result = run_shard_episode(plan)
    return ShardReplayOutcome(
        plan=plan, result=result, expected=expected, note=note
    )
