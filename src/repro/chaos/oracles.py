"""The invariant oracle battery every chaos episode must pass.

Each oracle checks one property the paper (or the implementation) promises
to hold under *any* schedule the §2 model admits:

* ``no-exception`` — nothing in the stack raised; an unhandled exception
  anywhere is a bug regardless of protocol correctness.
* ``liveness`` — the workload terminated within the episode's virtual-time
  budget.  Generated plans stay inside the fault assumptions (≤ f replicas
  Byzantine-or-down at once, partitions heal, ``drop_rate < 1``), so the
  fair-loss argument of §2 applies and non-termination is a violation.
* ``bft-linearizable`` — Definition 1 against the recorded history, with
  the variant's lurking bound and the episode's bad clients.
* ``lurking-bound`` — Theorem 1/2 explicitly: no bad client's post-stop
  visible writes exceed ``max_b`` (1 base/strong, 2 optimized).
* ``lemma1`` — the correct replicas' signing logs satisfy Lemma 1(1–3)
  (Lemma 1' part 2 for the optimized variant).
* ``recovery-fingerprint`` — for every correct replica, a twin replica
  recovered from the same store reproduces the live replica's state
  fingerprint: recovery is total and the WAL captured every mutation.
* ``wal-integrity`` — every durable store's ``load()`` is idempotent
  (two loads return identical snapshot + records).
* ``stabilization`` — the self-stabilization loop converged: no correct
  replica is still quarantined or running on a suspect store, every
  correct replica passes a final self-audit, and when the plan injected
  state corruption the periodic audits demonstrably ran.  Corruption may
  be *silently healed* (compaction rewrote the damaged file before any
  audit saw it, or a later write overwrote the perturbed field) — that is
  fine precisely because the final audit proves the survivor state is the
  replay of its own durable log.

The battery returns a verdict per oracle; the engine folds these into the
campaign summary and the minimizer uses the set of violated oracle names
as its reduction target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.chaos.plan import EpisodePlan
from repro.spec.bft_linearizability import (
    check_bft_linearizable,
    count_lurking_writes,
)
from repro.spec.invariants import check_lemma1

if TYPE_CHECKING:
    from repro.sim.runner import Cluster
    from repro.sim.shard_cluster import ShardCluster

__all__ = [
    "OracleVerdict",
    "ORACLES",
    "SHARD_ORACLES",
    "CORRUPTION_OPS",
    "run_oracle_battery",
    "check_epoch_agreement",
]

#: Fault ops that damage replica state (vs merely the network); the
#: stabilization oracle keys its expectations off their presence.
CORRUPTION_OPS = frozenset({"wal_bitflip", "snapshot_truncate", "state_perturb"})


@dataclass(frozen=True)
class OracleVerdict:
    """One oracle's judgement of one episode."""

    oracle: str
    ok: bool
    detail: str = ""


#: Battery order (also the order verdicts are reported in).
ORACLES = (
    "no-exception",
    "liveness",
    "bft-linearizable",
    "lurking-bound",
    "lemma1",
    "recovery-fingerprint",
    "wal-integrity",
    "stabilization",
)

#: Battery order for sharded episodes: the seven above, judged per object
#: across every shard, plus the reconfiguration-specific oracle.
SHARD_ORACLES = ORACLES + ("epoch-agreement",)


def run_oracle_battery(
    cluster: "Cluster",
    plan: EpisodePlan,
    *,
    bad_clients: frozenset[str] = frozenset(),
    error_kind: Optional[str] = None,
    error: str = "",
) -> dict[str, OracleVerdict]:
    """Judge one finished (or aborted) episode against every oracle.

    ``error_kind`` is ``"liveness"`` when the run exhausted its budget,
    ``"exception"`` when something raised, else None; ``error`` carries
    the message for the verdict detail.
    """
    byzantine = frozenset(
        f"replica:{index}" for index in plan.byzantine_replicas
    )
    verdicts: dict[str, OracleVerdict] = {}

    verdicts["no-exception"] = OracleVerdict(
        "no-exception",
        error_kind != "exception",
        error if error_kind == "exception" else "",
    )
    verdicts["liveness"] = OracleVerdict(
        "liveness",
        error_kind != "liveness",
        error if error_kind == "liveness" else "",
    )

    result = check_bft_linearizable(
        cluster.history, max_b=plan.max_b, bad_clients=set(bad_clients)
    )
    verdicts["bft-linearizable"] = OracleVerdict(
        "bft-linearizable", result.ok, result.violation or ""
    )

    worst = 0
    for bad in sorted(bad_clients):
        worst = max(worst, count_lurking_writes(cluster.history, bad))
    verdicts["lurking-bound"] = OracleVerdict(
        "lurking-bound",
        worst <= plan.max_b,
        "" if worst <= plan.max_b else (
            f"{worst} lurking writes exceed the variant bound {plan.max_b}"
        ),
    )

    report = check_lemma1(
        cluster.replicas.values(),
        f=plan.f,
        byzantine_replicas=byzantine,
        max_prepared_per_client=(
            2 if str(plan.variant) in ("optimized", "fastpath") else 1
        ),
    )
    verdicts["lemma1"] = OracleVerdict(
        "lemma1", report.ok, "; ".join(report.violations)
    )

    verdicts["recovery-fingerprint"] = _check_recovery(cluster, byzantine)
    verdicts["wal-integrity"] = _check_wal(cluster, plan, byzantine)
    verdicts["stabilization"] = _check_stabilization(cluster, plan, byzantine)
    return verdicts


def _check_recovery(cluster: "Cluster", byzantine: frozenset[str]) -> OracleVerdict:
    """A twin recovered from each correct replica's store must match it."""
    mismatched = []
    for node_id, replica in sorted(cluster.replicas.items()):
        if node_id in byzantine:
            continue
        twin = type(replica)(node_id, replica.config, store=replica.store)
        twin.recover()
        if twin.state_fingerprint() != replica.state_fingerprint():
            mismatched.append(node_id)
    return OracleVerdict(
        "recovery-fingerprint",
        not mismatched,
        "" if not mismatched else (
            "recovered twin diverges from live state at " + ", ".join(mismatched)
        ),
    )


def _check_wal(
    cluster: "Cluster", plan: EpisodePlan, byzantine: frozenset[str]
) -> OracleVerdict:
    """Durable stores must load idempotently (volatile episodes pass)."""
    if plan.store != "filelog":
        return OracleVerdict("wal-integrity", True, "not a durable episode")
    unstable = []
    for node_id, replica in sorted(cluster.replicas.items()):
        if node_id in byzantine:
            continue
        first = replica.store.load()
        second = replica.store.load()
        if first != second:
            unstable.append(node_id)
    return OracleVerdict(
        "wal-integrity",
        not unstable,
        "" if not unstable else (
            "non-idempotent WAL load at " + ", ".join(unstable)
        ),
    )


def _check_stabilization(
    cluster: "Cluster", plan: EpisodePlan, byzantine: frozenset[str]
) -> OracleVerdict:
    """Every correct replica has stabilized after the injected corruption.

    A replica is *stabilized* when it is not quarantined, its store is not
    suspect, and replaying its durable log into a twin reproduces its live
    state (``self_audit``).  The oracle does not insist that a specific
    detection counter fired for every injected fault: damage can be
    legitimately absorbed before any audit sees it (compaction rewrote the
    bit-flipped WAL; a later write overwrote the perturbed field), and the
    final audit is exactly the proof that whatever survived is the honest
    replay of the durable log.  What it *does* insist on, whenever the plan
    injected corruption and scheduled a non-zero audit cadence, is that
    the periodic audits actually ran — a campaign that never audits would
    otherwise vacuously pass.
    """
    corrupted = {
        spec["node"] for spec in plan.faults if spec.get("op") in CORRUPTION_OPS
    }
    audits_expected = bool(corrupted) and plan.audit_interval > 0
    nodes = getattr(cluster, "replica_nodes", {})
    problems: list[str] = []
    for node_id, replica in sorted(cluster.replicas.items()):
        if node_id in byzantine:
            continue
        node = nodes.get(node_id)
        if node is not None and getattr(node, "down", False):
            continue
        if replica.quarantined:
            reasons = dict(replica.stats.quarantine_reasons)
            problems.append(f"{node_id} still quarantined ({reasons})")
            continue
        if getattr(replica.store, "suspect", False):
            problems.append(f"{node_id} store still suspect")
        if audits_expected and replica.stats.self_audits == 0:
            # Checked before the final audit below bumps the counter.
            problems.append(
                f"{node_id} never self-audited despite injected corruption"
            )
        if not replica.self_audit():
            problems.append(f"{node_id} fails the final self-audit")
    return OracleVerdict(
        "stabilization",
        not problems,
        "; ".join(problems) if problems else (
            "" if not corrupted else (
                "corruption injected at " + ", ".join(sorted(corrupted))
            )
        ),
    )


def check_epoch_agreement(cluster: "ShardCluster") -> OracleVerdict:
    """All live members of every shard settled on one installed epoch.

    After a reconfiguration quiesces, safety requires agreement on *which*
    configuration governs each shard: every reconfiguration ran to
    completion, every live current member serves exactly the installed
    epoch (nobody is stuck on a superseded one or left half-bootstrapped),
    every replaced-but-running member retired, and no correct member was
    ever asked to endorse two different successors of one epoch (the
    equivocation guard never fired on a correct-only schedule).
    """
    problems: list[str] = []
    for node in cluster.reconfigurations:
        if not node.done:
            problems.append(
                f"reconfiguration {node.node_id} stuck in phase "
                f"{node.reconfigurator.phase!r}"
            )
    for shard in cluster.shard_ids:
        installed = cluster.directory.epoch(shard)
        members = cluster.directory.config(shard).members
        for member in members:
            node = cluster.replica_nodes.get(member)
            if node is None or node.crashed:
                continue
            replica = node.replica
            if not replica.ready:
                problems.append(f"{member} never finished bootstrap")
            elif replica.retired:
                problems.append(f"{member} retired despite being a member")
            elif replica.epoch != installed:
                problems.append(
                    f"{member} serves epoch {replica.epoch}, "
                    f"installed is {installed}"
                )
            if replica.directory.epoch(shard) != installed:
                problems.append(
                    f"{member} directory tip {replica.directory.epoch(shard)} "
                    f"!= installed {installed}"
                )
            if replica.sign_conflicts:
                problems.append(
                    f"{member} saw {replica.sign_conflicts} conflicting "
                    f"sign requests"
                )
        for node_id, node in cluster.replica_nodes.items():
            replica = node.replica
            if (
                replica.shard == shard
                and node_id not in members
                and not node.crashed
                and not replica.retired
            ):
                problems.append(f"replaced member {node_id} never retired")
    return OracleVerdict(
        "epoch-agreement", not problems, "; ".join(problems)
    )
