"""Seed-derived episode plans: the declarative half of the chaos engine.

An :class:`EpisodePlan` is a fully declarative, JSON-serialisable
description of one adversarial run — protocol variant, link profile
(including the :attr:`~repro.net.simnet.LinkProfile.reorder_rate` knob),
store kind, fault schedule, Byzantine replica substitutions, an optional
Byzantine client attack, and the correct-client workload.  Everything the
engine does is a pure function of the plan, which is what makes campaigns
reproducible from a single integer seed, lets the minimizer shrink a plan
by deleting fault specs, and lets a violation be checked in as a replayable
JSON artifact.

:func:`generate_plan` derives episode ``i`` of a campaign from
``random.Random(f"chaos/{seed}/{i}")``, so any episode can be regenerated
without replaying the campaign prefix.  Generated plans always stay within
the fault assumptions of §2: at most ``f`` replicas are Byzantine or down
at any instant, every partition heals, and ``drop_rate < 1`` preserves
fair-loss — so a correct protocol must pass every oracle on every
generated episode, and a violation is always a finding.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import SimulationError
from repro.net.simnet import LinkProfile
from repro.sim.faults import FaultSchedule

__all__ = [
    "PLAN_FORMAT",
    "REPLICA_BEHAVIOURS",
    "CLIENT_ATTACKS",
    "EpisodePlan",
    "CampaignConfig",
    "generate_plan",
    "build_schedule",
]

#: Format tag written into serialised plans and artifacts.
PLAN_FORMAT = "repro-chaos/1"

#: Byzantine replica substitutions the generator may draw, by catalogue
#: name (all constructors are ``(node_id, config)``, usable directly as
#: :attr:`~repro.sim.runner.ClusterOptions.replica_overrides` factories).
REPLICA_BEHAVIOURS = (
    "crashed",
    "stale",
    "promiscuous",
    "corrupting",
    "forging",
    "delaying",
    "two-faced",
)

#: Byzantine client attacks the generator may draw, per variant.  Each
#: attack is only scheduled on the variant whose §3.2/§6.3 analysis it
#: exercises, so its done-condition is known to terminate there.
CLIENT_ATTACKS: dict[str, tuple[str, ...]] = {
    "base": ("equivocation", "ts-exhaustion", "partial-write", "lurking", "chain"),
    "optimized": ("lurking-optimized",),
    "fastpath": ("lurking-fast",),
    "strong": ("chain",),
}

#: Bound that Definition 1 imposes on one bad client's lurking writes,
#: per variant (Theorem 1 / Theorem 2).  Fast acks share the optlist, so
#: the fastpath variant inherits the optimized protocol's bound of 2.
MAX_B = {"base": 1, "optimized": 2, "strong": 1, "fastpath": 2}


@dataclass
class EpisodePlan:
    """One declarative chaos episode (JSON-serialisable, minimizer-shrinkable)."""

    episode: int
    seed: int
    variant: str = "base"
    f: int = 1
    #: :class:`~repro.net.simnet.LinkProfile` keyword arguments.
    profile: dict[str, float] = field(default_factory=dict)
    #: "memory" (volatile) or "filelog" (durable WAL; required for
    #: crash_restart faults, which rebuild replicas from their stores).
    store: str = "memory"
    #: Declarative fault specs, each ``{"op": ..., "time": ..., ...}``;
    #: see :func:`build_schedule` for the accepted shapes.
    faults: list[dict[str, Any]] = field(default_factory=list)
    #: Replica index (as a string, JSON keys are strings) -> behaviour
    #: name from :data:`REPLICA_BEHAVIOURS`.
    byzantine_replicas: dict[str, str] = field(default_factory=dict)
    #: Byzantine client attack name from :data:`CLIENT_ATTACKS`, or None.
    attack: Optional[str] = None
    clients: int = 2
    ops_per_client: int = 4
    write_fraction: float = 0.6
    think_time: float = 0.0
    stagger: float = 0.05
    max_time: float = 120.0
    #: Virtual seconds between periodic replica self-audits (the detection
    #: half of the self-stabilization loop); 0 disables auditing.  Old
    #: artifacts without this key default to the standard cadence.
    audit_interval: float = 0.25

    def link_profile(self) -> LinkProfile:
        return LinkProfile(**self.profile)

    @property
    def max_b(self) -> int:
        """The lurking-write bound Definition 1 grants this variant."""
        return MAX_B[str(self.variant)]

    def replace(self, **changes: Any) -> "EpisodePlan":
        """A copy with ``changes`` applied (lists/dicts deep enough to share
        nothing mutable with the original)."""
        plan = dataclasses.replace(self)
        plan.profile = dict(self.profile)
        plan.faults = [dict(spec) for spec in self.faults]
        plan.byzantine_replicas = dict(self.byzantine_replicas)
        for key, value in changes.items():
            setattr(plan, key, value)
        return plan

    def to_json(self) -> dict[str, Any]:
        data = dataclasses.asdict(self)
        data["format"] = PLAN_FORMAT
        return data

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "EpisodePlan":
        payload = dict(data)
        fmt = payload.pop("format", PLAN_FORMAT)
        if fmt != PLAN_FORMAT:
            raise SimulationError(f"unsupported plan format {fmt!r}")
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise SimulationError(f"unknown plan fields {sorted(unknown)}")
        return cls(**payload)


@dataclass
class CampaignConfig:
    """Knobs of one campaign: everything else derives from ``seed``."""

    seed: int = 0
    episodes: int = 25
    f: int = 1
    variants: tuple[str, ...] = ("base", "optimized", "strong", "fastpath")
    ops_per_client: int = 4
    max_clients: int = 3
    #: Store kinds the generator may draw ("memory", "filelog").
    stores: tuple[str, ...] = ("memory", "filelog")
    #: Allow Byzantine replica substitutions / client attacks.
    byzantine: bool = True
    attacks: bool = True
    #: Allow state-corruption faults (WAL bit rot, snapshot truncation,
    #: in-memory perturbation); victims count against the same budget f.
    corruption: bool = True
    max_time: float = 120.0


def _node(index: int) -> str:
    return f"replica:{index}"


def generate_plan(config: CampaignConfig, episode: int) -> EpisodePlan:
    """Derive episode ``episode`` of the campaign, independent of the rest."""
    rng = random.Random(f"chaos/{config.seed}/{episode}")
    variant = config.variants[episode % len(config.variants)]
    f = config.f
    n = 3 * f + 1
    store = rng.choice(config.stores)

    profile = {
        "min_delay": 0.001,
        "max_delay": rng.choice([0.01, 0.02, 0.05]),
        "drop_rate": rng.choice([0.0, 0.02, 0.05, 0.10]),
        "duplicate_rate": rng.choice([0.0, 0.02, 0.05]),
        "corrupt_rate": rng.choice([0.0, 0.0, 0.01]),
        "reorder_rate": rng.choice([0.0, 0.10, 0.25]),
    }

    # Byzantine replicas first: they count against the fault budget f for
    # the whole episode (a substituted replica never behaves correctly).
    byzantine_replicas: dict[str, str] = {}
    if config.byzantine and rng.random() < 0.4:
        behaviours = REPLICA_BEHAVIOURS + (
            ("silent-optimized",)
            if variant in ("optimized", "fastpath")
            else ()
        )
        for index in sorted(rng.sample(range(n), rng.randint(1, f))):
            byzantine_replicas[str(index)] = rng.choice(behaviours)
    crash_budget = f - len(byzantine_replicas)

    # State corruption: a replica whose store or memory has been damaged is
    # faulty (it may answer from bad state) until the self-stabilization
    # loop quarantines and repairs it, so a corruption victim spends one
    # unit of the same budget f as a crashed or Byzantine replica — §2's
    # assumption stays "at most f replicas faulty at any instant".  WAL /
    # snapshot damage needs a durable store; memory perturbation works on
    # either store kind (the durable log is the audit's ground truth).
    faults: list[dict[str, Any]] = []
    healthy = [i for i in range(n) if str(i) not in byzantine_replicas]
    if config.corruption and crash_budget > 0 and rng.random() < 0.5:
        victim = rng.choice(healthy)
        ops = ["state_perturb"]
        if store == "filelog":
            ops += ["wal_bitflip", "snapshot_truncate"]
        op = rng.choice(ops)
        spec: dict[str, Any] = {
            "op": op,
            "time": round(rng.uniform(0.3, 1.2), 3),
            "node": _node(victim),
        }
        if op == "wal_bitflip":
            spec["position"] = round(rng.uniform(0.05, 0.95), 3)
            spec["flip"] = rng.choice([0x01, 0x10, 0x80, 0xFF])
        elif op == "snapshot_truncate":
            spec["keep"] = round(rng.uniform(0.0, 0.9), 3)
        else:
            spec["target"] = rng.choice(["data", "write_ts", "plist"])
            spec["seed"] = rng.randrange(2**16)
        faults.append(spec)
        # The victim is spoken for: it must not also be crash-scheduled
        # (that could put crash_budget + 1 replicas out at one instant).
        healthy.remove(victim)
        crash_budget -= 1

    # Crash faults: only nodes outside the Byzantine set, never more than
    # crash_budget down at once, and — matching the §2 model — volatile
    # stores only lose delivery (network crash) while durable stores may
    # lose the process itself (crash_restart rebuilds from the WAL).
    if crash_budget > 0 and rng.random() < 0.7:
        victims = rng.sample(healthy, min(crash_budget, 1 + rng.randint(0, 1)))
        at = rng.uniform(0.2, 1.5)
        for victim in victims[:crash_budget]:
            down_for = rng.uniform(0.5, 2.0)
            if store == "filelog" and rng.random() < 0.7:
                faults.append(
                    {
                        "op": "crash_restart",
                        "time": round(at, 3),
                        "node": _node(victim),
                        "down_for": round(down_for, 3),
                    }
                )
            else:
                faults.append(
                    {"op": "crash", "time": round(at, 3), "node": _node(victim)}
                )
                faults.append(
                    {
                        "op": "recover",
                        "time": round(at + down_for, 3),
                        "node": _node(victim),
                    }
                )
            # Sequential windows keep at most crash_budget nodes down.
            at += down_for + rng.uniform(0.2, 1.0)

    # Partitions: cut one client-replica or replica-replica pair, always
    # healed before the end so fair-loss liveness holds.
    if rng.random() < 0.5:
        a = _node(rng.choice(healthy))
        b = f"client:w{rng.randrange(config.max_clients)}"
        if rng.random() < 0.3 and len(healthy) > 1:
            b = _node(rng.choice([i for i in healthy if _node(i) != a]))
        start = rng.uniform(0.1, 1.0)
        faults.append({"op": "partition", "time": round(start, 3), "a": a, "b": b})
        faults.append(
            {
                "op": "heal",
                "time": round(start + rng.uniform(0.3, 1.5), 3),
                "a": a,
                "b": b,
            }
        )

    # Link degradation: make one directed link nastier than the ambient
    # profile for the rest of the episode.
    if rng.random() < 0.5:
        src = f"client:w{rng.randrange(config.max_clients)}"
        dst = _node(rng.choice(range(n)))
        if rng.random() < 0.5:
            src, dst = dst, src
        faults.append(
            {
                "op": "degrade",
                "time": round(rng.uniform(0.1, 1.0), 3),
                "src": src,
                "dst": dst,
                "profile": {
                    "min_delay": 0.002,
                    "max_delay": rng.choice([0.05, 0.10]),
                    "drop_rate": rng.choice([0.10, 0.25]),
                    "duplicate_rate": rng.choice([0.0, 0.10]),
                    "reorder_rate": rng.choice([0.0, 0.25, 0.5]),
                },
            }
        )

    # Fallback-forcing fault (fastpath only): filter the fast-path message
    # kinds inbound at f+1 replicas for a window, so the fast quorum of
    # 2f+1 is unreachable and clients must demote to the signed protocol;
    # the heal lets later operations take the fast path again.  Blocks only
    # FAST-* kinds, so the signed fallback always makes progress.
    if variant == "fastpath" and rng.random() < 0.6:
        victims = rng.sample(range(n), f + 1)
        start = rng.uniform(0.0, 0.5)
        heal_at = start + rng.uniform(0.5, 1.5)
        for victim in victims:
            faults.append(
                {
                    "op": "block_kinds",
                    "time": round(start, 3),
                    "node": _node(victim),
                    "kinds": ["FAST-PREP", "FAST-WRITE"],
                }
            )
            faults.append(
                {
                    "op": "unblock_kinds",
                    "time": round(heal_at, 3),
                    "node": _node(victim),
                }
            )

    attack = None
    if config.attacks and rng.random() < 0.3:
        attack = rng.choice(CLIENT_ATTACKS[str(variant)])

    return EpisodePlan(
        episode=episode,
        seed=rng.randrange(2**31),
        variant=str(variant),
        f=f,
        profile=profile,
        store=store,
        faults=faults,
        byzantine_replicas=byzantine_replicas,
        attack=attack,
        clients=rng.randint(1, config.max_clients),
        ops_per_client=config.ops_per_client,
        write_fraction=rng.choice([0.4, 0.5, 0.6, 0.8]),
        think_time=rng.choice([0.0, 0.01]),
        stagger=rng.choice([0.0, 0.05, 0.1]),
        max_time=config.max_time,
    )


def build_schedule(faults: list[dict[str, Any]]) -> FaultSchedule:
    """Materialise declarative fault specs into a :class:`FaultSchedule`.

    Accepted shapes (times are virtual seconds)::

        {"op": "crash",         "time": t, "node": id}
        {"op": "recover",       "time": t, "node": id}
        {"op": "crash_restart", "time": t, "node": id, "down_for": d}
        {"op": "partition",     "time": t, "a": id, "b": id}
        {"op": "heal",          "time": t, "a": id, "b": id}
        {"op": "degrade",       "time": t, "src": id, "dst": id,
         "profile": {LinkProfile kwargs}}
        {"op": "block_kinds",   "time": t, "node": id, "kinds": [KIND, ...]}
        {"op": "unblock_kinds", "time": t, "node": id[, "kinds": [...]]}
        {"op": "wal_bitflip",   "time": t, "node": id[, "position": p][, "flip": m]}
        {"op": "snapshot_truncate", "time": t, "node": id[, "keep": k]}
        {"op": "state_perturb", "time": t, "node": id[, "target": s][, "seed": i]}
    """
    schedule = FaultSchedule()
    for spec in faults:
        op = spec.get("op")
        if op == "crash":
            schedule.crash(spec["time"], spec["node"])
        elif op == "recover":
            schedule.recover(spec["time"], spec["node"])
        elif op == "crash_restart":
            schedule.crash_restart(
                spec["time"], spec["node"], down_for=spec["down_for"]
            )
        elif op == "partition":
            schedule.partition(spec["time"], spec["a"], spec["b"])
        elif op == "heal":
            schedule.heal(spec["time"], spec["a"], spec["b"])
        elif op == "degrade":
            schedule.degrade_link(
                spec["time"],
                spec["src"],
                spec["dst"],
                LinkProfile(**spec["profile"]),
            )
        elif op == "block_kinds":
            schedule.block_kinds(spec["time"], spec["node"], tuple(spec["kinds"]))
        elif op == "unblock_kinds":
            kinds = spec.get("kinds")
            schedule.unblock_kinds(
                spec["time"], spec["node"], tuple(kinds) if kinds else None
            )
        elif op == "wal_bitflip":
            schedule.wal_bitflip(
                spec["time"],
                spec["node"],
                position=spec.get("position", 0.5),
                flip=spec.get("flip", 0x01),
            )
        elif op == "snapshot_truncate":
            schedule.snapshot_truncate(
                spec["time"], spec["node"], keep=spec.get("keep", 0.5)
            )
        elif op == "state_perturb":
            schedule.state_perturb(
                spec["time"],
                spec["node"],
                target=spec.get("target", "data"),
                seed=spec.get("seed", 0),
            )
        else:
            raise SimulationError(f"unknown fault op {op!r}")
    return schedule
